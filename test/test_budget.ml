(* Resource governance: budgeted exploration degrades gracefully.

   (a) a truncated run still returns non-empty partial statistics;
   (b) partial statistics are monotone in the configuration budget;
   (c) an already-expired deadline truncates immediately, without
       raising and without exploring;
   (d) a crashing pipeline stage yields a structured diagnostic in the
       report instead of aborting the pipeline. *)

open Cobegin_core
open Cobegin_explore
open Helpers

(* fig5 explodes enough (hundreds of configurations) for tiny budgets to
   bite; philosophers-style nets are exercised in test_petri. *)
let big_src = Cobegin_models.Figures.fig5

let truncation_tests =
  [
    case "truncated run returns non-empty partial stats" (fun () ->
        let r = explore_full ~max_configs:5 big_src in
        (match r.Space.status with
        | Budget.Truncated (Budget.Configs 5) -> ()
        | Budget.Truncated _ -> Alcotest.fail "wrong truncation reason"
        | Budget.Complete -> Alcotest.fail "expected truncation");
        check_bool "some configurations" true
          (r.Space.stats.Space.configurations > 0);
        check_bool "within budget" true
          (r.Space.stats.Space.configurations <= 5));
    case "complete run is tagged Complete" (fun () ->
        let r = explore_full big_src in
        check_bool "complete" true (Budget.is_complete r.Space.status));
    case "transition budget truncates too" (fun () ->
        let budget = Budget.create ~max_transitions:10 () in
        let r = Space.full ~budget (ctx_of big_src) in
        match r.Space.status with
        | Budget.Truncated (Budget.Transitions 10) -> ()
        | _ -> Alcotest.fail "expected transition truncation");
    case "petri reachability truncates instead of failing" (fun () ->
        let net = Cobegin_models.Philosophers.net 5 in
        let r = Cobegin_petri.Reach.full ~max_states:10 net in
        check_bool "truncated" false
          (Budget.is_complete r.Cobegin_petri.Reach.status);
        check_bool "partial states" true
          (r.Cobegin_petri.Reach.stats.Cobegin_petri.Reach.states > 0));
  ]

let monotonicity_tests =
  [
    qtest ~count:30 "configs are monotone in the budget" seed_gen (fun seed ->
        let prog = random_program seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let configs_at k =
          (Space.full ~max_configs:k ctx).Space.stats.Space.configurations
        in
        let k = 1 + (seed mod 50) in
        configs_at k <= configs_at (k + 25)
        && configs_at k <= k
        && configs_at (k + 25) <= k + 25);
  ]

let deadline_tests =
  [
    case "expired deadline truncates immediately without raising" (fun () ->
        let budget = Budget.create ~timeout_s:0.0 () in
        let r = Space.full ~budget (ctx_of big_src) in
        (match r.Space.status with
        | Budget.Truncated (Budget.Deadline _) -> ()
        | _ -> Alcotest.fail "expected deadline truncation");
        (* nothing was expanded: only the initial configuration exists *)
        check_int "no exploration" 1 r.Space.stats.Space.configurations;
        check_int "no transitions" 0 r.Space.stats.Space.transitions);
    case "pipeline honours a zero timeout end to end" (fun () ->
        let options =
          { Pipeline.default_options with timeout_s = Some 0.0 }
        in
        let report = Pipeline.analyze ~options (parse big_src) in
        check_bool "truncated" false
          (Budget.is_complete report.Pipeline.status);
        check_bool "no stage crashed" true
          (report.Pipeline.stage_failures = []));
  ]

let stage_isolation_tests =
  [
    case "a crashing stage yields a diagnostic, not an abort" (fun () ->
        let boom = "injected fault" in
        let report =
          Pipeline.analyze
            ~stage_hook:(fun stage ->
              if stage = "lifetimes" then failwith boom)
            (parse Cobegin_models.Figures.fig2)
        in
        match report.Pipeline.stage_failures with
        | [ f ] ->
            check_string "stage" "lifetimes" f.Pipeline.stage;
            check_bool "diagnostic mentions the exception" true
              (let d = f.Pipeline.diagnostic and n = String.length boom in
               let hit = ref false in
               for i = 0 to String.length d - n do
                 if String.sub d i n = boom then hit := true
               done;
               !hit);
            (* downstream stages still ran on the default (empty) input *)
            check_bool "lifetimes defaulted" true
              (report.Pipeline.lifetimes = []);
            check_bool "placements consistent with empty lifetimes" true
              (report.Pipeline.placements = []);
            check_bool "side effects survived" true
              (report.Pipeline.side_effects <> [])
        | [] -> Alcotest.fail "expected a stage failure"
        | _ -> Alcotest.fail "expected exactly one stage failure");
    case "a crashing exploration still yields a report" (fun () ->
        let report =
          Pipeline.analyze
            ~stage_hook:(fun stage ->
              if stage = "exploration" then failwith "engine down")
            (parse Cobegin_models.Figures.fig2)
        in
        check_bool "failure recorded" true
          (List.exists
             (fun f -> f.Pipeline.stage = "exploration")
             report.Pipeline.stage_failures);
        check_int "empty stats" 0 report.Pipeline.stats.Pipeline.configurations);
  ]

let status_tests =
  [
    case "combine keeps the first truncation" (fun () ->
        let t = Budget.Truncated (Budget.Configs 3) in
        check_bool "id left" true (Budget.combine Budget.Complete t = t);
        check_bool "id right" true (Budget.combine t Budget.Complete = t);
        check_bool "complete" true
          (Budget.is_complete (Budget.combine Budget.Complete Budget.Complete)));
    case "status strings are stable" (fun () ->
        check_string "complete" "complete"
          (Budget.status_to_string Budget.Complete);
        check_string "truncated" "truncated: configuration budget (3)"
          (Budget.status_to_string (Budget.Truncated (Budget.Configs 3))));
  ]

let snapshot_tests =
  [
    case "one headroom entry per configured limit" (fun () ->
        let b = Budget.create ~max_configs:100 ~max_transitions:50 () in
        let hs = Budget.snapshot b ~configs:10 ~transitions:20 in
        check_int "two entries" 2 (List.length hs);
        let by r =
          List.find (fun h -> h.Budget.h_reason = r) hs
        in
        let c = by (Budget.Configs 100) in
        check_bool "configs consumed" true (c.Budget.h_consumed = 10.);
        check_bool "configs limit" true (c.Budget.h_limit = 100.);
        let t = by (Budget.Transitions 50) in
        check_bool "transitions consumed" true (t.Budget.h_consumed = 20.);
        check_bool "transitions limit" true (t.Budget.h_limit = 50.));
    case "unlimited budget has empty headroom" (fun () ->
        check_int "no entries" 0
          (List.length
             (Budget.snapshot (Budget.unlimited ()) ~configs:1_000_000
                ~transitions:1_000_000)));
    case "counter entries saturate exactly when check fires" (fun () ->
        let b = Budget.create ~max_configs:100 () in
        List.iter
          (fun configs ->
            let h =
              List.hd (Budget.snapshot b ~configs ~transitions:0)
            in
            let saturated = h.Budget.h_consumed >= h.Budget.h_limit in
            let fires = Budget.check b ~configs ~transitions:0 <> None in
            check_bool
              (Printf.sprintf "agree at %d configs" configs)
              fires saturated)
          [ 0; 99; 100; 101 ]);
    case "deadline entry tracks the wall clock" (fun () ->
        let b = Budget.create ~timeout_s:3600.0 () in
        let hs = Budget.snapshot b ~configs:0 ~transitions:0 in
        match hs with
        | [ h ] ->
            (match h.Budget.h_reason with
            | Budget.Deadline _ -> ()
            | _ -> Alcotest.fail "expected a deadline entry");
            check_bool "limit is the timeout" true
              (h.Budget.h_limit = 3600.0);
            check_bool "barely consumed" true
              (h.Budget.h_consumed >= 0. && h.Budget.h_consumed < 60.)
        | _ -> Alcotest.fail "expected exactly the deadline entry");
    case "reason labels are stable" (fun () ->
        List.iter
          (fun (r, l) -> check_string l l (Budget.reason_label r))
          [
            (Budget.Configs 1, "configs");
            (Budget.Transitions 1, "transitions");
            (Budget.Deadline 1.0, "deadline_s");
            (Budget.Heap_words 1, "heap_words");
            (Budget.Fuel 1, "fuel");
          ]);
  ]

(* The deadline instant is fixed at budget creation, which is wrong for
   a resumed run: the gap between the original launch and the resume
   would count against the timeout.  [refresh_deadline] re-anchors it;
   [Checkpoint.resume] calls it after the snapshot loads. *)
let refresh_tests =
  [
    case "refresh_deadline re-arms a lapsed timeout" (fun () ->
        let stale = Budget.create ~timeout_s:0.05 ~check_every:1 () in
        let refreshed = Budget.create ~timeout_s:0.05 ~check_every:1 () in
        Unix.sleepf 0.08;
        Budget.refresh_deadline refreshed;
        check_bool "stale budget trips" true
          (Budget.check stale ~configs:0 ~transitions:0 <> None);
        check_bool "refreshed budget has headroom" true
          (Budget.check refreshed ~configs:0 ~transitions:0 = None));
    case "refresh_deadline without a timeout is a no-op" (fun () ->
        let b = Budget.create ~max_configs:10 ~check_every:1 () in
        Budget.refresh_deadline b;
        check_bool "no trip" true
          (Budget.check b ~configs:1 ~transitions:0 = None));
    case "resume under a wall-clock timeout gets the full timeout"
      (fun () ->
        let path = Filename.temp_file "cobegin-budget-ckpt" ".bin" in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let clean = Space.full (ctx_of big_src) in
            let cadence =
              { Checkpoint.every_configs = 4; every_s = None }
            in
            let first =
              Checkpoint.full ~max_configs:10 ~cadence ~path (ctx_of big_src)
            in
            check_bool "first run truncated" false
              (Budget.is_complete first.Space.status);
            (* a budget whose creation-time deadline has already lapsed
               by resume time — the pre-fix behavior truncated here
               immediately with Deadline *)
            let budget = Budget.create ~timeout_s:0.2 ~check_every:1 () in
            Unix.sleepf 0.3;
            let resumed =
              Checkpoint.resume ~budget ~cadence ~path (ctx_of big_src)
            in
            check_bool "resumed run completes" true
              (Budget.is_complete resumed.Space.status);
            check_bool "stats equal the clean run" true
              (resumed.Space.stats = clean.Space.stats)));
  ]

let suite =
  truncation_tests @ monotonicity_tests @ deadline_tests @ refresh_tests
  @ stage_isolation_tests @ status_tests @ snapshot_tests
