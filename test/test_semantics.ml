(* Concrete semantics: evaluation, runtime errors, schedulers,
   determinism of locations, process structure. *)

open Cobegin_semantics
open Helpers

let run_left src = Exec.run_leftmost (ctx_of src)

let final_int_of run name =
  (* read variable [name] from the final store via declaration order is
     brittle; instead re-run and track through the trace — here we only
     need simple single-var programs, so take the store binding whose
     value we assert on. *)
  match run.Exec.outcome with
  | Exec.Terminated c ->
      let bindings = Store.bindings c.Config.store in
      List.filter_map
        (fun (_, v) -> match v with Value.Vint n -> Some n | _ -> None)
        bindings
      |> fun l -> (name, l)
  | _ -> (name, [])

let eval_tests =
  [
    case "arithmetic and comparison" (fun () ->
        let r = run_left "proc main() { var x = (3 + 4) * 2 - 6 / 3; assert(x == 12); }" in
        check_bool "terminates" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "strict boolean operators" (fun () ->
        let r =
          run_left
            "proc main() { var b = true && false || true; assert(b); }"
        in
        check_bool "terminates" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "division by zero is a runtime error" (fun () ->
        match (run_left "proc main() { var x = 1 / 0; }").Exec.outcome with
        | Exec.Error (msg, _) ->
            check_bool "message" true
              (String.length msg > 0
              && String.sub msg 0 8 = "division")
        | _ -> Alcotest.fail "expected error");
    case "type confusion is a runtime error" (fun () ->
        match (run_left "proc main() { var x = 1 + true; }").Exec.outcome with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "deref of integer is a runtime error" (fun () ->
        match (run_left "proc main() { var x = 0; var y = *x; }").Exec.outcome with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "condition must be boolean" (fun () ->
        match (run_left "proc main() { if (1) { } }").Exec.outcome with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "assert failure reports its label" (fun () ->
        match (run_left "proc main() { assert(false); }").Exec.outcome with
        | Exec.Error (msg, _) ->
            check_bool "mentions statement" true
              (String.length msg > 0)
        | _ -> Alcotest.fail "expected error");
  ]

let memory_tests =
  [
    case "malloc cells are zero-initialized" (fun () ->
        let r =
          run_left
            "proc main() { var p = malloc(3); assert(*p == 0); assert(*(p + \
             2) == 0); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "pointer arithmetic stays in the block" (fun () ->
        let r =
          run_left
            "proc main() { var p = malloc(2); *(p + 1) = 9; var x = *(p + \
             1); assert(x == 9); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "out-of-bounds deref errs" (fun () ->
        match
          (run_left "proc main() { var p = malloc(1); var x = *(p + 3); }")
            .Exec.outcome
        with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "use after free errs" (fun () ->
        match
          (run_left
             "proc main() { var p = malloc(1); free(p); var x = *p; }")
            .Exec.outcome
        with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "double free errs" (fun () ->
        match
          (run_left "proc main() { var p = malloc(1); free(p); free(p); }")
            .Exec.outcome
        with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "free of interior pointer errs" (fun () ->
        match
          (run_left "proc main() { var p = malloc(2); free(p + 1); }")
            .Exec.outcome
        with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "address-of a local and write through it" (fun () ->
        let r =
          run_left
            "proc main() { var x = 1; var p = &x; *p = 5; assert(x == 5); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
  ]

let proc_tests =
  [
    case "call with result and return" (fun () ->
        let r =
          run_left
            "proc add(a, b) { return a + b; } proc main() { var x = add(2, \
             3); assert(x == 5); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "fall-through return yields 0" (fun () ->
        let r =
          run_left
            "proc f() { skip; } proc main() { var x = 99; x = f(); assert(x \
             == 0); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "recursion" (fun () ->
        let r =
          run_left
            "proc fact(n) { if (n <= 1) { return 1; } var r = fact(n - 1); \
             return n * r; } proc main() { var x = fact(5); assert(x == 120); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "first-class procedure values" (fun () ->
        let r = run_left Cobegin_models.Figures.firstclass in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "by-value parameters do not alias" (fun () ->
        let r =
          run_left
            "proc f(a) { a = 99; } proc main() { var x = 1; f(x); assert(x \
             == 1); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "by-reference through pointers does alias" (fun () ->
        let r =
          run_left
            "proc f(p) { *p = 99; } proc main() { var x = 1; f(&x); \
             assert(x == 99); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "return inside cobegin branch errs" (fun () ->
        match
          (run_left "proc main() { cobegin { return; } coend; }").Exec.outcome
        with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    case "arity mismatch at runtime via function value" (fun () ->
        match
          (run_left "proc f(a) { } proc main() { var g = f; (g)(); }")
            .Exec.outcome
        with
        | Exec.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let concurrency_tests =
  [
    case "join waits for all branches" (fun () ->
        let r =
          run_left
            "proc main() { var x = 0; cobegin { x = x + 1; } { x = x + 1; } \
             coend; assert(x == 2); }"
        in
        (* leftmost scheduling serializes the branches *)
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "nested cobegin" (fun () ->
        let r =
          run_left
            "proc main() { var x = 0; cobegin { cobegin { x = x + 1; } { x \
             = x + 1; } coend; } { x = x + 1; } coend; assert(x == 3); }"
        in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "await blocks until condition" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.busywait in
        let r = Exec.run_round_robin ctx in
        check_bool "ok" true
          (match r.Exec.outcome with Exec.Terminated _ -> true | _ -> false));
    case "lock provides mutual exclusion" (fun () ->
        (* all schedules end with count = 2 *)
        let ctx = ctx_of Cobegin_models.Figures.mutex in
        List.iter
          (fun seed ->
            match (Exec.run_random ctx ~seed).Exec.outcome with
            | Exec.Terminated _ -> ()
            | Exec.Error (m, _) -> Alcotest.fail ("error: " ^ m)
            | Exec.Deadlock _ -> Alcotest.fail "deadlock"
            | Exec.Out_of_fuel _ -> Alcotest.fail "fuel")
          [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
    case "deadlock detected by executor" (fun () ->
        let src =
          "proc main() { var a = 0; var b = 0; cobegin { lock(a); await(b \
           == 1); } { lock(b); await(a == 0); lock(a); } coend; }"
        in
        let found = ref false in
        List.iter
          (fun seed ->
            match (Exec.run_random (ctx_of src) ~seed).Exec.outcome with
            | Exec.Deadlock _ -> found := true
            | _ -> ())
          (List.init 30 (fun i -> i + 1));
        check_bool "some schedule deadlocks" true !found);
  ]

(* Locations are deterministic per logical state: different interleavings
   of independent threads reach structurally equal final configurations. *)
let determinism_tests =
  [
    qtest ~count:20 "random schedules agree on the set of explored finals"
      QCheck2.Gen.(pair seed_gen (int_range 1 1000))
      (fun (pseed, sseed) ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 2;
            with_loops = false;
          }
        in
        let prog = random_program ~cfg pseed in
        let ctx = Step.make_ctx prog in
        match (Exec.run_random ctx ~seed:sseed).Exec.outcome with
        | Exec.Terminated c ->
            (* the executor's final store must be among the explored ones *)
            let full = Cobegin_explore.Space.full ~max_configs:30_000 ctx in
            let reprs = Cobegin_explore.Space.final_store_reprs full in
            List.mem (Store.repr c.Config.store) reprs
        | Exec.Error _ | Exec.Deadlock _ -> true
        | Exec.Out_of_fuel _ -> true);
  ]

(* [Value.compare_value] must be a total order consistent with
   [equal_value] — the visited sets, digest tables and store reprs all
   lean on it across every constructor pair. *)
let value_order_tests =
  let open QCheck2.Gen in
  let loc_gen =
    map3
      (fun pid site off -> { Value.l_pid = pid; l_site = site; l_seq = 0; l_off = off })
      (oneofl [ []; [ (1, 0) ]; [ (1, 1) ]; [ (1, 0); (2, 1) ] ])
      (int_range 0 3) (int_range 0 3)
  in
  let value_gen =
    oneof
      [
        map (fun n -> Value.Vint n) small_int;
        map (fun b -> Value.Vbool b) bool;
        map (fun l -> Value.Vloc l) loc_gen;
        map (fun f -> Value.Vfun f) (oneofl [ "f"; "g"; "main" ]);
      ]
  in
  let sign n = compare n 0 in
  [
    qtest ~count:200 "compare_value is reflexive" value_gen (fun v ->
        Value.compare_value v v = 0);
    qtest ~count:200 "compare_value is antisymmetric" (pair value_gen value_gen)
      (fun (a, b) ->
        sign (Value.compare_value a b) = -sign (Value.compare_value b a));
    qtest ~count:500 "compare_value is transitive"
      (triple value_gen value_gen value_gen) (fun (a, b, c) ->
        (not
           (Value.compare_value a b <= 0 && Value.compare_value b c <= 0))
        || Value.compare_value a c <= 0);
    qtest ~count:200 "compare_value zero iff equal_value"
      (pair value_gen value_gen) (fun (a, b) ->
        Value.compare_value a b = 0 = Value.equal_value a b);
  ]

let suite =
  eval_tests @ memory_tests @ proc_tests @ concurrency_tests
  @ determinism_tests @ value_order_tests

let _ = final_int_of
