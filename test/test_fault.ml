(* The chaos harness and everything it is supposed to prove:

   (a) fault-plan specs parse, round-trip and reject typos;
   (b) injection is deterministic: the nth hit of a site fires exactly
       once, at the same point, every run;
   (c) the chaos sweep — every injection site x every engine on corpus
       models, under a wall-clock watchdog: a fault never hangs an
       engine and always surfaces as a structured exception or a sound
       degraded report (regression: a dead parallel worker used to make
       its siblings spin forever);
   (d) the pipeline supervisor: retries, the jobs N -> 1 degradation
       ladder, recovery rungs, and the never-fabricate-Complete rule;
   (e) checkpoint/resume determinism: kill a checkpointed run anywhere
       and the resumed run reports identical final statistics and final
       stores; corrupt/mismatched checkpoints are refused. *)

open Cobegin_explore
open Cobegin_core
open Helpers

(* Install a plan for the duration of [f]; counters reset on install so
   cases cannot leak hits into each other. *)
let with_chaos spec f =
  (match Fault.parse spec with
  | Ok plan -> Fault.install plan
  | Error e -> Alcotest.failf "bad test chaos spec %S: %s" spec e);
  Fun.protect ~finally:Fault.clear f

(* Run [f] on a spawned domain and fail the test if it does not finish
   within [seconds] — the no-hang guarantee of the harness is exactly
   what this file exists to check, so waiting forever is not an option. *)
let with_watchdog ?(seconds = 60.) name f =
  let result = Atomic.make None in
  let d =
    Domain.spawn (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        Atomic.set result (Some r))
  in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    match Atomic.get result with
    | Some r -> (
        Domain.join d;
        match r with Ok v -> v | Error e -> raise e)
    | None ->
        if Unix.gettimeofday () -. t0 > seconds then
          Alcotest.failf "%s: watchdog expired — the run hung" name
        else begin
          Unix.sleepf 0.01;
          wait ()
        end
  in
  wait ()

let structured = function
  | Fault.Injected _ | Out_of_memory | Parallel.Worker_failed _ -> true
  | _ -> false

let phil2 = Cobegin_models.Philosophers.program 2 (* source text *)
let phil2_src = Cobegin_models.Corpus.find "phil2" |> Option.get
let phil3_src = Cobegin_models.Corpus.find "phil3" |> Option.get

(* A kill plan is conditional on the targeted worker reaching its n-th
   pop, which a work-stealing schedule does not guarantee on any one
   run: reinstall the plan and retry until it lands.  Returns the
   raised exception for inspection; a run that raises anything counts
   as landed. *)
let expect_worker_failed ?(attempts = 20) spec f =
  let rec go n =
    match with_chaos spec f with
    | exception e -> e
    | _ when n < attempts -> go (n + 1)
    | _ ->
        Alcotest.failf "%s never landed in %d attempts" spec attempts
  in
  go 1

let spec_tests =
  [
    case "a composite spec round-trips through parse/to_spec" (fun () ->
        let spec =
          "crash@space.pop:3,delay@sleep.pop:2=50ms,oom@pipeline.lifetimes:1,kill@worker1:5,flaky@reach.pop:250,seed=7"
        in
        match Fault.parse spec with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok plan -> (
            check_string "canonical spelling" spec (Fault.to_spec plan);
            match Fault.parse (Fault.to_spec plan) with
            | Ok plan' -> check_bool "round-trip" true (plan = plan')
            | Error e -> Alcotest.failf "re-parse failed: %s" e));
    case "typos are rejected, not silently inert" (fun () ->
        List.iter
          (fun bad ->
            match Fault.parse bad with
            | Ok _ -> Alcotest.failf "spec %S should not parse" bad
            | Error _ -> ())
          [
            "";
            "crash@space.pop";
            "crash@no.such.site:1";
            "crash@space.pop:zero";
            "explode@space.pop:1";
            "kill@domain1:5";
            "delay@space.pop:1";
            "crash@parallel.workerX:1";
            "seed=abc";
          ]);
    case "every catalog site is accepted" (fun () ->
        List.iter
          (fun site ->
            match Fault.parse (Printf.sprintf "crash@%s:1" site) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "site %s rejected: %s" site e)
          (Fault.worker_site 3 :: Fault.known_sites));
    case "reason_label and pp_reason know about crashes" (fun () ->
        check_string "label" "crash"
          (Budget.reason_label (Budget.Crash "boom"));
        let s =
          Format.asprintf "%a" Budget.pp_reason (Budget.Crash "boom")
        in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        check_bool "diagnostic in printed form" true (contains s "boom"));
  ]

let determinism_tests =
  [
    case "the nth hit fires exactly once, deterministically" (fun () ->
        let run () = Space.full (ctx_of phil2_src) in
        let clean = run () in
        with_chaos "crash@space.pop:5" (fun () ->
            (match run () with
            | _ -> Alcotest.fail "expected an injected crash"
            | exception Fault.Injected { site; nth; kind } ->
                check_string "site" "space.pop" site;
                check_int "nth" 5 nth;
                check_string "kind" "crash" kind);
            (* counters are global and the action single-fire: the next
               run sails past the already-spent trigger *)
            let again = run () in
            check_bool "second run completes" true
              (Budget.is_complete again.Space.status);
            check_bool "and reports the clean statistics" true
              (again.Space.stats = clean.Space.stats)));
    case "hits counters report how far the run got" (fun () ->
        with_chaos "crash@space.pop:5" (fun () ->
            (try ignore (Space.full (ctx_of phil2_src) : Space.result)
             with Fault.Injected _ -> ());
            check_int "five pops observed" 5
              (List.assoc "space.pop" (Fault.hits ()))));
    case "a delay plan perturbs nothing but the clock" (fun () ->
        let clean = Space.full (ctx_of phil2_src) in
        with_chaos "delay@space.pop:2=5ms" (fun () ->
            let r = Space.full (ctx_of phil2_src) in
            check_bool "identical result" true
              (clean.Space.stats = r.Space.stats
              && final_reprs clean = final_reprs r)));
  ]

(* --- the sweep: every site x every engine it instruments --- *)

let checkpoint_path () = Filename.temp_file "cobegin-test" ".ckpt"

(* Each engine runs every corpus-model context below under every fault
   kind at its own site: the run must either complete or raise a
   structured exception — anything else (a hang, an anonymous abort)
   fails the case. *)
let sweep_engines =
  [
    ("space", "space.pop", fun src -> ignore (Space.full (ctx_of src)));
    ("sleep", "sleep.pop", fun src -> ignore (Sleep.explore (ctx_of src)));
    ( "races",
      "races.pop",
      fun src -> ignore (Cobegin_analysis.Race.find (ctx_of src)) );
    ( "parallel",
      Fault.worker_site 1,
      fun src -> ignore (Parallel.full ~jobs:3 (ctx_of src)) );
    ( "checkpoint",
      "checkpoint.pop",
      fun src ->
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            ignore
              (Checkpoint.full
                 ~cadence:{ Checkpoint.every_configs = 16; every_s = None }
                 ~path (ctx_of src))) );
    ( "checkpoint-save",
      "checkpoint.save",
      fun src ->
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            ignore
              (Checkpoint.full
                 ~cadence:{ Checkpoint.every_configs = 16; every_s = None }
                 ~path (ctx_of src))) );
  ]

let sweep_models =
  [ ("phil2", phil2_src); ("mutex", Cobegin_models.Corpus.find "mutex" |> Option.get) ]

let sweep_tests =
  [
    case "chaos sweep: no engine hangs or aborts unstructured" (fun () ->
        List.iter
          (fun (engine, site, run) ->
            List.iter
              (fun kind ->
                List.iter
                  (fun (model, src) ->
                    let spec = Printf.sprintf "%s@%s:3" kind site in
                    let name =
                      Printf.sprintf "%s/%s/%s" engine model spec
                    in
                    with_chaos spec (fun () ->
                        with_watchdog name (fun () ->
                            match run src with
                            | () -> ()
                            | exception e when structured e -> ()
                            | exception e ->
                                Alcotest.failf
                                  "%s: unstructured escape: %s" name
                                  (Printexc.to_string e))))
                  sweep_models)
              [ "crash"; "oom" ])
          sweep_engines);
    case "chaos sweep: the Petri reachability engine too" (fun () ->
        List.iter
          (fun n ->
            with_chaos "crash@reach.pop:3" (fun () ->
                with_watchdog "reach/crash" (fun () ->
                    match
                      Cobegin_petri.Reach.full
                        (Cobegin_models.Philosophers.net n)
                    with
                    | _ -> Alcotest.fail "expected an injected crash"
                    | exception Fault.Injected _ -> ())))
          [ 2; 3 ]);
    case "a killed parallel worker fails the run, never hangs" (fun () ->
        (* a kill only lands if the targeted worker actually reaches its
           n-th pop — on a work-stealing schedule a worker can
           legitimately finish with fewer; retry with a fresh plan until
           the fault fires (each attempt is still watchdogged) *)
        match
          expect_worker_failed "kill@worker1:2" (fun () ->
              with_watchdog "parallel/kill" (fun () ->
                  ignore (Parallel.full ~jobs:4 (ctx_of phil3_src))))
        with
        | Parallel.Worker_failed { domain; cause; _ } -> (
            check_int "failing domain identified" 1 domain;
            match cause with
            | Fault.Injected { nth; _ } -> check_int "nth pop" 2 nth
            | e ->
                Alcotest.failf "wrong cause: %s" (Printexc.to_string e))
        | e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
    case "worker failure at jobs=2 drains the sibling, never hangs"
      (fun () ->
        (* the regression this PR fixes: an exception in one worker left
           the shared pending counter unbalanced and the sibling
           spinning forever *)
        let ctx = ctx_of phil3_src in
        match
          expect_worker_failed "kill@worker0:1" (fun () ->
              with_watchdog "parallel/raise" (fun () ->
                  ignore (Parallel.full ~jobs:2 ctx)))
        with
        | Parallel.Worker_failed { backtrace; _ } ->
            check_bool "backtrace string attached" true
              (String.length backtrace >= 0)
        | e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  ]

(* --- the pipeline supervisor --- *)

let counts (s : Pipeline.exploration_stats) =
  ( s.Pipeline.configurations,
    s.Pipeline.transitions,
    s.Pipeline.finals,
    s.Pipeline.deadlocks,
    s.Pipeline.errors )

let ladder_tests =
  [
    case "a killed worker degrades jobs 4 -> 1 and completes" (fun () ->
        let clean = Pipeline.analyze_source phil3_src in
        (* as above: retry until the kill actually lands on worker 1 *)
        let rec go n =
          let r =
            with_chaos "kill@worker1:3" (fun () ->
                with_watchdog "ladder/kill" (fun () ->
                    Pipeline.analyze_source
                      ~options:{ Pipeline.default_options with jobs = 4 }
                      phil3_src))
          in
          if r.Pipeline.recovery = [] && n < 20 then go (n + 1) else r
        in
        let r = go 1 in
        check_bool "completes" true (Budget.is_complete r.Pipeline.status);
        check_bool "not degraded" false r.Pipeline.degraded;
        check_bool "no stage failure recorded" true
          (r.Pipeline.stage_failures = []);
        check_bool "counts equal the sequential run" true
          (counts r.Pipeline.stats = counts clean.Pipeline.stats);
        match r.Pipeline.recovery with
        | [ { Pipeline.r_stage = "exploration";
              r_action = Pipeline.Degrade_jobs { from_jobs = 4; to_jobs = 1 };
              _
            } ] ->
            ()
        | rungs ->
            Alcotest.failf "unexpected ladder: %s"
              (String.concat "; "
                 (List.map
                    (Format.asprintf "%a" Pipeline.pp_recovery_rung)
                    rungs)));
    case "a crashed stage is retried and the retry completes" (fun () ->
        let clean = Pipeline.analyze_source phil2 in
        with_chaos "crash@space.pop:10" (fun () ->
            let r = Pipeline.analyze_source phil2 in
            check_bool "completes" true
              (Budget.is_complete r.Pipeline.status);
            check_bool "counts equal the clean run" true
              (counts r.Pipeline.stats = counts clean.Pipeline.stats);
            match r.Pipeline.recovery with
            | [ { Pipeline.r_stage = "exploration";
                  r_action = Pipeline.Retry;
                  _
                } ] ->
                ()
            | _ -> Alcotest.fail "expected exactly one Retry rung"));
    case "retries=0: exploration gives up into an honest DEGRADED report"
      (fun () ->
        let clean = Pipeline.analyze_source phil2 in
        with_chaos "crash@space.pop:10" (fun () ->
            let r =
              Pipeline.analyze_source
                ~options:{ Pipeline.default_options with retries = 0 }
                phil2
            in
            check_bool "degraded" true r.Pipeline.degraded;
            (match r.Pipeline.status with
            | Budget.Truncated (Budget.Crash _) -> ()
            | _ -> Alcotest.fail "expected Truncated (Crash _)");
            check_bool "exploration failure recorded" true
              (List.exists
                 (fun f -> f.Pipeline.stage = "exploration")
                 r.Pipeline.stage_failures);
            (match List.rev r.Pipeline.recovery with
            | { Pipeline.r_action = Pipeline.Give_up; _ } :: _ -> ()
            | _ -> Alcotest.fail "last rung must be Give_up");
            (* soundness: a degraded report never overcounts *)
            let (c, t, f, d, e) = counts r.Pipeline.stats
            and (c', t', f', d', e') = counts clean.Pipeline.stats in
            check_bool "degraded counts <= clean counts" true
              (c <= c' && t <= t' && f <= f' && d <= d' && e <= e')));
    case "a non-result stage that keeps crashing stays non-fatal" (fun () ->
        with_chaos "crash@pipeline.lifetimes:1,crash@pipeline.lifetimes:2"
          (fun () ->
            let r =
              Pipeline.analyze_source
                ~options:{ Pipeline.default_options with retries = 1 }
                phil2
            in
            check_bool "exploration untouched: complete" true
              (Budget.is_complete r.Pipeline.status);
            check_bool "not degraded" false r.Pipeline.degraded;
            check_bool "lifetimes failure recorded" true
              (List.exists
                 (fun f -> f.Pipeline.stage = "lifetimes")
                 r.Pipeline.stage_failures);
            check_bool "lifetimes defaulted to empty" true
              (r.Pipeline.lifetimes = []);
            check_int "two rungs: Retry then Give_up" 2
              (List.length r.Pipeline.recovery)));
    case "pipeline chaos sweep over every stage site" (fun () ->
        (* with one retry every single-shot stage crash is absorbed:
           either the report is clean or it is honestly degraded —
           never a fabricated Complete with missing results *)
        List.iter
          (fun site ->
            with_chaos (Printf.sprintf "crash@%s:1" site) (fun () ->
                with_watchdog ("pipeline/" ^ site) (fun () ->
                    let r =
                      Pipeline.analyze_source
                        ~options:
                          { Pipeline.default_options with find_races = true;
                            lint = true }
                        phil2
                    in
                    if r.Pipeline.degraded then
                      match r.Pipeline.status with
                      | Budget.Truncated (Budget.Crash _) -> ()
                      | _ ->
                          Alcotest.failf
                            "%s: degraded report without Crash status" site
                    else
                      check_bool (site ^ ": recovered or unhit") true
                        (Budget.is_complete r.Pipeline.status))))
          (List.filter
             (fun s -> String.length s > 9 && String.sub s 0 9 = "pipeline.")
             Fault.known_sites));
    case "stage failures carry a backtrace under record_backtrace"
      (fun () ->
        let was = Printexc.backtrace_status () in
        Printexc.record_backtrace true;
        Fun.protect
          ~finally:(fun () -> Printexc.record_backtrace was)
          (fun () ->
            with_chaos "crash@space.pop:10" (fun () ->
                let r =
                  Pipeline.analyze_source
                    ~options:{ Pipeline.default_options with retries = 0 }
                    phil2
                in
                match
                  List.find_opt
                    (fun f -> f.Pipeline.stage = "exploration")
                    r.Pipeline.stage_failures
                with
                | Some f ->
                    check_bool "backtrace captured" true
                      (f.Pipeline.backtrace <> None)
                | None -> Alcotest.fail "no exploration failure")));
  ]

(* --- checkpoint/resume determinism --- *)

let ckpt_tests =
  [
    case "kill + resume reports identical statistics on 3 corpus models"
      (fun () ->
        List.iter
          (fun name ->
            let src = Cobegin_models.Corpus.find name |> Option.get in
            let clean = Space.full (ctx_of src) in
            check_bool (name ^ " clean run complete") true
              (Budget.is_complete clean.Space.status);
            let n = clean.Space.stats.Space.configurations in
            let cadence =
              { Checkpoint.every_configs = max 1 (n / 5); every_s = None }
            in
            let kill_at = max 2 (2 * n / 3) in
            let path = checkpoint_path () in
            Fun.protect
              ~finally:(fun () ->
                try Sys.remove path with Sys_error _ -> ())
              (fun () ->
                with_chaos
                  (Printf.sprintf "crash@checkpoint.pop:%d" kill_at)
                  (fun () ->
                    match
                      Checkpoint.full ~cadence ~path (ctx_of src)
                    with
                    | _ -> Alcotest.failf "%s: expected the kill" name
                    | exception Fault.Injected _ -> ());
                let resumed =
                  Checkpoint.resume ~cadence ~path (ctx_of src)
                in
                check_bool (name ^ " resumed run complete") true
                  (Budget.is_complete resumed.Space.status);
                check_bool (name ^ " identical statistics") true
                  (clean.Space.stats = resumed.Space.stats);
                check_bool (name ^ " identical final stores") true
                  (final_reprs clean = final_reprs resumed)))
          [ "phil2"; "phil3"; "phil2r2" ]);
    case "a truncated checkpointed run resumes under a larger budget"
      (fun () ->
        let src = Cobegin_models.Corpus.find "phil3" |> Option.get in
        let clean = Space.full (ctx_of src) in
        let n = clean.Space.stats.Space.configurations in
        let cadence =
          { Checkpoint.every_configs = max 1 (n / 4); every_s = None }
        in
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let partial =
              Checkpoint.full ~max_configs:(n / 2) ~cadence ~path
                (ctx_of src)
            in
            check_bool "first run truncated" false
              (Budget.is_complete partial.Space.status);
            let resumed = Checkpoint.resume ~cadence ~path (ctx_of src) in
            check_bool "resumed run complete" true
              (Budget.is_complete resumed.Space.status);
            check_bool "identical statistics" true
              (clean.Space.stats = resumed.Space.stats);
            check_bool "identical final stores" true
              (final_reprs clean = final_reprs resumed)));
    case "a checkpoint is bound to its program" (fun () ->
        let phil2_ctx = ctx_of phil2_src in
        let phil3_ctx =
          ctx_of (Cobegin_models.Corpus.find "phil3" |> Option.get)
        in
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            ignore
              (Checkpoint.full
                 ~cadence:{ Checkpoint.every_configs = 8; every_s = None }
                 ~path phil2_ctx
                : Space.result);
            match Checkpoint.resume ~path phil3_ctx with
            | _ -> Alcotest.fail "expected Corrupt"
            | exception Checkpoint.Corrupt _ -> ()));
    case "garbage on disk is refused, not crashed on" (fun () ->
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let oc = open_out_bin path in
            output_string oc "not a checkpoint";
            close_out oc;
            match Checkpoint.resume ~path (ctx_of phil2_src) with
            | _ -> Alcotest.fail "expected Corrupt"
            | exception Checkpoint.Corrupt _ -> ()));
    case "a complete checkpointed run equals Space.full" (fun () ->
        let clean = Space.full (ctx_of phil2_src) in
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            let r =
              Checkpoint.full
                ~cadence:{ Checkpoint.every_configs = 16; every_s = None }
                ~path (ctx_of phil2_src)
            in
            check_bool "identical statistics" true
              (clean.Space.stats = r.Space.stats);
            check_bool "identical final stores" true
              (final_reprs clean = final_reprs r)));
  ]

let suite =
  spec_tests @ determinism_tests @ sweep_tests @ ladder_tests @ ckpt_tests
