(* TSO/PSO store-buffer semantics: SC regression pins, litmus tests,
   the protocol matrix, cross-engine agreement and checkpointing of
   buffered configurations. *)

open Helpers
module Step = Cobegin_semantics.Step
module Config = Cobegin_semantics.Config
module Store = Cobegin_semantics.Store
module Exec = Cobegin_semantics.Exec
module Space = Cobegin_explore.Space
module Stubborn = Cobegin_explore.Stubborn
module Sleep = Cobegin_explore.Sleep
module Parallel = Cobegin_explore.Parallel
module Checkpoint = Cobegin_explore.Checkpoint

module Corpus = Cobegin_models.Corpus

let ctx_of_model model src = Step.make_ctx ~model (parse src)

let corpus_src name =
  match Corpus.find name with
  | Some src -> src
  | None -> Alcotest.failf "corpus model %s not found" name

let full_of model name = Space.full (ctx_of_model model (corpus_src name))

(* (configurations, transitions, max_frontier, finals, deadlocks,
   errors) — the order [Space.pp_stats] prints. *)
let counts (r : Space.result) =
  let s = r.Space.stats in
  ( s.Space.configurations,
    s.Space.transitions,
    s.Space.max_frontier,
    s.Space.finals,
    s.Space.deadlocks,
    s.Space.errors )

let check_counts name expected r =
  let got = counts r in
  if got <> expected then
    let p (c, t, m, f, d, e) =
      Printf.sprintf "%d/%d/%d/%d/%d/%d" c t m f d e
    in
    Alcotest.failf "%s: expected %s, got %s" name (p expected) (p got)

(* Every corpus model that predates the memory-model work, with its
   full-engine statistics pinned.  The store-buffer machinery must not
   perturb SC exploration by a single configuration. *)
let sc_pins =
  [
    ("fig2", (21, 22, 4, 3, 0, 0));
    ("fig3", (11, 10, 2, 2, 0, 0));
    ("fig5", (28, 43, 5, 1, 0, 0));
    ("example8", (16, 18, 3, 2, 0, 0));
    ("fig8", (108, 174, 13, 3, 0, 0));
    ("busywait", (11, 10, 1, 1, 0, 0));
    ("mutex", (17, 17, 2, 1, 0, 0));
    ("mutex_racy", (18, 19, 4, 3, 0, 0));
    ("firstclass", (9, 8, 1, 1, 0, 0));
    ("peterson", (57, 77, 7, 2, 0, 0));
    ("peterson_broken", (86, 123, 10, 2, 0, 4));
    ("barrier2", (228, 342, 16, 4, 0, 0));
    ("readers_writers", (72, 105, 7, 1, 0, 0));
    ("phil2", (72, 114, 8, 1, 1, 0));
    ("phil3", (557, 1328, 48, 1, 1, 0));
    ("phil2r2", (177, 288, 13, 1, 4, 0));
  ]

let sc_pin_tests =
  List.map
    (fun (name, expected) ->
      case (Printf.sprintf "SC counts unchanged: %s" name) (fun () ->
          check_counts name expected (full_of Step.Sc name)))
    sc_pins

(* Under SC the action interface degenerates to one [Arun] per enabled
   process, in pid order — the buffer machinery is invisible. *)
let sc_action_tests =
  [
    case "SC actions are exactly the enabled processes" (fun () ->
        let ctx = ctx_of_model Step.Sc (corpus_src "peterson") in
        let c = Step.init ctx in
        let actions = Step.enabled_actions ctx c in
        let pids =
          List.map
            (function
              | Step.Arun p -> p.Cobegin_semantics.Proc.pid
              | Step.Aflush _ -> Alcotest.fail "flush action under SC")
            actions
        in
        let enabled =
          List.map
            (fun p -> p.Cobegin_semantics.Proc.pid)
            (Step.enabled_processes ctx c)
        in
        check_bool "same pids in order" true (pids = enabled));
  ]

(* Store-buffering litmus (SB): with both stores buffered, both loads
   can read the initial value — the classic non-SC outcome. *)
let sb_litmus =
  {|
proc main() {
  var x = 0;
  var y = 0;
  var r0 = 0;
  var r1 = 0;
  cobegin
    { x = 1; r0 = y; }
    { y = 1; r1 = x; }
  coend;
}
|}

let sb_litmus_fenced =
  {|
proc main() {
  var x = 0;
  var y = 0;
  var r0 = 0;
  var r1 = 0;
  cobegin
    { x = 1; fence; r0 = y; }
    { y = 1; fence; r1 = x; }
  coend;
}
|}

(* Message-passing litmus (MP): data then flag.  TSO's FIFO buffer
   preserves the publication order; PSO reorders the two stores unless
   a fence sits between them. *)
let mp_litmus =
  {|
proc main() {
  var data = 0;
  var flagv = 0;
  cobegin
    { data = 1; flagv = 1; }
    { if (flagv == 1) { assert(data == 1); } }
  coend;
}
|}

let mp_litmus_fenced =
  {|
proc main() {
  var data = 0;
  var flagv = 0;
  cobegin
    { data = 1; fence; flagv = 1; }
    { if (flagv == 1) { assert(data == 1); } }
  coend;
}
|}

let finals_of model src = (Space.full (ctx_of_model model src)).Space.stats.Space.finals
let errors_of model src = (Space.full (ctx_of_model model src)).Space.stats.Space.errors

let litmus_tests =
  [
    case "SB: both-stale outcome appears under TSO, not SC" (fun () ->
        check_int "SC finals" 3 (finals_of Step.Sc sb_litmus);
        check_int "TSO finals" 4 (finals_of Step.Tso sb_litmus);
        check_int "PSO finals" 4 (finals_of Step.Pso sb_litmus));
    case "SB: fences drain the buffers and restore the SC outcomes"
      (fun () ->
        check_int "TSO finals" 3 (finals_of Step.Tso sb_litmus_fenced);
        check_int "PSO finals" 3 (finals_of Step.Pso sb_litmus_fenced));
    case "MP: TSO's FIFO buffer preserves store order, PSO breaks it"
      (fun () ->
        check_int "SC errors" 0 (errors_of Step.Sc mp_litmus);
        check_int "TSO errors" 0 (errors_of Step.Tso mp_litmus);
        check_bool "PSO sees stale data" true (errors_of Step.Pso mp_litmus > 0));
    case "MP: a store-store fence repairs PSO" (fun () ->
        check_int "PSO errors" 0 (errors_of Step.Pso mp_litmus_fenced));
    case "a process reads its own buffered write" (fun () ->
        (* Without read-own-write forwarding the assert would observe
           the stale shared store and fail. *)
        let src = {|
proc main() {
  var x = 0;
  x = 1;
  assert(x == 1);
  x = 2;
  x = 3;
  assert(x == 3);
}
|} in
        check_int "TSO errors" 0 (errors_of Step.Tso src);
        check_int "PSO errors" 0 (errors_of Step.Pso src));
    case "pending writes drain before termination" (fun () ->
        let src = {|
proc main() {
  var x = 0;
  x = 1;
}
|} in
        let sc = Space.full (ctx_of_model Step.Sc src) in
        List.iter
          (fun model ->
            let r = Space.full (ctx_of_model model src) in
            check_int "finals" 1 r.Space.stats.Space.finals;
            check_int "deadlocks" 0 r.Space.stats.Space.deadlocks;
            check_bool "final store matches SC" true
              (final_reprs r = final_reprs sc))
          [ Step.Tso; Step.Pso ]);
  ]

(* The protocol matrix: Peterson and Dekker depend on store-to-load
   order, so they break under both relaxed models; the fenced variants
   verify clean everywhere.  Counts pinned from the full engine. *)
let protocol_tests =
  [
    case "peterson violates mutual exclusion under TSO" (fun () ->
        check_counts "peterson/tso" (1246, 3071, 113, 4, 0, 104)
          (full_of Step.Tso "peterson"));
    case "peterson violates mutual exclusion under PSO" (fun () ->
        check_counts "peterson/pso" (6212, 22269, 784, 4, 0, 760)
          (full_of Step.Pso "peterson"));
    case "peterson_fenced verifies clean under all models" (fun () ->
        check_counts "peterson_fenced/sc" (108, 167, 11, 2, 0, 0)
          (full_of Step.Sc "peterson_fenced");
        check_counts "peterson_fenced/tso" (236, 429, 20, 2, 0, 0)
          (full_of Step.Tso "peterson_fenced");
        check_counts "peterson_fenced/pso" (236, 429, 20, 2, 0, 0)
          (full_of Step.Pso "peterson_fenced"));
    case "dekker verifies under SC, violates under TSO and PSO" (fun () ->
        check_counts "dekker/sc" (92, 145, 12, 2, 0, 0)
          (full_of Step.Sc "dekker");
        check_counts "dekker/tso" (1241, 3166, 115, 4, 0, 84)
          (full_of Step.Tso "dekker");
        check_counts "dekker/pso" (4750, 16862, 485, 4, 0, 330)
          (full_of Step.Pso "dekker"));
    case "dekker_fenced verifies clean under all models" (fun () ->
        check_counts "dekker_fenced/sc" (129, 212, 14, 2, 0, 0)
          (full_of Step.Sc "dekker_fenced");
        check_counts "dekker_fenced/tso" (285, 552, 22, 2, 0, 0)
          (full_of Step.Tso "dekker_fenced");
        check_counts "dekker_fenced/pso" (332, 663, 22, 2, 0, 0)
          (full_of Step.Pso "dekker_fenced"));
  ]

(* All engines must agree under the relaxed models: stubborn and sleep
   degenerate soundly (no pruning of flush interleavings), the parallel
   engine is schedule-independent on complete runs. *)
let engine_agreement_tests =
  let agree model name =
    let src = corpus_src name in
    let full = Space.full (ctx_of_model model src) in
    let stubborn = Stubborn.explore (ctx_of_model model src) in
    let sleep = Sleep.explore (ctx_of_model model src) in
    let par = Parallel.full ~jobs:4 (ctx_of_model model src) in
    check_bool "stubborn counts" true (counts stubborn = counts full);
    check_bool "sleep counts" true (counts sleep = counts full);
    (* max_frontier is schedule-dependent on the parallel engine *)
    let strip (c, t, _, f, d, e) = (c, t, f, d, e) in
    check_bool "parallel counts" true
      (strip (counts par) = strip (counts full));
    check_bool "stubborn stores" true (final_reprs stubborn = final_reprs full);
    check_bool "sleep stores" true (final_reprs sleep = final_reprs full);
    check_bool "parallel stores" true (final_reprs par = final_reprs full)
  in
  [
    case "engines agree on peterson under TSO" (fun () ->
        agree Step.Tso "peterson");
    case "engines agree on dekker_fenced under PSO" (fun () ->
        agree Step.Pso "dekker_fenced");
    case "engines agree on the SB litmus under PSO" (fun () ->
        let ctx () = ctx_of_model Step.Pso sb_litmus in
        let full = Space.full (ctx ()) in
        let stubborn = Stubborn.explore (ctx ()) in
        let sleep = Sleep.explore (ctx ()) in
        check_bool "stubborn" true (counts stubborn = counts full);
        check_bool "sleep" true (counts sleep = counts full));
  ]

(* The direct executors are the oracle for the relaxed engines too:
   every terminated execution's final store must be explored. *)
let exec_tests =
  [
    case "random TSO executions land in the explored finals" (fun () ->
        let explored =
          Space.final_store_reprs
            (Space.full (ctx_of_model Step.Tso sb_litmus))
        in
        for seed = 1 to 20 do
          match
            (Exec.run_random (ctx_of_model Step.Tso sb_litmus) ~seed)
              .Exec.outcome
          with
          | Exec.Terminated c ->
              check_bool "store explored" true
                (List.mem (Store.repr c.Config.store) explored)
          | _ -> Alcotest.fail "TSO execution did not terminate"
        done);
    case "round-robin PSO execution terminates" (fun () ->
        match
          (Exec.run_round_robin (ctx_of_model Step.Pso mp_litmus)).Exec.outcome
        with
        | Exec.Terminated _ -> ()
        | _ -> Alcotest.fail "PSO execution did not terminate");
  ]

(* Checkpointing of buffered configurations: format version 2 carries
   store buffers and binds the memory model into the identity hash. *)
let checkpoint_path () =
  Filename.temp_file "cobegin-mm-ckpt" ".bin"

let checkpoint_tests =
  [
    case "truncate + resume under TSO matches the clean run" (fun () ->
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let ctx () = ctx_of_model Step.Tso (corpus_src "peterson_fenced") in
            let clean = Space.full (ctx ()) in
            let cadence =
              { Checkpoint.every_configs = 16; every_s = None }
            in
            let first =
              Checkpoint.full ~max_configs:100 ~cadence ~path (ctx ())
            in
            check_bool "first run truncated" false
              (Budget.is_complete first.Space.status);
            let resumed = Checkpoint.resume ~cadence ~path (ctx ()) in
            check_bool "resumed complete" true
              (Budget.is_complete resumed.Space.status);
            check_bool "stats equal" true (counts resumed = counts clean);
            check_bool "stores equal" true
              (final_reprs resumed = final_reprs clean)));
    case "a checkpoint is bound to its memory model" (fun () ->
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            let src = corpus_src "mutex" in
            ignore (Checkpoint.full ~path (ctx_of_model Step.Tso src));
            (* same program, different model: refused *)
            match Checkpoint.resume ~path (ctx_of_model Step.Sc src) with
            | exception Checkpoint.Corrupt _ -> ()
            | _ -> Alcotest.fail "SC resume of a TSO checkpoint accepted"));
    case "version-1 checkpoint files are refused" (fun () ->
        let path = checkpoint_path () in
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
          (fun () ->
            (* Forge a file with the real magic but the pre-buffer
               format version.  The header is two immediate ints, so a
               structurally identical record marshals the same. *)
            let oc = open_out_bin path in
            output_string oc "COBEGIN-CKPT\n";
            Marshal.to_channel oc (1, 0) [];
            close_out oc;
            match
              Checkpoint.resume ~path (ctx_of_model Step.Sc (corpus_src "mutex"))
            with
            | exception Checkpoint.Corrupt msg ->
                check_bool "message names the version" true
                  (String.length msg > 0)
            | _ -> Alcotest.fail "version-1 file accepted"));
  ]

let suite =
  sc_pin_tests @ sc_action_tests @ litmus_tests @ protocol_tests
  @ engine_agreement_tests @ exec_tests @ checkpoint_tests
