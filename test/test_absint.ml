(* Abstract machine: precision on straight-line code, termination on
   loops via widening, folding hierarchy, soundness against the concrete
   engine. *)

open Cobegin_absint
open Helpers

let analyze ?(domain = Analyzer.Intervals) ?(folding = Machine.Control) src =
  Analyzer.analyze ~domain ~folding (parse src)

let basic_tests =
  [
    case "terminates on an unbounded-iteration loop" (fun () ->
        let s =
          analyze
            "proc main() { var i = 0; while (i < 100) { i = i + 1; } }"
        in
        check_bool "finite abstract space" true (s.Analyzer.abstract_configs > 0);
        check_int "no errors" 0 s.Analyzer.errors);
    case "terminates on a nondeterministic loop with cobegin" (fun () ->
        let s =
          analyze
            "proc main() { var s = 0; var i = 0; while (i < 10) { i = i + \
             1; cobegin { s = s + 1; } { s = s + 2; } coend; } }"
        in
        check_int "no errors" 0 s.Analyzer.errors;
        check_bool "widenings happened" true (s.Analyzer.widenings > 0));
    case "assert that always holds produces no abstract error" (fun () ->
        let s = analyze "proc main() { var x = 3; assert(x == 3); }" in
        check_int "none" 0 s.Analyzer.errors);
    case "assert that may fail produces an abstract error" (fun () ->
        let s =
          analyze
            "proc main() { var x = 0; cobegin { x = 1; } { x = 2; } coend; \
             assert(x == 1); }"
        in
        check_bool "flagged" true (s.Analyzer.errors > 0));
    case "branch refinement prunes an impossible branch" (fun () ->
        (* with refinement, x < 0 inside the then-branch is impossible *)
        let s =
          analyze
            "proc main() { var x = 5; if (x > 0) { assert(x > 0); } else { \
             skip; } }"
        in
        check_int "no false alarm" 0 s.Analyzer.errors);
    case "all four numeric domains run the figures" (fun () ->
        List.iter
          (fun (name, src) ->
            List.iter
              (fun domain ->
                let s = Analyzer.analyze ~domain (parse src) in
                check_bool
                  (name ^ " explored")
                  true
                  (s.Analyzer.abstract_configs > 0))
              [
                Analyzer.Intervals; Analyzer.Constants; Analyzer.Signs;
                Analyzer.Parities; Analyzer.Interval_parity;
              ])
          Cobegin_models.Figures.all_named);
  ]

let folding_tests =
  [
    case "folding hierarchy: exact >= control >= clan on the clan workload"
      (fun () ->
        let src = Cobegin_models.Figures.clan_workload 3 in
        let sizes =
          List.map
            (fun folding ->
              (Analyzer.analyze ~folding (parse src)).Analyzer.abstract_configs)
            [ Machine.Exact; Machine.Control; Machine.Clan ]
        in
        match sizes with
        | [ e; c; k ] ->
            check_bool "exact >= control" true (e >= c);
            check_bool "control >= clan" true (c >= k);
            check_bool "clan strictly folds" true (k < e)
        | _ -> assert false);
    case "clan folding beats control folding as branches multiply"
      (fun () ->
        (* McDowell's point: with k identical tasks the per-branch
           identity blows the space up; clans keep only the multiset of
           positions.  The advantage must grow with k. *)
        let size folding k =
          (Analyzer.analyze ~folding
             (parse (Cobegin_models.Figures.clan_workload k)))
            .Analyzer.abstract_configs
        in
        let ratio k =
          float_of_int (size Machine.Control k)
          /. float_of_int (size Machine.Clan k)
        in
        check_bool "clan smaller at k=3" true
          (size Machine.Clan 3 < size Machine.Control 3);
        check_bool "advantage grows" true (ratio 4 > ratio 2));
    case "control folding merges the fig3 dangling links" (fun () ->
        (* concretely the racing writes leave two result-configurations;
           the abstract machine folds them into one per control point *)
        let concrete = explore_full Cobegin_models.Figures.fig3 in
        let abstract = analyze Cobegin_models.Figures.fig3 in
        check_int "concrete finals" 2
          concrete.Cobegin_explore.Space.stats.Cobegin_explore.Space.finals;
        check_int "abstract finals" 1 abstract.Analyzer.finals);
  ]

(* Soundness: every concrete final store is covered by some abstract
   exploration's log/accesses — we check a weaker but meaningful
   corollary on random programs: the abstract engine never reports zero
   errors when the concrete engine finds an assertion failure. *)
let soundness_tests =
  [
    qtest ~count:20 "abstract errors over-approximate concrete errors"
      seed_gen
      (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 2;
          }
        in
        let prog = random_program ~cfg seed in
        let concrete =
          Cobegin_explore.Space.full ~max_configs:20_000
            (Cobegin_semantics.Step.make_ctx prog)
        in
        let abstract = Analyzer.analyze ~max_configs:20_000 prog in
        if
          not
            (Budget.is_complete concrete.Cobegin_explore.Space.status
            && Budget.is_complete abstract.Analyzer.status)
        then true
        else
          (* concrete error ⇒ abstract error *)
          concrete.Cobegin_explore.Space.stats.Cobegin_explore.Space.errors
          = 0
          || abstract.Analyzer.errors > 0);
    qtest ~count:20
      "abstract accesses cover concrete accesses (per site and kind)"
      seed_gen
      (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 2;
            with_loops = false;
          }
        in
        let prog = random_program ~cfg seed in
        let concrete =
          Cobegin_explore.Space.full ~max_configs:20_000
            (Cobegin_semantics.Step.make_ctx prog)
        in
        let abstract = Analyzer.analyze ~max_configs:20_000 prog in
        if
          not
            (Budget.is_complete concrete.Cobegin_explore.Space.status
            && Budget.is_complete abstract.Analyzer.status)
        then true
        else
            let alog = abstract.Analyzer.log in
            let abstract_pairs =
              List.map
                (fun (a : Alog.access) ->
                  (a.Alog.label, a.Alog.kind = Alog.Write))
                (Alog.accesses alog)
              |> List.sort_uniq compare
            in
            List.for_all
              (fun (a : Cobegin_semantics.Step.access) ->
                a.Cobegin_semantics.Step.a_label < 0
                || List.mem
                     ( a.Cobegin_semantics.Step.a_label,
                       a.Cobegin_semantics.Step.a_kind = `Write )
                     abstract_pairs)
              concrete.Cobegin_explore.Space.log.Cobegin_semantics.Step.accesses);
  ]

let machine_unit_tests =
  [
    case "interval machine computes a loop invariant" (fun () ->
        let module M = Analyzer.Interval_machine in
        let prog =
          parse "proc main() { var i = 0; while (i < 10) { i = i + 1; } }"
        in
        let ctx = M.make_ctx prog in
        let r = M.explore ~folding:Machine.Control ctx in
        (* the final store must bound i: 10 <= i (loop exit) *)
        check_bool "has final" true (r.M.final_stores <> []);
        let covers_ten =
          List.exists
            (fun store ->
              M.AM.exists
                (fun _ v ->
                  Cobegin_domains.Interval.contains
                    v.M.V.num 10)
                store)
            r.M.final_stores
        in
        check_bool "i may be 10 at exit" true covers_ten);
    case "indirect calls explore every callee" (fun () ->
        let s =
          analyze
            "proc a() { return 1; } proc b() { return 2; } proc main() { \
             var f = a; var c = 0; if (c == 0) { f = b; } var r = (f)(); \
             assert(r >= 1); }"
        in
        check_int "no errors" 0 s.Analyzer.errors);
    case "recursion is bounded by the call-depth parameter" (fun () ->
        (* the abstract machine cannot prove this recursion terminates
           (the parameter cell is weakly updated), so the depth bound
           kicks in and the analysis finishes, flagging the truncated
           path as a potential error *)
        let s =
          Analyzer.analyze ~k_pstring:3 ~max_call_depth:8
            ~max_configs:50_000
            (parse
               "proc f(n) { if (n <= 0) { return 0; } var r = f(n - 1); \
                return r; } proc main() { var x = f(3); }")
        in
        check_bool "finished" true (s.Analyzer.abstract_configs > 0));
  ]

(* Strong vs weak updates and the multi set. *)
let update_tests =
  [
    case "strong update: later assignment replaces the value" (fun () ->
        let s =
          analyze "proc main() { var x = 1; x = 2; assert(x == 2); }"
        in
        check_int "no false alarm" 0 s.Analyzer.errors);
    case "loop-allocated cell becomes multi: weak updates join" (fun () ->
        (* t is re-declared every iteration, so its abstract cell is
           multi; the assert on a specific iteration value cannot be
           proved and must be flagged as a possible failure *)
        let s =
          analyze
            "proc main() { var i = 0; while (i < 3) { var t = i; assert(t \
             == 0); i = i + 1; } }"
        in
        check_bool "possible failure reported" true (s.Analyzer.errors > 0));
    case "aliased writes through two pointers stay weak" (fun () ->
        (* both p and q may point to the same cell; writing through p
           must not strongly overwrite what q sees *)
        let s =
          analyze
            "proc main() { var a = malloc(1); var b = malloc(1); var p = a; \
             var c = 0; if (c == 1) { p = b; } *p = 5; var x = *a; \
             assert(x == 0 || x == 5); }"
        in
        check_int "no false alarm" 0 s.Analyzer.errors);
    case "heap cells from one site conflate (weak)" (fun () ->
        let s =
          analyze
            "proc main() { var i = 0; var p = malloc(1); while (i < 2) { p \
             = malloc(1); *p = i; i = i + 1; } }"
        in
        check_int "terminates, no errors" 0 s.Analyzer.errors);
    case "clan folding is exact on symmetric branches" (fun () ->
        (* same final verdicts as control folding on the clan workload *)
        let src = Cobegin_models.Figures.clan_workload 3 in
        let c = Analyzer.analyze ~folding:Machine.Control (parse src) in
        let k = Analyzer.analyze ~folding:Machine.Clan (parse src) in
        check_int "same errors" c.Analyzer.errors k.Analyzer.errors;
        check_bool "both reach a final" true
          (c.Analyzer.finals > 0 && k.Analyzer.finals > 0));
  ]

let suite =
  basic_tests @ folding_tests @ soundness_tests @ machine_unit_tests
  @ update_tests
