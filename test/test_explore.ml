(* State-space exploration: counts on the paper figures, equivalence of
   full and stubborn strategies, witness traces. *)

open Cobegin_explore
open Helpers

let figures = Cobegin_models.Figures.all_named

let count_tests =
  [
    case "fig2: three final outcomes, (0,0) impossible" (fun () ->
        let r = explore_full Cobegin_models.Figures.fig2 in
        check_int "finals" 3 r.Space.stats.Space.finals;
        check_int "deadlocks" 0 r.Space.stats.Space.deadlocks;
        check_int "errors" 0 r.Space.stats.Space.errors);
    case "fig5: stubborn sets shrink the space" (fun () ->
        let full = explore_full Cobegin_models.Figures.fig5 in
        let stub = explore_stubborn Cobegin_models.Figures.fig5 in
        check_bool "reduction" true
          (stub.Space.stats.Space.configurations
          < full.Space.stats.Space.configurations);
        check_bool "same finals" true (final_reprs full = final_reprs stub));
    case "fig3: two concrete result-configurations (the racing writes)"
      (fun () ->
        let r = explore_full Cobegin_models.Figures.fig3 in
        check_int "finals" 2 r.Space.stats.Space.finals);
    case "busywait: no errors under any interleaving" (fun () ->
        let r = explore_full Cobegin_models.Figures.busywait in
        check_int "errors" 0 r.Space.stats.Space.errors;
        check_int "deadlocks" 0 r.Space.stats.Space.deadlocks);
    case "mutex: assertion holds in all interleavings" (fun () ->
        let r = explore_full Cobegin_models.Figures.mutex in
        check_int "errors" 0 r.Space.stats.Space.errors;
        check_int "finals" 1 r.Space.stats.Space.finals);
    case "racy counter: a lost update is reachable" (fun () ->
        let r = explore_full Cobegin_models.Figures.mutex_racy in
        (* finals: count ∈ {1, 2} -> at least 2 distinct final stores *)
        check_bool "several outcomes" true (r.Space.stats.Space.finals >= 2));
    case "budget exhaustion truncates instead of raising" (fun () ->
        let r = explore_full ~max_configs:3 Cobegin_models.Figures.fig5 in
        check_bool "truncated" false (Budget.is_complete r.Space.status);
        check_bool "partial stats returned" true
          (r.Space.stats.Space.configurations > 0
          && r.Space.stats.Space.configurations <= 3));
    case "truncation stops the expansion mid-flight (pinned counts)"
      (fun () ->
        (* regression: the engine used to keep firing the remaining
           successors of the current expansion after the configuration
           guard tripped, inflating transitions and the event log past
           the stop.  Deterministic BFS order makes the exact counts at
           the truncation point stable. *)
        let r = explore_full ~max_configs:5 Cobegin_models.Figures.fig5 in
        check_bool "truncated" true
          (r.Space.status = Budget.Truncated (Budget.Configs 5));
        check_int "configurations pinned at the budget" 5
          r.Space.stats.Space.configurations;
        check_int "transitions stop with the guard" 4
          r.Space.stats.Space.transitions);
  ]

let all_figures_agree =
  [
    case "stubborn = full on all figures (finals + deadlocks)" (fun () ->
        List.iter
          (fun (name, src) ->
            let full = explore_full src in
            let stub = explore_stubborn src in
            check_bool (name ^ " finals") true
              (final_reprs full = final_reprs stub);
            check_int
              (name ^ " deadlocks")
              full.Space.stats.Space.deadlocks
              stub.Space.stats.Space.deadlocks;
            check_bool (name ^ " no bigger") true
              (stub.Space.stats.Space.configurations
              <= full.Space.stats.Space.configurations))
          figures);
  ]

let gen_cfg =
  {
    Cobegin_models.Generator.default_cfg with
    num_branches = 2;
    stmts_per_branch = 3;
  }

let property_tests =
  [
    qtest ~count:25 "stubborn finds exactly the full final stores" seed_gen
      (fun seed ->
        let prog = random_program ~cfg:gen_cfg seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let full = Space.full ~max_configs:20_000 ctx in
        let stub = Stubborn.explore ~max_configs:20_000 ctx in
        if
          not
            (Budget.is_complete full.Space.status
            && Budget.is_complete stub.Space.status)
        then true
        else
          final_reprs full = final_reprs stub
          && full.Space.stats.Space.deadlocks
             = stub.Space.stats.Space.deadlocks);
    qtest ~count:25 "stubborn never explores more configurations" seed_gen
      (fun seed ->
        let prog = random_program ~cfg:gen_cfg seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let full = Space.full ~max_configs:20_000 ctx in
        let stub = Stubborn.explore ~max_configs:20_000 ctx in
        if
          not
            (Budget.is_complete full.Space.status
            && Budget.is_complete stub.Space.status)
        then true
        else
          stub.Space.stats.Space.configurations
          <= full.Space.stats.Space.configurations);
    qtest ~count:20 "three-branch programs also agree"
      seed_gen
      (fun seed ->
        let cfg =
          {
            gen_cfg with
            Cobegin_models.Generator.num_branches = 3;
            stmts_per_branch = 2;
          }
        in
        let prog = random_program ~cfg seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let full = Space.full ~max_configs:20_000 ctx in
        let stub = Stubborn.explore ~max_configs:20_000 ctx in
        if
          not
            (Budget.is_complete full.Space.status
            && Budget.is_complete stub.Space.status)
        then true
        else final_reprs full = final_reprs stub);
  ]

let composition_tests =
  [
    qtest ~count:20 "coarsening composed with sleep sets preserves finals"
      seed_gen
      (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 3;
            with_procs = false;
          }
        in
        let prog = random_program ~cfg seed in
        let coarse = Cobegin_trans.Coarsen.program prog in
        let ctx p = Cobegin_semantics.Step.make_ctx p in
        let plain = Space.full ~max_configs:20_000 (ctx prog) in
        let reduced = Sleep.explore ~max_configs:20_000 (ctx coarse) in
        if
          not
            (Budget.is_complete plain.Space.status
            && Budget.is_complete reduced.Space.status)
        then true
        else
          (* coarsening changes store granularity only at intermediate
             states; final stores must agree exactly *)
          final_reprs plain = final_reprs reduced);
  ]

let forktree_tests =
  [
    case "fork-join tree: nested dynamic parallelism through recursion"
      (fun () ->
        (* 2^d leaves atomically bump a shared heap counter; the final
           assert checks the total, so zero errors means every
           interleaving preserved the count *)
        List.iter
          (fun d ->
            let r = explore_full (Cobegin_models.Figures.forktree d) in
            check_int
              (Printf.sprintf "depth %d errors" d)
              0 r.Space.stats.Space.errors;
            check_int (Printf.sprintf "depth %d finals" d) 1
              r.Space.stats.Space.finals)
          [ 1; 2 ]);
    case "fork-join tree: stubborn agrees and reduces" (fun () ->
        let full = explore_full (Cobegin_models.Figures.forktree 2) in
        let stub = explore_stubborn (Cobegin_models.Figures.forktree 2) in
        check_bool "same finals" true (final_reprs full = final_reprs stub);
        check_bool "reduced" true
          (stub.Space.stats.Space.configurations
          < full.Space.stats.Space.configurations));
  ]

let trace_tests =
  [
    case "witness schedule for a final outcome" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.mutex_racy in
        (* find a schedule producing the lost update (count = 1) *)
        let w =
          Trace.final_witness ctx ~pred:(fun store ->
              List.exists
                (fun (_, v) -> v = Cobegin_semantics.Value.Vint 1)
                (Cobegin_semantics.Store.bindings store))
        in
        match w with
        | Some w -> check_bool "nonempty schedule" true (w.Trace.schedule <> [])
        | None -> Alcotest.fail "no witness for the lost update");
    case "error witness on failing assertion" (fun () ->
        let src =
          "proc main() { var x = 0; cobegin { x = 1; } { assert(x == 0); } \
           coend; }"
        in
        match Trace.error_witness (ctx_of src) with
        | Some _ -> ()
        | None -> Alcotest.fail "expected an error witness");
    case "no witness when the predicate is unreachable" (fun () ->
        let w =
          Trace.search (ctx_of Cobegin_models.Figures.fig3) ~pred:(fun _ ->
              false)
        in
        check_bool "none" true (w = None));
  ]

let sleep_tests =
  [
    case "sleep sets agree with full on every figure" (fun () ->
        List.iter
          (fun (name, src) ->
            let full = explore_full src in
            let slp = Sleep.explore (ctx_of src) in
            check_bool (name ^ " finals") true
              (final_reprs full = final_reprs slp);
            check_int
              (name ^ " deadlocks")
              full.Space.stats.Space.deadlocks
              slp.Space.stats.Space.deadlocks)
          figures);
    case "sleep sets cut transitions below stubborn on fig5" (fun () ->
        let stub = explore_stubborn Cobegin_models.Figures.fig5 in
        let slp = Sleep.explore (ctx_of Cobegin_models.Figures.fig5) in
        check_bool "fewer or equal transitions" true
          (slp.Space.stats.Space.transitions
          <= stub.Space.stats.Space.transitions));
    qtest ~count:25 "sleep sets find exactly the full final stores" seed_gen
      (fun seed ->
        let prog = random_program ~cfg:gen_cfg seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let full = Space.full ~max_configs:20_000 ctx in
        let slp = Sleep.explore ~max_configs:20_000 ctx in
        if
          not
            (Budget.is_complete full.Space.status
            && Budget.is_complete slp.Space.status)
        then true
        else
          final_reprs full = final_reprs slp
          && full.Space.stats.Space.deadlocks
             = slp.Space.stats.Space.deadlocks);
  ]

let replay_tests =
  [
    case "replaying a witness reproduces its target" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.mutex_racy in
        match
          Trace.final_witness ctx ~pred:(fun store ->
              List.exists
                (fun (_, v) -> v = Cobegin_semantics.Value.Vint 1)
                (Cobegin_semantics.Store.bindings store))
        with
        | None -> Alcotest.fail "no witness"
        | Some w -> (
            match Cobegin_semantics.Replay.replay ctx w.Trace.schedule with
            | Cobegin_semantics.Replay.Replayed c ->
                check_bool "same store" true
                  (Cobegin_semantics.Store.equal
                     c.Cobegin_semantics.Config.store
                     w.Trace.target.Cobegin_semantics.Config.store)
            | Cobegin_semantics.Replay.Stuck (e, _) ->
                Alcotest.failf "stuck: %a"
                  Cobegin_semantics.Replay.pp_step_error e));
    case "replaying a bogus schedule reports the bad step" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.fig2 in
        match Cobegin_semantics.Replay.replay ctx [ [ (999, 0) ] ] with
        | Cobegin_semantics.Replay.Stuck
            (Cobegin_semantics.Replay.Pid_not_found (_, 0), _) ->
            ()
        | _ -> Alcotest.fail "expected Pid_not_found at step 0");
    qtest ~count:20 "every error witness replays to the error" seed_gen
      (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 2;
          }
        in
        let prog = random_program ~cfg seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        match Trace.error_witness ~max_configs:20_000 ctx with
        | None -> true
        | Some w -> (
            match Cobegin_semantics.Replay.replay ctx w.Trace.schedule with
            | Cobegin_semantics.Replay.Replayed c ->
                Cobegin_semantics.Config.is_error c
            | Cobegin_semantics.Replay.Stuck _ -> false));
  ]

(* Continuation summaries (Mayaccess): the soundness ingredient of the
   stubborn reduction. *)
let mayaccess_tests =
  let module Sem = Cobegin_semantics in
  (* fire actions until [n] processes are enabled, then return them with
     the configuration *)
  let spawn src =
    let prog = Helpers.parse src in
    let ctx = Sem.Step.make_ctx prog in
    let rec go c =
      match Sem.Step.enabled_processes ctx c with
      | [ p ] ->
          let c', _ = Sem.Step.fire ctx c p in
          go c'
      | ps -> (ctx, prog, c, ps)
    in
    go (Sem.Step.init ctx)
  in
  [
    case "unresolved (fresh) names are conflict-free" (fun () ->
        (* branch 1 only touches a variable it has yet to declare: its
           future summary resolves no location at all, so it cannot
           conflict with the sibling's write *)
        let ctx, prog, c, ps =
          spawn
            "proc main() { var a = 0; cobegin { var x = 5; x = x + 1; } { a \
             = 2; } coend; }"
        in
        let mctx = Mayaccess.make_ctx prog in
        let fresh =
          List.find
            (fun p ->
              match Sem.Proc.next_stmt p with
              | Some { Cobegin_lang.Ast.kind = Cobegin_lang.Ast.Sdecl _; _ }
                ->
                  true
              | _ -> false)
            ps
        in
        let writer = List.find (fun p -> p != fresh) ps in
        let summary = Mayaccess.of_process mctx fresh in
        check_bool "no resolved reads" true
          (Sem.Value.LocSet.is_empty summary.Mayaccess.freads);
        check_bool "no resolved writes" true
          (Sem.Value.LocSet.is_empty summary.Mayaccess.fwrites);
        check_bool "no memory token" true
          ((not summary.Mayaccess.mem_read)
          && not summary.Mayaccess.mem_write);
        let fp = Sem.Step.action_footprint ctx c writer in
        check_bool "sibling's write does not conflict" false
          (Mayaccess.conflicts_footprint c.Sem.Config.store fp summary));
    case "pointer accesses concretize to address-taken variables" (fun () ->
        let ctx, prog, c, ps =
          spawn
            "proc main() { var a = 0; var p = &a; cobegin { *p = 1; } { var \
             t = a; t = t + 1; } coend; }"
        in
        let mctx = Mayaccess.make_ctx prog in
        let deref =
          List.find
            (fun p ->
              match Sem.Proc.next_stmt p with
              | Some
                  {
                    Cobegin_lang.Ast.kind =
                      Cobegin_lang.Ast.Sassign (Cobegin_lang.Ast.Lderef _, _);
                    _;
                  } ->
                  true
              | _ -> false)
            ps
        in
        let reader = List.find (fun p -> p != deref) ps in
        let summary = Mayaccess.of_process mctx deref in
        check_bool "memory token set" true summary.Mayaccess.mem_write;
        (* the sibling reads [a], whose address is taken: the memory
           token must cover that location *)
        let fp = Sem.Step.action_footprint ctx c reader in
        check_bool "read of the address-taken cell conflicts" true
          (Mayaccess.conflicts_footprint c.Sem.Config.store fp summary));
  ]

let suite =
  count_tests @ all_figures_agree @ property_tests @ composition_tests
  @ forktree_tests @ trace_tests @ sleep_tests @ replay_tests
  @ mayaccess_tests
