(* The multi-domain exploration engine and the thread-safety layer
   under it.

   (a) cross-engine equivalence: on every corpus model and on random
       programs, a complete parallel run reports the same
       configuration/transition/terminal counts and the same
       final-store multiset as the sequential engine (max_frontier is
       schedule-dependent and excluded);
   (b) the interning layer keeps ids sequential and stable when hammered
       from several domains at once;
   (c) budget truncation fires once across domains: one latched reason,
       observed identically by every caller;
   (d) truncated runs classify the admitted-but-unexpanded frontier, so
       terminal counts are not undercounted (regression: they used to
       be);
   (e) the stats printers include max_frontier (regression: they
       omitted it). *)

open Cobegin_explore
open Helpers

let agree_except_frontier (seq : Space.result) (par : Space.result) =
  let s = seq.Space.stats and p = par.Space.stats in
  s.Space.configurations = p.Space.configurations
  && s.Space.transitions = p.Space.transitions
  && s.Space.finals = p.Space.finals
  && s.Space.deadlocks = p.Space.deadlocks
  && s.Space.errors = p.Space.errors
  && final_reprs seq = final_reprs par

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let equivalence_tests =
  [
    case "parallel agrees with sequential on every corpus model" (fun () ->
        List.iter
          (fun (name, src) ->
            let ctx = ctx_of src in
            let seq = Space.full ctx in
            check_bool (name ^ " sequential complete") true
              (Budget.is_complete seq.Space.status);
            List.iter
              (fun jobs ->
                let par = Parallel.full ~jobs ctx in
                check_bool
                  (Printf.sprintf "%s parallel complete (jobs=%d)" name jobs)
                  true
                  (Budget.is_complete par.Space.status);
                check_bool
                  (Printf.sprintf "%s counts agree (jobs=%d)" name jobs)
                  true
                  (agree_except_frontier seq par))
              [ 2; 4 ])
          Cobegin_models.Corpus.all);
    case "jobs=1 delegates to the sequential engine" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.fig5 in
        let seq = Space.full ctx in
        let one = Parallel.full ~jobs:1 ctx in
        check_bool "identical stats (including max_frontier)" true
          (seq.Space.stats = one.Space.stats));
    qtest ~count:20 "parallel agrees with sequential on random programs"
      seed_gen (fun seed ->
        let prog = random_program seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        let seq = Space.full ctx in
        let par = Parallel.full ~jobs:2 ctx in
        Budget.is_complete seq.Space.status
        && Budget.is_complete par.Space.status
        && agree_except_frontier seq par);
  ]

(* A fresh pool hammered from four domains: ids must stay sequential
   (0..n-1, each exactly once) and stable (re-interning returns the
   same id). *)
module IntPool = Cobegin_hash.Pool (struct
  type t = int

  let equal = Int.equal
  let hash = Cobegin_hash.hash_int
end)

let intern_tests =
  [
    case "pool ids stay sequential and stable across 4 domains" (fun () ->
        let pool = IntPool.create 64 in
        let n = 100 in
        let keys w = List.init n (fun i -> (i + (w * 17)) mod n) in
        let domains =
          List.init 4 (fun w ->
              Domain.spawn (fun () ->
                  List.map (fun k -> (k, IntPool.intern pool k)) (keys w)))
        in
        let assignments = List.concat_map Domain.join domains in
        check_int "every distinct key got an id" n (IntPool.size pool);
        List.iter
          (fun (k, id) ->
            check_bool "id in range" true (id >= 0 && id < n);
            check_int
              (Printf.sprintf "key %d stable on re-intern" k)
              id (IntPool.intern pool k))
          assignments;
        (* same key, same id — across whatever domain interned it *)
        List.iter
          (fun (k, id) ->
            List.iter
              (fun (k', id') -> if k = k' then check_int "agree" id id')
              assignments)
          assignments);
    case "digests computed from 4 domains agree and ids stay put" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.fig5 in
        let seq = Space.full ctx in
        let configs =
          seq.Space.final_configs @ seq.Space.deadlock_configs
          |> fun l -> if l = [] then [ Cobegin_semantics.Step.init ctx ] else l
        in
        let st = Cobegin_semantics.Intern.global () in
        let procs0 = Cobegin_semantics.Intern.distinct_procs st in
        let stores0 = Cobegin_semantics.Intern.distinct_stores st in
        let domains =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  List.map Cobegin_semantics.Config.digest configs))
        in
        let per_domain = List.map Domain.join domains in
        (match per_domain with
        | first :: rest ->
            List.iter
              (fun ds ->
                List.iter2
                  (fun a b ->
                    check_bool "digest equal across domains" true
                      (Cobegin_semantics.Config.digest_equal a b))
                  first ds)
              rest
        | [] -> assert false);
        (* everything was already interned: re-digesting from four
           domains must not have grown the pools *)
        check_int "proc pool unchanged" procs0
          (Cobegin_semantics.Intern.distinct_procs st);
        check_int "store pool unchanged" stores0
          (Cobegin_semantics.Intern.distinct_stores st));
  ]

let truncation_tests =
  [
    case "shared budget latches one reason across 4 domains" (fun () ->
        let b =
          Budget.create ~max_configs:10 ~max_transitions:7 ~shared:true ()
        in
        let domains =
          List.init 4 (fun w ->
              Domain.spawn (fun () ->
                  (* half the domains would trip the transition limit
                     first, half the configuration limit: the latch must
                     make them all report the same winner *)
                  let configs = if w mod 2 = 0 then 50 else 0 in
                  let transitions = if w mod 2 = 0 then 0 else 50 in
                  List.init 25 (fun _ -> Budget.check b ~configs ~transitions)))
        in
        let observed =
          List.concat_map Domain.join domains |> List.filter_map Fun.id
        in
        check_bool "every check fired" true (List.length observed = 100);
        match Budget.tripped b with
        | None -> Alcotest.fail "no reason latched"
        | Some r ->
            List.iter
              (fun r' ->
                check_bool "all observations equal the latched reason" true
                  (r' = r))
              observed);
    case "parallel truncation reports one recorded reason" (fun () ->
        let budget = Budget.create ~max_configs:50 ~shared:true () in
        let ctx = ctx_of (Cobegin_models.Philosophers.program ~rounds:1 3) in
        let r = Parallel.full ~jobs:4 ~budget ctx in
        (match r.Space.status with
        | Budget.Truncated (Budget.Configs 50) -> ()
        | Budget.Truncated _ -> Alcotest.fail "wrong truncation reason"
        | Budget.Complete -> Alcotest.fail "expected truncation");
        check_bool "budget latched the same reason" true
          (Budget.tripped budget = Some (Budget.Configs 50)));
  ]

(* Truncating at exactly the complete run's configuration count admits
   every reachable configuration, then trips on the next pop — so with
   the frontier-drain fix the terminal counts must equal the complete
   run's.  Before the fix the queued terminals were silently dropped. *)
let drain_tests =
  let counts (s : Space.stats) = (s.Space.finals, s.Space.deadlocks, s.Space.errors) in
  [
    case "truncated Space run classifies the queued terminals" (fun () ->
        List.iter
          (fun src ->
            let ctx = ctx_of src in
            let full = Space.full ctx in
            let n = full.Space.stats.Space.configurations in
            let trunc = Space.full ~max_configs:n ctx in
            (match trunc.Space.status with
            | Budget.Truncated (Budget.Configs _) -> ()
            | _ -> Alcotest.fail "expected a configuration truncation");
            check_int "all configurations admitted" n
              trunc.Space.stats.Space.configurations;
            check_bool "terminal counts match the complete run" true
              (counts full.Space.stats = counts trunc.Space.stats))
          [
            Cobegin_models.Figures.fig5;
            Cobegin_models.Philosophers.program ~rounds:1 2;
          ]);
    case "truncated Sleep run classifies the queued terminals" (fun () ->
        let src = Cobegin_models.Philosophers.program ~rounds:1 2 in
        let full = Sleep.explore (ctx_of src) in
        let n = full.Space.stats.Space.configurations in
        let trunc = Sleep.explore ~max_configs:n (ctx_of src) in
        (match trunc.Space.status with
        | Budget.Truncated (Budget.Configs _) -> ()
        | _ -> Alcotest.fail "expected a configuration truncation");
        check_bool "terminal counts match the complete run" true
          (counts full.Space.stats = counts trunc.Space.stats));
    case "truncated Reach run counts the queued deadlocks" (fun () ->
        let net = Cobegin_models.Philosophers.net 3 in
        let full = Cobegin_petri.Reach.full net in
        let n = full.Cobegin_petri.Reach.stats.Cobegin_petri.Reach.states in
        let trunc = Cobegin_petri.Reach.full ~max_states:n net in
        (match trunc.Cobegin_petri.Reach.status with
        | Budget.Truncated (Budget.Configs _) -> ()
        | _ -> Alcotest.fail "expected a state truncation");
        check_int "deadlock count matches the complete run"
          full.Cobegin_petri.Reach.stats.Cobegin_petri.Reach.deadlocks
          trunc.Cobegin_petri.Reach.stats.Cobegin_petri.Reach.deadlocks);
  ]

let pp_tests =
  [
    case "Space.pp_stats prints max_frontier" (fun () ->
        let r = explore_full Cobegin_models.Figures.fig5 in
        let s = Format.asprintf "%a" Space.pp_stats r.Space.stats in
        check_bool "max_frontier present" true (contains s "max_frontier="));
    case "Reach.pp_stats prints max_frontier" (fun () ->
        let r = Cobegin_petri.Reach.full (Cobegin_models.Philosophers.net 2) in
        let s =
          Format.asprintf "%a" Cobegin_petri.Reach.pp_stats
            r.Cobegin_petri.Reach.stats
        in
        check_bool "max_frontier present" true (contains s "max_frontier="));
    case "the coanalyze report text carries max_frontier" (fun () ->
        let report =
          Cobegin_core.Pipeline.analyze_source Cobegin_models.Figures.fig2
        in
        let s =
          Format.asprintf "%a" Cobegin_core.Pipeline.pp_report report
        in
        check_bool "max_frontier present" true (contains s "max_frontier="));
  ]

let suite =
  equivalence_tests @ intern_tests @ truncation_tests @ drain_tests
  @ pp_tests
