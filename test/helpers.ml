(* Shared helpers for the test suites. *)

open Cobegin_lang

let parse src =
  let prog = Parser.parse_string src in
  Check.check_exn prog;
  prog

let ctx_of src = Cobegin_semantics.Step.make_ctx (parse src)

let explore_full ?max_configs src =
  Cobegin_explore.Space.full ?max_configs (ctx_of src)

let explore_stubborn ?max_configs src =
  Cobegin_explore.Stubborn.explore ?max_configs (ctx_of src)

(* qcheck case registered under alcotest. *)
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Generator of small random ints. *)
let small_int = QCheck2.Gen.int_range (-20) 20

(* Random seed for program generation. *)
let seed_gen = QCheck2.Gen.int_range 1 1_000_000

(* Small random terminating cobegin programs. *)
let random_program ?(cfg = Cobegin_models.Generator.default_cfg) seed =
  Cobegin_models.Generator.program ~cfg ~seed ()

(* Sorted outcome multiset of an exploration: final stores canonically. *)
let final_reprs (r : Cobegin_explore.Space.result) =
  Cobegin_explore.Space.final_store_reprs r

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f

(* A minimal JSON validity checker (the container ships no JSON
   library): recursive descent over the grammar, accepting iff the whole
   input is one well-formed value.  Shared by the obs and report suites
   — every JSON artifact the framework emits round-trips through it. *)
let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail := true
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let continue = ref true in
      while !continue && not !fail do
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            continue := false
        | _ ->
            fail := true;
            continue := false
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let continue = ref true in
      while !continue && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            continue := false
        | _ ->
            fail := true;
            continue := false
      done
    end
  and str () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      if !pos >= n then fail := true
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            closed := true
        | '\\' -> pos := !pos + 2
        | c when Char.code c < 0x20 -> fail := true
        | _ -> incr pos
    done
  and keyword () =
    let kw w =
      if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
      then pos := !pos + String.length w
      else fail := true
    in
    match peek () with
    | Some 't' -> kw "true"
    | Some 'f' -> kw "false"
    | _ -> kw "null"
  and number () =
    if peek () = Some '-' then incr pos;
    let digits = ref 0 in
    let eat_digits () =
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        incr pos;
        incr digits
      done
    in
    eat_digits ();
    if !digits = 0 then fail := true;
    if peek () = Some '.' then begin
      incr pos;
      digits := 0;
      eat_digits ();
      if !digits = 0 then fail := true
    end;
    match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits := 0;
        eat_digits ();
        if !digits = 0 then fail := true
    | _ -> ()
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0
