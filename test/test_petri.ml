(* Petri-net substrate: semantics, reachability, Valmari stubborn sets. *)

open Cobegin_petri
open Helpers

let tiny_net () =
  (* p0 --t0--> p1 --t1--> p2, independent q0 --u0--> q1 *)
  let b = Net.Builder.create () in
  let p0 = Net.Builder.add_place b "p0" 1 in
  let p1 = Net.Builder.add_place b "p1" 0 in
  let p2 = Net.Builder.add_place b "p2" 0 in
  let q0 = Net.Builder.add_place b "q0" 1 in
  let q1 = Net.Builder.add_place b "q1" 0 in
  ignore (Net.Builder.add_transition b "t0" ~pre:[ (p0, 1) ] ~post:[ (p1, 1) ]);
  ignore (Net.Builder.add_transition b "t1" ~pre:[ (p1, 1) ] ~post:[ (p2, 1) ]);
  ignore (Net.Builder.add_transition b "u0" ~pre:[ (q0, 1) ] ~post:[ (q1, 1) ]);
  Net.Builder.build b

let unit_tests =
  [
    case "enabling and firing" (fun () ->
        let net = tiny_net () in
        let m = Net.initial_marking net in
        let t0 = Net.transition net 0 in
        check_bool "t0 enabled" true (Net.enabled m t0);
        let m' = Net.fire m t0 in
        check_int "token moved" 1 m'.(1);
        check_int "source emptied" 0 m'.(0));
    case "firing disabled transition is rejected" (fun () ->
        let net = tiny_net () in
        let m = Net.initial_marking net in
        let t1 = Net.transition net 1 in
        check_bool "disabled" false (Net.enabled m t1);
        match Net.fire m t1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    case "full reachability of the tiny net" (fun () ->
        let r = Reach.full (tiny_net ()) in
        (* 3 positions for p × 2 for q = 6 markings *)
        check_int "states" 6 r.Reach.stats.Reach.states;
        check_int "deadlocks" 1 r.Reach.stats.Reach.deadlocks);
    case "stubborn reachability reaches the same deadlock" (fun () ->
        let f = Reach.full (tiny_net ()) in
        let s = Reach.stubborn (tiny_net ()) in
        check_bool "fewer or equal states" true
          (s.Reach.stats.Reach.states <= f.Reach.stats.Reach.states);
        check_bool "same deadlocks" true
          (List.sort compare (List.map Array.to_list f.Reach.deadlock_markings)
          = List.sort compare (List.map Array.to_list s.Reach.deadlock_markings)));
    case "weighted arcs" (fun () ->
        let b = Net.Builder.create () in
        let p = Net.Builder.add_place b "p" 3 in
        let q = Net.Builder.add_place b "q" 0 in
        ignore
          (Net.Builder.add_transition b "t" ~pre:[ (p, 2) ] ~post:[ (q, 1) ]);
        let net = Net.Builder.build b in
        let r = Reach.full net in
        (* 3 tokens -> fire once -> 1 token left, disabled: 2 states *)
        check_int "states" 2 r.Reach.stats.Reach.states);
  ]

let philosophers_tests =
  [
    case "philosophers net has the circular-wait deadlock" (fun () ->
        let r = Reach.full (Cobegin_models.Philosophers.net 3) in
        check_int "exactly one deadlock" 1 r.Reach.stats.Reach.deadlocks);
    case "ordered philosophers never deadlock" (fun () ->
        let r = Reach.full (Cobegin_models.Philosophers.net_ordered 3) in
        check_int "none" 0 r.Reach.stats.Reach.deadlocks);
    case "stubborn preserves the philosophers deadlock (n = 2..5)" (fun () ->
        List.iter
          (fun n ->
            let net = Cobegin_models.Philosophers.net n in
            let f = Reach.full net in
            let s = Reach.stubborn net in
            check_int
              (Printf.sprintf "n=%d deadlocks" n)
              f.Reach.stats.Reach.deadlocks s.Reach.stats.Reach.deadlocks;
            check_bool
              (Printf.sprintf "n=%d reduced" n)
              true
              (s.Reach.stats.Reach.states <= f.Reach.stats.Reach.states))
          [ 2; 3; 4; 5 ]);
    case "stubborn reduction grows with n" (fun () ->
        (* the ratio full/stubborn must increase from n=3 to n=6 —
           the shape of the exponential-vs-polynomial claim *)
        let ratio n =
          let net = Cobegin_models.Philosophers.net n in
          let f = Reach.full net in
          let s = Reach.stubborn net in
          float_of_int f.Reach.stats.Reach.states
          /. float_of_int s.Reach.stats.Reach.states
        in
        check_bool "ratio increases" true (ratio 6 > ratio 3));
  ]

(* Random 1-safe-ish nets: stubborn exploration preserves deadlocks. *)
let random_net_gen =
  let open QCheck2.Gen in
  let* nplaces = int_range 3 6 in
  let* ntrans = int_range 2 6 in
  let* marked = int_range 1 nplaces in
  let place = int_range 0 (nplaces - 1) in
  let* trans =
    list_size (return ntrans)
      (pair (list_size (1 -- 2) place) (list_size (0 -- 2) place))
  in
  return (nplaces, marked, trans)

let random_tests =
  [
    qtest ~count:60 "stubborn preserves deadlocks on random nets"
      random_net_gen
      (fun (nplaces, marked, trans) ->
        let b = Net.Builder.create () in
        for i = 0 to nplaces - 1 do
          ignore
            (Net.Builder.add_place b
               (Printf.sprintf "p%d" i)
               (if i < marked then 1 else 0))
        done;
        List.iteri
          (fun i (pre, post) ->
            let dedup l = List.sort_uniq compare l in
            let pre = dedup pre in
            (* token conservation: |post| <= |pre| keeps the net bounded *)
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | x :: tl -> x :: take (n - 1) tl
            in
            let post = take (List.length pre) (dedup post) in
            ignore
              (Net.Builder.add_transition b
                 (Printf.sprintf "t%d" i)
                 ~pre:(List.map (fun p -> (p, 1)) pre)
                 ~post:(List.map (fun p -> (p, 1)) post)))
          trans;
        let net = Net.Builder.build b in
        let f = Reach.full ~max_states:30_000 net in
        let s = Reach.stubborn ~max_states:30_000 net in
        if
          not
            (Budget.is_complete f.Reach.status
            && Budget.is_complete s.Reach.status)
        then true
        else
          List.sort compare (List.map Array.to_list f.Reach.deadlock_markings)
          = List.sort compare (List.map Array.to_list s.Reach.deadlock_markings));
  ]

let suite = unit_tests @ philosophers_tests @ random_tests
