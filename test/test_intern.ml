(* Hash-consed digests (Intern / Config.digest): equality semantics
   across interleavings, digest-vs-repr cardinality, distribution of the
   full-width hash, and the truncated-generic-hash regressions. *)

open Cobegin_semantics
open Helpers

let diamond_src =
  "proc main() { var x = 0; var y = 0; cobegin { x = 1; } { y = 2; } \
   coend; }"

(* Step through the sequential prefix until several processes run. *)
let rec advance ctx c =
  match Step.enabled_processes ctx c with
  | [ p ] when Config.num_procs c = 1 -> advance ctx (fst (Step.fire ctx c p))
  | ps -> (c, ps)

let fire_pid ctx c pid =
  let p =
    List.find
      (fun (q : Proc.t) -> q.Proc.pid = pid)
      (Step.enabled_processes ctx c)
  in
  fst (Step.fire ctx c p)

(* Manual BFS that keys the visited set by [Config.repr] (ground truth)
   and inserts every newly visited configuration's digest on the side:
   equal cardinality means digests are injective on distinct reprs. *)
let bfs_digests src =
  let ctx = ctx_of src in
  let reprs = Hashtbl.create 64 in
  let digests = Config.Digest_tbl.create 64 in
  let queue = Queue.create () in
  let visit c =
    let r = Config.repr c in
    if not (Hashtbl.mem reprs r) then begin
      Hashtbl.replace reprs r ();
      Config.Digest_tbl.replace digests (Config.digest c) ();
      Queue.add c queue
    end
  in
  visit (Step.init ctx);
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter
      (fun p -> visit (fst (Step.fire ctx c p)))
      (Step.enabled_processes ctx c)
  done;
  ( Hashtbl.length reprs,
    Config.Digest_tbl.length digests,
    Config.Digest_tbl.fold (fun d () acc -> d :: acc) digests [] )

let digest_tests =
  [
    case "two interleavings of independent writes reach equal digests"
      (fun () ->
        let ctx = ctx_of diamond_src in
        let c, ps = advance ctx (Step.init ctx) in
        match ps with
        | p1 :: p2 :: _ ->
            let c12 = fire_pid ctx (fire_pid ctx c p1.Proc.pid) p2.Proc.pid in
            let c21 = fire_pid ctx (fire_pid ctx c p2.Proc.pid) p1.Proc.pid in
            check_bool "reprs equal (ground truth)" true
              (Config.repr c12 = Config.repr c21);
            check_bool "digests equal" true
              (Config.digest_equal (Config.digest c12) (Config.digest c21));
            check_int "hashes equal"
              (Config.digest_hash (Config.digest c12))
              (Config.digest_hash (Config.digest c21));
            check_bool "Config.equal agrees" true (Config.equal c12 c21)
        | _ -> Alcotest.fail "expected two forked processes");
    case "digest cardinality matches repr cardinality (fig5, peterson)"
      (fun () ->
        List.iter
          (fun (name, src) ->
            let nr, nd, _ = bfs_digests src in
            check_int (name ^ " cardinality") nr nd)
          [
            ("fig5", Cobegin_models.Figures.fig5);
            ("peterson", Cobegin_models.Protocols.peterson);
            ("phil-2", Cobegin_models.Philosophers.program ~rounds:1 2);
          ]);
    case "interning is idempotent across re-serialization" (fun () ->
        let ctx = ctx_of diamond_src in
        let c0 = Step.init ctx in
        let st = Intern.create () in
        List.iter
          (fun p ->
            check_int "same proc id" (Intern.proc_id st p)
              (Intern.proc_id st p))
          (Config.processes c0);
        check_int "same store id"
          (Intern.store_id st c0.Config.store)
          (Intern.store_id st c0.Config.store);
        check_int "error None is -1" (-1) (Intern.error_id st None);
        check_bool "pools stay small" true (Intern.distinct_procs st <= 1))
  ]

let distribution_tests =
  [
    case "full-width hash spreads the philosophers state space" (fun () ->
        let _, n, digests =
          bfs_digests (Cobegin_models.Philosophers.program 3)
        in
        let m =
          let rec up k = if k >= 2 * n then k else up (2 * k) in
          up 64
        in
        let buckets = Array.make m 0 in
        List.iter
          (fun d ->
            let i = Config.digest_hash d land (m - 1) in
            buckets.(i) <- buckets.(i) + 1)
          digests;
        let worst = Array.fold_left max 0 buckets in
        (* at load factor <= 1/2 a healthy hash keeps chains tiny; the
           truncated generic hash produced chains of hundreds here *)
        check_bool
          (Printf.sprintf "max bucket %d <= 8 over %d states" worst n)
          true (worst <= 8));
    case "marking hash is sensitive beyond the generic-hash horizon"
      (fun () ->
        let a = Array.make 20 1 in
        let b = Array.copy a in
        b.(15) <- 2;
        check_bool "generic hash collides (the bug)" true
          (Hashtbl.hash (Array.to_list a) = Hashtbl.hash (Array.to_list b));
        check_bool "full-width hash differs" true
          (Cobegin_hash.hash_int_array a <> Cobegin_hash.hash_int_array b));
  ]

let phys_memo_tests =
  [
    case "deep memo keys survive only under a full-width hash" (fun () ->
        (* Keys that differ past the generic hash's ~10-node horizon all
           land in one bucket, whose cap then evicts live entries — the
           Phys_memo regression.  A full-width hash keeps every key. *)
        let deep k = List.init 30 (fun i -> if i = 25 then k else i) in
        let keys = Array.init 64 deep in
        check_bool "generic hash collides on deep keys (the bug)" true
          (Hashtbl.hash keys.(0) = Hashtbl.hash keys.(1));
        let hits memo =
          Array.iteri (fun i k -> Cobegin_hash.Phys_memo.add memo k i) keys;
          Array.fold_left
            (fun n k ->
              match Cobegin_hash.Phys_memo.find memo k with
              | Some _ -> n + 1
              | None -> n)
            0 keys
        in
        let generic = Cobegin_hash.Phys_memo.create 64 in
        let full_width =
          Cobegin_hash.Phys_memo.create
            ~hash:(fun l -> Cobegin_hash.hash_int_array (Array.of_list l))
            64
        in
        check_bool "bucket cap evicts under the generic hash" true
          (hits generic < Array.length keys);
        check_int "every key retained under the full-width hash"
          (Array.length keys) (hits full_width));
  ]

let repr_audit_tests =
  [
    case "statement labels stay unique across the coarsened corpus"
      (fun () ->
        List.iter
          (fun (name, src) ->
            let p = Cobegin_trans.Coarsen.program (parse src) in
            let ls = Cobegin_lang.Ast.labels p in
            check_int
              (name ^ ": labels unique after coarsening")
              (List.length ls)
              (List.length (List.sort_uniq compare ls)))
          Cobegin_models.Corpus.all);
    case "pending returns distinguish call site and destination" (fun () ->
        let open Cobegin_lang in
        let mk ~site ~dest =
          Proc.item_repr (Proc.Iret { dest; saved_env = Env.empty; site })
        in
        check_bool "sites distinguish" true
          (mk ~site:1 ~dest:None <> mk ~site:2 ~dest:None);
        check_bool "destinations distinguish" true
          (mk ~site:1 ~dest:(Some (Ast.Lvar "x"))
          <> mk ~site:1 ~dest:(Some (Ast.Lvar "y")));
        check_bool "missing vs present destination" true
          (mk ~site:1 ~dest:None <> mk ~site:1 ~dest:(Some (Ast.Lvar "x"))));
  ]

let suite =
  digest_tests @ distribution_tests @ phys_memo_tests @ repr_audit_tests
