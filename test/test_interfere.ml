(* Thread-modular interference analysis: the corpus-wide soundness
   contract (concrete terminal stores ⊆ abstract per-variable results),
   the precision pins (Peterson unprovable, lock-based critical sections
   provable only with locksets), and the budget/chaos/telemetry seams. *)

open Cobegin_absint
open Helpers
module Space = Cobegin_explore.Space
module Config = Cobegin_semantics.Config
module Store = Cobegin_semantics.Store

(* Every store binding of every terminal configuration (final, deadlock,
   error) of a completed explicit run. *)
let terminal_bindings (r : Space.result) =
  List.concat_map
    (fun (c : Config.t) -> Store.bindings c.Config.store)
    (r.Space.final_configs @ r.Space.deadlock_configs
   @ r.Space.error_configs)

let all_domains =
  [
    Analyzer.Intervals;
    Analyzer.Constants;
    Analyzer.Signs;
    Analyzer.Parities;
    Analyzer.Interval_parity;
  ]

(* The contract on one program: if the explicit engine finishes, every
   concrete terminal binding is contained in the abstract results — for
   every numeric domain, with and without the lockset refinement. *)
let assert_sound ~name prog (r : Space.result) =
  let bindings = terminal_bindings r in
  List.iter
    (fun domain ->
      List.iter
        (fun locksets ->
          let s = Interfere.run ~domain ~locksets prog in
          match s.Interfere.check bindings with
          | [] -> ()
          | vs ->
              Alcotest.failf
                "%s (%s, locksets=%b): %d of %d concrete bindings escape \
                 the abstraction"
                name
                (Format.asprintf "%a" Analyzer.pp_domain domain)
                locksets (List.length vs) (List.length bindings))
        [ true; false ])
    all_domains

let corpus_soundness () =
  List.iter
    (fun (name, src) ->
      let prog = parse src in
      let r =
        Space.full ~max_configs:200_000 (Cobegin_semantics.Step.make_ctx prog)
      in
      match r.Space.status with
      | Budget.Truncated _ -> () (* no claim on a partial reference run *)
      | Budget.Complete -> assert_sound ~name prog r)
    Cobegin_models.Corpus.all

let random_soundness =
  qtest ~count:60 "random programs: concrete terminal stores contained"
    seed_gen (fun seed ->
      let prog = random_program seed in
      let r =
        Space.full ~max_configs:20_000 (Cobegin_semantics.Step.make_ctx prog)
      in
      match r.Space.status with
      | Budget.Truncated _ -> true
      | Budget.Complete ->
          let bindings = terminal_bindings r in
          List.for_all
            (fun locksets ->
              let s = Interfere.run ~locksets prog in
              s.Interfere.check bindings = [])
            [ true; false ])

(* --- precision pins --- *)

(* Peterson is an await-based protocol: its mutual exclusion depends on
   happens-before ordering the thread-modular abstraction cannot see, so
   the assert must stay unprovable — locksets cannot help (there are no
   locks).  This pins the engine's precision class; if a change makes
   Peterson "provable", the engine is unsound. *)
let peterson_pin () =
  let src = Option.get (Cobegin_models.Corpus.find "peterson") in
  List.iter
    (fun locksets ->
      let s = Interfere.run ~locksets (parse src) in
      check_bool
        (Printf.sprintf "peterson unprovable (locksets=%b)" locksets)
        false
        (s.Interfere.verdicts.Interfere.assert_may_fail = []))
    [ true; false ]

(* A lock-based critical section IS provable — but only with the lock
   invariant refinement; without it the same assert is flagged. *)
let lock_critical_src =
  {|
proc main() {
  var l = 0;
  var incrit = 0;
  cobegin
    { lock(l); incrit = incrit + 1; assert(incrit == 1);
      incrit = incrit - 1; unlock(l); }
    { lock(l); incrit = incrit + 1; assert(incrit == 1);
      incrit = incrit - 1; unlock(l); }
  coend;
}
|}

let lock_critical_pin () =
  let with_locks = Interfere.run ~locksets:true (parse lock_critical_src) in
  check_bool "provable with locksets" true
    (with_locks.Interfere.verdicts.Interfere.assert_may_fail = []);
  check_bool "incrit is protected" true
    (List.mem_assoc "incrit" with_locks.Interfere.protected_);
  let without = Interfere.run ~locksets:false (parse lock_critical_src) in
  check_bool "unprovable without locksets" false
    (without.Interfere.verdicts.Interfere.assert_may_fail = [])

(* The corpus mutex model asserts after the join; its count is read
   outside any critical section, so it stays unprovable in both modes —
   a pin against accidentally trusting the invariant outside the lock. *)
let mutex_pin () =
  let src = Option.get (Cobegin_models.Corpus.find "mutex") in
  List.iter
    (fun locksets ->
      let s = Interfere.run ~locksets (parse src) in
      check_bool
        (Printf.sprintf "mutex assert-after-join unprovable (locksets=%b)"
           locksets)
        false
        (s.Interfere.verdicts.Interfere.assert_may_fail = []))
    [ true; false ]

(* --- verdicts --- *)

let never_proceeds () =
  let s =
    Interfere.run
      (parse
         {|
proc main() {
  var x = 0;
  cobegin
    { x = 0; }
    { await(x == 1); }
  coend;
}
|})
  in
  check_bool "await(x==1) never satisfiable" false
    (s.Interfere.verdicts.Interfere.never_proceeds = [])

let error_sites () =
  let s =
    Interfere.run (parse {|
proc main() {
  var x = 1;
  var y = *x;
}
|})
  in
  check_bool "deref of a non-pointer is an error site" false
    (s.Interfere.verdicts.Interfere.error_sites = [])

let races_refined () =
  (* fig2 has unprotected cross writes; philosophers' accesses are all
     lock-protected *)
  let fig2 = Interfere.run (parse (Option.get (Cobegin_models.Corpus.find "fig2"))) in
  check_bool "fig2 has race candidates" false
    (fig2.Interfere.verdicts.Interfere.races = []);
  let mutex_src = Option.get (Cobegin_models.Corpus.find "mutex") in
  let mutex = Interfere.run (parse mutex_src) in
  check_bool "mutex lockset-clean" true
    (mutex.Interfere.verdicts.Interfere.races = []);
  let mutex_raw = Interfere.run ~locksets:false (parse mutex_src) in
  check_bool "mutex races without lockset refinement" false
    (mutex_raw.Interfere.verdicts.Interfere.races = [])

(* --- governance seams --- *)

let budget_truncation () =
  let src = Option.get (Cobegin_models.Corpus.find "peterson") in
  let budget = Budget.create ~max_configs:1 ~check_every:1 () in
  let s = Interfere.run ~budget (parse src) in
  check_bool "tiny budget truncates the fixpoint" false
    (Budget.is_complete s.Interfere.status)

let chaos_site () =
  match Fault.parse "crash@interfere.iter:1" with
  | Error e -> Alcotest.failf "bad chaos spec: %s" e
  | Ok plan ->
      Fault.install plan;
      Fun.protect ~finally:Fault.clear (fun () ->
          let src = Option.get (Cobegin_models.Corpus.find "fig2") in
          match Interfere.run (parse src) with
          | _ -> Alcotest.fail "expected the injected fault to escape"
          | exception Fault.Injected { site = "interfere.iter"; _ } -> ())

let pipeline_supervision () =
  (* the supervisor retries past a single injected crash: the report
     carries the recovery rung and a real summary *)
  match Fault.parse "crash@interfere.iter:1" with
  | Error e -> Alcotest.failf "bad chaos spec: %s" e
  | Ok plan ->
      Fault.install plan;
      Fun.protect ~finally:Fault.clear (fun () ->
          let src = Option.get (Cobegin_models.Corpus.find "mutex") in
          let options =
            { Cobegin_core.Pipeline.default_options with interfere = true }
          in
          let report =
            Cobegin_core.Pipeline.analyze_source ~options src
          in
          check_bool "summary delivered after retry" true
            (report.Cobegin_core.Pipeline.interference <> None);
          check_bool "recovery rung recorded" true
            (List.exists
               (fun (r : Cobegin_core.Pipeline.recovery_rung) ->
                 r.Cobegin_core.Pipeline.r_stage = "interfere")
               report.Cobegin_core.Pipeline.recovery))

let pipeline_stage () =
  let src = Option.get (Cobegin_models.Corpus.find "mutex") in
  let options =
    { Cobegin_core.Pipeline.default_options with interfere = true }
  in
  let report = Cobegin_core.Pipeline.analyze_source ~options src in
  match report.Cobegin_core.Pipeline.interference with
  | None -> Alcotest.fail "interference summary missing"
  | Some s ->
      check_bool "stage summary complete" true
        (Budget.is_complete s.Interfere.status);
      check_bool "count is shared" true
        (List.mem "count" s.Interfere.shared)

let metrics_namespace () =
  let module M = Cobegin_obs.Metrics in
  M.set_enabled true;
  Fun.protect
    ~finally:(fun () -> M.set_enabled false)
    (fun () ->
      M.reset ();
      let src = Option.get (Cobegin_models.Corpus.find "fig2") in
      ignore (Interfere.run (parse src));
      check_bool "interfere.rounds counted" true
        (M.counter_value (M.counter "interfere.rounds") > 0);
      check_bool "interfere.stmt_visits counted" true
        (M.counter_value (M.counter "interfere.stmt_visits") > 0))

let suite =
  [
    case "corpus soundness (all domains, both lockset modes)"
      corpus_soundness;
    random_soundness;
    case "precision pin: peterson stays unprovable" peterson_pin;
    case "precision pin: lock-based critical section" lock_critical_pin;
    case "precision pin: mutex assert-after-join" mutex_pin;
    case "verdict: never-satisfiable await" never_proceeds;
    case "verdict: error sites" error_sites;
    case "verdict: races refined by locksets" races_refined;
    case "budget truncation" budget_truncation;
    case "chaos: interfere.iter is a fault site" chaos_site;
    case "pipeline: supervised retry past a crash" pipeline_supervision;
    case "pipeline: interfere stage delivers a summary" pipeline_stage;
    case "telemetry: interfere.* metrics" metrics_namespace;
  ]
