(* Lattice laws and soundness of the abstract domains, mostly as qcheck
   properties driven through the Galois connections. *)

open Cobegin_domains
open Helpers

(* Generic lattice-law battery over a lattice with a value generator. *)
module Laws (L : Lattice.LATTICE) = struct
  let laws ~name gen =
    let open QCheck2 in
    [
      qtest (name ^ ": join commutative") (Gen.pair gen gen) (fun (a, b) ->
          L.equal (L.join a b) (L.join b a));
      qtest (name ^ ": join associative")
        (Gen.triple gen gen gen)
        (fun (a, b, c) ->
          L.equal (L.join a (L.join b c)) (L.join (L.join a b) c));
      qtest (name ^ ": join idempotent") gen (fun a -> L.equal (L.join a a) a);
      qtest (name ^ ": bottom neutral") gen (fun a ->
          L.equal (L.join L.bottom a) a);
      qtest (name ^ ": leq reflexive") gen (fun a -> L.leq a a);
      qtest (name ^ ": leq vs join")
        (Gen.pair gen gen)
        (fun (a, b) -> L.leq a (L.join a b) && L.leq b (L.join a b));
      qtest (name ^ ": leq antisymmetric-ish")
        (Gen.pair gen gen)
        (fun (a, b) -> if L.leq a b && L.leq b a then L.equal a b else true);
    ]
end

(* --- generators for each domain --- *)

let interval_gen =
  let open QCheck2.Gen in
  let bound =
    oneof
      [
        return Interval.NegInf;
        return Interval.PosInf;
        map (fun n -> Interval.Fin n) small_int;
      ]
  in
  map2 (fun lo hi -> Interval.of_bounds lo hi) bound bound

let sign_gen =
  let open QCheck2.Gen in
  map3
    (fun neg zero pos -> { Sign.neg; zero; pos })
    bool bool bool

let parity_gen =
  QCheck2.Gen.oneofl [ Parity.Bot; Parity.Even; Parity.Odd; Parity.Top ]

let const_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Const.bottom;
      return Const.top;
      map Const.of_int small_int;
    ]

let bool3_gen =
  QCheck2.Gen.oneofl [ Bool3.Bot; Bool3.True; Bool3.False; Bool3.Either ]

let int_parity_gen =
  QCheck2.Gen.map2 Int_parity.make interval_gen parity_gen

module Interval_laws = Laws (Interval)
module Sign_laws = Laws (Sign)
module Parity_laws = Laws (Parity)
module Const_laws = Laws (Const)
module Bool3_laws = Laws (Bool3)
module Int_parity_laws = Laws (Int_parity)

(* --- soundness via Galois connections --- *)

let op_sound ?(no_zero_rhs = false) name conn abstract_op concrete_op =
  let open QCheck2 in
  qtest
    (name ^ " sound")
    Gen.(pair (list_size (1 -- 4) small_int) (list_size (1 -- 4) small_int))
    (fun (xs, ys) ->
      (* exclude division by zero samples *)
      if no_zero_rhs && List.mem 0 ys then true
      else Galois.operator_sound_on conn ~abstract_op ~concrete_op xs ys)

let interval_soundness =
  [
    op_sound "interval add" Galois.interval Interval.add ( + );
    op_sound "interval sub" Galois.interval Interval.sub ( - );
    op_sound "interval mul" Galois.interval Interval.mul ( * );
    op_sound ~no_zero_rhs:true "interval div" Galois.interval Interval.div ( / );
    qtest "interval alpha sound"
      QCheck2.Gen.(list_size (1 -- 6) small_int)
      (fun xs -> Galois.sound_on_sample Galois.interval xs);
  ]

let sign_soundness =
  [
    op_sound "sign add" Galois.sign Sign.add ( + );
    op_sound "sign sub" Galois.sign Sign.sub ( - );
    op_sound "sign mul" Galois.sign Sign.mul ( * );
    qtest "sign alpha sound"
      QCheck2.Gen.(list_size (1 -- 6) small_int)
      (fun xs -> Galois.sound_on_sample Galois.sign xs);
  ]

let parity_soundness =
  [
    op_sound "parity add" Galois.parity Parity.add ( + );
    op_sound "parity mul" Galois.parity Parity.mul ( * );
    qtest "parity alpha sound"
      QCheck2.Gen.(list_size (1 -- 6) small_int)
      (fun xs -> Galois.sound_on_sample Galois.parity xs);
  ]

let const_soundness =
  [
    op_sound "const add" Galois.const Const.add ( + );
    op_sound "const mul" Galois.const Const.mul ( * );
  ]

let int_parity_soundness =
  [
    op_sound "interval×parity add" Galois.int_parity Int_parity.add ( + );
    op_sound "interval×parity sub" Galois.int_parity Int_parity.sub ( - );
    op_sound "interval×parity mul" Galois.int_parity Int_parity.mul ( * );
    qtest "interval×parity alpha sound"
      QCheck2.Gen.(list_size (1 -- 6) small_int)
      (fun xs -> Galois.sound_on_sample Galois.int_parity xs);
    case "reduction tightens bounds to the parity" (fun () ->
        let v = Int_parity.make (Interval.range 1 5) Parity.Even in
        check_bool "lower bound 2" true (Int_parity.contains v 2);
        check_bool "1 excluded" false (Int_parity.contains v 1);
        check_bool "5 excluded" false (Int_parity.contains v 5));
    case "contradictory components reduce to bottom" (fun () ->
        let v = Int_parity.make (Interval.range 3 3) Parity.Even in
        check_bool "bottom" true (Int_parity.is_bottom v));
    qtest "reduction preserves concretization"
      QCheck2.Gen.(pair int_parity_gen small_int)
      (fun (v, n) ->
        (* reduce is applied by make/join; membership must match the
           intersection of the component concretizations *)
        Int_parity.contains v n
        = (Interval.contains v.Int_parity.itv n
          && Parity.contains v.Int_parity.par n));
  ]

(* --- comparison decisions must agree with the concrete comparisons --- *)

let cmp_sound name alpha cmp concrete =
  let open QCheck2 in
  qtest name
    Gen.(pair (list_size (1 -- 4) small_int) (list_size (1 -- 4) small_int))
    (fun (xs, ys) ->
      match cmp (alpha xs) (alpha ys) with
      | None -> true
      | Some r ->
          List.for_all (fun x -> List.for_all (fun y -> concrete x y = r) ys) xs)

let cmp_tests =
  let ai xs = Galois.interval.Galois.alpha xs in
  let asg xs = Galois.sign.Galois.alpha xs in
  [
    cmp_sound "interval cmp_lt decides correctly" ai Interval.cmp_lt ( < );
    cmp_sound "interval cmp_le decides correctly" ai Interval.cmp_le ( <= );
    cmp_sound "interval cmp_eq decides correctly" ai Interval.cmp_eq ( = );
    cmp_sound "sign cmp_lt decides correctly" asg Sign.cmp_lt ( < );
    cmp_sound "sign cmp_le decides correctly" asg Sign.cmp_le ( <= );
    cmp_sound "sign cmp_eq decides correctly" asg Sign.cmp_eq ( = );
  ]

(* --- branch refinements keep every value satisfying the relation --- *)

let assume_sound name alpha refine_op concrete gamma_mem =
  let open QCheck2 in
  qtest name
    Gen.(pair (list_size (1 -- 4) small_int) (list_size (1 -- 4) small_int))
    (fun (xs, ys) ->
      let refined = refine_op (alpha xs) (alpha ys) in
      List.for_all
        (fun x ->
          if List.exists (fun y -> concrete x y) ys then gamma_mem refined x
          else true)
        xs)

let assume_tests =
  let ai xs = Galois.interval.Galois.alpha xs in
  let asg xs = Galois.sign.Galois.alpha xs in
  [
    assume_sound "interval assume_lt sound" ai Interval.assume_lt ( < )
      Interval.contains;
    assume_sound "interval assume_le sound" ai Interval.assume_le ( <= )
      Interval.contains;
    assume_sound "interval assume_gt sound" ai Interval.assume_gt ( > )
      Interval.contains;
    assume_sound "interval assume_ge sound" ai Interval.assume_ge ( >= )
      Interval.contains;
    assume_sound "interval assume_eq sound" ai Interval.assume_eq ( = )
      Interval.contains;
    assume_sound "interval assume_ne sound" ai Interval.assume_ne ( <> )
      Interval.contains;
    assume_sound "sign assume_lt sound" asg Sign.assume_lt ( < ) Sign.contains;
    assume_sound "sign assume_gt sound" asg Sign.assume_gt ( > ) Sign.contains;
    assume_sound "sign assume_le sound" asg Sign.assume_le ( <= ) Sign.contains;
    assume_sound "sign assume_ge sound" asg Sign.assume_ge ( >= ) Sign.contains;
  ]

(* --- widening: increasing chains stabilize --- *)

let widening_tests =
  [
    qtest "interval widening stabilizes"
      QCheck2.Gen.(list_size (1 -- 30) (pair small_int small_int))
      (fun steps ->
        let v = ref Interval.bottom in
        let stable = ref 0 in
        List.iter
          (fun (a, b) ->
            let next =
              Interval.join !v (Interval.range (min a b) (max a b))
            in
            let w = Interval.widen !v next in
            if Interval.equal w !v then incr stable;
            v := w)
          steps;
        (* after widening, chains of length > 4 must have stabilized *)
        List.length steps < 5 || !stable > 0);
    case "widen jumps unstable upper bound to +oo" (fun () ->
        let w = Interval.widen (Interval.range 0 1) (Interval.range 0 2) in
        check_bool "unbounded above" true
          Interval.(equal w (of_bounds (Fin 0) PosInf)));
    case "widen keeps stable bounds" (fun () ->
        let w = Interval.widen (Interval.range 0 5) (Interval.range 2 5) in
        check_bool "same" true Interval.(equal w (range 0 5)));
    case "threshold widening lands on the nearest threshold" (fun () ->
        let w =
          Interval.widen_thresholds [ 0; 2; 10 ] (Interval.range 0 1)
            (Interval.range 0 3)
        in
        check_bool "upper lands on 10" true Interval.(equal w (range 0 10));
        let w =
          Interval.widen_thresholds [ -5; 0 ]
            (Interval.range 0 1)
            (Interval.range (-2) 1)
        in
        check_bool "lower lands on -5" true Interval.(equal w (range (-5) 1)));
    case "threshold widening escalates past the last threshold" (fun () ->
        let w =
          Interval.widen_thresholds [ 1; 2 ] (Interval.range 0 2)
            (Interval.range 0 5)
        in
        check_bool "no threshold left: +oo" true
          Interval.(equal w (of_bounds (Fin 0) PosInf)));
    case "threshold widening keeps stable bounds" (fun () ->
        let w =
          Interval.widen_thresholds [ 7 ] (Interval.range 0 5)
            (Interval.range 2 5)
        in
        check_bool "same" true Interval.(equal w (range 0 5)));
    qtest "threshold widening refines plain widening"
      QCheck2.Gen.(
        triple
          (list_size (0 -- 6) small_int)
          (pair small_int small_int)
          (pair small_int small_int))
      (fun (ts, (a1, b1), (a2, b2)) ->
        let old_ = Interval.range (min a1 b1) (max a1 b1) in
        let new_ = Interval.join old_ (Interval.range (min a2 b2) (max a2 b2)) in
        let wt = Interval.widen_thresholds ts old_ new_ in
        (* an upper bound of both arguments, and never coarser than the
           plain widening *)
        Interval.leq new_ wt && Interval.leq old_ wt
        && Interval.leq wt (Interval.widen old_ new_));
    qtest "threshold widening stabilizes"
      QCheck2.Gen.(
        pair
          (list_size (0 -- 5) small_int)
          (list_size (1 -- 30) (pair small_int small_int)))
      (fun (ts, steps) ->
        let v = ref Interval.bottom in
        let changes = ref 0 in
        List.iter
          (fun (a, b) ->
            let next =
              Interval.join !v (Interval.range (min a b) (max a b))
            in
            let w = Interval.widen_thresholds ts !v next in
            if not (Interval.equal w !v) then incr changes;
            v := w)
          steps;
        (* each bound moves strictly through the thresholds to infinity:
           at most |ts|+1 unstable moves per bound, plus the first step
           out of bottom *)
        !changes <= (2 * List.length ts) + 3);
  ]

(* --- interval unit tests --- *)

let interval_units =
  [
    case "interval meet empty" (fun () ->
        check_bool "disjoint" true
          (Interval.is_bottom
             (Interval.meet (Interval.range 0 1) (Interval.range 3 4))));
    case "interval singleton" (fun () ->
        check_bool "yes" true (Interval.singleton (Interval.range 3 3) = Some 3);
        check_bool "no" true (Interval.singleton (Interval.range 3 4) = None));
    case "interval narrow refines infinity" (fun () ->
        let widened = Interval.of_bounds (Interval.Fin 0) Interval.PosInf in
        let n = Interval.narrow widened (Interval.range 0 10) in
        check_bool "narrowed" true Interval.(equal n (range 0 10)));
    case "division by possibly-zero divisor is top" (fun () ->
        let d = Interval.div (Interval.range 1 1) (Interval.range (-1) 1) in
        check_bool "top" true (Interval.is_top d));
    case "pointer-free arithmetic" (fun () ->
        check_bool "add" true
          Interval.(equal (add (range 1 2) (range 3 4)) (range 4 6));
        check_bool "neg" true Interval.(equal (neg (range 1 2)) (range (-2) (-1)));
        check_bool "mul" true
          Interval.(equal (mul (range (-1) 2) (range 3 3)) (range (-3) 6)));
  ]

(* --- powerset / map / product --- *)

module IntSet = Powerset.Make (struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let pp = Format.pp_print_int
end)

module IntMap = Map_lattice.Make
    (struct
      type t = int

      let compare = Int.compare
      let equal = Int.equal
      let pp = Format.pp_print_int
    end)
    (Interval)

let structure_tests =
  [
    qtest "powerset laws"
      QCheck2.Gen.(pair (list small_int) (list small_int))
      (fun (a, b) ->
        let sa = IntSet.of_list a and sb = IntSet.of_list b in
        IntSet.equal (IntSet.join sa sb) (IntSet.join sb sa)
        && IntSet.leq sa (IntSet.join sa sb));
    qtest "map lattice pointwise"
      QCheck2.Gen.(list (pair (int_range 0 5) (pair small_int small_int)))
      (fun kvs ->
        let m =
          List.fold_left
            (fun m (k, (a, b)) ->
              IntMap.update k
                (fun v -> Interval.join v (Interval.range (min a b) (max a b)))
                m)
            IntMap.bottom kvs
        in
        IntMap.leq m (IntMap.join m m) && IntMap.equal (IntMap.join m m) m);
    case "map lattice normalizes bottom" (fun () ->
        let m = IntMap.set 3 Interval.bottom IntMap.bottom in
        check_bool "empty" true (IntMap.is_bottom m));
    case "bool3 truth tables" (fun () ->
        check_bool "and" true (Bool3.and_ Bool3.True Bool3.Either = Bool3.Either);
        check_bool "and false" true
          (Bool3.and_ Bool3.False Bool3.Either = Bool3.False);
        check_bool "or true" true (Bool3.or_ Bool3.True Bool3.Either = Bool3.True);
        check_bool "not" true (Bool3.not_ Bool3.Either = Bool3.Either));
  ]

(* --- generic fixpoint solver --- *)

let fixpoint_tests =
  [
    case "fixpoint solves a small dataflow problem" (fun () ->
        (* nodes 0..3 in a diamond: 0 -> 1,2 -> 3; transfer adds ranges *)
        let module P = struct
          module L = Interval

          type node = int

          let compare_node = Int.compare
          let nodes = [ 0; 1; 2; 3 ]
          let init n = if n = 0 then Interval.range 0 0 else Interval.bottom

          let transfer ~lookup n =
            match n with
            | 0 -> Interval.range 0 0
            | 1 -> Interval.add (lookup 0) (Interval.range 1 1)
            | 2 -> Interval.add (lookup 0) (Interval.range 2 2)
            | 3 -> Interval.join (lookup 1) (lookup 2)
            | _ -> Interval.bottom

          let dependents = function
            | 0 -> [ 1; 2 ]
            | 1 | 2 -> [ 3 ]
            | _ -> []

          let widening_delay = 10
          let widen = Interval.widen
        end in
        let module S = Fixpoint.Make (P) in
        let sol = S.solve () in
        check_bool "node 3 is [1,2]" true
          Interval.(equal (S.lookup sol 3) (range 1 2)));
    case "fixpoint widens a loop" (fun () ->
        (* single node increasing forever: widening must terminate *)
        let module P = struct
          module L = Interval

          type node = int

          let compare_node = Int.compare
          let nodes = [ 0 ]
          let init _ = Interval.range 0 0

          let transfer ~lookup n =
            Interval.join (Interval.range 0 0)
              (Interval.add (lookup n) (Interval.range 1 1))

          let dependents _ = [ 0 ]
          let widening_delay = 3
          let widen = Interval.widen
        end in
        let module S = Fixpoint.Make (P) in
        let sol = S.solve () in
        check_bool "unbounded above" true
          (match S.lookup sol 0 with
          | Interval.Range (Interval.Fin 0, Interval.PosInf) -> true
          | _ -> false));
  ]

let suite =
  Interval_laws.laws ~name:"interval" interval_gen
  @ Sign_laws.laws ~name:"sign" sign_gen
  @ Parity_laws.laws ~name:"parity" parity_gen
  @ Const_laws.laws ~name:"const" const_gen
  @ Bool3_laws.laws ~name:"bool3" bool3_gen
  @ Int_parity_laws.laws ~name:"interval×parity" int_parity_gen
  @ interval_soundness @ sign_soundness @ parity_soundness @ const_soundness
  @ int_parity_soundness
  @ cmp_tests @ assume_tests @ widening_tests @ interval_units
  @ structure_tests @ fixpoint_tests
