(* The observability stack of PR 9: the pure report core's JSON
   (valid, deterministic, exit-code-carrying), the event journal (ring
   bounding, sink thresholds, flight-recorder dumps on injected
   crashes) and the digest-addressed run manifest (stable keys,
   sensitivity to every identity component). *)

open Helpers
open Cobegin_core
module Journal = Cobegin_obs.Journal
module Manifest = Cobegin_obs.Manifest

(* Run [f] with the journal started (ring-only unless [sink]), always
   stopping it afterwards so other suites see the disabled default. *)
let with_journal ?threshold ?capacity ?sink f =
  Journal.start ?threshold ?capacity ~clock:(fun () -> 0.0) ?sink ();
  Fun.protect ~finally:Journal.stop f

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let journal_tests =
  [
    case "disabled journal: emit is a no-op, dumps are empty" (fun () ->
        check_bool "disabled" false (Journal.enabled ());
        Journal.emit "nobody.home" [ ("x", Journal.Int 1) ];
        check_bool "ring empty" true (Journal.ring_events () = []);
        check_bool "dump empty" true
          (Journal.flight_dump ~reason:"r" () = []));
    case "ring is bounded: capacity N keeps the newest N" (fun () ->
        with_journal ~capacity:8 (fun () ->
            for i = 0 to 19 do
              Journal.emit "tick" [ ("i", Journal.Int i) ]
            done;
            check_int "capacity" 8 (Journal.ring_capacity ());
            let evs = Journal.ring_events () in
            check_int "ring holds 8" 8 (List.length evs);
            (* newest 8, oldest first: seqs 12..19 *)
            check_int "oldest kept" 12 (List.hd evs).Journal.e_seq;
            check_int "newest kept" 19
              (List.nth evs 7).Journal.e_seq;
            let sorted = List.map (fun e -> e.Journal.e_seq) evs in
            check_bool "sorted by seq" true
              (sorted = List.sort Int.compare sorted)));
    case "ring records every level; the sink honors its threshold"
      (fun () ->
        let path = Filename.temp_file "journal" ".jsonl" in
        let oc = open_out path in
        with_journal ~threshold:Journal.Warn ~sink:oc (fun () ->
            Journal.emit ~level:Journal.Debug "a" [];
            Journal.emit ~level:Journal.Info "b" [];
            Journal.emit ~level:Journal.Warn "c" [];
            Journal.emit ~level:Journal.Error "d" [];
            check_int "ring has all four" 4
              (List.length (Journal.ring_events ())));
        close_out oc;
        let lines = read_lines path in
        Sys.remove path;
        check_int "sink got warn+error only" 2 (List.length lines);
        List.iter
          (fun l -> check_bool "line valid" true (json_valid l))
          lines);
    case "event JSON is valid and escapes hostile fields" (fun () ->
        with_journal (fun () ->
            Journal.emit "quo\"ted\n"
              [
                ("s", Journal.Str "back\\slash \"q\"");
                ("i", Journal.Int (-3));
                ("f", Journal.Float 1.5);
                ("b", Journal.Bool true);
              ];
            match Journal.ring_events () with
            | [ ev ] ->
                let j = Journal.event_to_json ev in
                check_bool "valid" true (json_valid j);
                check_bool "bool field" true (contains j "\"b\":true")
            | _ -> Alcotest.fail "one event expected"));
    case "flight_dump bypasses the sink threshold" (fun () ->
        let path = Filename.temp_file "journal" ".jsonl" in
        let oc = open_out path in
        with_journal ~threshold:Journal.Error ~sink:oc (fun () ->
            Journal.emit ~level:Journal.Debug "breadcrumb" [];
            let lines = Journal.flight_dump ~reason:"testing" () in
            check_int "dump returns the ring" 1 (List.length lines);
            List.iter
              (fun l -> check_bool "dump line valid" true (json_valid l))
              lines);
        close_out oc;
        let lines = read_lines path in
        Sys.remove path;
        (* the Debug breadcrumb was filtered, the dump was not *)
        check_int "one flight_recorder record" 1 (List.length lines);
        check_bool "carries the reason" true
          (contains (List.hd lines) "\"flight_recorder\""));
    case "level names round-trip (and accept \"warning\")" (fun () ->
        List.iter
          (fun l ->
            check_bool (Journal.level_name l) true
              (Journal.level_of_string (Journal.level_name l) = Some l))
          [ Journal.Debug; Journal.Info; Journal.Warn; Journal.Error ];
        check_bool "warning alias" true
          (Journal.level_of_string "WARNING" = Some Journal.Warn);
        check_bool "junk rejected" true
          (Journal.level_of_string "loud" = None));
  ]

let fig2 () = parse Cobegin_models.Figures.fig2

let report_tests =
  [
    case "report JSON is valid and carries the exit code" (fun () ->
        let options =
          {
            Pipeline.default_options with
            find_races = true;
            lint = true;
            interfere = true;
          }
        in
        let r = Pipeline.analyze ~options (fig2 ()) in
        let json = Report.to_json r in
        check_bool "valid JSON" true (json_valid json);
        List.iter
          (fun key -> check_bool key true (contains json ("\"" ^ key ^ "\"")))
          [
            "format_version";
            "program_digest";
            "engine";
            "memory_model";
            "exit_code";
            "status";
            "stats";
            "budget";
            "stage_failures";
            "recovery";
            "side_effects";
            "races";
            "static";
            "interference";
            "telemetry";
          ];
        check_bool "embedded exit code agrees" true
          (contains json
             (Printf.sprintf "\"exit_code\":%d" (Report.report_exit_code r))));
    case "report JSON is byte-deterministic across identical runs"
      (fun () ->
        let options =
          { Pipeline.default_options with find_races = true; lint = true }
        in
        let j1 = Report.to_json (Pipeline.analyze ~options (fig2 ())) in
        let j2 = Report.to_json (Pipeline.analyze ~options (fig2 ())) in
        check_string "identical bytes" j1 j2);
    case "program digest: stable for equal programs, 16 hex chars"
      (fun () ->
        let d1 = Report.program_digest (fig2 ()) in
        let d2 = Report.program_digest (fig2 ()) in
        check_string "stable" d1 d2;
        check_int "16 chars" 16 (String.length d1);
        let d3 = Report.program_digest (parse Cobegin_models.Figures.fig5) in
        check_bool "distinct programs, distinct digests" true (d1 <> d3));
    case "an injected pipeline.<stage> crash attaches a flight dump"
      (fun () ->
        (match Fault.parse "crash@pipeline.side-effects:1" with
        | Ok plan -> Fault.install plan
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.clear (fun () ->
            with_journal (fun () ->
                let options =
                  { Pipeline.default_options with retries = 0 }
                in
                let r = Pipeline.analyze ~options (fig2 ()) in
                match r.Pipeline.stage_failures with
                | [ f ] ->
                    check_string "the crashed stage" "side-effects"
                      f.Pipeline.stage;
                    check_bool "flight dump attached" true
                      (f.Pipeline.flight <> []);
                    List.iter
                      (fun l ->
                        check_bool "flight line valid" true (json_valid l))
                      f.Pipeline.flight;
                    (* the recorder caught the trigger itself *)
                    check_bool "fault.injected in the dump" true
                      (List.exists
                         (fun l -> contains l "fault.injected")
                         f.Pipeline.flight);
                    let json = Report.to_json r in
                    check_bool "report with flight still valid JSON" true
                      (json_valid json)
                | fs ->
                    Alcotest.fail
                      (Printf.sprintf "expected 1 failure, got %d"
                         (List.length fs)))));
    case "clear_ring scopes flights: no first-run events in a second run's \
          crash dump"
      (fun () ->
        (* the serve-daemon bugfix pinned: two pipeline runs in one
           process share the journal's ring, so a crash in the second
           run used to dump the first run's breadcrumbs too *)
        with_journal (fun () ->
            let prog = fig2 () in
            let crash_second_run () =
              (match Fault.parse "crash@pipeline.side-effects:1" with
              | Ok plan -> Fault.install plan
              | Error e -> Alcotest.fail e);
              Fun.protect ~finally:Fault.clear (fun () ->
                  let options =
                    { Pipeline.default_options with retries = 0 }
                  in
                  let r = Pipeline.analyze ~options prog in
                  match r.Pipeline.stage_failures with
                  | [ f ] -> f.Pipeline.flight
                  | _ -> Alcotest.fail "expected 1 failure")
            in
            (* control: without scoping, the first run's marker leaks
               into the second run's flight dump *)
            let _ = Pipeline.analyze prog in
            Journal.emit "marker.first-run" [];
            let leaked = crash_second_run () in
            check_bool "unscoped ring leaks the first run" true
              (List.exists (fun l -> contains l "marker.first-run") leaked);
            (* scoped: clearing the ring between runs isolates the dump *)
            let _ = Pipeline.analyze prog in
            Journal.emit "marker.first-run" [];
            Journal.clear_ring ();
            let flight = crash_second_run () in
            check_bool "second run still dumps a flight" true (flight <> []);
            List.iter
              (fun l ->
                check_bool "no first-run marker in the flight" false
                  (contains l "marker.first-run"))
              flight));
    case "without the journal, a crash reports an empty flight" (fun () ->
        (match Fault.parse "crash@pipeline.side-effects:1" with
        | Ok plan -> Fault.install plan
        | Error e -> Alcotest.fail e);
        Fun.protect ~finally:Fault.clear (fun () ->
            let options = { Pipeline.default_options with retries = 0 } in
            let r = Pipeline.analyze ~options (fig2 ()) in
            match r.Pipeline.stage_failures with
            | [ f ] -> check_bool "no dump" true (f.Pipeline.flight = [])
            | _ -> Alcotest.fail "expected 1 failure"));
    case "options fingerprint: total over the fields, stable" (fun () ->
        let fp = Pipeline.options_fingerprint in
        let o = Pipeline.default_options in
        check_string "deterministic" (fp o) (fp o);
        check_bool "names the engine" true
          (contains (fp o) "engine=concrete/full");
        check_bool "jobs distinguishes" true
          (fp o <> fp { o with jobs = 4 });
        check_bool "model distinguishes" true
          (fp o
          <> fp { o with memory_model = Cobegin_semantics.Step.Tso }));
  ]

let manifest_tests =
  [
    case "fnv1a64 matches the reference vectors" (fun () ->
        check_string "empty" "cbf29ce484222325"
          (Printf.sprintf "%016Lx" (Manifest.fnv1a64 ""));
        check_string "\"a\"" "af63dc4c8601ec8c"
          (Printf.sprintf "%016Lx" (Manifest.fnv1a64 "a")));
    case "key: deterministic, sensitive to every component" (fun () ->
        let key = Manifest.key ~program_digest:"p" ~options_fingerprint:"o" in
        let k = key ~memory_model:"sc" in
        check_string "stable" k (key ~memory_model:"sc");
        check_int "16 hex chars" 16 (String.length k);
        check_bool "model changes it" true (k <> key ~memory_model:"tso");
        check_bool "digest changes it" true
          (k
          <> Manifest.key ~program_digest:"q" ~options_fingerprint:"o"
               ~memory_model:"sc");
        check_bool "fingerprint changes it" true
          (k
          <> Manifest.key ~program_digest:"p" ~options_fingerprint:"x"
               ~memory_model:"sc"));
    case "manifest JSON is valid, embeds raw metrics, nulls absences"
      (fun () ->
        let m =
          Manifest.make ~program_digest:"deadbeefdeadbeef"
            ~options_fingerprint:"engine=concrete/full"
            ~memory_model:"sc" ~status:"complete" ~exit_code:0
            ~elapsed_s:1.25
            ~metrics:"{\"counters\":{}}"
            ()
        in
        let j = Manifest.to_json m in
        check_bool "valid" true (json_valid j);
        check_bool "raw metrics embedded" true
          (contains j "\"metrics\":{\"counters\":{}}");
        check_bool "absent chaos is null" true
          (contains j "\"chaos\":null");
        check_bool "key embedded" true
          (contains j ("\"key\":\"" ^ m.Manifest.mf_key ^ "\"")));
    case "write emits one line that round-trips the checker" (fun () ->
        let path = Filename.temp_file "manifest" ".json" in
        let m =
          Manifest.make ~program_digest:"00" ~options_fingerprint:"o"
            ~memory_model:"pso" ~status:"truncated: configs" ~exit_code:2
            ~elapsed_s:0.5 ~chaos:"crash@space.pop:1" ()
        in
        Manifest.write m path;
        let lines = read_lines path in
        Sys.remove path;
        check_int "one line" 1 (List.length lines);
        check_bool "valid" true (json_valid (List.hd lines)));
  ]

let suite = journal_tests @ report_tests @ manifest_tests
