(* The section-5 analyses: side effects, dependences, lifetimes, races. *)

open Cobegin_analysis
open Helpers

let concrete_log src =
  let r = explore_full src in
  Event.of_concrete r.Cobegin_explore.Space.log

let abstract_log src =
  let s = Cobegin_absint.Analyzer.analyze (parse src) in
  Event.of_abstract s.Cobegin_absint.Analyzer.log

let report_for log prog name =
  Side_effect.of_proc log ~proc:name |> fun r ->
  ignore prog;
  r

let side_effect_tests =
  [
    case "writer through pointer argument has a write side effect" (fun () ->
        let src = Cobegin_models.Figures.fig8 in
        let log = concrete_log src in
        let prog = parse src in
        let f1 = report_for log prog "f1" in
        check_bool "f1 writes" true
          (not (Side_effect.EffectSet.is_empty f1.Side_effect.writes));
        let f2 = report_for log prog "f2" in
        check_bool "f2 reads only" true
          (Side_effect.EffectSet.is_empty f2.Side_effect.writes
          && not (Side_effect.EffectSet.is_empty f2.Side_effect.reads)));
    case "procedure touching only its locals is pure" (fun () ->
        let src =
          "proc pure(n) { var t = n + 1; t = t * 2; return t; } proc main() \
           { var x = pure(3); }"
        in
        let log = concrete_log src in
        let r = Side_effect.of_proc log ~proc:"pure" in
        check_bool "pure" true (Side_effect.is_pure r));
    case "heap allocation local to the callee is not a side effect"
      (fun () ->
        let src =
          "proc scratch() { var p = malloc(1); *p = 5; var t = *p; free(p); \
           return t; } proc main() { var x = scratch(); }"
        in
        let log = concrete_log src in
        let r = Side_effect.of_proc log ~proc:"scratch" in
        check_bool "pure despite malloc" true (Side_effect.is_pure r));
    case "callee writing caller memory is impure" (fun () ->
        let src =
          "proc w(p) { *p = 1; } proc main() { var a = malloc(1); w(a); }"
        in
        let log = concrete_log src in
        let r = Side_effect.of_proc log ~proc:"w" in
        check_bool "impure" false (Side_effect.is_pure r));
    case "abstract log agrees on fig8 purity classification" (fun () ->
        let src = Cobegin_models.Figures.fig8 in
        let log = abstract_log src in
        let writers =
          List.filter
            (fun p ->
              not
                (Side_effect.EffectSet.is_empty
                   (Side_effect.of_proc log ~proc:p).Side_effect.writes))
            [ "f1"; "f2"; "f3"; "f4" ]
        in
        check_bool "f1 f3 write" true
          (List.mem "f1" writers && List.mem "f3" writers);
        check_bool "f2 f4 do not write" true
          ((not (List.mem "f2" writers)) && not (List.mem "f4" writers)));
  ]

let depend_tests =
  [
    case "fig2 carries the cross-thread dependences" (fun () ->
        let log = concrete_log Cobegin_models.Figures.fig2 in
        let deps = Depend.parallel_deps log in
        check_bool "some parallel deps" true (not (Depend.DepSet.is_empty deps));
        (* a (label 1) is written by branch 0 and read by branch 1 *)
        check_bool "a's W-R dependence found" true
          (Depend.DepSet.exists
             (fun d -> d.Depend.kind = Depend.Write_read)
             deps));
    case "independent branches have no parallel dependences" (fun () ->
        let log =
          concrete_log
            "proc main() { var x = 0; var y = 0; cobegin { x = 1; } { y = 2; \
             } coend; }"
        in
        check_bool "none" true
          (Depend.DepSet.is_empty (Depend.parallel_deps log)));
    case "example8 finds the heap flow dependence" (fun () ->
        let log = concrete_log Cobegin_models.Figures.example8 in
        let deps = Depend.parallel_deps log in
        check_bool "heap dependence" true
          (Depend.DepSet.exists
             (fun d ->
               match d.Depend.obj with
               | Event.Concrete l ->
                   Cobegin_semantics.Value.(l.l_site) > 0
                   && d.Depend.kind = Depend.Write_read
               | Event.Abstract _ -> false)
             deps));
    case "sequential accesses are not parallel dependences" (fun () ->
        let log =
          concrete_log "proc main() { var x = 0; x = 1; x = x + 1; }"
        in
        check_bool "no parallel" true
          (Depend.DepSet.is_empty (Depend.parallel_deps log));
        check_bool "but sequential deps exist" true
          (not (Depend.DepSet.is_empty (Depend.of_log log))));
    case "abstract dependences over-approximate concrete ones" (fun () ->
        let src = Cobegin_models.Figures.fig2 in
        let dc = Depend.parallel_deps (concrete_log src) in
        let da = Depend.parallel_deps (abstract_log src) in
        (* compare at (label, label) granularity *)
        let pairs s =
          Depend.DepSet.elements s
          |> List.map (fun d -> (d.Depend.label1, d.Depend.label2))
          |> List.sort_uniq compare
        in
        check_bool "coverage" true
          (List.for_all (fun p -> List.mem p (pairs da)) (pairs dc)));
  ]

let lifetime_tests =
  [
    case "example8 lifetimes: one shared heap cell, one branch-local"
      (fun () ->
        let log = concrete_log Cobegin_models.Figures.example8 in
        let infos = Lifetime.of_log log in
        let heap = List.filter (fun i -> i.Lifetime.heap) infos in
        check_int "two heap objects" 2 (List.length heap);
        let shared =
          List.filter (fun i -> i.Lifetime.placement = Lifetime.Shared) heap
        in
        check_int "one shared" 1 (List.length shared));
    case "locals of a call die at the call" (fun () ->
        let src =
          "proc f() { var t = 1; t = t + 1; return t; } proc main() { var x \
           = f(); }"
        in
        let log = concrete_log src in
        let infos = Lifetime.of_log log in
        let dead_in_f =
          Lifetime.deallocatable_at_exit_of infos ~proc:"f"
        in
        check_bool "t dies in f" true (List.length dead_in_f >= 1));
    case "escaping heap cell outlives its creator" (fun () ->
        let src =
          "proc mk() { var p = malloc(1); *p = 7; return p; } proc main() { \
           var q = mk(); var x = *q; }"
        in
        let log = concrete_log src in
        let infos = Lifetime.of_log log in
        let heap = List.filter (fun i -> i.Lifetime.heap) infos in
        check_int "one heap object" 1 (List.length heap);
        let cell = List.hd heap in
        (* owner must be main (depth 0), not mk *)
        check_int "escapes to main" 0 (Pstring.depth cell.Lifetime.owner));
    case "program-lifetime objects are reported" (fun () ->
        let log = concrete_log Cobegin_models.Figures.fig2 in
        let infos = Lifetime.of_log log in
        check_bool "all top-level vars live to the end" true
          (List.length (Lifetime.program_lifetime infos) >= 4));
  ]

let race_tests =
  [
    case "racy counter has anomalies" (fun () ->
        let r = Race.find (ctx_of Cobegin_models.Figures.mutex_racy) in
        check_bool "complete" true (Budget.is_complete r.Race.status);
        check_bool "found" true (not (Race.RaceSet.is_empty r.Race.races)));
    case "lock-protected counter has none" (fun () ->
        let races = (Race.find (ctx_of Cobegin_models.Figures.mutex)).Race.races in
        check_bool "clean" true (Race.RaceSet.is_empty races));
    case "await-synchronized handoff has none" (fun () ->
        let races =
          (Race.find (ctx_of Cobegin_models.Figures.busywait)).Race.races
        in
        check_bool "clean" true (Race.RaceSet.is_empty races));
    case "write-write race is classified" (fun () ->
        let races =
          (Race.find
             (ctx_of
                "proc main() { var x = 0; cobegin { x = 1; } { x = 2; } \
                 coend; }"))
            .Race.races
        in
        check_bool "W/W" true
          (Race.RaceSet.exists (fun r -> r.Race.write_write) races));
    case "disjoint variables do not race" (fun () ->
        let races =
          (Race.find
             (ctx_of
                "proc main() { var x = 0; var y = 0; cobegin { x = 1; } { y \
                 = 2; } coend; }"))
            .Race.races
        in
        check_bool "clean" true (Race.RaceSet.is_empty races));
    case "races are normalized at construction" (fun () ->
        let loc =
          {
            Cobegin_semantics.Value.l_pid = Cobegin_semantics.Value.root_pid;
            l_site = 1;
            l_seq = 0;
            l_off = 0;
          }
        in
        let r = Race.make ~stmt1:9 ~stmt2:3 ~loc ~write_write:false in
        check_int "stmt1" 3 r.Race.stmt1;
        check_int "stmt2" 9 r.Race.stmt2;
        check_int "mirrored discoveries collapse" 0
          (Race.compare_race r
             (Race.make ~stmt1:3 ~stmt2:9 ~loc ~write_write:false)));
  ]

let suite = side_effect_tests @ depend_tests @ lifetime_tests @ race_tests
