(* Lexer, parser, pretty-printer, checker and access summaries. *)

open Cobegin_lang
open Helpers

let lexer_tests =
  [
    case "tokenizes operators greedily" (fun () ->
        let toks =
          Lexer.tokenize "a<=b==c&&d" |> List.map (fun l -> l.Lexer.tok)
        in
        check_bool "shape" true
          (toks
          = [
              Lexer.IDENT "a"; Lexer.PUNCT "<="; Lexer.IDENT "b";
              Lexer.PUNCT "=="; Lexer.IDENT "c"; Lexer.PUNCT "&&";
              Lexer.IDENT "d"; Lexer.EOF;
            ]));
    case "skips line and block comments" (fun () ->
        let toks =
          Lexer.tokenize "x // comment\n /* multi \n line */ y"
          |> List.map (fun l -> l.Lexer.tok)
        in
        check_bool "two idents" true
          (toks = [ Lexer.IDENT "x"; Lexer.IDENT "y"; Lexer.EOF ]));
    case "nested block comments" (fun () ->
        let toks =
          Lexer.tokenize "a /* x /* y */ z */ b"
          |> List.map (fun l -> l.Lexer.tok)
        in
        check_bool "two idents" true
          (toks = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ]));
    case "keywords are not identifiers" (fun () ->
        match Lexer.tokenize "while proc" |> List.map (fun l -> l.Lexer.tok) with
        | [ Lexer.KW "while"; Lexer.KW "proc"; Lexer.EOF ] -> ()
        | _ -> Alcotest.fail "bad tokens");
    case "reports position of bad char" (fun () ->
        match Lexer.tokenize "x\n  $" with
        | exception Lexer.Error (_, pos) ->
            check_int "line" 2 pos.Lexer.line;
            check_int "col" 3 pos.Lexer.col
        | _ -> Alcotest.fail "expected lexer error");
  ]

let parses src = match Parser.parse_string src with _ -> true | exception _ -> false

let parser_tests =
  [
    case "parses every built-in example" (fun () ->
        List.iter
          (fun (name, src) ->
            match Parser.parse_string src with
            | p -> check_bool name true (Check.ok (Check.check p))
            | exception Parser.Error (m, _) ->
                Alcotest.fail (name ^ ": " ^ m))
          Cobegin_models.Figures.all_named);
    case "precedence: 1 + 2 * 3" (fun () ->
        let p = Parser.parse_string "proc main() { var x = 1 + 2 * 3; }" in
        match (List.hd p.Ast.procs).Ast.body.Ast.kind with
        | Ast.Sblock [ { kind = Ast.Sdecl (_, e); _ } ] ->
            check_bool "shape" true
              (e
              = Ast.Ebinop
                  ( Ast.Add,
                    Ast.Eint 1,
                    Ast.Ebinop (Ast.Mul, Ast.Eint 2, Ast.Eint 3) ))
        | _ -> Alcotest.fail "unexpected shape");
    case "dangling else binds to nearest if" (fun () ->
        let src =
          "proc main() { var x = 0; if (x == 0) { if (x == 1) { x = 2; } } \
           else { x = 3; } }"
        in
        check_bool "parses" true (parses src));
    case "else if chains" (fun () ->
        check_bool "parses" true
          (parses
             "proc main() { var x = 0; if (x == 0) { x = 1; } else if (x == \
              1) { x = 2; } else { x = 3; } }"));
    case "var with malloc splices into block scope" (fun () ->
        let p =
          Parser.parse_string
            "proc main() { var p = malloc(2); *p = 1; }"
        in
        check_bool "checks" true (Check.ok (Check.check p)));
    case "var with call splices into block scope" (fun () ->
        let p =
          Parser.parse_string
            "proc f() { return 1; } proc main() { var x = f(); x = x + 1; }"
        in
        check_bool "checks" true (Check.ok (Check.check p)));
    case "indirect calls" (fun () ->
        check_bool "statement form" true
          (parses "proc f() { } proc main() { var g = f; (g)(); }");
        check_bool "with result" true
          (parses "proc f() { return 1; } proc main() { var g = f; var x = 0; x = (g)(); }"));
    case "cobegin requires coend" (fun () ->
        check_bool "rejected" false
          (parses "proc main() { cobegin { skip; } }"));
    case "cobegin requires a branch" (fun () ->
        check_bool "rejected" false (parses "proc main() { cobegin coend; }"));
    case "atomic rejects control flow" (fun () ->
        check_bool "rejected" false
          (parses "proc main() { var x = 0; atomic { while (x < 1) { } } }"));
    case "labels are unique" (fun () ->
        let p = parse Cobegin_models.Figures.fig8 in
        let labels = Ast.labels p in
        check_int "no duplicates" (List.length labels)
          (List.length (List.sort_uniq compare labels)));
    case "parse error carries position" (fun () ->
        match Parser.parse_string "proc main() { var = 3; }" with
        | exception Parser.Error (_, pos) ->
            check_bool "line 1" true (pos.Lexer.line = 1)
        | _ -> Alcotest.fail "expected parse error");
  ]

(* Round trip: pretty-printing then reparsing preserves the program
   (compared by its pretty form, which is label-independent). *)
let roundtrip_tests =
  [
    qtest ~count:60 "pretty ∘ parse round-trips generated programs" seed_gen
      (fun seed ->
        let src = Cobegin_models.Generator.source ~seed () in
        let p1 = Parser.parse_string src in
        let printed = Pretty.program_to_string p1 in
        let p2 = Parser.parse_string printed in
        String.equal printed (Pretty.program_to_string p2));
    case "pretty round-trips the paper figures" (fun () ->
        List.iter
          (fun (name, src) ->
            let p1 = Parser.parse_string src in
            let printed = Pretty.program_to_string p1 in
            match Parser.parse_string printed with
            | p2 ->
                check_string name printed (Pretty.program_to_string p2)
            | exception Parser.Error (m, pos) ->
                Alcotest.fail
                  (Format.asprintf "%s: %a@.%s" name Parser.pp_error (m, pos)
                     printed))
          Cobegin_models.Figures.all_named);
    case "pretty round-trips every statement form" (fun () ->
        (* One program exercising each [Ast.kind] constructor — fence
           included — so a printer or parser gap on any form fails
           here rather than depending on generator coverage. *)
        let src =
          {|
proc helper(p) { return p + 1; }
proc main() {
  skip;
  var x = 0;
  x = 1;
  var b = malloc(2);
  *b = 5;
  var y = 0;
  var m = 0;
  y = helper(x);
  helper(y);
  if (x == 1) { y = 2; } else { y = 3; }
  while (y > 0) { y = y - 1; }
  cobegin
    { x = 4; fence; await(x == 4); }
    { lock(m); unlock(m); }
  coend;
  atomic { x = 5; y = 5; }
  assert(x == 5);
  free(b);
}
|}
        in
        let p1 = parse src in
        let printed = Pretty.program_to_string p1 in
        let p2 = Parser.parse_string printed in
        check_string "stable under reprint" printed
          (Pretty.program_to_string p2);
        (* the source really covers the whole statement grammar *)
        let seen = Hashtbl.create 16 in
        let rec walk (s : Ast.stmt) =
          let tag =
            match s.Ast.kind with
            | Ast.Sskip -> "skip"
            | Ast.Sdecl _ -> "decl"
            | Ast.Sassign _ -> "assign"
            | Ast.Smalloc _ -> "malloc"
            | Ast.Sfree _ -> "free"
            | Ast.Scall _ -> "call"
            | Ast.Sreturn _ -> "return"
            | Ast.Sblock _ -> "block"
            | Ast.Sif _ -> "if"
            | Ast.Swhile _ -> "while"
            | Ast.Scobegin _ -> "cobegin"
            | Ast.Satomic _ -> "atomic"
            | Ast.Sawait _ -> "await"
            | Ast.Sacquire _ -> "lock"
            | Ast.Srelease _ -> "unlock"
            | Ast.Sfence -> "fence"
            | Ast.Sassert _ -> "assert"
          in
          Hashtbl.replace seen tag ();
          match s.Ast.kind with
          | Ast.Sblock ss | Ast.Scobegin ss | Ast.Satomic ss ->
              List.iter walk ss
          | Ast.Sif (_, a, b) ->
              walk a;
              walk b
          | Ast.Swhile (_, body) -> walk body
          | _ -> ()
        in
        List.iter (fun (pr : Ast.proc) -> walk pr.Ast.body) p1.Ast.procs;
        check_int "all 17 statement forms present" 17 (Hashtbl.length seen));
  ]

let check_tests =
  let errors src =
    match Parser.parse_string src with
    | p -> List.length (Check.check p).Check.errors
    | exception _ -> -1
  in
  [
    case "undeclared variable" (fun () ->
        check_bool "caught" true (errors "proc main() { x = 1; }" > 0));
    case "out-of-scope after block" (fun () ->
        check_bool "caught" true
          (errors "proc main() { if (true) { var x = 1; } else { } x = 2; }" > 0));
    case "declaration scopes over block remainder" (fun () ->
        check_int "clean" 0 (errors "proc main() { var x = 1; x = x + 1; }"));
    case "params are in scope" (fun () ->
        check_int "clean" 0 (errors "proc f(a, b) { return a + b; }"));
    case "arity mismatch on direct call" (fun () ->
        check_bool "caught" true
          (errors "proc f(a) { } proc main() { f(1, 2); }" > 0));
    case "procedure name as value is fine" (fun () ->
        check_int "clean" 0 (errors "proc f() { } proc main() { var g = f; }"));
    case "duplicate procedures" (fun () ->
        check_bool "caught" true (errors "proc f() { } proc f() { }" > 0));
    case "duplicate parameters" (fun () ->
        check_bool "caught" true (errors "proc f(a, a) { }" > 0));
    case "lock target must be in scope" (fun () ->
        check_bool "caught" true (errors "proc main() { lock(m); }" > 0));
    case "empty programs are rejected" (fun () ->
        check_bool "caught" true (errors "" > 0));
    case "shadowing is allowed" (fun () ->
        check_int "clean" 0
          (errors
             "proc main() { var x = 1; if (x == 1) { var x = 2; x = 3; } }"));
  ]

let access_tests =
  [
    case "proc effects propagate through calls" (fun () ->
        let p =
          parse
            "proc w(p) { *p = 1; } proc v(p) { w(p); } proc main() { var a = \
             malloc(1); v(a); }"
        in
        let eff = Access.proc_effects_of_program p in
        check_bool "v writes memory" true (eff "v").Access.eff_mem_write;
        check_bool "w writes memory" true (eff "w").Access.eff_mem_write;
        check_bool "w does not read memory" false (eff "w").Access.eff_mem_read);
    case "indirect calls use the any-procedure effect" (fun () ->
        let p =
          parse
            "proc w(p) { *p = 1; } proc main() { var g = w; var a = \
             malloc(1); (g)(a); }"
        in
        let eff = Access.proc_effects_of_program p in
        ignore eff;
        let any =
          List.fold_left
            (fun acc pr -> Access.union_effects acc (eff pr.Ast.pname))
            Access.no_effects p.Ast.procs
        in
        check_bool "any writes" true any.Access.eff_mem_write);
    case "stmt summary collects variables" (fun () ->
        let p = parse "proc main() { var x = 0; var y = 0; x = y + 1; }" in
        let body =
          match (List.hd p.Ast.procs).Ast.body.Ast.kind with
          | Ast.Sblock ss -> List.nth ss 2
          | _ -> assert false
        in
        let sum =
          Access.stmt_summary
            ~effects:(fun _ -> None)
            ~any:Access.no_effects body
        in
        check_bool "reads y" true (Ast.StringSet.mem "y" sum.Access.rvars);
        check_bool "writes x" true (Ast.StringSet.mem "x" sum.Access.wvars));
    case "address-taken set" (fun () ->
        let p = parse "proc main() { var x = 0; var p = &x; *p = 1; }" in
        let at = Ast.addr_taken_of_program p in
        check_bool "x taken" true (Ast.StringSet.mem "x" at);
        check_bool "p not" false (Ast.StringSet.mem "p" at));
    case "diagnostics come out sorted by label, unlabeled first" (fun () ->
        (* the labeled error (undeclared variable, in the first proc) is
           collected before the unlabeled one (duplicate parameters of
           the second proc); the report must order them the other way *)
        let prog =
          Parser.parse_string
            "proc p() { y = 1; }\nproc q(a, a) { skip; }\nproc main() { \
             skip; }"
        in
        let r = Check.check prog in
        check_bool "several diagnostics" true (List.length r.Check.errors >= 2);
        check_bool "unlabeled first" true
          ((List.hd r.Check.errors).Check.dlabel = None);
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              a.Check.dlabel <= b.Check.dlabel && sorted rest
          | _ -> true
        in
        check_bool "ascending labels" true (sorted r.Check.errors));
  ]

let suite =
  lexer_tests @ parser_tests @ roundtrip_tests @ check_tests @ access_tests
