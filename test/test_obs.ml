(* Telemetry (lib/obs): spans nest and export valid Chrome trace JSON,
   counters are monotone and reset cleanly, histograms bucket on the
   log scale, probes fire on the configured cadence under a fake clock,
   and — the contract the engines rely on — everything is a cheap no-op
   while telemetry is disabled. *)

open Helpers
module Metrics = Cobegin_obs.Metrics
module Span = Cobegin_obs.Span
module Probe = Cobegin_obs.Probe

(* [json_valid] and [contains] moved to Helpers — the report/manifest/
   journal suites validate their artifacts through the same checker. *)

(* Run [f] with telemetry enabled and fresh values, restoring the
   disabled default afterwards so other suites see pristine state. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let span_tests =
  [
    case "spans nest: parent ids follow the open stack" (fun () ->
        let now = ref 0.0 in
        let t = Span.create ~clock:(fun () -> !now) () in
        let outer = Span.enter t "outer" in
        now := 1.0;
        let inner = Span.enter t "inner" in
        now := 2.0;
        Span.exit t inner;
        now := 5.0;
        Span.exit t outer;
        let evs = Span.events t in
        check_int "two events" 2 (List.length evs);
        let inner_ev = List.nth evs 0 and outer_ev = List.nth evs 1 in
        check_string "inner first (completion order)" "inner"
          inner_ev.Span.ev_name;
        check_string "outer second" "outer" outer_ev.Span.ev_name;
        check_int "inner's parent is outer" outer_ev.Span.ev_id
          inner_ev.Span.ev_parent;
        check_int "outer is a root" (-1) outer_ev.Span.ev_parent;
        check_bool "inner duration" true (inner_ev.Span.ev_dur = 1.0);
        check_bool "outer duration" true (outer_ev.Span.ev_dur = 5.0));
    case "exit closes the spans still open inside" (fun () ->
        let now = ref 0.0 in
        let t = Span.create ~clock:(fun () -> !now) () in
        let outer = Span.enter t "outer" in
        let _inner = Span.enter t "inner" in
        now := 3.0;
        Span.exit t outer;
        check_int "both completed" 2 (Span.event_count t);
        (* closing again is a no-op *)
        Span.exit t outer;
        check_int "still two" 2 (Span.event_count t));
    case "with_span records even when f raises" (fun () ->
        let t = Span.create ~clock:(fun () -> 0.0) () in
        (try Span.with_span t "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        check_int "recorded" 1 (Span.event_count t);
        check_string "named" "boom"
          (List.hd (Span.events t)).Span.ev_name);
    case "trace export is valid JSON carrying every span" (fun () ->
        let now = ref 0.0 in
        let t = Span.create ~clock:(fun () -> !now) () in
        Span.with_span t "parse \"quoted\"" (fun () ->
            now := 0.5;
            Span.with_span t "explore" (fun () -> now := 1.5));
        let json = Span.to_trace_json t in
        check_bool "valid JSON" true (json_valid json);
        check_bool "has traceEvents" true (contains json "\"traceEvents\"");
        List.iter
          (fun name -> check_bool name true (contains json name))
          [ "explore"; "ph" ]);
    case "durations lists completed spans in completion order" (fun () ->
        let now = ref 0.0 in
        let t = Span.create ~clock:(fun () -> !now) () in
        Span.with_span t "a" (fun () -> now := 2.0);
        Span.with_span t "b" (fun () -> now := 3.0);
        match Span.durations t with
        | [ ("a", da); ("b", db) ] ->
            check_bool "a took 2s" true (da = 2.0);
            check_bool "b took 1s" true (db = 1.0)
        | _ -> Alcotest.fail "wrong shape");
    case "one shared recorder: each domain gets its own stack and lane"
      (fun () ->
        let t = Span.create ~clock:(fun () -> 0.0) () in
        let worker i () =
          Span.with_span t (Printf.sprintf "worker%d" i) (fun () ->
              Span.with_span t "inner" ignore)
        in
        let domains = Array.init 3 (fun i -> Domain.spawn (worker i)) in
        Array.iter Domain.join domains;
        let evs = Span.events t in
        check_int "3 domains x 2 spans" 6 (List.length evs);
        (* each inner's parent is its own domain's worker span, and the
           lanes (ev_domain) are distinct per worker *)
        let lanes =
          List.filter_map
            (fun ev ->
              if ev.Span.ev_name <> "inner" then Some ev.Span.ev_domain
              else None)
            evs
          |> List.sort_uniq Int.compare
        in
        check_int "3 distinct lanes" 3 (List.length lanes);
        List.iter
          (fun ev ->
            if ev.Span.ev_name = "inner" then begin
              let parent =
                List.find (fun p -> p.Span.ev_id = ev.Span.ev_parent) evs
              in
              check_int "parent on same lane" ev.Span.ev_domain
                parent.Span.ev_domain;
              check_bool "parent is a worker span" true
                (String.length parent.Span.ev_name > 6
                && String.sub parent.Span.ev_name 0 6 = "worker")
            end)
          evs;
        let json = Span.to_trace_json t in
        check_bool "trace valid" true (json_valid json);
        check_bool "tid lanes present" true (contains json "\"tid\":"));
  ]

let metrics_tests =
  [
    case "counters are monotone and reset to zero" (fun () ->
        with_metrics (fun () ->
            let c = Metrics.counter "test.counter" in
            Metrics.incr c;
            Metrics.incr c;
            Metrics.add c 3;
            check_int "5 after 2 incr + add 3" 5 (Metrics.counter_value c);
            (try
               Metrics.add c (-1);
               Alcotest.fail "negative add must raise"
             with Invalid_argument _ -> ());
            Metrics.reset ();
            check_int "reset" 0 (Metrics.counter_value c);
            (* the handle survives the reset *)
            Metrics.incr c;
            check_int "live after reset" 1 (Metrics.counter_value c)));
    case "find-or-create: same name, same handle" (fun () ->
        with_metrics (fun () ->
            let a = Metrics.counter "test.shared" in
            let b = Metrics.counter "test.shared" in
            Metrics.incr a;
            check_int "visible through both" 1 (Metrics.counter_value b)));
    case "histogram buckets on the log scale" (fun () ->
        check_int "0 -> bucket 0" 0 (Metrics.bucket_of 0);
        check_int "1 -> lower 1" 1 (Metrics.bucket_lower (Metrics.bucket_of 1));
        check_int "2 -> lower 2" 2 (Metrics.bucket_lower (Metrics.bucket_of 2));
        check_int "3 -> lower 2" 2 (Metrics.bucket_lower (Metrics.bucket_of 3));
        check_int "4 -> lower 4" 4 (Metrics.bucket_lower (Metrics.bucket_of 4));
        check_int "1000 -> lower 512" 512
          (Metrics.bucket_lower (Metrics.bucket_of 1000));
        with_metrics (fun () ->
            let h = Metrics.histogram "test.hist" in
            List.iter (Metrics.observe h) [ 1; 2; 3; 4; 1000 ];
            let snap = Metrics.snapshot () in
            let hs = List.assoc "test.hist" snap.Metrics.s_histograms in
            check_int "count" 5 hs.Metrics.hs_count;
            check_int "sum" 1010 hs.Metrics.hs_sum;
            check_int "max" 1000 hs.Metrics.hs_max;
            check_int "bucket 2 holds 2 and 3" 2
              (List.assoc 2 hs.Metrics.hs_buckets);
            check_int "bucket 512 holds 1000" 1
              (List.assoc 512 hs.Metrics.hs_buckets)));
    case "snapshot JSON is valid" (fun () ->
        with_metrics (fun () ->
            Metrics.incr (Metrics.counter "test.c");
            Metrics.set (Metrics.gauge "test.g") 7;
            Metrics.observe (Metrics.histogram "test.h") 42;
            check_bool "valid" true
              (json_valid (Metrics.to_json (Metrics.snapshot ())))));
    case "histogram hammered from 4 domains loses no observation" (fun () ->
        with_metrics (fun () ->
            let h = Metrics.histogram "test.hammer" in
            let per_domain = 10_000 in
            let worker () =
              for i = 1 to per_domain do
                Metrics.observe h (i land 1023)
              done
            in
            let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
            Array.iter Domain.join domains;
            let snap = Metrics.snapshot () in
            let hs = List.assoc "test.hammer" snap.Metrics.s_histograms in
            check_int "count" (4 * per_domain) hs.Metrics.hs_count;
            let expected_sum =
              let s = ref 0 in
              for i = 1 to per_domain do
                s := !s + (i land 1023)
              done;
              4 * !s
            in
            check_int "sum" expected_sum hs.Metrics.hs_sum));
    case "disabled: mutations are no-ops and allocate nothing" (fun () ->
        Metrics.set_enabled false;
        Metrics.reset ();
        let c = Metrics.counter "test.noop" in
        let g = Metrics.gauge "test.noop.g" in
        let h = Metrics.histogram "test.noop.h" in
        let before = Gc.minor_words () in
        for i = 1 to 100_000 do
          Metrics.incr c;
          Metrics.set g i;
          Metrics.observe h i
        done;
        let allocated = Gc.minor_words () -. before in
        check_int "counter untouched" 0 (Metrics.counter_value c);
        check_int "gauge untouched" 0 (Metrics.gauge_value g);
        (* 300k guarded no-ops must not allocate per call; leave slack
           for the Gc.minor_words calls themselves *)
        check_bool
          (Printf.sprintf "allocation-free (%.0f words)" allocated)
          true (allocated < 1_000.));
  ]

let probe_tests =
  [
    case "fires every N configurations" (fun () ->
        let fired = ref [] in
        let p =
          Probe.make ~every_configs:100 ~every_s:1e9
            ~clock:(fun () -> 0.0)
            (fun s -> fired := s.Probe.p_configurations :: !fired)
        in
        for c = 1 to 350 do
          Probe.tick p ~configurations:c ~frontier:1 ~transitions:(2 * c)
        done;
        check_int "three samples" 3 (Probe.fired p);
        check_bool "at 100/200/300" true
          (List.rev !fired = [ 100; 200; 300 ]));
    case "fires on elapsed time under a fake clock" (fun () ->
        let now = ref 0.0 in
        let fired = ref 0 in
        let p =
          Probe.make ~every_configs:max_int ~every_s:10.0 ~check_every:1
            ~clock:(fun () -> !now)
            (fun _ -> incr fired)
        in
        Probe.tick p ~configurations:1 ~frontier:1 ~transitions:1;
        check_int "not yet" 0 !fired;
        now := 11.0;
        Probe.tick p ~configurations:2 ~frontier:1 ~transitions:2;
        check_int "fired once" 1 !fired;
        now := 15.0;
        Probe.tick p ~configurations:3 ~frontier:1 ~transitions:3;
        check_int "interval restarts at the last firing" 1 !fired;
        now := 21.5;
        Probe.tick p ~configurations:4 ~frontier:1 ~transitions:4;
        check_int "fired again" 2 !fired);
    case "samples carry rate, pools and budget headroom" (fun () ->
        let captured = ref None in
        let b = Budget.create ~max_configs:1000 () in
        let p =
          Probe.make ~every_configs:10 ~every_s:1e9
            ~clock:
              (let now = ref 0.0 in
               fun () ->
                 now := !now +. 1.0;
                 !now)
            ~pools:(fun () -> [ ("widgets", 7) ])
            ~budget:b
            (fun s -> captured := Some s)
        in
        Probe.tick p ~configurations:50 ~frontier:5 ~transitions:100;
        match !captured with
        | None -> Alcotest.fail "no sample"
        | Some s ->
            check_bool "rate positive" true (s.Probe.p_rate > 0.);
            check_bool "pools injected" true
              (s.Probe.p_pools = [ ("widgets", 7) ]);
            check_bool "headroom has the configs limit" true
              (List.exists
                 (fun h ->
                   h.Budget.h_consumed = 50. && h.Budget.h_limit = 1000.)
                 s.Probe.p_headroom);
            check_bool "sample JSON valid" true
              (json_valid (Probe.sample_to_json s)));
    case "jsonl sink writes one valid object per line" (fun () ->
        let path = Filename.temp_file "obs" ".jsonl" in
        let oc = open_out path in
        let p =
          Probe.make ~every_configs:10 ~every_s:1e9
            ~clock:(fun () -> 0.0)
            (Probe.jsonl_sink oc)
        in
        for c = 1 to 30 do
          Probe.tick p ~configurations:c ~frontier:1 ~transitions:c
        done;
        close_out oc;
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove path;
        check_int "three lines" 3 (List.length !lines);
        List.iter
          (fun l -> check_bool "line valid" true (json_valid l))
          !lines);
  ]

let pipeline_tests =
  [
    case "pipeline spans cover every stage; report carries max_frontier"
      (fun () ->
        let open Cobegin_core in
        let spans = Span.create () in
        let options =
          { Pipeline.default_options with find_races = true }
        in
        let report =
          Pipeline.analyze ~options ~spans
            (parse Cobegin_models.Figures.fig2)
        in
        let stages = List.map fst report.Pipeline.telemetry in
        List.iter
          (fun s ->
            check_bool ("stage " ^ s) true (List.mem s stages))
          [ "exploration"; "side-effects"; "dependences"; "races" ];
        check_bool "max_frontier populated" true
          (report.Pipeline.stats.Pipeline.max_frontier >= 1);
        check_bool "trace from pipeline spans is valid JSON" true
          (json_valid (Span.to_trace_json spans)));
    case "a reused recorder reports only the new run's stages" (fun () ->
        let open Cobegin_core in
        let spans = Span.create () in
        let prog = parse Cobegin_models.Figures.fig2 in
        let r1 = Pipeline.analyze ~spans prog in
        let r2 = Pipeline.analyze ~spans prog in
        check_int "same stage count both runs"
          (List.length r1.Pipeline.telemetry)
          (List.length r2.Pipeline.telemetry);
        check_int "recorder accumulated both"
          (2 * List.length r1.Pipeline.telemetry)
          (Span.event_count spans));
    case "two runs in one process: Metrics.reset scopes counters per run"
      (fun () ->
        (* the serve-daemon bugfix pinned: without the per-request
           reset, the second run's snapshot reports the sum of both *)
        with_metrics (fun () ->
            let open Cobegin_core in
            let prog = parse Cobegin_models.Figures.fig2 in
            let expansions = Metrics.counter "space.expansions" in
            let _ = Pipeline.analyze prog in
            let first = Metrics.counter_value expansions in
            check_bool "first run counted" true (first > 0);
            let _ = Pipeline.analyze prog in
            check_int "without reset, runs accumulate" (2 * first)
              (Metrics.counter_value expansions);
            Metrics.reset ();
            let _ = Pipeline.analyze prog in
            check_int "after reset, the snapshot is one run's worth" first
              (Metrics.counter_value expansions)));
    case "Span.reset scopes a reused recorder per run" (fun () ->
        let open Cobegin_core in
        let spans = Span.create () in
        let prog = parse Cobegin_models.Figures.fig2 in
        let r1 = Pipeline.analyze ~spans prog in
        Span.reset spans;
        let r2 = Pipeline.analyze ~spans prog in
        check_int "recorder holds only the second run"
          (List.length r2.Pipeline.telemetry)
          (Span.event_count spans);
        check_int "reports see one run each"
          (List.length r1.Pipeline.telemetry)
          (List.length r2.Pipeline.telemetry);
        (* ids keep ascending across resets, so traces stay mergeable *)
        let min_id =
          List.fold_left
            (fun acc e -> min acc e.Span.ev_id)
            max_int (Span.events spans)
        in
        check_bool "ids continue after reset" true
          (min_id >= List.length r1.Pipeline.telemetry));
    case "engines tick a probe during exploration" (fun () ->
        let open Cobegin_explore in
        let fired = ref 0 in
        let p =
          Probe.make ~every_configs:10 ~every_s:1e9 (fun _ -> incr fired)
        in
        let r = Space.full ~probe:p (ctx_of Cobegin_models.Figures.fig5) in
        check_bool "explored something" true
          (r.Space.stats.Space.configurations > 20);
        check_bool "probe fired" true (!fired > 0));
  ]

let suite = span_tests @ metrics_tests @ probe_tests @ pipeline_tests
