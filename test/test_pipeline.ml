(* End-to-end pipeline integration over all engines. *)

open Cobegin_core
open Helpers

let engines =
  [
    ("full", Pipeline.Concrete_full);
    ("stubborn", Pipeline.Concrete_stubborn);
    ( "abstract-intervals",
      Pipeline.Abstract
        (Cobegin_absint.Analyzer.Intervals, Cobegin_absint.Machine.Control) );
    ( "abstract-signs",
      Pipeline.Abstract
        (Cobegin_absint.Analyzer.Signs, Cobegin_absint.Machine.Control) );
  ]

let integration_tests =
  [
    case "every engine analyzes every figure" (fun () ->
        List.iter
          (fun (figname, src) ->
            List.iter
              (fun (ename, engine) ->
                let report =
                  Pipeline.analyze
                    ~options:{ Pipeline.default_options with engine }
                    (parse src)
                in
                check_bool
                  (figname ^ "/" ^ ename ^ " ran")
                  true
                  (report.Pipeline.stats.Pipeline.configurations > 0))
              engines)
          Cobegin_models.Figures.all_named);
    case "coarsening option shrinks concrete exploration" (fun () ->
        let prog = parse Cobegin_models.Figures.fig5 in
        let base = Pipeline.analyze prog in
        let coarse =
          Pipeline.analyze
            ~options:{ Pipeline.default_options with coarsen = true }
            prog
        in
        check_bool "smaller" true
          (coarse.Pipeline.stats.Pipeline.configurations
          < base.Pipeline.stats.Pipeline.configurations));
    case "inline option preserves outcome count" (fun () ->
        let prog = parse Cobegin_models.Figures.fig8 in
        let base = Pipeline.analyze prog in
        let inl =
          Pipeline.analyze
            ~options:{ Pipeline.default_options with inline = true }
            prog
        in
        check_int "finals" base.Pipeline.stats.Pipeline.finals
          inl.Pipeline.stats.Pipeline.finals);
    case "race option populates the report" (fun () ->
        let report =
          Pipeline.analyze
            ~options:{ Pipeline.default_options with find_races = true }
            (parse Cobegin_models.Figures.mutex_racy)
        in
        match report.Pipeline.races with
        | Some races ->
            check_bool "non-empty" true
              (not (Cobegin_analysis.Race.RaceSet.is_empty races))
        | None -> Alcotest.fail "race scan missing");
    case "report pretty-printer runs on all figures" (fun () ->
        List.iter
          (fun (_, src) ->
            let report = Pipeline.analyze (parse src) in
            let text = Format.asprintf "%a" Pipeline.pp_report report in
            check_bool "nonempty" true (String.length text > 0))
          Cobegin_models.Figures.all_named);
    case "ill-formed programs are rejected before running" (fun () ->
        match
          Pipeline.analyze_source "proc main() { undeclared = 1; }"
        with
        | exception Cobegin_lang.Check.Ill_formed _ -> ()
        | _ -> Alcotest.fail "expected Ill_formed");
    case "producer-consumer runs to completion" (fun () ->
        let report =
          Pipeline.analyze_source (Cobegin_models.Figures.producer_consumer 2)
        in
        check_int "no errors" 0 report.Pipeline.stats.Pipeline.errors;
        check_int "no deadlocks" 0 report.Pipeline.stats.Pipeline.deadlocks);
  ]

let lint_stage_tests =
  [
    case "lint option runs the static pre-stage" (fun () ->
        let report =
          Pipeline.analyze
            ~options:{ Pipeline.default_options with lint = true }
            (parse Cobegin_models.Figures.mutex_racy)
        in
        match report.Pipeline.static with
        | Some r ->
            check_bool "static races found" true
              (r.Cobegin_static.Lint.races <> [])
        | None -> Alcotest.fail "static stage missing");
    case "lint stage is off by default" (fun () ->
        let report =
          Pipeline.analyze (parse Cobegin_models.Figures.mutex_racy)
        in
        check_bool "no static report" true (report.Pipeline.static = None));
    case "a crashing lint stage degrades, not aborts" (fun () ->
        let report =
          Pipeline.analyze
            ~options:{ Pipeline.default_options with lint = true }
            ~stage_hook:(fun s ->
              if s = "static-lint" then failwith "injected")
            (parse Cobegin_models.Figures.mutex)
        in
        check_bool "static report absent" true (report.Pipeline.static = None);
        check_bool "failure recorded" true
          (List.exists
             (fun (f : Pipeline.stage_failure) -> f.Pipeline.stage = "static-lint")
             report.Pipeline.stage_failures);
        (* the rest of the pipeline still ran *)
        check_bool "exploration ran" true
          (report.Pipeline.stats.Pipeline.configurations > 0));
  ]

let stubborn_vs_full_analysis =
  [
    qtest ~count:25 "pipeline analyses agree between full and stubborn logs"
      seed_gen
      (fun seed ->
        (* the *analyses* (not the raw logs) must agree, because stubborn
           exploration preserves all behaviours relevant to them *)
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 2;
            with_loops = false;
          }
        in
        let prog = random_program ~cfg seed in
        let report e =
          Pipeline.analyze
            ~options:{ Pipeline.default_options with engine = e }
            prog
        in
        let full = report Pipeline.Concrete_full in
        let stub = report Pipeline.Concrete_stubborn in
        if
          not
            (Budget.is_complete full.Pipeline.status
            && Budget.is_complete stub.Pipeline.status)
        then true
        else
            (* placements must agree on shared-vs-local for shared vars *)
            let sharedness r =
              List.filter_map
                (fun (i : Cobegin_analysis.Lifetime.info) ->
                  match i.Cobegin_analysis.Lifetime.placement with
                  | Cobegin_analysis.Lifetime.Shared ->
                      Some i.Cobegin_analysis.Lifetime.site
                  | _ -> None)
                r.Pipeline.lifetimes
              |> List.sort_uniq compare
            in
            (* stubborn may observe fewer interleavings but must find every
               conflicting-shared object the analyses rely on: sharedness
               from stubborn is a subset of full *)
            List.for_all
              (fun s -> List.mem s (sharedness full))
              (sharedness stub));
  ]

(* The CLI exit code, computed in one place with a fixed severity
   order: 5 degraded > 3 stage crash > 2 truncation > 4 lint findings
   > 0 clean (1 is reserved for usage/input errors upstream). *)
let exit_code_tests =
  let crash =
    {
      Pipeline.stage = "races";
      diagnostic = "boom";
      backtrace = None;
      flight = [];
    }
  in
  let trunc = Budget.Truncated (Budget.Configs 5) in
  [
    case "exit codes rank degraded > crash > truncation > lints > clean"
      (fun () ->
        check_int "clean" 0 (Pipeline.exit_code Budget.Complete);
        check_int "lints alone" 4
          (Pipeline.exit_code ~static_findings:true Budget.Complete);
        check_int "truncation alone" 2 (Pipeline.exit_code trunc);
        check_int "crash alone" 3
          (Pipeline.exit_code ~stage_failures:[ crash ] Budget.Complete);
        check_int "degraded alone" 5
          (Pipeline.exit_code ~degraded:true Budget.Complete);
        check_int "truncation beats lints" 2
          (Pipeline.exit_code ~static_findings:true trunc);
        check_int "crash beats truncation and lints" 3
          (Pipeline.exit_code ~stage_failures:[ crash ] ~static_findings:true
             trunc);
        check_int "degraded beats everything" 5
          (Pipeline.exit_code ~degraded:true ~stage_failures:[ crash ]
             ~static_findings:true trunc));
  ]

(* The SC-only analyses refuse to run under a relaxed model instead of
   silently returning unsound verdicts. *)
let model_support_tests =
  let peterson =
    match Cobegin_models.Corpus.find "peterson" with
    | Some src -> src
    | None -> Alcotest.fail "peterson not in corpus"
  in
  [
    case "abstract engine refuses TSO" (fun () ->
        let options =
          {
            Pipeline.default_options with
            engine =
              Pipeline.Abstract
                (Cobegin_absint.Analyzer.Intervals, Cobegin_absint.Machine.Control);
            memory_model = Cobegin_semantics.Step.Tso;
          }
        in
        match Pipeline.analyze_source ~options peterson with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "abstract engine accepted TSO");
    case "interference analysis refuses PSO" (fun () ->
        let options =
          {
            Pipeline.default_options with
            interfere = true;
            memory_model = Cobegin_semantics.Step.Pso;
          }
        in
        match Pipeline.analyze_source ~options peterson with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "interfere accepted PSO");
    case "concrete engines run the relaxed models end to end" (fun () ->
        let options =
          {
            Pipeline.default_options with
            memory_model = Cobegin_semantics.Step.Tso;
            find_races = true;
          }
        in
        let report = Pipeline.analyze_source ~options peterson in
        check_bool "complete" true (Budget.is_complete report.Pipeline.status);
        (* the TSO mutual-exclusion violations surface as error configs *)
        check_bool "assertion failures found" true
          (report.Pipeline.stats.Pipeline.errors > 0));
  ]

let suite =
  integration_tests @ lint_stage_tests @ stubborn_vs_full_analysis
  @ exit_code_tests @ model_support_tests
