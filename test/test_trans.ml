(* Program transforms: virtual coarsening (Observation 5) and inlining. *)

open Cobegin_lang
open Cobegin_trans
open Helpers

let count_atomics prog =
  Ast.fold_program
    (fun n s -> match s.Ast.kind with Ast.Satomic _ -> n + 1 | _ -> n)
    0 prog

let critical_tests =
  [
    case "shared conflicting names are found" (fun () ->
        let conf = Critical.of_program (parse Cobegin_models.Figures.fig2) in
        check_bool "a is critical" true
          (Ast.StringSet.mem "a" conf.Critical.names);
        check_bool "b is critical" true
          (Ast.StringSet.mem "b" conf.Critical.names);
        (* x and y are written by one branch only and read nowhere else *)
        check_bool "x is not" false (Ast.StringSet.mem "x" conf.Critical.names));
    case "branch-local names never conflict" (fun () ->
        let conf =
          Critical.of_program
            (parse
               "proc main() { cobegin { var t = 1; t = t + 1; } { var t = \
                2; t = t + 2; } coend; }")
        in
        check_bool "t local to each branch" false
          (Ast.StringSet.mem "t" conf.Critical.names));
    case "memory conflicts through pointers" (fun () ->
        let conf = Critical.of_program (parse Cobegin_models.Figures.example8) in
        check_bool "mem conflict" true conf.Critical.mem);
    case "calls contribute their memory effects" (fun () ->
        let conf = Critical.of_program (parse Cobegin_models.Figures.fig8) in
        check_bool "mem conflict through calls" true conf.Critical.mem);
    case "critical count of statements" (fun () ->
        let conf =
          {
            Critical.names = Ast.StringSet.of_list [ "s" ];
            Critical.mem = false;
          }
        in
        let stmt_of src =
          match (List.hd (parse src).Ast.procs).Ast.body.Ast.kind with
          | Ast.Sblock ss -> List.nth ss 1
          | _ -> assert false
        in
        check_int "local assign" 0
          (Critical.stmt_critical conf
             (stmt_of "proc main() { var t = 0; t = 1; var s = 0; }"));
        check_int "critical write" 1
          (Critical.stmt_critical conf
             (stmt_of "proc main() { var s = 0; s = 1; }"));
        check_int "critical read+write" 2
          (Critical.stmt_critical conf
             (stmt_of "proc main() { var s = 0; s = s + 1; }")));
  ]

let coarsen_tests =
  [
    case "local runs are grouped" (fun () ->
        let prog = parse Cobegin_models.Figures.fig5 in
        let coarse = Coarsen.program prog in
        check_bool "atomics introduced" true (count_atomics coarse > 0));
    case "coarsening reduces the state space" (fun () ->
        let prog = parse Cobegin_models.Figures.fig5 in
        let ctx f = Cobegin_semantics.Step.make_ctx f in
        let before = Cobegin_explore.Space.full (ctx prog) in
        let after = Cobegin_explore.Space.full (ctx (Coarsen.program prog)) in
        check_bool "smaller" true
          (after.Cobegin_explore.Space.stats
             .Cobegin_explore.Space.configurations
          < before.Cobegin_explore.Space.stats
              .Cobegin_explore.Space.configurations));
    case "runs with two critical references are split" (fun () ->
        let prog =
          parse
            "proc main() { var s = 0; cobegin { s = 1; s = 2; } { s = 3; } \
             coend; }"
        in
        let coarse = Coarsen.program prog in
        (* s = 1; s = 2 are two critical writes: must not merge *)
        check_int "no atomics" 0 (count_atomics coarse));
    qtest ~count:25 "coarsening preserves final stores" seed_gen (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 3;
            with_procs = false;
          }
        in
        let prog = random_program ~cfg seed in
        let coarse = Coarsen.program prog in
        let ctx p = Cobegin_semantics.Step.make_ctx p in
        let before = Cobegin_explore.Space.full ~max_configs:20_000 (ctx prog) in
        let after =
          Cobegin_explore.Space.full ~max_configs:20_000 (ctx coarse)
        in
        if
          not
            (Budget.is_complete before.Cobegin_explore.Space.status
            && Budget.is_complete after.Cobegin_explore.Space.status)
        then true
        else final_reprs before = final_reprs after);
    qtest ~count:25 "coarsening never grows the space" seed_gen (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 3;
            with_procs = false;
          }
        in
        let prog = random_program ~cfg seed in
        let coarse = Coarsen.program prog in
        let ctx p = Cobegin_semantics.Step.make_ctx p in
        let before = Cobegin_explore.Space.full ~max_configs:20_000 (ctx prog) in
        let after =
          Cobegin_explore.Space.full ~max_configs:20_000 (ctx coarse)
        in
        if
          not
            (Budget.is_complete before.Cobegin_explore.Space.status
            && Budget.is_complete after.Cobegin_explore.Space.status)
        then true
        else
          after.Cobegin_explore.Space.stats
            .Cobegin_explore.Space.configurations
          <= before.Cobegin_explore.Space.stats
               .Cobegin_explore.Space.configurations);
  ]

let inline_tests =
  [
    case "inlining eliminates direct calls" (fun () ->
        let prog =
          parse
            "proc add(a, b) { return a + b; } proc main() { var x = add(1, \
             2); assert(x == 3); }"
        in
        let inlined = Inline.program prog in
        let calls =
          Ast.fold_program
            (fun n s -> match s.Ast.kind with Ast.Scall _ -> n + 1 | _ -> n)
            0 inlined
        in
        check_int "no calls left" 0 calls);
    case "recursive procedures are kept" (fun () ->
        let prog =
          parse
            "proc f(n) { if (n <= 0) { return 0; } var r = f(n - 1); \
             return r; } proc main() { var x = f(3); }"
        in
        let inlined = Inline.program prog in
        let calls =
          Ast.fold_program
            (fun n s -> match s.Ast.kind with Ast.Scall _ -> n + 1 | _ -> n)
            0 inlined
        in
        check_bool "calls remain" true (calls > 0));
    case "inlining preserves behaviour" (fun () ->
        let src =
          "proc sq(a) { return a * a; } proc main() { var s = 0; cobegin { \
           s = sq(3); } { s = sq(4); } coend; }"
        in
        let prog = parse src in
        let inlined = Inline.program prog in
        let ctx p = Cobegin_semantics.Step.make_ctx p in
        let before = Cobegin_explore.Space.full (ctx prog) in
        let after = Cobegin_explore.Space.full (ctx inlined) in
        (* final stores differ structurally (different locations) but the
           outcome count must match *)
        check_int "same number of outcomes"
          before.Cobegin_explore.Space.stats.Cobegin_explore.Space.finals
          after.Cobegin_explore.Space.stats.Cobegin_explore.Space.finals);
    case "no capture: locals are freshened" (fun () ->
        let prog =
          parse
            "proc f(x) { var t = x + 1; return t; } proc main() { var t = \
             10; var r = f(t); assert(r == 11); assert(t == 10); }"
        in
        let inlined = Inline.program prog in
        match
          (Cobegin_semantics.Exec.run_leftmost
             (Cobegin_semantics.Step.make_ctx inlined))
            .Cobegin_semantics.Exec.outcome
        with
        | Cobegin_semantics.Exec.Terminated _ -> ()
        | _ -> Alcotest.fail "inlined program misbehaves");
  ]

let suite = critical_tests @ coarsen_tests @ inline_tests
