(* The serve daemon of PR 10: the protocol JSON reader, the two-tier
   content-addressed result cache (LRU eviction, disk survival across
   restarts, torn-file tolerance), the request handler (warm hits
   byte-identical to cold misses, fingerprint sensitivity, option
   caps, error isolation), chaos-crash requests that degrade without
   poisoning the cache, and the socket loop end to end. *)

open Helpers
open Cobegin_core
module Serve = Cobegin_serve.Serve
module Cache = Cobegin_serve.Cache
module Sjson = Cobegin_serve.Sjson

let fig2 = Cobegin_models.Figures.fig2
let fig5 = Cobegin_models.Figures.fig5

let mk ?(capacity = 8) ?cache_dir ?(defaults = Pipeline.default_options) () =
  Serve.make
    {
      Serve.socket = "/tmp/cobegin-test-unused.sock";
      capacity;
      cache_dir;
      pool = 1;
      defaults;
      spans = None;
    }

let tmpdir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cobegin-serve-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let response_field name resp =
  match Sjson.parse resp with
  | Error e -> Alcotest.failf "unparsable response %s: %s" resp e
  | Ok j -> Sjson.member name j

let response_int name resp =
  match Option.bind (response_field name resp) Sjson.to_int with
  | Some i -> i
  | None -> Alcotest.failf "response has no int %s: %s" name resp

let response_str name resp =
  match Option.bind (response_field name resp) Sjson.to_string with
  | Some s -> s
  | None -> Alcotest.failf "response has no string %s: %s" name resp

let report_raw resp =
  match Serve.response_report_raw resp with
  | Some r -> r
  | None -> Alcotest.failf "no report in response: %s" resp

let sjson_tests =
  [
    case "sjson parses the value grammar" (fun () ->
        let ok s = Result.is_ok (Sjson.parse s) in
        List.iter
          (fun s -> check_bool s true (ok s))
          [
            "null";
            "true";
            "-12";
            "3.5";
            "1e3";
            {|"hi"|};
            "[1,2,3]";
            {|{"a":1,"b":[true,null]}|};
            "  { }  ";
          ];
        List.iter
          (fun s -> check_bool ("reject " ^ s) false (ok s))
          [
            "";
            "{";
            "[1,]";
            {|{"a":}|};
            "01e";
            "truex";
            {|"unterminated|};
            "1 2" (* trailing garbage *);
            {|{"a":1,}|};
          ]);
    case "sjson decodes escapes and surrogate pairs" (fun () ->
        match Sjson.parse {|"a\n\t\\\"A😀"|} with
        | Ok (Sjson.Str s) ->
            check_string "decoded" "a\n\t\\\"A\xf0\x9f\x98\x80" s
        | Ok _ | Error _ -> Alcotest.fail "expected a string");
    case "sjson rejects unpaired surrogates" (fun () ->
        check_bool "lone high" true
          (Result.is_error (Sjson.parse {|"\ud83d"|}));
        check_bool "lone low" true
          (Result.is_error (Sjson.parse {|"\ude00"|})));
    case "sjson numbers: ints stay ints, fractions become floats"
      (fun () ->
        check_bool "int" true (Sjson.parse "42" = Ok (Sjson.Int 42));
        check_bool "float" true (Sjson.parse "42.5" = Ok (Sjson.Float 42.5));
        check_bool "exp is float" true
          (Sjson.parse "1e2" = Ok (Sjson.Float 100.0)));
    case "sjson member looks fields up in order" (fun () ->
        match Sjson.parse {|{"a":1,"b":"x"}|} with
        | Ok j ->
            check_bool "a" true
              (Option.bind (Sjson.member "a" j) Sjson.to_int = Some 1);
            check_bool "missing" true (Sjson.member "zz" j = None)
        | Error e -> Alcotest.fail e);
  ]

let cache_tests =
  [
    case "LRU evicts the least-recent entry at capacity" (fun () ->
        let c = Cache.create ~capacity:2 () in
        let e k = { Cache.exit_code = 0; report = "{\"k\":\"" ^ k ^ "\"}" } in
        Cache.store c "k1" (e "k1");
        Cache.store c "k2" (e "k2");
        Cache.store c "k3" (e "k3");
        check_bool "k1 evicted" true (Cache.find c "k1" = None);
        check_bool "k2 kept" true (Cache.find c "k2" = Some (e "k2"));
        check_bool "k3 kept" true (Cache.find c "k3" = Some (e "k3"));
        let s = Cache.stats c in
        check_int "entries at capacity" 2 s.Cache.entries);
    case "a find promotes: recently-used entries survive eviction"
      (fun () ->
        let c = Cache.create ~capacity:2 () in
        let e k = { Cache.exit_code = 0; report = k } in
        Cache.store c "k1" (e "k1");
        Cache.store c "k2" (e "k2");
        ignore (Cache.find c "k1");
        Cache.store c "k3" (e "k3");
        check_bool "k2 (least recent) evicted" true (Cache.find c "k2" = None);
        check_bool "k1 survived via promotion" true
          (Cache.find c "k1" = Some (e "k1")));
    case "disk entries survive a restart (a fresh cache on the same dir)"
      (fun () ->
        let dir = tmpdir () in
        let e = { Cache.exit_code = 2; report = {|{"deep":"thought"}|} } in
        let c1 = Cache.create ~dir ~capacity:4 () in
        Cache.store c1 "cafe0123cafe0123" e;
        let c2 = Cache.create ~dir ~capacity:4 () in
        check_bool "reloaded" true (Cache.find c2 "cafe0123cafe0123" = Some e);
        let s = Cache.stats c2 in
        check_int "disk hit counted as hit" 1 s.Cache.hits;
        check_int "promoted into memory" 1 s.Cache.entries);
    case "torn or corrupt disk entries load as misses" (fun () ->
        let dir = tmpdir () in
        let c = Cache.create ~dir ~capacity:4 () in
        let write name content =
          let oc = open_out (Filename.concat dir name) in
          output_string oc content;
          close_out oc
        in
        (* no newline, bad meta JSON, truncated report, wrong key *)
        write "aaaa.entry" "torn";
        write "bbbb.entry" "not json\n{}\n";
        write "cccc.entry"
          {|{"format_version":1,"key":"cccc","exit_code":0,"report_bytes":99}
{"short":true}
|};
        write "dddd.entry"
          {|{"format_version":1,"key":"zzzz","exit_code":0,"report_bytes":8}
{"ok":1}
|};
        List.iter
          (fun k -> check_bool (k ^ " is a miss") true (Cache.find c k = None))
          [ "aaaa"; "bbbb"; "cccc"; "dddd" ]);
  ]

let handler_tests =
  [
    case "ping, stats and unknown ops" (fun () ->
        let t = mk () in
        let resp, stop = Serve.handle_line t {|{"op":"ping"}|} in
        check_bool "ping ok" true (contains resp {|"op":"ping"|});
        check_bool "ping does not stop" false stop;
        let resp, _ = Serve.handle_line t {|{"op":"stats"}|} in
        check_int "no cache traffic yet" 0 (response_int "hits" resp);
        let resp, stop = Serve.handle_line t {|{"op":"teapot"}|} in
        check_bool "unknown op is an error" true
          (contains resp {|"ok":false|});
        check_bool "unknown op does not stop" false stop;
        let resp, stop = Serve.handle_line t {|{"op":"shutdown"}|} in
        check_bool "shutdown acked" true (contains resp {|"ok":true|});
        check_bool "shutdown stops" true stop);
    case "warm hit returns byte-identical report and exit code" (fun () ->
        let t = mk () in
        let line = Serve.analyze_line fig2 in
        let cold, _ = Serve.handle_line t line in
        let warm, _ = Serve.handle_line t line in
        check_string "cold misses" "miss" (response_str "cache" cold);
        check_string "warm hits" "hit" (response_str "cache" warm);
        check_string "same key" (response_str "key" cold)
          (response_str "key" warm);
        check_string "byte-identical report" (report_raw cold)
          (report_raw warm);
        check_int "same exit code" (response_int "exit_code" cold)
          (response_int "exit_code" warm);
        (* and both agree with a direct pipeline run *)
        let r = Pipeline.analyze (parse fig2) in
        check_string "report matches a direct run" (Report.to_json r)
          (report_raw cold);
        check_int "exit code matches a direct run"
          (Report.report_exit_code r)
          (response_int "exit_code" cold);
        check_bool "report is valid JSON" true (json_valid (report_raw cold)));
    case "the key is sensitive to options and memory model" (fun () ->
        let t = mk () in
        let base, _ = Serve.handle_line t (Serve.analyze_line fig2) in
        let races, _ =
          Serve.handle_line t
            (Serve.analyze_line ~options_json:{|{"races":true}|} fig2)
        in
        let tso, _ =
          Serve.handle_line t
            (Serve.analyze_line ~options_json:{|{"memory_model":"tso"}|} fig2)
        in
        let other, _ = Serve.handle_line t (Serve.analyze_line fig5) in
        check_string "races request misses" "miss" (response_str "cache" races);
        check_string "tso request misses" "miss" (response_str "cache" tso);
        check_string "other program misses" "miss"
          (response_str "cache" other);
        let keys =
          List.map (response_str "key") [ base; races; tso; other ]
        in
        check_int "four distinct keys" 4
          (List.length (List.sort_uniq compare keys));
        (* reruns of each are hits — the cache holds all four *)
        let again, _ =
          Serve.handle_line t
            (Serve.analyze_line ~options_json:{|{"memory_model":"tso"}|} fig2)
        in
        check_string "tso rerun hits" "hit" (response_str "cache" again));
    case "malformed requests are errors, not daemon deaths" (fun () ->
        let t = mk () in
        List.iter
          (fun line ->
            let resp, stop = Serve.handle_line t line in
            check_bool ("error for " ^ line) true
              (contains resp {|"ok":false|});
            check_int ("exit 1 for " ^ line) 1 (response_int "exit_code" resp);
            check_bool "does not stop" false stop)
          [
            "not json at all";
            {|{"no":"program"}|};
            {|{"program":42}|};
            {|{"program":"x := (", "options":{}}|} (* parse error *);
            {|{"program":"x := 1","options":{"zap":1}}|} (* unknown option *);
            {|{"program":"x := 1","options":{"engine":"warp"}}|};
          ];
        (* and the daemon still serves afterwards *)
        let resp, _ = Serve.handle_line t (Serve.analyze_line fig2) in
        check_bool "still serving" true (contains resp {|"ok":true|}));
    case "request options are capped by the server defaults" (fun () ->
        let defaults =
          {
            Pipeline.default_options with
            Pipeline.max_configs = 1000;
            timeout_s = Some 10.0;
            jobs = 2;
            retries = 1;
          }
        in
        let decode s =
          match Sjson.parse s with
          | Ok j -> Serve.options_of_json ~defaults j
          | Error e -> Error e
        in
        (match decode {|{"max_configs":99,"jobs":1,"retries":0}|} with
        | Ok o ->
            check_int "lowering allowed" 99 o.Pipeline.max_configs;
            check_int "jobs lowered" 1 o.Pipeline.jobs;
            check_int "retries lowered" 0 o.Pipeline.retries
        | Error e -> Alcotest.fail e);
        (match decode {|{"max_configs":999999,"jobs":64,"timeout_s":1e9}|} with
        | Ok o ->
            check_int "max_configs capped" 1000 o.Pipeline.max_configs;
            check_int "jobs capped" 2 o.Pipeline.jobs;
            check_bool "timeout capped" true
              (o.Pipeline.timeout_s = Some 10.0)
        | Error e -> Alcotest.fail e);
        check_bool "absent options mean the defaults" true
          (Serve.options_of_json ~defaults Sjson.Null = Ok defaults));
    case "engine spellings: CLI and report forms both parse" (fun () ->
        let eng s = Serve.engine_of_string s in
        check_bool "full" true (eng "full" = Some Pipeline.Concrete_full);
        check_bool "concrete/full" true
          (eng "concrete/full" = Some Pipeline.Concrete_full);
        check_bool "stubborn" true
          (eng "stubborn" = Some Pipeline.Concrete_stubborn);
        check_bool "abstract defaults" true
          (eng "abstract"
          = Some
              (Pipeline.Abstract
                 (Cobegin_absint.Analyzer.Intervals,
                  Cobegin_absint.Machine.Control)));
        check_bool "abstract/signs/clan" true
          (eng "abstract/signs/clan"
          = Some
              (Pipeline.Abstract
                 (Cobegin_absint.Analyzer.Signs, Cobegin_absint.Machine.Clan)));
        check_bool "unknown engine" true (eng "warp" = None);
        check_bool "unknown folding" true (eng "abstract/signs/warp" = None));
    case "disk-backed daemon restart serves warm hits" (fun () ->
        let dir = tmpdir () in
        let line = Serve.analyze_line fig2 in
        let t1 = mk ~cache_dir:dir () in
        let cold, _ = Serve.handle_line t1 line in
        check_string "cold misses" "miss" (response_str "cache" cold);
        (* "restart": fresh daemon state over the same directory *)
        let t2 = mk ~cache_dir:dir () in
        let warm, _ = Serve.handle_line t2 line in
        check_string "warm after restart" "hit" (response_str "cache" warm);
        check_string "same bytes across the restart" (report_raw cold)
          (report_raw warm));
    case "a chaos-crash request degrades without poisoning the cache"
      (fun () ->
        match Fault.parse "crash@pipeline.side-effects:1" with
        | Error e -> Alcotest.fail e
        | Ok plan ->
            Fault.install plan;
            Fun.protect ~finally:Fault.clear (fun () ->
                let t = mk () in
                let line =
                  Serve.analyze_line ~options_json:{|{"retries":0}|} fig2
                in
                let crashed, stop = Serve.handle_line t line in
                check_bool "crash request still answered" true
                  (contains crashed {|"ok":true|});
                check_bool "daemon not stopped" false stop;
                check_int "stage crash exits 3" 3
                  (response_int "exit_code" crashed);
                check_bool "crash report records the stage" true
                  (contains (report_raw crashed) "side-effects");
                (* the disturbed result must not have been cached: the
                   rerun misses and — the fault consumed — runs clean *)
                let clean, _ = Serve.handle_line t line in
                check_string "rerun misses" "miss"
                  (response_str "cache" clean);
                check_int "rerun is clean" 0 (response_int "exit_code" clean)));
  ]

let socket_tests =
  [
    case "end to end over a Unix socket: ping, analyze, shutdown" (fun () ->
        let socket =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "cobegin-%d-%d.sock" (Unix.getpid ())
               (Random.bits () land 0xffff))
        in
        let daemon =
          Serve.make
            {
              Serve.socket;
              capacity = 8;
              cache_dir = None;
              pool = 2;
              defaults = Pipeline.default_options;
              spans = None;
            }
        in
        let d = Domain.spawn (fun () -> Serve.run daemon) in
        let rec req ?(tries = 100) line =
          match Serve.request ~socket line with
          | resp -> resp
          | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
            when tries > 0 ->
              Unix.sleepf 0.05;
              req ~tries:(tries - 1) line
        in
        let ping = req {|{"op":"ping"}|} in
        check_bool "ping over the wire" true (contains ping {|"op":"ping"|});
        let cold = req (Serve.analyze_line fig2) in
        let warm = req (Serve.analyze_line fig2) in
        check_string "cold misses" "miss" (response_str "cache" cold);
        check_string "warm hits" "hit" (response_str "cache" warm);
        check_string "identical bytes over the wire" (report_raw cold)
          (report_raw warm);
        let bye = req {|{"op":"shutdown"}|} in
        check_bool "shutdown acked" true (contains bye {|"ok":true|});
        Domain.join d;
        check_bool "socket removed on exit" false (Sys.file_exists socket));
  ]

let suite = sjson_tests @ cache_tests @ handler_tests @ socket_tests
