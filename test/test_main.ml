let () =
  Alcotest.run "cobegin-framework"
    [
      ("domains", Test_domains.suite);
      ("pstring", Test_pstring.suite);
      ("lang", Test_lang.suite);
      ("semantics", Test_semantics.suite);
      ("trans", Test_trans.suite);
      ("footprint", Test_footprint.suite);
      ("explore", Test_explore.suite);
      ("parallel", Test_parallel.suite);
      ("intern", Test_intern.suite);
      ("budget", Test_budget.suite);
      ("protocols", Test_protocols.suite);
      ("memory_model", Test_memory_model.suite);
      ("petri", Test_petri.suite);
      ("absint", Test_absint.suite);
      ("interfere", Test_interfere.suite);
      ("analysis", Test_analysis.suite);
      ("static", Test_static.suite);
      ("apps", Test_apps.suite);
      ("pipeline", Test_pipeline.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("serve", Test_serve.suite);
    ]
