(* Synchronization protocols: the programs whose correctness depends on
   sequential consistency — the class the paper's introduction says a
   compiler must analyze rather than break. *)

open Cobegin_explore
open Helpers

let suite =
  [
    case "peterson: mutual exclusion holds in every interleaving" (fun () ->
        let r = explore_full Cobegin_models.Protocols.peterson in
        check_int "no assertion failures" 0 r.Space.stats.Space.errors;
        check_int "no deadlocks" 0 r.Space.stats.Space.deadlocks;
        check_bool "terminates" true (r.Space.stats.Space.finals >= 1));
    case "peterson with reordered writes is broken" (fun () ->
        (* the reordering a sequential optimizer might apply: exploration
           finds the mutual-exclusion violation *)
        let r = explore_full Cobegin_models.Protocols.peterson_broken in
        check_bool "violation reachable" true (r.Space.stats.Space.errors > 0));
    case "peterson: stubborn engine finds the same verdict shape" (fun () ->
        let full = explore_full Cobegin_models.Protocols.peterson in
        let stub = explore_stubborn Cobegin_models.Protocols.peterson in
        check_bool "same finals" true (final_reprs full = final_reprs stub);
        check_int "deadlocks agree" full.Space.stats.Space.deadlocks
          stub.Space.stats.Space.deadlocks);
    case "peterson: flags and turn are critical references" (fun () ->
        let conf =
          Cobegin_trans.Critical.of_program
            (parse Cobegin_models.Protocols.peterson)
        in
        List.iter
          (fun v ->
            check_bool (v ^ " critical") true
              (Cobegin_lang.Ast.StringSet.mem v conf.Cobegin_trans.Critical.names))
          [ "flag0"; "flag1"; "turn"; "incrit" ]);
    case "barrier: both threads agree on the round count" (fun () ->
        let r = explore_full (Cobegin_models.Protocols.barrier 2) in
        check_int "no errors" 0 r.Space.stats.Space.errors;
        check_int "no deadlocks" 0 r.Space.stats.Space.deadlocks);
    case "readers/writers: no torn read" (fun () ->
        let r = explore_full Cobegin_models.Protocols.readers_writers in
        check_int "no errors" 0 r.Space.stats.Space.errors;
        check_int "no deadlocks" 0 r.Space.stats.Space.deadlocks);
    case "broken peterson yields a replayable witness" (fun () ->
        let ctx = ctx_of Cobegin_models.Protocols.peterson_broken in
        match Trace.error_witness ctx with
        | None -> Alcotest.fail "expected a witness"
        | Some w -> (
            match Cobegin_semantics.Replay.replay ctx w.Trace.schedule with
            | Cobegin_semantics.Replay.Replayed c ->
                check_bool "replays to the violation" true
                  (Cobegin_semantics.Config.is_error c)
            | Cobegin_semantics.Replay.Stuck _ -> Alcotest.fail "stuck"));
    case "peterson races only on the protocol variables" (fun () ->
        (* flag/turn accesses race by design (that is the protocol); the
           critical-section counter must not *)
        let races =
          (Cobegin_analysis.Race.find
             (ctx_of Cobegin_models.Protocols.peterson))
            .Cobegin_analysis.Race.races
        in
        (* incrit is declared 4th: any race on it would be a mutual
           exclusion failure; check no W/W race exists on one location
           reported as both-written-in-critical-section *)
        check_bool "some benign races on protocol vars" true
          (not (Cobegin_analysis.Race.RaceSet.is_empty races)))
  ]
