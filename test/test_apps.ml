(* The section-7 applications. *)

open Cobegin_core
open Cobegin_apps
open Helpers

let parallelize_tests =
  [
    case "fig8 reproduces the paper's dependence pairs" (fun () ->
        let prog = parse Cobegin_models.Figures.fig8 in
        let report = Pipeline.analyze prog in
        let par = Pipeline.parallelization report in
        (* segments are [s1; s2] and [s3; s4] in paper numbering *)
        match par.Parallelize.segments with
        | [ seg1; seg2 ] ->
            let s1 = List.nth seg1.Parallelize.stmts 0 in
            let s2 = List.nth seg1.Parallelize.stmts 1 in
            let s3 = List.nth seg2.Parallelize.stmts 0 in
            let s4 = List.nth seg2.Parallelize.stmts 1 in
            let has a b = List.mem (min a b, max a b) par.Parallelize.conflicts in
            check_bool "(s1,s4) conflicts" true (has s1 s4);
            check_bool "(s2,s3) conflicts" true (has s2 s3);
            check_bool "(s1,s3) independent" false (has s1 s3);
            check_bool "(s2,s4) independent" false (has s2 s4);
            (* both program arcs lie on the critical cycle *)
            check_int "two delays" 2 (List.length par.Parallelize.delays);
            check_int "two parallelizable pairs" 2
              (List.length par.Parallelize.parallelizable)
        | _ -> Alcotest.fail "expected two segments");
    case "independent calls need no delays" (fun () ->
        let src =
          "proc f(p) { *p = 1; } proc g(p) { *p = 2; } proc main() { var a \
           = malloc(1); var b = malloc(1); cobegin { f(a); f(a); } { g(b); \
           g(b); } coend; }"
        in
        let report = Pipeline.analyze (parse src) in
        let par = Pipeline.parallelization report in
        check_int "no conflicts" 0 (List.length par.Parallelize.conflicts);
        check_int "no delays" 0 (List.length par.Parallelize.delays);
        check_int "all arcs reorderable" 2
          (List.length par.Parallelize.reorderable));
    case "direct shasha-snir fragment (no calls)" (fun () ->
        let report = Pipeline.analyze (parse Cobegin_models.Figures.fig2) in
        let par = Pipeline.parallelization report in
        (* conflicts (a: s1 vs read) and (b) induce the critical cycle *)
        check_bool "delays needed" true (par.Parallelize.delays <> []));
    case "abstract engine reaches the same fig8 verdict" (fun () ->
        let prog = parse Cobegin_models.Figures.fig8 in
        let report =
          Pipeline.analyze
            ~options:
              {
                Pipeline.default_options with
                engine =
                  Pipeline.Abstract
                    ( Cobegin_absint.Analyzer.Intervals,
                      Cobegin_absint.Machine.Control );
              }
            prog
        in
        let par = Pipeline.parallelization report in
        check_int "two conflicts" 2 (List.length par.Parallelize.conflicts);
        check_int "two parallelizable" 2
          (List.length par.Parallelize.parallelizable));
  ]

(* Final stores restricted to root-created locations: the observable
   state of main (its variables and the heap blocks it allocated). *)
let root_finals p =
  let r =
    Cobegin_explore.Space.full ~max_configs:20_000
      (Cobegin_semantics.Step.make_ctx p)
  in
  Cobegin_explore.Space.final_store_reprs r
  |> List.map
       (List.filter (fun ((l : Cobegin_semantics.Value.loc), _) ->
            l.Cobegin_semantics.Value.l_pid = []))
  |> List.sort_uniq compare

let apply_tests =
  [
    case "applying the transform parallelizes independent calls" (fun () ->
        (* four calls over four distinct blocks: no dependence anywhere,
           so every call becomes its own branch *)
        let src =
          "proc f(p) { *p = 1; } proc g(p) { *p = 2; } proc main() { var a \
           = malloc(1); var b = malloc(1); var c = malloc(1); var d = \
           malloc(1); cobegin { f(a); g(b); } { f(c); g(d); } coend; }"
        in
        let prog = parse src in
        let report = Pipeline.analyze prog in
        let par = Pipeline.parallelization report in
        let prog' = Parallelize.apply prog par in
        (* no delays: the two 2-call segments split into four branches *)
        let branches p =
          Cobegin_lang.Ast.fold_program
            (fun acc s ->
              match s.Cobegin_lang.Ast.kind with
              | Cobegin_lang.Ast.Scobegin bs -> max acc (List.length bs)
              | _ -> acc)
            0 p
        in
        check_int "four branches" 4 (branches prog');
        (* behaviour preserved: identical final stores, projected to the
           locations main created (callee locals carry branch pids that
           legitimately differ across the two structures) *)
        check_bool "same final stores" true
          (root_finals prog = root_finals prog'));
    case "delays block the split on fig8" (fun () ->
        let prog = parse Cobegin_models.Figures.fig8 in
        let report = Pipeline.analyze prog in
        let par = Pipeline.parallelization report in
        let prog' = Parallelize.apply prog par in
        (* both arcs are delays: the transformation is the identity on
           the branch structure *)
        let branches p =
          Cobegin_lang.Ast.fold_program
            (fun acc s ->
              match s.Cobegin_lang.Ast.kind with
              | Cobegin_lang.Ast.Scobegin bs -> max acc (List.length bs)
              | _ -> acc)
            0 p
        in
        check_int "still two branches" 2 (branches prog');
        check_bool "same final stores" true
          (root_finals prog = root_finals prog'));
    qtest ~count:20 "apply preserves final stores on generated programs"
      seed_gen
      (fun seed ->
        let cfg =
          {
            Cobegin_models.Generator.default_cfg with
            num_branches = 2;
            stmts_per_branch = 2;
            with_loops = false;
            with_locks = false;
          }
        in
        let prog = random_program ~cfg seed in
        let report = Pipeline.analyze prog in
        if not (Budget.is_complete report.Pipeline.status) then true
        else
          let par = Pipeline.parallelization report in
          let prog' = Parallelize.apply prog par in
          root_finals prog = root_finals prog');
  ]

let placement_tests =
  [
    case "example8: b1 shared, b2 local" (fun () ->
        let report = Pipeline.analyze (parse Cobegin_models.Figures.example8) in
        let heap_decisions =
          List.filter
            (fun (i : Cobegin_analysis.Lifetime.info) -> i.Cobegin_analysis.Lifetime.heap)
            report.Pipeline.lifetimes
        in
        let shared, local =
          List.partition
            (fun (i : Cobegin_analysis.Lifetime.info) ->
              i.Cobegin_analysis.Lifetime.placement
              = Cobegin_analysis.Lifetime.Shared)
            heap_decisions
        in
        check_int "one shared (b1)" 1 (List.length shared);
        check_int "one local (b2)" 1 (List.length local));
    case "everything local in a sequential program" (fun () ->
        let report =
          Pipeline.analyze
            (parse "proc main() { var x = 0; var p = malloc(1); *p = x; }")
        in
        check_int "nothing shared" 0
          (List.length (Placement.shared report.Pipeline.placements)));
  ]

let ctgc_tests =
  [
    case "branch-local heap cell reclaimed at its join" (fun () ->
        let report = Pipeline.analyze (parse Cobegin_models.Figures.example8) in
        let reclaimed = Ctgc.statically_reclaimed report.Pipeline.gc_plan in
        check_bool "b2 is reclaimed before program exit" true
          (List.exists
             (fun e ->
               match e.Ctgc.at with Ctgc.Branch_exit _ -> true | _ -> false)
             reclaimed));
    case "callee-local heap cell reclaimed at procedure exit" (fun () ->
        let src =
          "proc f() { var p = malloc(1); *p = 1; var t = *p; return t; } \
           proc main() { var x = f(); }"
        in
        let report = Pipeline.analyze (parse src) in
        check_bool "reclaim at exit of f" true
          (List.exists
             (fun e -> e.Ctgc.at = Ctgc.Proc_exit "f" && e.Ctgc.heap)
             report.Pipeline.gc_plan));
    case "escaping cell is not statically reclaimed in the callee" (fun () ->
        let src =
          "proc mk() { var p = malloc(1); return p; } proc main() { var q = \
           mk(); var x = *q; }"
        in
        let report = Pipeline.analyze (parse src) in
        check_bool "not reclaimed in mk" true
          (not
             (List.exists
                (fun e -> e.Ctgc.at = Ctgc.Proc_exit "mk" && e.Ctgc.heap)
                report.Pipeline.gc_plan)));
  ]

let suite = parallelize_tests @ apply_tests @ placement_tests @ ctgc_tests
