(* The static concurrency lint suite, and its soundness contract against
   the dynamic explorer: on every corpus program (and on random
   generated ones), the static race report is a superset of [Race.find]
   per statement-label pair — static over-approximates, never misses. *)

open Cobegin_static
open Helpers
module SS = Cobegin_lang.Ast.StringSet

let lint src = Lint.run (parse src)

let static_pairs src = Lockset.race_pairs (lint src).Lint.races

let dynamic_pairs ?max_configs src =
  let r = Cobegin_analysis.Race.find ?max_configs (ctx_of src) in
  ( Cobegin_analysis.Race.RaceSet.fold
      (fun (race : Cobegin_analysis.Race.race) acc ->
        (race.stmt1, race.stmt2) :: acc)
      r.Cobegin_analysis.Race.races []
    |> List.sort_uniq compare,
    r.Cobegin_analysis.Race.status )

(* dynamic ⊆ static, as (stmt1, stmt2) pairs *)
let superset_holds ?max_configs src =
  let dyn, status = dynamic_pairs ?max_configs src in
  let st = static_pairs src in
  match status with
  | Budget.Truncated _ -> true (* prefix only: no claim *)
  | Budget.Complete -> List.for_all (fun p -> List.mem p st) dyn

let missing ?max_configs src =
  let dyn, _ = dynamic_pairs ?max_configs src in
  let st = static_pairs src in
  List.filter (fun p -> not (List.mem p st)) dyn

let cross_validation_tests =
  List.map
    (fun (name, src) ->
      case (Printf.sprintf "cross-validate %s" name) (fun () ->
          check_bool
            (Printf.sprintf "dynamic races of %s missing statically: %s" name
               (String.concat ", "
                  (List.map
                     (fun (a, b) -> Printf.sprintf "(s%d,s%d)" a b)
                     (missing ~max_configs:300_000 src))))
            true
            (superset_holds ~max_configs:300_000 src)))
    Cobegin_models.Corpus.all

let random_cross_validation =
  [
    qtest ~count:40 "random programs: static races ⊇ dynamic races" seed_gen
      (fun seed ->
        let src = Cobegin_models.Generator.source ~seed () in
        superset_holds ~max_configs:50_000 src);
  ]

let race_tests =
  [
    case "mutex: lockset suppresses the counter accesses" (fun () ->
        check_bool "no static races" true
          (static_pairs Cobegin_models.Figures.mutex = []));
    case "mutex_racy: counter race reported" (fun () ->
        let r = lint Cobegin_models.Figures.mutex_racy in
        check_bool "has races" true (r.Lint.races <> []);
        check_bool "a write/write race on count" true
          (List.exists
             (fun (race : Lockset.race) ->
               race.r_ww && race.r_what = "count")
             r.Lint.races));
    case "race pairs are normalized and canonically sorted" (fun () ->
        let rs = (lint Cobegin_models.Figures.mutex_racy).Lint.races in
        check_bool "stmt1 <= stmt2" true
          (List.for_all
             (fun (r : Lockset.race) -> r.r_stmt1 <= r.r_stmt2)
             rs);
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              Lockset.compare_race a b < 0 && sorted rest
          | _ -> true
        in
        check_bool "strictly ascending" true (sorted rs));
    case "sequential program: no MHP pairs, no races" (fun () ->
        let prog = parse "proc main() { var x = 0; x = 1; x = x + 1; }" in
        check_bool "no pairs" true (Mhp.pairs (Mhp.of_program prog) = []);
        check_bool "no races" true ((Lint.run prog).Lint.races = []));
    case "interior statements of called procedures join the MHP relation"
      (fun () ->
        let prog =
          parse
            "proc work(p) { var t = p + 1; t = t * 2; }\n\
             proc main() { cobegin { work(1); } { work(2); } coend; }"
        in
        let mhp = Mhp.of_program prog in
        (* the worker body is reachable from both branches: its labels
           are MHP with themselves *)
        check_bool "self-pairs exist" true
          (List.exists (fun (a, b) -> a = b) (Mhp.pairs mhp));
        (* ...but its locals are per-instance: no races by name *)
        check_bool "no races on locals" true
          ((Lint.run prog).Lint.races = []));
    case "pointer accesses race through the memory token" (fun () ->
        let r =
          lint
            "proc main() { var a = 0; var p = &a; cobegin { *p = 1; } { a = \
             2; } coend; }"
        in
        check_bool "has races" true (r.Lint.races <> []));
  ]

let deadlock_tests =
  [
    case "philosophers: lock-order cycle found, matching dynamic deadlock"
      (fun () ->
        let src = Cobegin_models.Philosophers.program 2 in
        let r = lint src in
        check_bool "cycle found" true (r.Lint.cycles <> []);
        check_bool "cycle names both forks" true
          (List.exists
             (fun (c : Deadlock.cycle) ->
               c.locks = [ "fork0"; "fork1" ])
             r.Lint.cycles);
        let dyn = explore_full src in
        check_bool "explorer agrees a deadlock is reachable" true
          (dyn.Cobegin_explore.Space.stats.Cobegin_explore.Space.deadlocks > 0));
    case "consistent lock order: no cycle" (fun () ->
        let r =
          lint
            "proc main() { var a = 0; var b = 0; cobegin { lock(a); lock(b); \
             unlock(b); unlock(a); } { lock(a); lock(b); unlock(b); \
             unlock(a); } coend; }"
        in
        check_bool "no cycles" true (r.Lint.cycles = []));
    case "opposite order but sequential: no MHP, no cycle" (fun () ->
        let r =
          lint
            "proc main() { var a = 0; var b = 0; lock(a); lock(b); unlock(b); \
             unlock(a); lock(b); lock(a); unlock(a); unlock(b); }"
        in
        check_bool "no cycles" true (r.Lint.cycles = []));
  ]

let lint_rule_tests =
  [
    case "double acquire is an error" (fun () ->
        let r = lint "proc main() { var l = 0; lock(l); lock(l); }" in
        check_bool "double-acquire reported" true
          (List.exists
             (fun (f : Report.finding) ->
               f.f_rule = "double-acquire" && f.f_severity = Report.Error)
             r.Lint.findings));
    case "release without acquire warns" (fun () ->
        let r = lint "proc main() { var l = 0; unlock(l); }" in
        check_bool "release-unheld reported" true
          (List.exists
             (fun (f : Report.finding) -> f.f_rule = "release-unheld")
             r.Lint.findings));
    case "paired lock region: no lock-discipline findings" (fun () ->
        let r =
          lint "proc main() { var l = 0; lock(l); unlock(l); lock(l); \
                unlock(l); }"
        in
        check_bool "clean" true (r.Lint.findings = []));
    case "await nobody can satisfy is flagged" (fun () ->
        let r =
          lint
            "proc main() { var f = 0; cobegin { await(f == 1); } { var x = 1; \
             } coend; }"
        in
        check_bool "await-no-writer reported" true
          (List.exists
             (fun (fd : Report.finding) -> fd.f_rule = "await-no-writer")
             r.Lint.findings));
    case "await with a parallel writer is quiet" (fun () ->
        let r = lint Cobegin_models.Figures.busywait in
        check_bool "no await finding" true
          (not
             (List.exists
                (fun (fd : Report.finding) -> fd.f_rule = "await-no-writer")
                r.Lint.findings)));
    case "await satisfied through a pointer writer is quiet" (fun () ->
        let r =
          lint
            "proc main() { var f = 0; var p = &f; cobegin { await(f == 1); } \
             { *p = 1; } coend; }"
        in
        check_bool "no await finding" true
          (not
             (List.exists
                (fun (fd : Report.finding) -> fd.f_rule = "await-no-writer")
                r.Lint.findings)));
  ]

let report_tests =
  [
    case "findings come out canonically sorted" (fun () ->
        List.iter
          (fun (_, src) ->
            let r = lint src in
            check_bool "canonical" true (Report.is_canonical r.Lint.findings))
          Cobegin_models.Corpus.all);
    case "sort is idempotent and total" (fun () ->
        let mk rule label other =
          {
            Report.f_rule = rule;
            f_severity = Report.Warning;
            f_label = label;
            f_other = other;
            f_message = "m";
          }
        in
        let fs =
          [ mk "b" (Some 3) None; mk "a" None None; mk "a" (Some 3) (Some 5) ]
        in
        let s = Report.sort fs in
        check_bool "canonical" true (Report.is_canonical s);
        check_bool "idempotent" true (Report.sort s = s);
        (* unlabeled first *)
        check_bool "unlabeled first" true
          ((List.hd s).Report.f_label = None));
    case "assert_canonical raises on unsorted input" (fun () ->
        let mk label =
          {
            Report.f_rule = "r";
            f_severity = Report.Info;
            f_label = Some label;
            f_other = None;
            f_message = "m";
          }
        in
        check_bool "raises" true
          (try
             Report.assert_canonical [ mk 9; mk 1 ];
             false
           with Report.Non_canonical -> true));
  ]

let stability_tests =
  [
    case "a lock passed as a parameter cannot suppress" (fun () ->
        (* each callee locks its own copy of the lock value: no mutual
           exclusion, so the count race must survive suppression *)
        let r =
          lint
            "proc work(l) { var t = 0; lock(l); t = 1; unlock(l); }\n\
             proc main() { var m = 0; var c = 0; cobegin { lock(m); c = c + \
             1; unlock(m); } { work(m); c = c + 1; } coend; }"
        in
        check_bool "count race reported" true
          (List.exists
             (fun (race : Lockset.race) -> race.r_what = "c")
             r.Lint.races));
    case "stray unlock voids suppression eligibility" (fun () ->
        (* a branch unlocks without holding: the lock can no longer
           justify suppressing the counter race *)
        let src =
          "proc main() { var l = 0; var c = 0; cobegin { lock(l); c = c + 1; \
           unlock(l); } { lock(l); c = c + 1; unlock(l); } { unlock(l); } \
           coend; }"
        in
        let r = lint src in
        check_bool "count race survives" true
          (List.exists
             (fun (race : Lockset.race) -> race.r_what = "c")
             r.Lint.races);
        check_bool "dynamic still a superset" true (superset_holds src));
  ]

let suite =
  cross_validation_tests @ random_cross_validation @ race_tests
  @ deadlock_tests @ lint_rule_tests @ report_tests @ stability_tests
