(* The experiment harness: regenerates every quantitative claim of the
   paper (see DESIGN.md section 3 and EXPERIMENTS.md), then times the
   engines with Bechamel.

     dune exec bench/main.exe            run everything
     dune exec bench/main.exe -- E4      run one experiment section *)

open Cobegin_core
open Cobegin_lang
open Cobegin_semantics
open Cobegin_explore
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps
open Cobegin_models
open Cobegin_petri

let section id title =
  Format.printf "@.=== %s: %s ===@." id title

let row fmt = Format.printf fmt

let parse src =
  let prog = Parser.parse_string src in
  Check.check_exn prog;
  prog

(* --- E1: Figure 2 / Example 1 — sequential-consistency outcomes --- *)

let e1 () =
  section "E1" "Figure 2 outcomes: (x,y) never (0,0) under SC";
  let prog = parse Figures.fig2 in
  let ctx = Step.make_ctx prog in
  let full = Space.full ctx in
  let outcomes =
    List.filter_map
      (fun (c : Config.t) ->
        let ints =
          Store.bindings c.Config.store
          |> List.filter_map (fun (_, v) ->
                 match v with Value.Vint n -> Some n | _ -> None)
        in
        match ints with
        | [ _a; _b; x; y ] -> Some (x, y)
        | _ -> None)
      full.Space.final_configs
    |> List.sort_uniq compare
  in
  row "paper: legal (x,y) = 3 of 4 combinations; one impossible@.";
  row "measured outcomes: %s@."
    (String.concat ", "
       (List.map (fun (x, y) -> Printf.sprintf "(%d,%d)" x y) outcomes));
  row "impossible (0,0) absent: %b | outcomes: %d | configurations: %d@."
    (not (List.mem (0, 0) outcomes))
    (List.length outcomes)
    full.Space.stats.Space.configurations

(* --- E2: Figure 3 — configuration folding merges dangling links --- *)

let e2 () =
  section "E2" "Figure 3 folding: dangling result-configurations merge";
  let prog = parse Figures.fig3 in
  let concrete = Space.full (Step.make_ctx prog) in
  let abstract = Analyzer.analyze ~folding:Machine.Control prog in
  row "paper: the dangling links merge, 'resulting in only one configuration'@.";
  row "concrete result-configurations: %d@." concrete.Space.stats.Space.finals;
  row "abstract result-configurations: %d (configs %d vs concrete %d)@."
    abstract.Analyzer.finals abstract.Analyzer.abstract_configs
    concrete.Space.stats.Space.configurations

(* --- E3: Figure 5 — stubborn sets exploit locality --- *)

let e3 () =
  section "E3" "Figure 5 locality: full vs stubborn configuration counts";
  let prog = parse Figures.fig5 in
  let ctx = Step.make_ctx prog in
  let full = Space.full ctx in
  let stats = Stubborn.new_stats () in
  let stub = Stubborn.explore ~stats ctx in
  row "paper: full space vs 13 configurations, same result-configurations@.";
  row "%-22s %12s %12s %8s@." "strategy" "configs" "transitions" "finals";
  row "%-22s %12d %12d %8d@." "full interleaving"
    full.Space.stats.Space.configurations full.Space.stats.Space.transitions
    full.Space.stats.Space.finals;
  row "%-22s %12d %12d %8d@." "stubborn sets"
    stub.Space.stats.Space.configurations stub.Space.stats.Space.transitions
    stub.Space.stats.Space.finals;
  let slp = Sleep.explore (Step.make_ctx prog) in
  row "%-22s %12d %12d %8d@." "stubborn + sleep"
    slp.Space.stats.Space.configurations slp.Space.stats.Space.transitions
    slp.Space.stats.Space.finals;
  row "result-configurations agree: %b@."
    (Space.final_store_reprs full = Space.final_store_reprs stub
    && Space.final_store_reprs full = Space.final_store_reprs slp);
  row "stubborn expansions: singleton=%d component=%d full=%d@."
    stats.Stubborn.singleton_expansions stats.Stubborn.component_expansions
    stats.Stubborn.full_expansions

(* --- E4: dining philosophers — exponential vs polynomial ([Val88]) --- *)

let e4 () =
  section "E4" "Dining philosophers: net reachability, full vs stubborn";
  row "paper (citing Val88): exponential in n reduced to ~quadratic@.";
  row "%4s %12s %12s %10s %10s@." "n" "full" "stubborn" "ratio" "deadlocks";
  List.iter
    (fun n ->
      let net = Philosophers.net n in
      let full = Reach.full net in
      let stub = Reach.stubborn net in
      row "%4d %12d %12d %10.2f %10s@." n full.Reach.stats.Reach.states
        stub.Reach.stats.Reach.states
        (float_of_int full.Reach.stats.Reach.states
        /. float_of_int stub.Reach.stats.Reach.states)
        (Printf.sprintf "%d=%d" full.Reach.stats.Reach.deadlocks
           stub.Reach.stats.Reach.deadlocks))
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
  (* growth-rate summary: successive ratios *)
  let states strategy n =
    let net = Philosophers.net n in
    match strategy with
    | `Full -> (Reach.full net).Reach.stats.Reach.states
    | `Stub -> (Reach.stubborn net).Reach.stats.Reach.states
  in
  let growth strategy =
    float_of_int (states strategy 9) /. float_of_int (states strategy 8)
  in
  row "growth factor n=8→9: full ×%.2f, stubborn ×%.2f@." (growth `Full)
    (growth `Stub);
  (* the asymmetric (deadlock-free) variant: both engines must agree on
     the absence of deadlocks *)
  let net = Philosophers.net_ordered 6 in
  let f = Reach.full net and s = Reach.stubborn net in
  row
    "ordered variant (n=6): full=%d stubborn=%d deadlocks=%d=%d (must be 0)@."
    f.Reach.stats.Reach.states s.Reach.stats.Reach.states
    f.Reach.stats.Reach.deadlocks s.Reach.stats.Reach.deadlocks

(* --- E5: Example 8 — pointers and malloc inside cobegin --- *)

let e5 () =
  section "E5" "Example 8: dependences and placement through the heap";
  let prog = parse Figures.example8 in
  let report = Pipeline.analyze prog in
  let heap =
    List.filter (fun i -> i.Lifetime.heap) report.Pipeline.lifetimes
  in
  let shared, local =
    List.partition (fun i -> i.Lifetime.placement = Lifetime.Shared) heap
  in
  row "paper: b1 (the cell *y) must be visible to both threads; b2 local@.";
  row "heap objects: %d | shared: %d | local: %d@." (List.length heap)
    (List.length shared) (List.length local);
  let deps = Depend.parallel_deps report.Pipeline.log in
  row "parallel dependences through heap cells: %d@."
    (Depend.DepSet.cardinal
       (Depend.DepSet.filter
          (fun d ->
            match d.Depend.obj with
            | Event.Concrete l ->
                Value.(l.l_site) > 0
                &&
                (match report.Pipeline.program with _ -> true)
            | Event.Abstract a -> Aloc.is_heap a)
          deps))

(* --- E6: Figure 8 / Example 15 — parallelizing procedure calls --- *)

let e6 () =
  section "E6" "Figure 8: Shasha-Snir extended to procedure calls";
  let prog = parse Figures.fig8 in
  let report = Pipeline.analyze prog in
  let par = Pipeline.parallelization report in
  row "paper: only (s1,s4) and (s2,s3) have dependences@.";
  row "%a@." Parallelize.pp_report par;
  (* the transformation applied: on fig8 the delays block any split; on
     a fully independent variant every call becomes its own branch *)
  let branches p =
    Ast.fold_program
      (fun acc s ->
        match s.Ast.kind with
        | Ast.Scobegin bs -> max acc (List.length bs)
        | _ -> acc)
      0 p
  in
  let prog' = Parallelize.apply prog par in
  row "apply on fig8: %d branches (delays forbid splitting)@."
    (branches prog');
  let free =
    parse
      "proc f(p) { *p = 1; } proc g(p) { *p = 2; } proc main() { var a = \
       malloc(1); var b = malloc(1); var c = malloc(1); var d = malloc(1); \
       cobegin { f(a); g(b); } { f(c); g(d); } coend; }"
  in
  let report' = Pipeline.analyze free in
  let par' = Pipeline.parallelization report' in
  let free' = Parallelize.apply free par' in
  row "apply on independent calls: %d → %d branches@." (branches free)
    (branches free')

(* --- E7: virtual coarsening ablation --- *)

let e7 () =
  section "E7" "Virtual coarsening (Observation 5): ablation";
  row "%-12s %9s %9s %9s %9s %9s@." "program" "plain" "coarsened" "stubborn"
    "sleep" "all";
  List.iter
    (fun (name, src) ->
      let prog = parse src in
      let coarse = Cobegin_trans.Coarsen.program prog in
      let count strategy p =
        let ctx = Step.make_ctx p in
        match strategy with
        | `Full -> (Space.full ctx).Space.stats.Space.configurations
        | `Stub -> (Stubborn.explore ctx).Space.stats.Space.configurations
        | `Sleep -> (Sleep.explore ctx).Space.stats.Space.configurations
      in
      row "%-12s %9d %9d %9d %9d %9d@." name (count `Full prog)
        (count `Full coarse) (count `Stub prog) (count `Sleep prog)
        (count `Sleep coarse))
    [
      ("fig2", Figures.fig2);
      ("fig5", Figures.fig5);
      ("fig3", Figures.fig3);
      ("busywait", Figures.busywait);
      ("mutex", Figures.mutex);
    ]

(* --- E8: McDowell clans as an abstraction --- *)

let e8 () =
  section "E8" "Clan folding (McDowell) on k identical branches";
  row "%4s %12s %12s %12s %10s@." "k" "exact" "control" "clan" "ctl/clan";
  List.iter
    (fun k ->
      let prog = parse (Figures.clan_workload k) in
      let size folding =
        (Analyzer.analyze ~folding prog).Analyzer.abstract_configs
      in
      let e = size Machine.Exact
      and c = size Machine.Control
      and l = size Machine.Clan in
      row "%4d %12d %12d %12d %10.2f@." k e c l
        (float_of_int c /. float_of_int l))
    [ 1; 2; 3; 4; 5 ]

(* --- E9: the section-5 analyses across engines --- *)

let e9 () =
  section "E9" "Analyses summary: side effects / dependences / lifetimes";
  row "%-12s %8s %8s %8s %8s %8s@." "program" "engine" "sideeff" "pardeps"
    "objects" "shared";
  List.iter
    (fun (name, src) ->
      List.iter
        (fun (ename, engine) ->
          let report =
            Pipeline.analyze
              ~options:{ Pipeline.default_options with engine }
              (parse src)
          in
          let sideeff =
            List.fold_left
              (fun n r ->
                n
                + Side_effect.EffectSet.cardinal r.Side_effect.reads
                + Side_effect.EffectSet.cardinal r.Side_effect.writes)
              0 report.Pipeline.side_effects
          in
          let pardeps =
            Depend.DepSet.cardinal (Depend.parallel_deps report.Pipeline.log)
          in
          let shared =
            List.length
              (List.filter
                 (fun i -> i.Lifetime.placement = Lifetime.Shared)
                 report.Pipeline.lifetimes)
          in
          row "%-12s %8s %8d %8d %8d %8d@." name ename sideeff pardeps
            (List.length report.Pipeline.lifetimes)
            shared)
        [
          ("conc", Pipeline.Concrete_full);
          ( "abs",
            Pipeline.Abstract (Analyzer.Intervals, Machine.Control) );
        ])
    [
      ("fig2", Figures.fig2);
      ("example8", Figures.example8);
      ("fig8", Figures.fig8);
      ("busywait", Figures.busywait);
    ]

(* --- E10: memory placement + compile-time GC --- *)

let e10 () =
  section "E10" "Memory hierarchy placement and deallocation lists";
  let prog = parse Figures.example8 in
  let report = Pipeline.analyze prog in
  row "placement:@.%a@." Placement.pp report.Pipeline.placements;
  row "deallocation plan:@.%a@." Ctgc.pp report.Pipeline.gc_plan;
  let reclaimed = Ctgc.statically_reclaimed report.Pipeline.gc_plan in
  row "heap objects statically reclaimed: %d@." (List.length reclaimed)

(* --- E11: the introduction's claim — protocols a compiler must not
   break.  Peterson's algorithm is correct under SC; the write reordering
   a sequential optimizer might apply breaks it, and exploration
   exhibits a concrete violating schedule. --- *)

let e11 () =
  section "E11" "Sequential-consistency-dependent protocols (paper intro)";
  row "%-18s %10s %8s %8s %10s@." "protocol" "configs" "finals" "errors"
    "deadlocks";
  List.iter
    (fun (name, src) ->
      let ctx = Step.make_ctx (parse src) in
      let r = Space.full ctx in
      row "%-18s %10d %8d %8d %10d@." name r.Space.stats.Space.configurations
        r.Space.stats.Space.finals r.Space.stats.Space.errors
        r.Space.stats.Space.deadlocks)
    Protocols.all_named;
  let broken_ctx = Step.make_ctx (parse Protocols.peterson_broken) in
  (match Cobegin_explore.Trace.error_witness broken_ctx with
  | Some w ->
      row "violating schedule for peterson_broken (%d steps): %s@."
        (List.length w.Cobegin_explore.Trace.schedule)
        (String.concat "→"
           (List.map
              (Format.asprintf "%a" Value.pp_pid)
              w.Cobegin_explore.Trace.schedule))
  | None -> row "no violation found (unexpected)@.");
  (* and the program-level philosophers, with locks *)
  row "@.philosophers as a lock program (full vs stubborn vs sleep):@.";
  row "%4s %10s %10s %10s %10s@." "n" "full" "stubborn" "sleep" "deadlocks";
  List.iter
    (fun n ->
      let ctx () = Step.make_ctx (parse (Philosophers.program n)) in
      let full = Space.full (ctx ()) in
      let stub = Stubborn.explore (ctx ()) in
      let slp = Sleep.explore (ctx ()) in
      row "%4d %10d %10d %10d %10d@." n
        full.Space.stats.Space.configurations
        stub.Space.stats.Space.configurations
        slp.Space.stats.Space.configurations
        full.Space.stats.Space.deadlocks)
    [ 2; 3 ]

(* --- E12: budgeted exploration — graceful degradation, JSON rows ---

   Machine-readable output: one JSON object per (workload, budget) with
   the partial statistics and the completion status string from
   [Budget.status_to_string], so downstream scripts can tell a complete
   measurement from a truncated one. *)

let e12 () =
  section "E12" "Budgeted exploration: partial results as JSON";
  let json_row ~workload ~budget (r : Space.result) =
    row
      "{\"workload\": \"%s\", \"max_configs\": %s, \"configurations\": %d, \
       \"transitions\": %d, \"finals\": %d, \"status\": \"%s\"}@."
      workload budget r.Space.stats.Space.configurations
      r.Space.stats.Space.transitions r.Space.stats.Space.finals
      (Budget.status_to_string r.Space.status)
  in
  List.iter
    (fun (name, src) ->
      let ctx () = Step.make_ctx (parse src) in
      json_row ~workload:name ~budget:"null" (Space.full (ctx ()));
      List.iter
        (fun k ->
          json_row ~workload:name ~budget:(string_of_int k)
            (Space.full ~max_configs:k (ctx ())))
        [ 10; 100; 1000 ])
    [ ("fig5", Figures.fig5); ("peterson", Protocols.peterson) ];
  (* the net substrate degrades the same way *)
  let net = Philosophers.net 8 in
  let r = Reach.full ~max_states:5_000 net in
  row
    "{\"workload\": \"philosophers-8\", \"max_states\": 5000, \"states\": \
     %d, \"edges\": %d, \"status\": \"%s\"}@."
    r.Reach.stats.Reach.states r.Reach.stats.Reach.edges
    (Budget.status_to_string r.Reach.status)

(* --- E13: static concurrency lint vs. the exploration race scan ---

   The lint (lib/static) answers "which statement pairs may race" from
   the program text alone; the explorer answers it by enumerating
   interleavings.  On the dining-philosophers family the lint must be
   orders of magnitude cheaper — that is its reason to exist as a
   budget-free pre-stage. *)

let e13 () =
  section "E13" "Static lint cost vs. exploration race scan (philosophers)";
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  row "%-16s %14s %14s %10s@." "workload" "lint (s)" "explore (s)" "ratio";
  List.iter
    (fun n ->
      let prog = parse (Philosophers.program n) in
      (* amortize the lint over repeats: it is too fast to time once *)
      let reps = 20 in
      let (), tl =
        time (fun () ->
            for _ = 1 to reps do
              ignore (Cobegin_static.Lint.run prog)
            done)
      in
      let tl = tl /. float_of_int reps in
      let r, te =
        time (fun () -> Race.find ~max_configs:200_000 (Step.make_ctx prog))
      in
      let ratio = if tl > 0. then te /. tl else Float.infinity in
      row "philosophers-%-3d %14.6f %14.6f %9.0fx   (dynamic races: %d, %s)@."
        n tl te ratio
        (Race.RaceSet.cardinal r.Race.races)
        (Budget.status_to_string r.Race.status))
    [ 2; 3 ]

(* --- E14: hash-consed digests vs. the legacy repr-keyed visited set ---

   The pre-interning engine keyed visited sets by [Config.repr] under the
   generic polymorphic hash, which inspects only the first ~10 nodes of
   the representation — every large state space degenerated into
   collision chains probed by deep structural equality.  [legacy_full]
   reproduces that engine verbatim (same budget protocol, same expansion
   order) so the comparison isolates the keying strategy.  Digest
   equality is equivalent to repr equality (interned ids are never
   reused), so every count must be identical. *)

type e14_counts = {
  l_configs : int;
  l_transitions : int;
  l_finals : int;
  l_deadlocks : int;
  l_errors : int;
}

let legacy_full ?(max_configs = 1_000_000) ctx : e14_counts =
  let budget = Budget.create ~max_configs () in
  let visited : (Config.repr, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let finals = ref 0 and deadlocks = ref 0 and errors = ref 0 in
  let transitions = ref 0 in
  let stop = ref None in
  let c0 = Step.init ctx in
  Hashtbl.replace visited (Config.repr c0) ();
  Queue.add c0 queue;
  while !stop = None && not (Queue.is_empty queue) do
    match
      Budget.check budget ~configs:(Hashtbl.length visited)
        ~transitions:!transitions
    with
    | Some r -> stop := Some r
    | None -> (
        let c = Queue.pop queue in
        if Config.is_error c then incr errors
        else if Config.all_terminated c then incr finals
        else
          match Step.enabled_processes ctx c with
          | [] -> incr deadlocks
          | enabled ->
              let rec fire_each = function
                | [] -> ()
                | p :: rest ->
                    incr transitions;
                    let c', _ = Step.fire ctx c p in
                    let k = Config.repr c' in
                    (if not (Hashtbl.mem visited k) then
                       match
                         Budget.config_guard budget
                           ~configs:(Hashtbl.length visited)
                       with
                       | Some r -> stop := Some r
                       | None ->
                           Hashtbl.replace visited k ();
                           Queue.add c' queue);
                    if !stop = None then fire_each rest
              in
              fire_each enabled)
  done;
  {
    l_configs = Hashtbl.length visited;
    l_transitions = !transitions;
    l_finals = !finals;
    l_deadlocks = !deadlocks;
    l_errors = !errors;
  }

let digest_counts (r : Space.result) =
  {
    l_configs = r.Space.stats.Space.configurations;
    l_transitions = r.Space.stats.Space.transitions;
    l_finals = r.Space.stats.Space.finals;
    l_deadlocks = r.Space.stats.Space.deadlocks;
    l_errors = r.Space.stats.Space.errors;
  }

(* [agree] over the whole corpus; returns the mismatching names. *)
let e14_corpus_check ~max_configs =
  List.filter_map
    (fun (name, src) ->
      let ctx () = Step.make_ctx (parse src) in
      let legacy = legacy_full ~max_configs (ctx ()) in
      let digest = digest_counts (Space.full ~max_configs (ctx ())) in
      if legacy = digest then None else Some name)
    Corpus.all

let e14 () =
  section "E14" "Hash-consed digests vs. legacy repr-keyed visited sets";
  row "counts (configs/transitions/finals/deadlocks) must be identical;@.";
  row "wall time must drop: the digest probe is a few int compares@.";
  let mismatches = e14_corpus_check ~max_configs:20_000 in
  row "corpus count agreement: %d/%d models%s@."
    (List.length Corpus.all - List.length mismatches)
    (List.length Corpus.all)
    (match mismatches with
    | [] -> ""
    | l -> " — MISMATCH: " ^ String.concat ", " l);
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  row "%-20s %10s %12s %12s %10s %14s@." "workload" "configs" "legacy (s)"
    "digest (s)" "speedup" "peak heap (MW)";
  List.iter
    (fun (label, rounds, n) ->
      let src = Philosophers.program ~rounds n in
      let ctx () = Step.make_ctx (parse src) in
      (* run the digest engine first: top_heap_words is monotone, so the
         smaller footprint must be measured before the larger one *)
      Gc.compact ();
      let digest, td = time (fun () -> Space.full (ctx ())) in
      let digest_peak = (Gc.quick_stat ()).Gc.top_heap_words in
      Gc.compact ();
      let legacy, tl = time (fun () -> legacy_full (ctx ())) in
      let legacy_peak = (Gc.quick_stat ()).Gc.top_heap_words in
      let d = digest_counts digest in
      row "%-20s %10d %12.3f %12.3f %9.2fx %6.1f → %.1f%s@." label
        d.l_configs tl td
        (if td > 0. then tl /. td else Float.infinity)
        (float_of_int digest_peak /. 1e6)
        (float_of_int legacy_peak /. 1e6)
        (if legacy = d then "" else "  COUNT MISMATCH"))
    [
      ("phil-2 (3 rounds)", 3, 2);
      ("phil-3", 1, 3);
      ("phil-3 (2 rounds)", 2, 3);
    ]

(* CI smoke variant: small models only, nonzero exit on any divergence
   between the legacy and digest-keyed engines. *)
let e14smoke () =
  section "E14smoke" "legacy vs digest count agreement (CI gate)";
  let mismatches = e14_corpus_check ~max_configs:2_000 in
  (match mismatches with
  | [] -> row "all %d corpus models agree@." (List.length Corpus.all)
  | l ->
      row "DIVERGENCE on: %s@." (String.concat ", " l);
      exit 1);
  let src = Philosophers.program ~rounds:1 2 in
  let legacy = legacy_full (Step.make_ctx (parse src)) in
  let digest = digest_counts (Space.full (Step.make_ctx (parse src))) in
  if legacy <> digest then begin
    row "DIVERGENCE on philosophers-2@.";
    exit 1
  end;
  row "philosophers-2: %d configurations, engines agree@." digest.l_configs

(* --- E15: telemetry overhead and per-stage wall time ---

   Two claims, as JSON rows: (a) with telemetry disabled (the default)
   the metric guards cost nothing measurable — philosophers throughput
   with and without counters enabled; (b) the pipeline's span recorder
   decomposes a run into per-stage wall seconds.  Uses wall clock
   (Unix.gettimeofday), not Sys.time: spans measure wall time too. *)

let e15 () =
  section "E15" "Telemetry: disabled-mode overhead and per-stage spans";
  let module Metrics = Cobegin_obs.Metrics in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let src = Philosophers.program ~rounds:2 3 in
  let run () = Space.full (Step.make_ctx (parse src)) in
  let was_enabled = Metrics.enabled () in
  List.iter
    (fun enabled ->
      Metrics.set_enabled enabled;
      ignore (run ());
      (* warm-up *)
      let r, t = wall run in
      row
        "{\"workload\": \"philosophers-3 (2 rounds)\", \"telemetry\": \
         \"%s\", \"configurations\": %d, \"transitions\": %d, \"wall_s\": \
         %.4f}@."
        (if enabled then "enabled" else "disabled")
        r.Space.stats.Space.configurations r.Space.stats.Space.transitions t)
    [ false; true ];
  Metrics.set_enabled was_enabled;
  List.iter
    (fun (name, src) ->
      let spans = Cobegin_obs.Span.create () in
      let options =
        { Pipeline.default_options with find_races = true; lint = true }
      in
      let report = Pipeline.analyze ~options ~spans (parse src) in
      row "{\"workload\": \"%s\", \"stage_wall_s\": {%s}}@." name
        (String.concat ", "
           (List.map
              (fun (stage, dur) ->
                Printf.sprintf "\"%s\": %.6f" stage dur)
              report.Pipeline.telemetry)))
    [
      ("fig2", Figures.fig2);
      ("fig8", Figures.fig8);
      ("example8", Figures.example8);
    ]

(* --- E16: multi-domain exploration — speedup and count agreement ---

   The parallel engine must be a drop-in for Space.full: on a complete
   run the configuration/transition counts, the terminal counts and the
   final-store multiset are schedule-independent and identical to the
   sequential engine's (max_frontier is the one schedule-dependent
   stat, so it is excluded from the agreement predicate).  Speedups are
   reported, not asserted: they depend on the host's core count
   (Domain.recommended_domain_count), and a single-core CI runner
   legitimately shows <= 1x. *)

let e16_agree (seq : Space.result) (par : Space.result) =
  let s = seq.Space.stats and p = par.Space.stats in
  s.Space.configurations = p.Space.configurations
  && s.Space.transitions = p.Space.transitions
  && s.Space.finals = p.Space.finals
  && s.Space.deadlocks = p.Space.deadlocks
  && s.Space.errors = p.Space.errors
  && Space.final_store_reprs seq = Space.final_store_reprs par

(* Sequential-vs-parallel agreement over the whole corpus; returns the
   mismatching names. *)
let e16_corpus_check ~jobs =
  List.filter_map
    (fun (name, src) ->
      let ctx = Step.make_ctx (parse src) in
      let seq = Space.full ctx in
      let par = Parallel.full ~jobs ctx in
      if e16_agree seq par then None else Some name)
    Corpus.all

let e16 () =
  section "E16" "Multi-domain exploration: speedup and count agreement";
  row "host: %d recommended domains@." (Domain.recommended_domain_count ());
  List.iter
    (fun jobs ->
      let mismatches = e16_corpus_check ~jobs in
      row "corpus agreement (jobs=%d): %d/%d models%s@." jobs
        (List.length Corpus.all - List.length mismatches)
        (List.length Corpus.all)
        (match mismatches with
        | [] -> ""
        | l -> " — MISMATCH: " ^ String.concat ", " l))
    [ 2; 4 ];
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  row "%-20s %10s %6s %10s %9s %16s@." "workload" "configs" "jobs"
    "wall (s)" "speedup" "peak heap (MW)";
  List.iter
    (fun (label, rounds, n) ->
      let src = Philosophers.program ~rounds n in
      let ctx () = Step.make_ctx (parse src) in
      Gc.compact ();
      let seq, t1 = wall (fun () -> Space.full (ctx ())) in
      (* top_heap_words is monotone across the process, so each row's
         peak is really "peak so far" — comparable within a workload
         only as an upper bound *)
      let peak () = float_of_int (Gc.quick_stat ()).Gc.top_heap_words /. 1e6 in
      row "%-20s %10d %6d %10.3f %8s %16.1f@." label
        seq.Space.stats.Space.configurations 1 t1 "1.00x" (peak ());
      List.iter
        (fun jobs ->
          Gc.compact ();
          let par, tp = wall (fun () -> Parallel.full ~jobs (ctx ())) in
          row "%-20s %10d %6d %10.3f %7.2fx %16.1f%s@." label
            par.Space.stats.Space.configurations jobs tp
            (if tp > 0. then t1 /. tp else Float.infinity)
            (peak ())
            (if e16_agree seq par then "" else "  COUNT MISMATCH"))
        [ 2; 4; 8 ])
    [
      ("phil-2 (3 rounds)", 3, 2);
      ("phil-3", 1, 3);
      ("phil-3 (2 rounds)", 2, 3);
    ]

(* CI smoke variant: the agreement gate only — nonzero exit when any
   corpus model diverges between the sequential and parallel engines.
   Deliberately no speedup assertion: a single-core runner can't show
   one. *)
let e16smoke () =
  section "E16smoke" "sequential vs parallel count agreement (CI gate)";
  List.iter
    (fun jobs ->
      match e16_corpus_check ~jobs with
      | [] ->
          row "jobs=%d: all %d corpus models agree@." jobs
            (List.length Corpus.all)
      | l ->
          row "jobs=%d: DIVERGENCE on: %s@." jobs (String.concat ", " l);
          exit 1)
    [ 2; 4 ]

(* --- E17: checkpoint overhead and recovery cost ---

   Two costs of the robustness layer, as JSON rows: (a) what cadenced
   checkpointing adds to a clean exploration (cadence sweep: off, every
   1s, every 100ms — the pop-count trigger is effectively disabled so
   the wall clock drives the saves), and (b) what one injected worker
   kill costs the supervised pipeline against an undisturbed run at the
   same jobs count — the price of walking the jobs N -> 1 rung and
   re-exploring sequentially. *)

let e17 () =
  section "E17" "Chaos & checkpoint: overhead and recovery cost";
  Cobegin_obs.Metrics.set_enabled true;
  let m_saves = Cobegin_obs.Metrics.counter "checkpoint.saves" in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let workloads =
    [ ("phil-3", 1, 3); ("phil-3 (2 rounds)", 2, 3) ]
  in
  List.iter
    (fun (label, rounds, n) ->
      let src = Philosophers.program ~rounds n in
      let ctx () = Step.make_ctx (parse src) in
      Gc.compact ();
      let base, t_base = wall (fun () -> Space.full (ctx ())) in
      let json ~cadence ~saves ~wall_s (r : Space.result) =
        row
          "{\"experiment\": \"E17\", \"mode\": \"checkpoint\", \
           \"workload\": \"%s\", \"cadence\": %s, \"configurations\": \
           %d, \"saves\": %d, \"wall_s\": %.4f, \"overhead\": %s, \
           \"status\": \"%s\"}@."
          label cadence r.Space.stats.Space.configurations saves wall_s
          (if t_base > 0. then Printf.sprintf "%.2f" (wall_s /. t_base)
           else "null")
          (Budget.status_to_string r.Space.status)
      in
      json ~cadence:"null" ~saves:0 ~wall_s:t_base base;
      List.iter
        (fun (cadence_label, cadence) ->
          let path = Filename.temp_file "cobegin-e17" ".ckpt" in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              let saves0 = Cobegin_obs.Metrics.counter_value m_saves in
              Gc.compact ();
              let r, t =
                wall (fun () -> Checkpoint.full ~cadence ~path (ctx ()))
              in
              json ~cadence:cadence_label
                ~saves:(Cobegin_obs.Metrics.counter_value m_saves - saves0)
                ~wall_s:t r))
        [
          ( "\"1s\"",
            { Checkpoint.every_configs = max_int; every_s = Some 1.0 } );
          ( "\"100ms\"",
            { Checkpoint.every_configs = max_int; every_s = Some 0.1 } );
          ( "\"256 pops\"",
            { Checkpoint.every_configs = 256; every_s = None } );
        ])
    workloads;
  (* recovery cost: one worker killed early at jobs=4, the supervisor
     degrades to the sequential engine and completes *)
  let src = Philosophers.program ~rounds:2 3 in
  let options = { Pipeline.default_options with jobs = 4 } in
  let json_rec ~fault ~wall_s (r : Pipeline.report) =
    row
      "{\"experiment\": \"E17\", \"mode\": \"recovery\", \"workload\": \
       \"phil-3 (2 rounds)\", \"jobs\": 4, \"fault\": %s, \
       \"configurations\": %d, \"rungs\": %d, \"recovered\": %b, \
       \"degraded\": %b, \"wall_s\": %.4f}@."
      fault r.Pipeline.stats.Pipeline.configurations
      (List.length r.Pipeline.recovery)
      (Budget.is_complete r.Pipeline.status)
      r.Pipeline.degraded wall_s
  in
  Gc.compact ();
  let clean, t_clean = wall (fun () -> Pipeline.analyze_source ~options src) in
  json_rec ~fault:"null" ~wall_s:t_clean clean;
  let spec = "kill@worker1:50" in
  (match Fault.parse spec with
  | Error e -> row "bad spec: %s@." e
  | Ok plan ->
      Fault.install plan;
      Fun.protect ~finally:Fault.clear (fun () ->
          Gc.compact ();
          let r, t = wall (fun () -> Pipeline.analyze_source ~options src) in
          json_rec ~fault:(Printf.sprintf "%S" spec) ~wall_s:t r))

(* --- E18: thread-modular interference — escaping the explosion ---

   The rely-guarantee engine analyzes each philosopher once per fixpoint
   round, so its cost is linear in N × rounds while every explicit
   engine — even stubborn+sleep — pays a state space that grows
   exponentially with N.  The crossover table runs both to N = 6 and the
   interference engine alone to N = 30; the headline claim (asserted by
   E18smoke in CI) is that philosophers-30 under interference costs less
   wall time than philosophers-6 under the best explicit engine. *)

let e18_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let e18_interfere n =
  let prog = parse (Philosophers.program n) in
  e18_wall (fun () -> Interfere.run prog)

let e18_sleep n =
  let prog = parse (Philosophers.program n) in
  e18_wall (fun () ->
      Sleep.explore
        ~budget:(Budget.create ~max_configs:500_000 ())
        (Step.make_ctx prog))

let e18 () =
  section "E18" "Interference analysis vs explicit engines (philosophers)";
  row "%-16s %14s %8s %14s %12s@." "workload" "interfere (s)" "rounds"
    "sleep (s)" "configs";
  List.iter
    (fun n ->
      let s, ti = e18_interfere n in
      if n <= 6 then begin
        let r, te = e18_sleep n in
        row "philosophers-%-3d %14.6f %8d %14.6f %12d  (%s)@." n ti
          s.Interfere.rounds te
          r.Space.stats.Space.configurations
          (Budget.status_to_string r.Space.status)
      end
      else
        row "philosophers-%-3d %14.6f %8d %14s %12s@." n ti
          s.Interfere.rounds "-" "-")
    [ 2; 3; 4; 5; 6; 10; 20; 30 ];
  let s30, t30 = e18_interfere 30 in
  let _, t6 = e18_sleep 6 in
  row
    "crossover: interfere(phil-30) %.4fs vs sleep(phil-6) %.4fs — %.0fx \
     under, status %s@."
    t30 t6
    (if t30 > 0. then t6 /. t30 else Float.infinity)
    (Budget.status_to_string s30.Interfere.status)

(* CI smoke variant: the acceptance gate — philosophers-30 under the
   interference engine must complete, report no verdicts (the protocol
   is clean), and cost less wall time than philosophers-6 under
   stubborn+sleep.  Nonzero exit otherwise. *)
let e18smoke () =
  section "E18smoke" "interference crossover gate (CI gate)";
  let s30, t30 = e18_interfere 30 in
  let r6, t6 = e18_sleep 6 in
  let v = s30.Interfere.verdicts in
  let clean =
    Budget.is_complete s30.Interfere.status
    && v.Interfere.assert_may_fail = []
    && v.Interfere.never_proceeds = []
    && v.Interfere.error_sites = []
    && v.Interfere.races = []
  in
  row "interfere(phil-30): %.4fs, %d rounds, %s | sleep(phil-6): %.4fs (%s)@."
    t30 s30.Interfere.rounds
    (Budget.status_to_string s30.Interfere.status)
    t6
    (Budget.status_to_string r6.Space.status);
  if not clean then begin
    row "GATE FAILED: philosophers-30 not clean/complete@.";
    exit 1
  end;
  if t30 >= t6 then begin
    row "GATE FAILED: interfere(phil-30) not under sleep(phil-6)@.";
    exit 1
  end;
  row "gate passed: %.0fx under@." (t6 /. t30)

(* --- E19: relaxed memory — the protocol matrix and the buffer blowup

   The store-buffer models (docs/INTERNALS.md §11) make the classic
   mutual-exclusion protocols fail exactly the way weak hardware breaks
   them: Peterson and Dekker rely on store-to-load order (TSO and PSO
   both relax it), and PSO additionally reorders the flag/turn stores.
   The fenced variants verify clean under all three models.  The table
   also shows the price: every reachable buffer occupancy multiplies
   the state space. *)

let e19_models = [ "peterson"; "peterson_fenced"; "dekker"; "dekker_fenced" ]

let e19_run name model =
  let src =
    match Corpus.find name with
    | Some src -> src
    | None -> failwith ("no corpus model " ^ name)
  in
  Space.full (Step.make_ctx ~model (parse src))

let e19 () =
  section "E19" "TSO/PSO store buffers: protocol matrix and blowup";
  row "%-18s %-5s %14s %12s %8s@." "model" "mm" "configurations"
    "transitions" "errors";
  List.iter
    (fun name ->
      List.iter
        (fun (mm, model) ->
          let r = e19_run name model in
          row "%-18s %-5s %14d %12d %8d@." name mm
            r.Space.stats.Space.configurations
            r.Space.stats.Space.transitions r.Space.stats.Space.errors)
        [ ("sc", Step.Sc); ("tso", Step.Tso); ("pso", Step.Pso) ])
    e19_models;
  let sc = e19_run "peterson" Step.Sc in
  let pso = e19_run "peterson" Step.Pso in
  row "blowup: peterson %d configs under SC, %d under PSO (%.0fx)@."
    sc.Space.stats.Space.configurations pso.Space.stats.Space.configurations
    (float_of_int pso.Space.stats.Space.configurations
    /. float_of_int sc.Space.stats.Space.configurations)

(* CI smoke variant: the acceptance gate — the unfenced protocols must
   violate mutual exclusion under both relaxed models, the fenced ones
   must verify clean under all three, and SC counts must sit at their
   pinned seed values.  Nonzero exit otherwise. *)
let e19smoke () =
  section "E19smoke" "memory-model protocol gate (CI gate)";
  let fail fmt =
    Format.kasprintf
      (fun m ->
        row "GATE FAILED: %s@." m;
        exit 1)
      fmt
  in
  let errors name model =
    let r = e19_run name model in
    if not (Budget.is_complete r.Space.status) then
      fail "%s did not complete" name;
    r.Space.stats.Space.errors
  in
  List.iter
    (fun (name, model, mm) ->
      if errors name model = 0 then
        fail "%s finds no violation under %s" name mm)
    [
      ("peterson", Step.Tso, "tso"); ("peterson", Step.Pso, "pso");
      ("dekker", Step.Tso, "tso"); ("dekker", Step.Pso, "pso");
    ];
  List.iter
    (fun name ->
      List.iter
        (fun (mm, model) ->
          let e = errors name model in
          if e <> 0 then fail "%s has %d errors under %s" name e mm)
        [ ("sc", Step.Sc); ("tso", Step.Tso); ("pso", Step.Pso) ])
    [ "peterson_fenced"; "dekker_fenced" ];
  let sc = e19_run "peterson" Step.Sc in
  if sc.Space.stats.Space.configurations <> 57 then
    fail "peterson SC configurations moved: %d (pinned 57)"
      sc.Space.stats.Space.configurations;
  row "gate passed: unfenced protocols break, fenced verify, SC pinned@."

(* --- E20: journal overhead — breadcrumbs on vs off ---

   The engines' journal breadcrumbs are sampled (one Debug progress
   event per [Space.journal_every] pops) behind a single atomic load,
   so an exploration with the journal attached to a sink should cost
   about the same as one without — the docs claim ~2% on philosophers.
   Measured best-of-3 against a null sink; the smoke gate is
   deliberately looser (25%) because CI wall clocks are noisy. *)

let e20_measure () =
  let module Journal = Cobegin_obs.Journal in
  let src = Philosophers.program ~rounds:2 3 in
  let ctx = Step.make_ctx (parse src) in
  let run () = Space.full ctx in
  let best f =
    ignore (f ());
    (* warm-up *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let t_off = best run in
  let null = open_out Filename.null in
  Journal.start ~threshold:Journal.Debug ~sink:null ();
  let t_on = best run in
  Journal.stop ();
  close_out null;
  (t_off, t_on)

let e20 () =
  section "E20" "Journal: enabled-vs-disabled exploration overhead";
  let t_off, t_on = e20_measure () in
  row
    "{\"workload\": \"philosophers-3 (2 rounds)\", \"journal\": \
     \"disabled\", \"wall_s\": %.4f}@."
    t_off;
  row
    "{\"workload\": \"philosophers-3 (2 rounds)\", \"journal\": \
     \"debug+sink\", \"wall_s\": %.4f, \"overhead\": \"%.1f%%\"}@."
    t_on
    ((t_on -. t_off) /. t_off *. 100.)

let e20smoke () =
  section "E20smoke" "journal overhead gate (CI gate)";
  let t_off, t_on = e20_measure () in
  let overhead = (t_on -. t_off) /. t_off *. 100. in
  row "journal off %.4fs, on %.4fs: %+.1f%% overhead@." t_off t_on overhead;
  if overhead > 25. then begin
    row "GATE FAILED: journal overhead %.1f%% exceeds 25%%@." overhead;
    exit 1
  end;
  row "gate passed: journal breadcrumbs are in the noise@."

(* --- E21: serve daemon — sustained requests/sec, cold vs warm ---

   One in-process daemon per pool size, driven over its Unix socket
   exactly like an external client.  The cold pass submits every
   corpus model once (all misses: each request runs the full pipeline,
   capped at 20k configurations); the warm pass submits the same
   requests again from [pool] concurrent client domains (all hits: the
   content-addressed cache replays the stored report bytes).  The
   smoke gate asserts what the cache promises — every warm response is
   a hit and the warm pass beats the cold pass. *)

module Serve = Cobegin_serve.Serve
module Sjson = Cobegin_serve.Sjson

let e21_session ~pool f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cobegin-e21-%d-%d.sock" (Unix.getpid ()) pool)
  in
  let defaults = { Pipeline.default_options with max_configs = 20_000 } in
  let daemon =
    Serve.make
      {
        Serve.socket;
        capacity = 64;
        cache_dir = None;
        pool;
        defaults;
        spans = None;
      }
  in
  let d = Domain.spawn (fun () -> Serve.run daemon) in
  let rec req ?(tries = 100) line =
    match Serve.request ~socket line with
    | r -> r
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.05;
        req ~tries:(tries - 1) line
  in
  ignore (req {|{"op":"ping"}|});
  let result = f req in
  ignore (req {|{"op":"shutdown"}|});
  Domain.join d;
  result

let e21_lines () =
  List.map
    (fun name -> Serve.analyze_line (Option.get (Corpus.find name)))
    Corpus.names

let e21_is_hit resp =
  match Sjson.parse resp with
  | Ok j -> Sjson.member "cache" j = Some (Sjson.Str "hit")
  | Error _ -> false

(* (wall seconds, hit count) of one sequential pass over [lines]. *)
let e21_pass req lines =
  let t0 = Unix.gettimeofday () in
  let hits =
    List.fold_left
      (fun acc line -> if e21_is_hit (req line) then acc + 1 else acc)
      0 lines
  in
  (Unix.gettimeofday () -. t0, hits)

let e21_measure ~pool =
  let lines = e21_lines () in
  e21_session ~pool (fun req ->
      let cold_s, cold_hits = e21_pass req lines in
      (* warm: [pool] concurrent clients replaying the whole corpus *)
      let t0 = Unix.gettimeofday () in
      let clients =
        List.init pool (fun _ ->
            Domain.spawn (fun () ->
                List.fold_left
                  (fun acc line ->
                    if e21_is_hit (req line) then acc + 1 else acc)
                  0 lines))
      in
      let warm_hits = List.fold_left (fun a d -> a + Domain.join d) 0 clients in
      let warm_s = Unix.gettimeofday () -. t0 in
      let n = List.length lines in
      (n, cold_s, cold_hits, warm_s, warm_hits))

let e21 () =
  section "E21" "serve daemon: sustained requests/sec, cold vs warm";
  List.iter
    (fun pool ->
      let n, cold_s, cold_hits, warm_s, warm_hits = e21_measure ~pool in
      row
        "{\"pool\": %d, \"phase\": \"cold\", \"requests\": %d, \"wall_s\": \
         %.3f, \"req_per_s\": %.1f, \"hits\": %d}@."
        pool n cold_s
        (float_of_int n /. cold_s)
        cold_hits;
      row
        "{\"pool\": %d, \"phase\": \"warm\", \"requests\": %d, \"wall_s\": \
         %.3f, \"req_per_s\": %.1f, \"hits\": %d}@."
        pool (pool * n) warm_s
        (float_of_int (pool * n) /. warm_s)
        warm_hits)
    [ 1; 4 ]

let e21smoke () =
  section "E21smoke" "serve cache gate (CI gate)";
  let lines = e21_lines () in
  let cold_s, cold_hits, warm_s, warm_hits, n =
    e21_session ~pool:2 (fun req ->
        let cold_s, cold_hits = e21_pass req lines in
        let warm_s, warm_hits = e21_pass req lines in
        (cold_s, cold_hits, warm_s, warm_hits, List.length lines))
  in
  row "cold %d requests in %.3fs (%d hits); warm %d in %.3fs (%d hits)@." n
    cold_s cold_hits n warm_s warm_hits;
  if cold_hits <> 0 then begin
    row "GATE FAILED: %d cold submissions hit a supposedly empty cache@."
      cold_hits;
    exit 1
  end;
  if warm_hits <> n then begin
    row "GATE FAILED: only %d of %d warm submissions were cache hits@."
      warm_hits n;
    exit 1
  end;
  if warm_s >= cold_s then begin
    row "GATE FAILED: warm pass (%.3fs) not faster than cold (%.3fs)@." warm_s
      cold_s;
    exit 1
  end;
  row "gate passed: every second submission a hit, warm %.0fx faster@."
    (cold_s /. warm_s)

(* --- Bechamel timings: one per experiment family --- *)

let bechamel () =
  section "TIMING" "Bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let fig5 = parse Figures.fig5 in
  let fig8 = parse Figures.fig8 in
  let phil4 = Philosophers.net 4 in
  let tests =
    [
      Test.make ~name:"E3-fig5-full"
        (Staged.stage (fun () -> Space.full (Step.make_ctx fig5)));
      Test.make ~name:"E3-fig5-stubborn"
        (Staged.stage (fun () -> Stubborn.explore (Step.make_ctx fig5)));
      Test.make ~name:"E4-phil4-full"
        (Staged.stage (fun () -> Reach.full phil4));
      Test.make ~name:"E4-phil4-stubborn"
        (Staged.stage (fun () -> Reach.stubborn phil4));
      Test.make ~name:"E2-fig3-abstract"
        (Staged.stage (fun () ->
             Analyzer.analyze ~folding:Machine.Control (parse Figures.fig3)));
      Test.make ~name:"E6-fig8-pipeline"
        (Staged.stage (fun () -> Pipeline.analyze fig8));
      Test.make ~name:"E7-coarsen-fig5"
        (Staged.stage (fun () -> Cobegin_trans.Coarsen.program fig5));
      Test.make ~name:"E8-clan3"
        (Staged.stage (fun () ->
             Analyzer.analyze ~folding:Machine.Clan
               (parse (Figures.clan_workload 3))));
    ]
  in
  let grouped = Test.make_grouped ~name:"experiments" ~fmt:"%s %s" tests in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name r acc ->
        let est =
          match Analyze.OLS.estimates r with
          | Some [ e ] -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  row "%-32s %16s@." "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      row "%-32s %16s@." name pretty)
    rows

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E14smoke", e14smoke);
    ("E15", e15); ("E16", e16); ("E16smoke", e16smoke); ("E17", e17);
    ("E18", e18); ("E18smoke", e18smoke); ("E19", e19);
    ("E19smoke", e19smoke); ("E20", e20); ("E20smoke", e20smoke);
    ("E21", e21); ("E21smoke", e21smoke);
    ("TIMING", bechamel);
  ]

let () =
  let wanted = Array.to_list Sys.argv |> List.tl in
  let run (id, f) =
    if wanted = [] || List.mem id wanted then f ()
  in
  Format.printf
    "Reproduction harness — Chow & Harrison, ICPP 1992 (see EXPERIMENTS.md)@.";
  List.iter run experiments;
  Format.printf "@.done.@."
