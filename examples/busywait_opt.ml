(* The busy-waiting example from the paper's introduction: a sequential
   compiler would hoist the load of [flag] out of the waiting loop and
   break the program.  The framework sees the cross-thread flow
   dependence (flag is a critical reference), so the "optimization" is
   rejected; it also proves the synchronized read of [data] is *not* a
   race, while the unsynchronized variant is.

     dune exec examples/busywait_opt.exe *)

open Cobegin_core
open Cobegin_models
open Cobegin_analysis

let () =
  let prog = Pipeline.load_source Figures.busywait in
  Format.printf "program:@.%a@." Cobegin_lang.Pretty.pp_program prog;

  let report = Pipeline.analyze prog in

  (* 1. flag and data are critical references: no reordering across them *)
  Format.printf "=== critical references ===@.%a@.@."
    Cobegin_trans.Critical.pp report.Pipeline.critical;

  (* 2. every interleaving satisfies the final assertion: exploration
     finds no error configuration *)
  Format.printf "=== exploration ===@.%a@.@." Pipeline.pp_stats
    report.Pipeline.stats;
  assert (report.Pipeline.stats.Pipeline.errors = 0);

  (* 3. the await-synchronized accesses to data are never co-enabled... *)
  let ctx = Cobegin_semantics.Step.make_ctx prog in
  let races = (Race.find ctx).Race.races in
  Format.printf "races (synchronized version): %a@.@." Race.pp races;

  (* ...but the racy counter version shows anomalies *)
  let racy = Pipeline.load_source Figures.mutex_racy in
  let races' = (Race.find (Cobegin_semantics.Step.make_ctx racy)).Race.races in
  Format.printf "races (unsynchronized counter): %a@." Race.pp races';
  assert (not (Race.RaceSet.is_empty races'))
