(* Hand-written lexer.  Comments: // to end of line and (nesting) /* */. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string (* keywords *)
  | PUNCT of string (* operators and punctuation *)
  | EOF

type pos = { line : int; col : int }

type lexed = { tok : token; pos : pos }

exception Error of string * pos

let keywords =
  [
    "proc"; "var"; "if"; "else"; "while"; "cobegin"; "coend"; "atomic";
    "await"; "lock"; "unlock"; "assert"; "skip"; "fence"; "return"; "malloc";
    "free"; "true"; "false";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i = { line = !line; col = i - !bol + 1 } in
  let rec skip_ws i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> skip_ws (i + 1)
      | '\n' ->
          incr line;
          bol := i + 1;
          skip_ws (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol i = if i < n && src.[i] <> '\n' then eol (i + 1) else i in
          skip_ws (eol i)
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec close i depth =
            if i + 1 >= n then raise (Error ("unterminated comment", pos i))
            else if src.[i] = '*' && src.[i + 1] = '/' then
              if depth = 1 then i + 2 else close (i + 2) (depth - 1)
            else if src.[i] = '/' && src.[i + 1] = '*' then close (i + 2) (depth + 1)
            else begin
              if src.[i] = '\n' then begin
                incr line;
                bol := i + 1
              end;
              close (i + 1) depth
            end
          in
          skip_ws (close (i + 2) 1)
      | _ -> i
  in
  let rec lex acc i =
    let i = skip_ws i in
    if i >= n then List.rev ({ tok = EOF; pos = pos i } :: acc)
    else
      let p = pos i in
      let c = src.[i] in
      if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        let v = int_of_string (String.sub src i (!j - i)) in
        lex ({ tok = INT v; pos = p } :: acc) !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do
          incr j
        done;
        let s = String.sub src i (!j - i) in
        let tok = if List.mem s keywords then KW s else IDENT s in
        lex ({ tok; pos = p } :: acc) !j
      end
      else
        let two =
          if i + 1 < n then Some (String.sub src i 2) else None
        in
        match two with
        | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||") as op) ->
            lex ({ tok = PUNCT op; pos = p } :: acc) (i + 2)
        | _ -> (
            match c with
            | '(' | ')' | '{' | '}' | ';' | ',' | '=' | '<' | '>' | '+' | '-'
            | '*' | '/' | '!' | '&' ->
                lex ({ tok = PUNCT (String.make 1 c); pos = p } :: acc) (i + 1)
            | _ ->
                raise
                  (Error (Printf.sprintf "unexpected character %C" c, p)))
  in
  lex [] 0

let pp_token ppf = function
  | INT n -> Format.fprintf ppf "%d" n
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | PUNCT s -> Format.fprintf ppf "'%s'" s
  | EOF -> Format.pp_print_string ppf "end of input"
