(** Static well-formedness checks, run before any analysis: declaration
    before use (procedure names double as function values when not
    shadowed), arity of direct calls, duplicate procedures/parameters,
    lock targets in scope, label uniqueness, atomic-block shape.
    Diagnostics are collected, not fail-fast. *)

type diagnostic = { dlabel : Ast.label option; message : string }

val pp_diagnostic : Format.formatter -> diagnostic -> unit

type result = { errors : diagnostic list }
(** Sorted by statement label, unlabeled (program-level) diagnostics
    first; collection order breaks ties. *)

val ok : result -> bool
val check : Ast.program -> result

exception Ill_formed of diagnostic list

val check_exn : Ast.program -> unit
(** @raise Ill_formed when any diagnostic is produced. *)
