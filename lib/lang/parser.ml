(* Recursive-descent parser.  Grammar sketch:

     program  := proc*
     proc     := "proc" IDENT "(" [IDENT ("," IDENT)*] ")" block
     block    := "{" stmt* "}"
     stmt     := "var" IDENT "=" rhs ";"
               | "skip" ";" | "return" [expr] ";"
               | "if" "(" expr ")" block ["else" (block | if-stmt)]
               | "while" "(" expr ")" block
               | "cobegin" block+ "coend" [";"]
               | "atomic" block
               | "await" "(" expr ")" ";"
               | "lock" "(" IDENT ")" ";" | "unlock" "(" IDENT ")" ";"
               | "assert" "(" expr ")" ";" | "free" "(" expr ")" ";"
               | IDENT "(" args ")" ";"                      direct call
               | "(" expr ")" "(" args ")" ";"               indirect call
               | lvalue "=" rhs ";"
     rhs      := "malloc" "(" expr ")"
               | callee "(" args ")"        when callee is IDENT or (expr)
               | expr
     lvalue   := IDENT | "*" unary
     expr     := usual precedence: or < and < comparisons < additive
                 < multiplicative < unary < primary

   Calls are statements, never sub-expressions: one statement is one
   atomic action (plus procedure entry/exit movements). *)

open Ast

exception Error of string * Lexer.pos

type state = { mutable toks : Lexer.lexed list; mutable next_label : int }

let fresh st =
  st.next_label <- st.next_label + 1;
  st.next_label

let mk st kind = { label = fresh st; kind }

let peek st =
  match st.toks with [] -> Lexer.EOF | l :: _ -> l.Lexer.tok

let peek2 st =
  match st.toks with
  | _ :: l :: _ -> l.Lexer.tok
  | _ -> Lexer.EOF

let pos st =
  match st.toks with
  | [] -> { Lexer.line = 0; col = 0 }
  | l :: _ -> l.Lexer.pos

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg = raise (Error (msg, pos st))

let expect_punct st s =
  match peek st with
  | Lexer.PUNCT p when p = s -> advance st
  | t -> fail st (Format.asprintf "expected '%s', found %a" s Lexer.pp_token t)

let expect_kw st s =
  match peek st with
  | Lexer.KW k when k = s -> advance st
  | t -> fail st (Format.asprintf "expected '%s', found %a" s Lexer.pp_token t)

let expect_ident st =
  match peek st with
  | Lexer.IDENT x ->
      advance st;
      x
  | t -> fail st (Format.asprintf "expected identifier, found %a" Lexer.pp_token t)

(* --- expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.PUNCT "||" ->
      advance st;
      Ebinop (Or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Lexer.PUNCT "&&" ->
      advance st;
      Ebinop (And, lhs, parse_and st)
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.PUNCT "==" -> Some Eq
    | Lexer.PUNCT "!=" -> Some Ne
    | Lexer.PUNCT "<" -> Some Lt
    | Lexer.PUNCT "<=" -> Some Le
    | Lexer.PUNCT ">" -> Some Gt
    | Lexer.PUNCT ">=" -> Some Ge
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Ebinop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT "+" ->
        advance st;
        loop (Ebinop (Add, lhs, parse_mul st))
    | Lexer.PUNCT "-" ->
        advance st;
        loop (Ebinop (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT "*" ->
        advance st;
        loop (Ebinop (Mul, lhs, parse_unary st))
    | Lexer.PUNCT "/" ->
        advance st;
        loop (Ebinop (Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "!" ->
      advance st;
      Eunop (Not, parse_unary st)
  | Lexer.PUNCT "-" ->
      advance st;
      Eunop (Neg, parse_unary st)
  | Lexer.PUNCT "*" ->
      advance st;
      Ederef (parse_unary st)
  | Lexer.PUNCT "&" ->
      advance st;
      Eaddr (expect_ident st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Eint n
  | Lexer.KW "true" ->
      advance st;
      Ebool true
  | Lexer.KW "false" ->
      advance st;
      Ebool false
  | Lexer.IDENT x ->
      advance st;
      Evar x
  | Lexer.PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | t -> fail st (Format.asprintf "expected expression, found %a" Lexer.pp_token t)

(* --- statements --- *)

let parse_args st =
  expect_punct st "(";
  if peek st = Lexer.PUNCT ")" then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | Lexer.PUNCT "," ->
          advance st;
          loop (e :: acc)
      | _ ->
          expect_punct st ")";
          List.rev (e :: acc)
    in
    loop []

(* [parse_stmt] returns a *list* of statements: declarations with complex
   initializers (var x = malloc(..) / var x = f(..)) desugar into a
   declaration followed by the operation, spliced into the enclosing block
   so that the binding scopes over the rest of that block. *)
let rec parse_stmt st : stmt list =
  match peek st with
  | Lexer.KW "skip" ->
      advance st;
      expect_punct st ";";
      [ mk st Sskip ]
  | Lexer.KW "fence" ->
      advance st;
      expect_punct st ";";
      [ mk st Sfence ]
  | Lexer.KW "var" ->
      advance st;
      let x = expect_ident st in
      expect_punct st "=";
      let ss = parse_rhs st (Lvar x) ~decl:(Some x) in
      expect_punct st ";";
      ss
  | Lexer.KW "return" ->
      advance st;
      if peek st = Lexer.PUNCT ";" then begin
        advance st;
        [ mk st (Sreturn None) ]
      end
      else
        let e = parse_expr st in
        expect_punct st ";";
        [ mk st (Sreturn (Some e)) ]
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let then_b = parse_block st in
      let else_b =
        match peek st with
        | Lexer.KW "else" ->
            advance st;
            if peek st = Lexer.KW "if" then
              match parse_stmt st with
              | [ s ] -> s
              | ss -> mk st (Sblock ss)
            else parse_block st
        | _ -> mk st Sskip
      in
      [ mk st (Sif (c, then_b, else_b)) ]
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let body = parse_block st in
      [ mk st (Swhile (c, body)) ]
  | Lexer.KW "cobegin" ->
      advance st;
      let rec branches acc =
        if peek st = Lexer.PUNCT "{" then branches (parse_block st :: acc)
        else List.rev acc
      in
      let bs = branches [] in
      if bs = [] then fail st "cobegin needs at least one branch";
      expect_kw st "coend";
      if peek st = Lexer.PUNCT ";" then advance st;
      [ mk st (Scobegin bs) ]
  | Lexer.KW "atomic" ->
      let p = pos st in
      advance st;
      let b = parse_block st in
      let ss = match b.kind with Sblock ss -> ss | _ -> [ b ] in
      List.iter
        (fun (s : stmt) ->
          match s.kind with
          | Sskip | Sdecl _ | Sassign _ | Sassert _ -> ()
          | _ ->
              raise
                (Error
                   ( "atomic blocks may contain only simple statements",
                     p )))
        ss;
      [ mk st (Satomic ss) ]
  | Lexer.KW "await" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      [ mk st (Sawait e) ]
  | Lexer.KW "lock" ->
      advance st;
      expect_punct st "(";
      let x = expect_ident st in
      expect_punct st ")";
      expect_punct st ";";
      [ mk st (Sacquire x) ]
  | Lexer.KW "unlock" ->
      advance st;
      expect_punct st "(";
      let x = expect_ident st in
      expect_punct st ")";
      expect_punct st ";";
      [ mk st (Srelease x) ]
  | Lexer.KW "assert" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      [ mk st (Sassert e) ]
  | Lexer.KW "free" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      expect_punct st ";";
      [ mk st (Sfree e) ]
  | Lexer.PUNCT "{" -> [ parse_block st ]
  | Lexer.IDENT f when peek2 st = Lexer.PUNCT "(" ->
      (* direct call without result *)
      advance st;
      let args = parse_args st in
      expect_punct st ";";
      [ mk st (Scall (None, Evar f, args)) ]
  | _ ->
      (* lvalue "=" rhs ";"  or  "(" expr ")" "(" args ")" ";" *)
      let target = parse_unary st in
      if peek st = Lexer.PUNCT "(" then begin
        (* indirect call without result: callee expression then args *)
        let args = parse_args st in
        expect_punct st ";";
        [ mk st (Scall (None, target, args)) ]
      end
      else begin
        let lv =
          match target with
          | Evar x -> Lvar x
          | Ederef e -> Lderef e
          | _ -> fail st "left-hand side must be a variable or a dereference"
        in
        expect_punct st "=";
        let ss = parse_rhs st lv ~decl:None in
        expect_punct st ";";
        ss
      end

(* Right-hand side of [lv =] or [var x =]: malloc, call, or expression. *)
and parse_rhs st dest ~decl : stmt list =
  match peek st with
  | Lexer.KW "malloc" ->
      advance st;
      expect_punct st "(";
      let e = parse_expr st in
      expect_punct st ")";
      wrap_decl st ~decl (Smalloc (dest, e))
  | Lexer.IDENT f when peek2 st = Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      wrap_decl st ~decl (Scall (Some dest, Evar f, args))
  | _ ->
      let e = parse_expr st in
      if peek st = Lexer.PUNCT "(" then
        (* indirect call with result through a parenthesized callee expr *)
        let args = parse_args st in
        wrap_decl st ~decl (Scall (Some dest, e, args))
      else wrap_decl st ~decl (Sassign (dest, e))

(* [var x = e] is a single Sdecl; [var x = malloc(..)] and
   [var x = f(..)] become a declaration followed by the operation, spliced
   into the enclosing block (so the binding scopes over the block rest). *)
and wrap_decl st ~decl kind : stmt list =
  match (decl, kind) with
  | None, _ -> [ mk st kind ]
  | Some x, Sassign (_, e) -> [ mk st (Sdecl (x, e)) ]
  | Some x, (Smalloc _ | Scall _) ->
      [ mk st (Sdecl (x, Eint 0)); mk st kind ]
  | Some _, _ -> assert false

and parse_block st : stmt =
  expect_punct st "{";
  let rec loop acc =
    if peek st = Lexer.PUNCT "}" then begin
      advance st;
      List.concat (List.rev acc)
    end
    else loop (parse_stmt st :: acc)
  in
  mk st (Sblock (loop []))

let parse_proc st : proc =
  expect_kw st "proc";
  let pname = expect_ident st in
  expect_punct st "(";
  let params =
    if peek st = Lexer.PUNCT ")" then begin
      advance st;
      []
    end
    else
      let rec loop acc =
        let x = expect_ident st in
        match peek st with
        | Lexer.PUNCT "," ->
            advance st;
            loop (x :: acc)
        | _ ->
            expect_punct st ")";
            List.rev (x :: acc)
      in
      loop []
  in
  let body = parse_block st in
  { pname; params; body }

let parse_program_tokens st : program =
  let rec loop acc =
    match peek st with
    | Lexer.EOF -> { procs = List.rev acc }
    | Lexer.KW "proc" -> loop (parse_proc st :: acc)
    | t ->
        fail st (Format.asprintf "expected 'proc', found %a" Lexer.pp_token t)
  in
  loop []

let parse_string src : program =
  let toks = Lexer.tokenize src in
  let st = { toks; next_label = 0 } in
  parse_program_tokens st

let parse_file path : program =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src

let pp_error ppf (msg, (p : Lexer.pos)) =
  Format.fprintf ppf "parse error at line %d, column %d: %s" p.line p.col msg
