(* Pretty-printer producing concrete syntax that reparses to the same AST
   (modulo labels); the round-trip is a qcheck property. *)

open Ast

let unop_str = function Not -> "!" | Neg -> "-"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(* Precedence levels mirroring the parser (higher binds tighter). *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5

let rec pp_expr_prec prec ppf e =
  match e with
  | Eint n -> if n < 0 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
  | Ebool b -> Format.pp_print_bool ppf b
  | Evar x -> Format.pp_print_string ppf x
  | Eaddr x -> Format.fprintf ppf "&%s" x
  | Eunop (op, e) -> Format.fprintf ppf "%s%a" (unop_str op) (pp_expr_prec 6) e
  | Ederef e -> Format.fprintf ppf "*%a" (pp_expr_prec 6) e
  | Ebinop (op, e1, e2) ->
      (* Match the parser's associativity: + - * / are left-associative,
         && and || are right-associative, comparisons do not chain.  The
         operand on the non-associating side is printed at one level
         tighter so it gets parenthesized when it is a same-level binop. *)
      let p = binop_prec op in
      let lp, rp =
        match op with
        | Add | Sub | Mul | Div -> (p, p + 1)
        | And | Or -> (p + 1, p)
        | Eq | Ne | Lt | Le | Gt | Ge -> (p + 1, p + 1)
      in
      let body ppf () =
        Format.fprintf ppf "%a %s %a" (pp_expr_prec lp) e1 (binop_str op)
          (pp_expr_prec rp) e2
      in
      if p < prec then Format.fprintf ppf "(%a)" body ()
      else body ppf ()

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lvalue ppf = function
  | Lvar x -> Format.pp_print_string ppf x
  | Lderef e -> Format.fprintf ppf "*%a" (pp_expr_prec 6) e

let rec pp_stmt ppf (s : stmt) =
  match s.kind with
  | Sskip -> Format.fprintf ppf "skip;"
  | Sfence -> Format.fprintf ppf "fence;"
  | Sdecl (x, e) -> Format.fprintf ppf "var %s = %a;" x pp_expr e
  | Sassign (lv, e) -> Format.fprintf ppf "%a = %a;" pp_lvalue lv pp_expr e
  | Smalloc (lv, e) ->
      Format.fprintf ppf "%a = malloc(%a);" pp_lvalue lv pp_expr e
  | Sfree e -> Format.fprintf ppf "free(%a);" pp_expr e
  | Scall (lv, callee, args) ->
      let pp_callee ppf = function
        | Evar f -> Format.pp_print_string ppf f
        | e -> Format.fprintf ppf "(%a)" pp_expr e
      in
      let pp_args =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
          pp_expr
      in
      (match lv with
      | None -> Format.fprintf ppf "%a(@[%a@]);" pp_callee callee pp_args args
      | Some lv ->
          Format.fprintf ppf "%a = %a(@[%a@]);" pp_lvalue lv pp_callee callee
            pp_args args)
  | Sreturn None -> Format.fprintf ppf "return;"
  | Sreturn (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Sblock ss -> pp_block ppf ss
  | Sif (c, t, e) -> (
      match e.kind with
      | Sskip ->
          Format.fprintf ppf "@[<v 2>if (%a) %a@]" pp_expr c pp_stmt_as_block t
      | _ ->
          Format.fprintf ppf "@[<v>if (%a) %a else %a@]" pp_expr c
            pp_stmt_as_block t pp_stmt_as_block e)
  | Swhile (c, b) ->
      Format.fprintf ppf "@[<v>while (%a) %a@]" pp_expr c pp_stmt_as_block b
  | Scobegin bs ->
      Format.fprintf ppf "@[<v>cobegin@;<1 2>%a@ coend;@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@;<1 2>")
           pp_stmt_as_block)
        bs
  | Satomic ss ->
      Format.fprintf ppf "@[<v>atomic %a@]" pp_block ss
  | Sawait e -> Format.fprintf ppf "await(%a);" pp_expr e
  | Sacquire x -> Format.fprintf ppf "lock(%s);" x
  | Srelease x -> Format.fprintf ppf "unlock(%s);" x
  | Sassert e -> Format.fprintf ppf "assert(%a);" pp_expr e

and pp_block ppf ss =
  match ss with
  | [] -> Format.pp_print_string ppf "{ }"
  | _ ->
      Format.fprintf ppf "@[<v>{@;<1 2>@[<v>%a@]@ }@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
        ss

and pp_stmt_as_block ppf s =
  match s.kind with
  | Sblock ss -> pp_block ppf ss
  | _ -> pp_block ppf [ s ]

let pp_proc ppf (p : proc) =
  let body = match p.body.kind with Sblock ss -> ss | _ -> [ p.body ] in
  Format.fprintf ppf "@[<v>proc %s(%a) %a@]" p.pname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_string)
    p.params pp_block body

let pp_program ppf (prog : program) =
  Format.fprintf ppf "@[<v>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ @ ")
       pp_proc)
    prog.procs

let program_to_string prog = Format.asprintf "%a" pp_program prog
let stmt_to_string s = Format.asprintf "%a" pp_stmt s
let expr_to_string e = Format.asprintf "%a" pp_expr e
