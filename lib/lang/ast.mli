(** Abstract syntax of the analyzed language: procedures, pointers,
    dynamic allocation, first-class procedure values, and nested cobegin
    parallelism, plus [await] and test-and-set [lock]/[unlock].

    Every statement carries a unique label; labels name allocation
    sites, call sites and cobegin instances in procedure strings,
    dependences and reports.  Calls appear only at statement level, so
    one statement is one atomic action of the interleaving semantics. *)

type label = int

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Eint of int
  | Ebool of bool
  | Evar of string  (** variable, or procedure name used as a value *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ederef of expr  (** [*e] *)
  | Eaddr of string  (** [&x] *)

type lvalue = Lvar of string | Lderef of expr

type stmt = { label : label; kind : kind }

and kind =
  | Sskip
  | Sdecl of string * expr  (** [var x = e;] — introduces a binding *)
  | Sassign of lvalue * expr
  | Smalloc of lvalue * expr  (** [lv = malloc(e);] — e cells *)
  | Sfree of expr
  | Scall of lvalue option * expr * expr list  (** [[lv =] callee(args);] *)
  | Sreturn of expr option
  | Sblock of stmt list
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Scobegin of stmt list  (** [cobegin b1 .. bn coend] *)
  | Satomic of stmt list  (** one-action run of simple statements *)
  | Sawait of expr  (** blocks until the condition holds *)
  | Sacquire of string  (** [lock(x);] — await x=0 then x:=1, atomically *)
  | Srelease of string  (** [unlock(x);] — x:=0 *)
  | Sfence  (** [fence;] — drains the store buffer; no-op under SC *)
  | Sassert of expr

type proc = { pname : string; params : string list; body : stmt }
type program = { procs : proc list }

val find_proc : program -> string -> proc option
val has_proc : program -> string -> bool

val entry_proc : program -> proc
(** The procedure named [main], or the first one.
    @raise Invalid_argument on empty programs. *)

val fold_stmt : ('a -> stmt -> 'a) -> 'a -> stmt -> 'a
(** Prefix-order fold over a statement tree. *)

val fold_program : ('a -> stmt -> 'a) -> 'a -> program -> 'a
val labels : program -> label list
val stmt_at : program -> label -> stmt option

val expr_vars : expr -> string list
(** Variables read (syntactic; dereference targets excluded). *)

val expr_derefs : expr -> bool
(** Does the expression read through a pointer? *)

val expr_addr_taken : expr -> string list

module StringSet : Set.S with type elt = string

val addr_taken_of_program : program -> StringSet.t
(** Names whose address is taken anywhere. *)

(** {1 Construction} *)

val fresh_label : unit -> label
(** Process-wide counter, used by generators and transforms; the parser
    numbers its own statements densely from 1. *)

val mk : kind -> stmt
val skip : unit -> stmt
val block : stmt list -> stmt
val assign : lvalue -> expr -> stmt
val decl : string -> expr -> stmt
val cobegin : stmt list -> stmt
val ite : expr -> stmt -> stmt -> stmt
val while_ : expr -> stmt -> stmt

val relabel : program -> program
(** Renumber every label densely and uniquely (after transforms that
    duplicate statements). *)
