(* Abstract syntax of the analyzed language (the [CH92] language, C-style):
   procedures, pointers, dynamic allocation, first-class function values
   (procedure names are values and can be called indirectly), and nested
   cobegin parallelism.  Synchronization primitives: [await] (atomic
   conditional wait) and [lock]/[unlock] (atomic test-and-set on an integer
   variable), with which busy-waiting and mutual exclusion are expressible.

   Every statement carries a unique label; labels name allocation sites,
   call sites and cobegin instances in procedure strings, dependences and
   reports. *)

type label = int

type unop = Not | Neg

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Eint of int
  | Ebool of bool
  | Evar of string (* variable, or procedure name used as a value *)
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Ederef of expr (* *e *)
  | Eaddr of string (* &x *)

type lvalue = Lvar of string | Lderef of expr

(* Calls appear only at statement level, so one statement is one atomic
   action of the interleaving semantics (plus call/return bookkeeping). *)
type stmt = { label : label; kind : kind }

and kind =
  | Sskip
  | Sdecl of string * expr (* var x = e; introduces a binding *)
  | Sassign of lvalue * expr
  | Smalloc of lvalue * expr (* lv = malloc(e); e = number of cells *)
  | Sfree of expr
  | Scall of lvalue option * expr * expr list (* [lv =] callee(args) *)
  | Sreturn of expr option
  | Sblock of stmt list
  | Sif of expr * stmt * stmt
  | Swhile of expr * stmt
  | Scobegin of stmt list (* cobegin b1 .. bn coend *)
  | Satomic of stmt list (* atomic run of simple statements *)
  | Sawait of expr (* blocks until the condition holds *)
  | Sacquire of string (* lock(x): await x=0 then x:=1, atomically *)
  | Srelease of string (* unlock(x): x:=0 *)
  | Sfence (* drains the process's store buffer; no-op under SC *)
  | Sassert of expr

type proc = { pname : string; params : string list; body : stmt }
type program = { procs : proc list }

let find_proc prog name = List.find_opt (fun p -> p.pname = name) prog.procs
let has_proc prog name = Option.is_some (find_proc prog name)

let entry_proc prog =
  match find_proc prog "main" with
  | Some p -> p
  | None -> (
      match prog.procs with
      | p :: _ -> p
      | [] -> invalid_arg "Ast.entry_proc: empty program")

(* Fold over all statements of a statement tree, prefix order. *)
let rec fold_stmt f acc (s : stmt) =
  let acc = f acc s in
  match s.kind with
  | Sskip | Sdecl _ | Sassign _ | Smalloc _ | Sfree _ | Scall _ | Sreturn _
  | Sawait _ | Sacquire _ | Srelease _ | Sassert _ | Sfence ->
      acc
  | Sblock ss | Scobegin ss | Satomic ss -> List.fold_left (fold_stmt f) acc ss
  | Sif (_, s1, s2) -> fold_stmt f (fold_stmt f acc s1) s2
  | Swhile (_, s1) -> fold_stmt f acc s1

let fold_program f acc prog =
  List.fold_left (fun acc p -> fold_stmt f acc p.body) acc prog.procs

(* All statement labels of a program. *)
let labels prog = fold_program (fun acc s -> s.label :: acc) [] prog

let stmt_at prog label =
  fold_program (fun acc s -> if s.label = label then Some s else acc) None prog

(* Variables read by an expression (syntactic; dereferences excluded). *)
let rec expr_vars = function
  | Eint _ | Ebool _ -> []
  | Evar x -> [ x ]
  | Eaddr _ -> [] (* taking an address reads nothing *)
  | Eunop (_, e) -> expr_vars e
  | Ebinop (_, e1, e2) -> expr_vars e1 @ expr_vars e2
  | Ederef e -> expr_vars e

(* Does the expression dereference memory? *)
let rec expr_derefs = function
  | Eint _ | Ebool _ | Evar _ | Eaddr _ -> false
  | Eunop (_, e) -> expr_derefs e
  | Ebinop (_, e1, e2) -> expr_derefs e1 || expr_derefs e2
  | Ederef _ -> true

(* Variables whose address is taken anywhere in an expression/statement. *)
let rec expr_addr_taken = function
  | Eint _ | Ebool _ | Evar _ -> []
  | Eaddr x -> [ x ]
  | Eunop (_, e) -> expr_addr_taken e
  | Ebinop (_, e1, e2) -> expr_addr_taken e1 @ expr_addr_taken e2
  | Ederef e -> expr_addr_taken e

module StringSet = Set.Make (String)

let addr_taken_of_program prog =
  let of_expr e = StringSet.of_list (expr_addr_taken e) in
  let of_lvalue = function
    | Lvar _ -> StringSet.empty
    | Lderef e -> of_expr e
  in
  fold_program
    (fun acc s ->
      let add e = StringSet.union acc (of_expr e) in
      match s.kind with
      | Sskip | Sreturn None | Sacquire _ | Srelease _ | Sfence -> acc
      | Sdecl (_, e) | Sawait e | Sassert e | Sreturn (Some e) | Sfree e ->
          add e
      | Sassign (lv, e) | Smalloc (lv, e) ->
          StringSet.union (add e) (of_lvalue lv)
      | Scall (lv, callee, args) ->
          let acc =
            match lv with
            | Some l -> StringSet.union acc (of_lvalue l)
            | None -> acc
          in
          List.fold_left
            (fun acc e -> StringSet.union acc (of_expr e))
            (StringSet.union acc (of_expr callee))
            args
      | Sblock _ | Scobegin _ | Satomic _ | Sif _ | Swhile _ -> acc)
    StringSet.empty prog

(* Smart constructors used by generators and transforms; the parser
   allocates its own labels. *)
let counter = ref 0

let fresh_label () =
  incr counter;
  !counter

let mk kind = { label = fresh_label (); kind }
let skip () = mk Sskip
let block ss = mk (Sblock ss)
let assign lv e = mk (Sassign (lv, e))
let decl x e = mk (Sdecl (x, e))
let cobegin ss = mk (Scobegin ss)
let ite c a b = mk (Sif (c, a, b))
let while_ c b = mk (Swhile (c, b))

(* Renumber all labels of a program to be unique and dense (used after
   transforms that duplicate statements, e.g. inlining). *)
let relabel prog =
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  let rec go s =
    let kind =
      match s.kind with
      | ( Sskip | Sdecl _ | Sassign _ | Smalloc _ | Sfree _ | Scall _
        | Sreturn _ | Sawait _ | Sacquire _ | Srelease _ | Sassert _ | Sfence )
        as k ->
          k
      | Sblock ss -> Sblock (List.map go ss)
      | Scobegin ss -> Scobegin (List.map go ss)
      | Satomic ss -> Satomic (List.map go ss)
      | Sif (c, a, b) -> Sif (c, go a, go b)
      | Swhile (c, b) -> Swhile (c, go b)
    in
    { label = fresh (); kind }
  in
  { procs = List.map (fun p -> { p with body = go p.body }) prog.procs }
