(* Syntactic may-access summaries.

   The stubborn-set engine needs, for every process, an over-approximation
   of everything the *rest* of that process's code might read or write
   (paper, Algorithm 1: the next actions' read/write sets are compared
   against other processes).  Summaries are in terms of:

     - variable *names* (the semantics resolves them against the process
       environment to locations; names that resolve to nothing denote
       future, hence fresh, locations and cannot conflict);
     - a memory token: "may read through a pointer" / "may write through a
       pointer or free".  Heap cells and address-taken variables are
       covered by the token.

   Procedure bodies touch only their own (fresh) locals plus memory via
   pointers, so a procedure's externally visible summary is just its two
   memory flags, closed transitively over the call graph. *)

open Ast
module SS = Ast.StringSet

type summary = {
  rvars : SS.t;
  wvars : SS.t;
  mem_read : bool;
  mem_write : bool;
}

let empty = { rvars = SS.empty; wvars = SS.empty; mem_read = false; mem_write = false }

let union a b =
  {
    rvars = SS.union a.rvars b.rvars;
    wvars = SS.union a.wvars b.wvars;
    mem_read = a.mem_read || b.mem_read;
    mem_write = a.mem_write || b.mem_write;
  }

let reads_of_expr e =
  {
    empty with
    rvars = SS.of_list (expr_vars e);
    mem_read = expr_derefs e;
  }

let writes_of_lvalue = function
  | Lvar x -> { empty with wvars = SS.singleton x }
  | Lderef e -> union (reads_of_expr e) { empty with mem_write = true }

(* Externally visible effects of procedures: memory flags only. *)
type proc_effects = { eff_mem_read : bool; eff_mem_write : bool }

let no_effects = { eff_mem_read = false; eff_mem_write = false }

let union_effects a b =
  {
    eff_mem_read = a.eff_mem_read || b.eff_mem_read;
    eff_mem_write = a.eff_mem_write || b.eff_mem_write;
  }

(* One pass of a procedure body given current effect estimates of all
   procedures; [any] is the join of all procedures' effects (for indirect
   calls). *)
let rec stmt_effects lookup ~any (s : stmt) : proc_effects =
  let of_expr e = { eff_mem_read = expr_derefs e; eff_mem_write = false } in
  let of_lvalue = function
    | Lvar _ -> no_effects
    | Lderef e -> union_effects (of_expr e) { no_effects with eff_mem_write = true }
  in
  match s.kind with
  | Sskip | Sfence | Sreturn None | Sacquire _ | Srelease _ -> no_effects
  | Sdecl (_, e) | Sawait e | Sassert e | Sreturn (Some e) -> of_expr e
  | Sfree e -> union_effects (of_expr e) { no_effects with eff_mem_write = true }
  | Sassign (lv, e) | Smalloc (lv, e) -> union_effects (of_lvalue lv) (of_expr e)
  | Scall (lv, callee, args) ->
      let base =
        List.fold_left
          (fun acc e -> union_effects acc (of_expr e))
          (match lv with Some l -> of_lvalue l | None -> no_effects)
          args
      in
      let callee_eff =
        match callee with
        | Evar f -> ( match lookup f with Some e -> e | None -> any)
        | _ -> union_effects (of_expr callee) any
      in
      union_effects base callee_eff
  | Sblock ss | Scobegin ss | Satomic ss ->
      List.fold_left
        (fun acc s' -> union_effects acc (stmt_effects lookup ~any s'))
        no_effects ss
  | Sif (c, s1, s2) ->
      union_effects (of_expr c)
        (union_effects (stmt_effects lookup ~any s1) (stmt_effects lookup ~any s2))
  | Swhile (c, b) -> union_effects (of_expr c) (stmt_effects lookup ~any b)

(* Fixpoint of procedure memory effects over the call graph. *)
let proc_effects_of_program (prog : program) : (string -> proc_effects) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace tbl p.pname no_effects) prog.procs;
  let changed = ref true in
  while !changed do
    changed := false;
    let any =
      Hashtbl.fold (fun _ e acc -> union_effects e acc) tbl no_effects
    in
    List.iter
      (fun p ->
        let old_e = Hashtbl.find tbl p.pname in
        let new_e =
          union_effects old_e
            (stmt_effects (Hashtbl.find_opt tbl) ~any p.body)
        in
        if new_e <> old_e then begin
          Hashtbl.replace tbl p.pname new_e;
          changed := true
        end)
      prog.procs
  done;
  fun name ->
    match Hashtbl.find_opt tbl name with Some e -> e | None -> no_effects

(* May-access summary of a whole statement (used for continuations): all
   variable names mentioned plus callee memory effects.  [effects] is the
   per-procedure effect oracle; [any] its join over all procedures. *)
let rec stmt_summary ~effects ~any (s : stmt) : summary =
  match s.kind with
  | Sskip | Sfence | Sreturn None -> empty
  | Sdecl (x, e) ->
      (* the declaration writes a fresh location, but the name may shadow
         an outer binding; treating it as a write to the outer name is a
         sound over-approximation *)
      union (reads_of_expr e) { empty with wvars = SS.singleton x }
  | Sassign (lv, e) | Smalloc (lv, e) ->
      union (writes_of_lvalue lv) (reads_of_expr e)
  | Sfree e -> union (reads_of_expr e) { empty with mem_write = true }
  | Sreturn (Some e) | Sassert e | Sawait e -> reads_of_expr e
  | Sacquire x ->
      { empty with rvars = SS.singleton x; wvars = SS.singleton x }
  | Srelease x -> { empty with wvars = SS.singleton x }
  | Scall (lv, callee, args) ->
      let base =
        List.fold_left
          (fun acc e -> union acc (reads_of_expr e))
          (match lv with Some l -> writes_of_lvalue l | None -> empty)
          args
      in
      let callee_sum =
        match callee with
        | Evar f when Option.is_some (effects f) ->
            let e = Option.get (effects f) in
            { empty with mem_read = e.eff_mem_read; mem_write = e.eff_mem_write }
        | e ->
            union (reads_of_expr e)
              { empty with mem_read = any.eff_mem_read; mem_write = any.eff_mem_write }
      in
      union base callee_sum
  | Sblock ss | Scobegin ss | Satomic ss ->
      List.fold_left (fun acc s' -> union acc (stmt_summary ~effects ~any s')) empty ss
  | Sif (c, s1, s2) ->
      union (reads_of_expr c)
        (union (stmt_summary ~effects ~any s1) (stmt_summary ~effects ~any s2))
  | Swhile (c, b) -> union (reads_of_expr c) (stmt_summary ~effects ~any b)

let pp_summary ppf s =
  Format.fprintf ppf "reads={%s}%s writes={%s}%s"
    (String.concat "," (SS.elements s.rvars))
    (if s.mem_read then "+mem" else "")
    (String.concat "," (SS.elements s.wvars))
    (if s.mem_write then "+mem" else "")
