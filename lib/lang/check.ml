(* Static well-formedness checks, run before any analysis:
     - duplicate procedure names, duplicate parameters;
     - every variable is declared before use (procedure names act as
       function values when not shadowed);
     - direct calls to known procedures have the right arity;
     - lock/unlock/await targets are in scope;
     - statement labels are unique (parser and [Ast.relabel] guarantee it;
       generators might not).
   Checks are collected, not fail-fast. *)

open Ast
module SS = Ast.StringSet

type diagnostic = { dlabel : label option; message : string }

let pp_diagnostic ppf d =
  match d.dlabel with
  | Some l -> Format.fprintf ppf "[stmt %d] %s" l d.message
  | None -> Format.fprintf ppf "%s" d.message

type result = { errors : diagnostic list }

let ok r = r.errors = []

let check (prog : program) : result =
  let errors = ref [] in
  let err ?label fmt =
    Format.kasprintf
      (fun message -> errors := { dlabel = label; message } :: !errors)
      fmt
  in
  if prog.procs = [] then err "program has no procedures";
  (* duplicate procedures *)
  let seen =
    List.fold_left
      (fun seen p ->
        if SS.mem p.pname seen then
          err "duplicate procedure name %s" p.pname;
        SS.add p.pname seen)
      SS.empty prog.procs
  in
  ignore seen;
  let proc_names = SS.of_list (List.map (fun p -> p.pname) prog.procs) in
  let arity =
    List.fold_left
      (fun m p -> (p.pname, List.length p.params) :: m)
      [] prog.procs
  in
  (* label uniqueness *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      ignore
        (fold_stmt
           (fun () s ->
             if Hashtbl.mem tbl s.label then
               err ~label:s.label "duplicate statement label %d" s.label
             else Hashtbl.add tbl s.label ())
           () p.body))
    prog.procs;
  (* scoping *)
  let rec check_expr ~label scope e =
    match e with
    | Eint _ | Ebool _ -> ()
    | Evar x ->
        if not (SS.mem x scope || SS.mem x proc_names) then
          err ~label "use of undeclared variable %s" x
    | Eaddr x ->
        if not (SS.mem x scope) then
          err ~label "address of undeclared variable %s" x
    | Eunop (_, e) -> check_expr ~label scope e
    | Ebinop (_, e1, e2) ->
        check_expr ~label scope e1;
        check_expr ~label scope e2
    | Ederef e -> check_expr ~label scope e
  in
  let check_lvalue ~label scope = function
    | Lvar x ->
        if not (SS.mem x scope) then
          err ~label "assignment to undeclared variable %s" x
    | Lderef e -> check_expr ~label scope e
  in
  (* Returns the scope extended with declarations of this statement (a
     declaration scopes over the remainder of its enclosing block). *)
  let rec check_stmt scope (s : stmt) : SS.t =
    let label = s.label in
    match s.kind with
    | Sskip | Sfence -> scope
    | Sdecl (x, e) ->
        check_expr ~label scope e;
        SS.add x scope
    | Sassign (lv, e) ->
        check_lvalue ~label scope lv;
        check_expr ~label scope e;
        scope
    | Smalloc (lv, e) ->
        check_lvalue ~label scope lv;
        check_expr ~label scope e;
        scope
    | Sfree e ->
        check_expr ~label scope e;
        scope
    | Scall (lv, callee, args) ->
        Option.iter (check_lvalue ~label scope) lv;
        (match callee with
        | Evar f when (not (SS.mem f scope)) && SS.mem f proc_names -> (
            match List.assoc_opt f arity with
            | Some n when n <> List.length args ->
                err ~label "procedure %s expects %d argument(s), got %d" f n
                  (List.length args)
            | _ -> ())
        | _ -> check_expr ~label scope callee);
        List.iter (check_expr ~label scope) args;
        scope
    | Sreturn None -> scope
    | Sreturn (Some e) ->
        check_expr ~label scope e;
        scope
    | Sblock ss ->
        ignore (List.fold_left check_stmt scope ss);
        scope
    | Sif (c, s1, s2) ->
        check_expr ~label scope c;
        ignore (check_stmt scope s1);
        ignore (check_stmt scope s2);
        scope
    | Swhile (c, b) ->
        check_expr ~label scope c;
        ignore (check_stmt scope b);
        scope
    | Scobegin bs ->
        if bs = [] then err ~label "cobegin with no branches";
        List.iter (fun b -> ignore (check_stmt scope b)) bs;
        scope
    | Satomic ss ->
        List.iter
          (fun (s' : stmt) ->
            match s'.kind with
            | Sskip | Sdecl _ | Sassign _ | Sassert _ -> ()
            | _ ->
                err ~label:s'.label
                  "atomic blocks may contain only simple statements")
          ss;
        ignore (List.fold_left check_stmt scope ss);
        scope
    | Sawait e ->
        check_expr ~label scope e;
        scope
    | Sacquire x | Srelease x ->
        if not (SS.mem x scope) then
          err ~label "lock target %s is not in scope" x;
        scope
    | Sassert e ->
        check_expr ~label scope e;
        scope
  in
  List.iter
    (fun p ->
      let dup =
        List.length p.params <> SS.cardinal (SS.of_list p.params)
      in
      if dup then err "procedure %s has duplicate parameters" p.pname;
      ignore (check_stmt (SS.of_list p.params) p.body))
    prog.procs;
  (* diagnostics sorted by position — unlabeled (program-level) ones
     first — so output is deterministic and diffable; the stable sort
     keeps collection order among diagnostics of one statement *)
  {
    errors =
      List.stable_sort
        (fun a b -> compare a.dlabel b.dlabel)
        (List.rev !errors);
  }

exception Ill_formed of diagnostic list

(* Raise on errors; used by the pipelines in [Cobegin_core]. *)
let check_exn prog =
  let r = check prog in
  if not (ok r) then raise (Ill_formed r.errors)
