(* Critical references (paper Definition 4):

     "A reference is a critical reference if it is a read to a variable
      which may be written by another thread, or a write to a variable
      which may be read or written by another thread."

   We approximate "may be accessed by another thread" syntactically: for
   every cobegin in the program and every pair of distinct branches, the
   *free* variable names accessed by both (with a write on at least one
   side) are conflicting.  Heap accesses (dereferences, frees) are tracked
   by a single memory token; procedure calls contribute their transitive
   memory effects.  A name bound inside a branch is local to it and never
   conflicts under that cobegin. *)

open Cobegin_lang
open Ast
module SS = Ast.StringSet

type conflicts = {
  names : SS.t; (* variable names with a cross-thread conflict *)
  mem : bool; (* heap/pointer accesses conflict across threads *)
}

let no_conflicts = { names = SS.empty; mem = false }

(* Free-access summary of a statement: like [Access.stmt_summary] but
   names declared within the statement are excluded (block scoping). *)
let free_summary ~effects ~any (s : stmt) : Access.summary =
  let acc = ref Access.empty in
  let add_reads bound e =
    let names = SS.diff (SS.of_list (expr_vars e)) bound in
    acc :=
      Access.union !acc
        { Access.empty with rvars = names; mem_read = expr_derefs e }
  in
  let add_write bound = function
    | Lvar x ->
        if not (SS.mem x bound) then
          acc := Access.union !acc { Access.empty with wvars = SS.singleton x }
    | Lderef e ->
        add_reads bound e;
        acc := Access.union !acc { Access.empty with mem_write = true }
  in
  let add_mem ~r ~w =
    acc :=
      Access.union !acc { Access.empty with mem_read = r; mem_write = w }
  in
  (* returns the bound set extended with this statement's declarations *)
  let rec go bound (s : stmt) : SS.t =
    match s.kind with
    | Sskip | Sfence | Sreturn None -> bound
    | Sdecl (x, e) ->
        add_reads bound e;
        SS.add x bound
    | Sassign (lv, e) | Smalloc (lv, e) ->
        add_write bound lv;
        add_reads bound e;
        bound
    | Sfree e ->
        add_reads bound e;
        add_mem ~r:false ~w:true;
        bound
    | Sreturn (Some e) | Sassert e | Sawait e ->
        add_reads bound e;
        bound
    | Sacquire x ->
        if not (SS.mem x bound) then
          acc :=
            Access.union !acc
              {
                Access.empty with
                rvars = SS.singleton x;
                wvars = SS.singleton x;
              };
        bound
    | Srelease x ->
        if not (SS.mem x bound) then
          acc := Access.union !acc { Access.empty with wvars = SS.singleton x };
        bound
    | Scall (lv, callee, args) ->
        Option.iter (add_write bound) lv;
        List.iter (add_reads bound) args;
        (match callee with
        | Evar f when Option.is_some (effects f) ->
            let e : Access.proc_effects = Option.get (effects f) in
            add_mem ~r:e.eff_mem_read ~w:e.eff_mem_write
        | e ->
            add_reads bound e;
            add_mem ~r:any.Access.eff_mem_read ~w:any.Access.eff_mem_write);
        bound
    | Sblock ss | Satomic ss ->
        ignore (List.fold_left go bound ss);
        bound
    | Scobegin bs ->
        List.iter (fun b -> ignore (go bound b)) bs;
        bound
    | Sif (c, s1, s2) ->
        add_reads bound c;
        ignore (go bound s1);
        ignore (go bound s2);
        bound
    | Swhile (c, b) ->
        add_reads bound c;
        ignore (go bound b);
        bound
  in
  ignore (go SS.empty s);
  !acc

(* Conflicting accesses between two summaries: w1 against r2∪w2 and
   w2 against r1. *)
let summary_conflicts (a : Access.summary) (b : Access.summary) : conflicts =
  let names =
    SS.union
      (SS.inter a.wvars (SS.union b.rvars b.wvars))
      (SS.inter b.wvars a.rvars)
  in
  let mem =
    (a.mem_write && (b.mem_read || b.mem_write))
    || (b.mem_write && a.mem_read)
  in
  { names; mem }

let union_conflicts a b = { names = SS.union a.names b.names; mem = a.mem || b.mem }

(* All cross-branch conflicts of a program. *)
let of_program (prog : program) : conflicts =
  let effects = Access.proc_effects_of_program prog in
  let any =
    List.fold_left
      (fun acc p -> Access.union_effects acc (effects p.pname))
      Access.no_effects prog.procs
  in
  let effects_opt f = if has_proc prog f then Some (effects f) else None in
  fold_program
    (fun acc s ->
      match s.kind with
      | Scobegin bs ->
          let sums =
            List.map (free_summary ~effects:effects_opt ~any) bs
          in
          let rec pairs acc = function
            | [] -> acc
            | x :: rest ->
                let acc =
                  List.fold_left
                    (fun acc y -> union_conflicts acc (summary_conflicts x y))
                    acc rest
                in
                pairs acc rest
          in
          pairs acc sums
      | _ -> acc)
    no_conflicts prog

(* Number of critical references in an expression under [conf]. *)
let rec expr_critical conf = function
  | Eint _ | Ebool _ | Eaddr _ -> 0
  | Evar x -> if SS.mem x conf.names then 1 else 0
  | Eunop (_, e) -> expr_critical conf e
  | Ebinop (_, e1, e2) -> expr_critical conf e1 + expr_critical conf e2
  | Ederef e -> (if conf.mem then 1 else 0) + expr_critical conf e

(* Number of critical references of one *simple* statement (the only kinds
   virtual coarsening groups). *)
let stmt_critical conf (s : stmt) : int =
  match s.kind with
  | Sskip -> 0
  | Sdecl (_, e) -> expr_critical conf e (* fresh binding: write not critical *)
  | Sassert e -> expr_critical conf e
  | Sassign (Lvar x, e) ->
      (if SS.mem x conf.names then 1 else 0) + expr_critical conf e
  | Sassign (Lderef p, e) ->
      (if conf.mem then 1 else 0) + expr_critical conf p + expr_critical conf e
  | _ -> invalid_arg "Critical.stmt_critical: not a simple statement"

let pp ppf c =
  Format.fprintf ppf "conflicting names: {%s}%s"
    (String.concat ", " (SS.elements c.names))
    (if c.mem then " + memory" else "")
