(* Procedure inlining.  The paper (footnote 4) notes its analyses behave
   "like taking in-line procedure expansion first and then analyzing the
   results as a whole"; this transform makes that literal, and is used by
   the parallelization application to compare summary-based analysis with
   analysis after expansion.

   A call  [lv =] f(e1..en)  is inlinable when f is a statically known,
   non-recursive procedure whose body contains either no return or a
   single trailing  return e;.  Locals and parameters are freshened to
   avoid capture.  Inlining iterates bottom-up on the call graph up to
   [depth] rounds. *)

open Cobegin_lang
open Ast

let gensym =
  let n = ref 0 in
  fun base ->
    incr n;
    Printf.sprintf "%s__i%d" base !n

(* Direct callees of a procedure body. *)
let callees (s : stmt) =
  fold_stmt
    (fun acc s ->
      match s.kind with
      | Scall (_, Evar f, _) -> StringSet.add f acc
      | _ -> acc)
    StringSet.empty s

(* Is [f] (transitively) recursive? *)
let recursive prog f =
  let rec reach seen g =
    if StringSet.mem g seen then seen
    else
      match find_proc prog g with
      | None -> seen
      | Some p -> StringSet.fold (fun h s -> reach s h) (callees p.body) (StringSet.add g seen)
  in
  match find_proc prog f with
  | None -> false
  | Some p ->
      StringSet.exists
        (fun g -> StringSet.mem f (reach StringSet.empty g))
        (callees p.body)

(* Split a body into (statements, trailing return expression option);
   None when the body is not inlinable (an inner return). *)
let splittable_body (body : stmt) : (stmt list * expr option) option =
  let ss = match body.kind with Sblock ss -> ss | _ -> [ body ] in
  let rec has_return (s : stmt) =
    match s.kind with
    | Sreturn _ -> true
    | Sblock ss | Scobegin ss | Satomic ss -> List.exists has_return ss
    | Sif (_, a, b) -> has_return a || has_return b
    | Swhile (_, b) -> has_return b
    | _ -> false
  in
  match List.rev ss with
  | { kind = Sreturn e; _ } :: front_rev ->
      let front = List.rev front_rev in
      if List.exists has_return front then None else Some (front, e)
  | _ -> if List.exists has_return ss then None else Some (ss, None)

(* Rename free occurrences according to [ren]. *)
let rename_var ren x = match List.assoc_opt x ren with Some y -> y | None -> x

let rec rename_expr ren = function
  | (Eint _ | Ebool _) as e -> e
  | Evar x -> Evar (rename_var ren x)
  | Eaddr x -> Eaddr (rename_var ren x)
  | Eunop (op, e) -> Eunop (op, rename_expr ren e)
  | Ebinop (op, e1, e2) -> Ebinop (op, rename_expr ren e1, rename_expr ren e2)
  | Ederef e -> Ederef (rename_expr ren e)

(* Rename every bound name of a statement with fresh names; [ren] maps
   in-scope names to their fresh replacements. *)
let rec rename_stmt ren (s : stmt) : (string * string) list * stmt =
  let rex = rename_expr in
  let rlv ren = function
    | Lvar x -> Lvar (rename_var ren x)
    | Lderef e -> Lderef (rex ren e)
  in
  let keep kind = (ren, { s with kind }) in
  match s.kind with
  | Sskip -> keep Sskip
  | Sfence -> keep Sfence
  | Sdecl (x, e) ->
      let x' = gensym x in
      let e' = rex ren e in
      ((x, x') :: ren, { s with kind = Sdecl (x', e') })
  | Sassign (lv, e) -> keep (Sassign (rlv ren lv, rex ren e))
  | Smalloc (lv, e) -> keep (Smalloc (rlv ren lv, rex ren e))
  | Sfree e -> keep (Sfree (rex ren e))
  | Scall (lv, callee, args) ->
      keep (Scall (Option.map (rlv ren) lv, rex ren callee, List.map (rex ren) args))
  | Sreturn e -> keep (Sreturn (Option.map (rex ren) e))
  | Sblock ss ->
      let _, ss' = rename_stmts ren ss in
      keep (Sblock ss')
  | Sif (c, a, b) ->
      keep (Sif (rex ren c, snd (rename_stmt ren a), snd (rename_stmt ren b)))
  | Swhile (c, b) -> keep (Swhile (rex ren c, snd (rename_stmt ren b)))
  | Scobegin bs -> keep (Scobegin (List.map (fun b -> snd (rename_stmt ren b)) bs))
  | Satomic ss ->
      let ren', ss' = rename_stmts ren ss in
      (* declarations inside atomic scope to the enclosing block *)
      (ren', { s with kind = Satomic ss' })
  | Sawait e -> keep (Sawait (rex ren e))
  | Sacquire x -> keep (Sacquire (rename_var ren x))
  | Srelease x -> keep (Srelease (rename_var ren x))
  | Sassert e -> keep (Sassert (rex ren e))

and rename_stmts ren ss =
  let ren, rev =
    List.fold_left
      (fun (ren, acc) s ->
        let ren', s' = rename_stmt ren s in
        (ren', s' :: acc))
      (ren, []) ss
  in
  (ren, List.rev rev)

(* Expand one call site.  Returns None when not inlinable. *)
let expand prog (lv : lvalue option) f (args : expr list) : stmt list option =
  match find_proc prog f with
  | None -> None
  | Some p ->
      if recursive prog f then None
      else if List.length args <> List.length p.params then None
      else
        match splittable_body p.body with
        | None -> None
        | Some (body_ss, ret) ->
            let ren = List.map (fun x -> (x, gensym x)) p.params in
            let decls =
              List.map2
                (fun (_, x') a -> Ast.mk (Sdecl (x', a)))
                ren args
            in
            let ren', body' = rename_stmts ren body_ss in
            let tail =
              (* destination lvalue belongs to the caller: not renamed *)
              match (lv, ret) with
              | Some lv, Some e -> [ Ast.mk (Sassign (lv, rename_expr ren' e)) ]
              | Some lv, None -> [ Ast.mk (Sassign (lv, Eint 0)) ]
              | None, _ -> []
            in
            (* wrap in a block so callee locals do not leak *)
            Some [ Ast.mk (Sblock (decls @ body' @ tail)) ]

let rec inline_stmt prog (s : stmt) : stmt list =
  match s.kind with
  | Scall (lv, Evar f, args) when has_proc prog f -> (
      match expand prog lv f args with
      | Some ss -> ss
      | None -> [ s ])
  | Sblock ss -> [ { s with kind = Sblock (List.concat_map (inline_stmt prog) ss) } ]
  | Scobegin bs ->
      [ { s with kind = Scobegin (List.map (fun b -> Ast.block (inline_stmt prog b)) bs) } ]
  | Sif (c, a, b) ->
      [ { s with kind = Sif (c, Ast.block (inline_stmt prog a), Ast.block (inline_stmt prog b)) } ]
  | Swhile (c, b) -> [ { s with kind = Swhile (c, Ast.block (inline_stmt prog b)) } ]
  | _ -> [ s ]

(* Inline up to [depth] rounds, then relabel so labels stay unique. *)
let program ?(depth = 3) (prog : program) : program =
  let step prog =
    {
      procs =
        List.map
          (fun p -> { p with body = Ast.block (inline_stmt prog p.body) })
          prog.procs;
    }
  in
  let rec go n prog = if n = 0 then prog else go (n - 1) (step prog) in
  Ast.relabel (go depth prog)
