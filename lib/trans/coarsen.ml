(* Virtual coarsening (paper Observation 5):

     "Atomic actions of a thread can be combined if they contain at most
      one critical reference."

   The transform rewrites every block, greedily grouping maximal runs of
   simple statements (skip / decl / assign / assert) whose *total* number
   of critical references is at most one into a single [Satomic] block.
   The interleaving semantics executes an atomic block in one transition,
   so the grouped run contributes one state instead of many.  Runs of
   length one are left alone.

   Soundness: a run with at most one critical reference commutes, as one
   action, with every action of every other thread except at that single
   reference — exactly the observation the paper makes.  The qcheck suite
   checks that coarsening preserves the set of reachable final stores on
   random programs. *)

open Cobegin_lang
open Ast

let is_simple (s : stmt) =
  match s.kind with
  | Sskip | Sdecl _ | Sassert _ -> true
  | Sassign _ -> true
  | Smalloc _ | Sfree _ | Scall _ | Sreturn _ | Sblock _ | Sif _ | Swhile _
  | Scobegin _ | Satomic _ | Sawait _ | Sacquire _ | Srelease _ | Sfence ->
      false

(* Group a block's statements.  [conf] is the program's conflict report. *)
let rec group_block conf (ss : stmt list) : stmt list =
  let flush run acc =
    match run with
    | [] -> acc
    | [ single ] -> single :: acc
    | _ -> Ast.mk (Satomic (List.rev run)) :: acc
  in
  let rec go acc run crit = function
    | [] -> List.rev (flush run acc)
    | s :: rest when is_simple s ->
        let c = Critical.stmt_critical conf s in
        if crit + c <= 1 then go acc (s :: run) (crit + c) rest
        else
          (* close the current run and start a new one at [s] *)
          go (flush run acc) [ s ] c rest
    | s :: rest ->
        let s' = coarsen_stmt conf s in
        go (s' :: flush run acc) [] 0 rest
  in
  go [] [] 0 ss

and coarsen_stmt conf (s : stmt) : stmt =
  match s.kind with
  | Sblock ss -> { s with kind = Sblock (group_block conf ss) }
  | Scobegin bs -> { s with kind = Scobegin (List.map (coarsen_stmt conf) bs) }
  | Sif (c, s1, s2) ->
      { s with kind = Sif (c, coarsen_stmt conf s1, coarsen_stmt conf s2) }
  | Swhile (c, b) -> { s with kind = Swhile (c, coarsen_stmt conf b) }
  | _ -> s

(* Coarsen a whole program.  The conflict report is computed once from the
   original program (coarsening does not change accesses). *)
let program (prog : program) : program =
  let conf = Critical.of_program prog in
  { procs = List.map (fun p -> { p with body = coarsen_stmt conf p.body }) prog.procs }

(* Expose the conflict report alongside, for diagnostics. *)
let program_with_report (prog : program) : program * Critical.conflicts =
  let conf = Critical.of_program prog in
  ( { procs = List.map (fun p -> { p with body = coarsen_stmt conf p.body }) prog.procs },
    conf )
