(* Minimal JSON reader (see sjson.mli).

   The framework's observability layer emits JSON everywhere but never
   had to read any — the serve daemon's request protocol is the first
   consumer-side JSON in the codebase, and the container ships no JSON
   library, so this is a small recursive-descent parser over the
   grammar the emitters produce (and what clients reasonably send):
   objects, arrays, strings with the standard escapes (including
   \uXXXX with surrogate pairs, decoded to UTF-8), numbers, booleans,
   null.  Integers that fit an OCaml int parse as [Int]; everything
   else numeric as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string * int (* message, position *)

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else error (Printf.sprintf "expected %c" c)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> error "bad \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let utf8_encode buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then error "unterminated escape";
          (match s.[!pos] with
          | '"' ->
              Buffer.add_char buf '"';
              incr pos
          | '\\' ->
              Buffer.add_char buf '\\';
              incr pos
          | '/' ->
              Buffer.add_char buf '/';
              incr pos
          | 'b' ->
              Buffer.add_char buf '\b';
              incr pos
          | 'f' ->
              Buffer.add_char buf '\012';
              incr pos
          | 'n' ->
              Buffer.add_char buf '\n';
              incr pos
          | 'r' ->
              Buffer.add_char buf '\r';
              incr pos
          | 't' ->
              Buffer.add_char buf '\t';
              incr pos
          | 'u' ->
              incr pos;
              let cp = hex4 () in
              (* surrogate pair: a high surrogate followed by \uDC00-
                 \uDFFF combines into one supplementary code point *)
              let cp =
                if cp >= 0xd800 && cp <= 0xdbff && !pos + 2 <= n
                   && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  else error "unpaired surrogate"
                end
                else if cp >= 0xd800 && cp <= 0xdfff then
                  error "unpaired surrogate"
                else cp
              in
              utf8_encode buf cp
          | _ -> error "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> error "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d = ref 0 in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        incr pos;
        incr d
      done;
      if !d = 0 then error "malformed number"
    in
    digits ();
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let keyword w v =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then begin
      pos := !pos + String.length w;
      v
    end
    else error "unknown keyword"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> error "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> error "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> error "expected a JSON value"
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
