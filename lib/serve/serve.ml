(* The persistent analysis daemon (see serve.mli).

   One Unix-domain listening socket, a fixed pool of worker domains,
   newline-delimited JSON requests.  The accept loop is a select with a
   short timeout so the stop flag (set by a shutdown request) is
   noticed promptly; client fds flow to the workers through a
   mutex+condition queue, [None] sentinels drain the pool on shutdown.

   Per-request isolation of the process-global observability state —
   the bugfixes this daemon exposed: when the journal is running or a
   span recorder is attached, the reset+analyze section is serialized
   under [scope_lock] and each request starts from [Metrics.reset],
   [Journal.clear_ring] and [Span.reset], so one request's telemetry,
   flight-recorder breadcrumbs and counters never leak into the next
   request's report or crash dump.  With telemetry off (the default)
   requests run fully concurrently.

   Cache policy: only pristine runs are memoized — no stage failures,
   not degraded, an empty recovery ladder, and no fault plan installed
   — so a chaos-disturbed or partially-recovered result can never
   poison the cache. *)

module Journal = Cobegin_obs.Journal
module Metrics = Cobegin_obs.Metrics
module Span = Cobegin_obs.Span
module Step = Cobegin_semantics.Step
module Analyzer = Cobegin_absint.Analyzer
module Machine = Cobegin_absint.Machine
open Cobegin_core

type config = {
  socket : string;
  capacity : int;
  cache_dir : string option;
  pool : int;
  defaults : Pipeline.options;
  spans : Span.t option;
}

type t = {
  cfg : config;
  cache : Cache.t;
  scope_lock : Mutex.t;
  stop : bool Atomic.t;
  requests : int Atomic.t;
  failures : int Atomic.t;
}

let make cfg =
  {
    cfg;
    cache = Cache.create ?dir:cfg.cache_dir ~capacity:cfg.capacity ();
    scope_lock = Mutex.create ();
    stop = Atomic.make false;
    requests = Atomic.make 0;
    failures = Atomic.make 0;
  }

(* --- JSON assembly --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let error_response msg =
  Printf.sprintf {|{"ok":false,"error":"%s","exit_code":1}|} (json_escape msg)

(* "report" must stay the LAST field: response_report_raw slices the
   raw report bytes out by position, preserving byte determinism
   without a JSON round-trip. *)
let report_response ~cache_tag ~key ~exit_code ~report =
  Printf.sprintf
    {|{"ok":true,"cache":"%s","key":"%s","exit_code":%d,"report":%s}|}
    cache_tag key exit_code report

(* --- request options --- *)

let folding_of_string s =
  match String.lowercase_ascii s with
  | "exact" -> Some Machine.Exact
  | "control" | "taylor" -> Some Machine.Control
  | "clan" | "mcdowell" -> Some Machine.Clan
  | _ -> None

let engine_of_string s =
  match String.lowercase_ascii s with
  | "full" | "concrete/full" -> Some Pipeline.Concrete_full
  | "stubborn" | "concrete/stubborn" -> Some Pipeline.Concrete_stubborn
  | s -> (
      match String.split_on_char '/' s with
      | [ "abstract" ] ->
          Some (Pipeline.Abstract (Analyzer.Intervals, Machine.Control))
      | [ "abstract"; d ] ->
          Option.map
            (fun d -> Pipeline.Abstract (d, Machine.Control))
            (Analyzer.domain_of_string d)
      | [ "abstract"; d; f ] -> (
          match (Analyzer.domain_of_string d, folding_of_string f) with
          | Some d, Some f -> Some (Pipeline.Abstract (d, f))
          | _ -> None)
      | _ -> None)

let min_opt cap v = match cap with None -> Some v | Some c -> Some (min c v)

let options_of_json ~(defaults : Pipeline.options) json =
  let ( let* ) = Result.bind in
  let set acc (k, v) =
    let* (o : Pipeline.options) = acc in
    let str () =
      match Sjson.to_string v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "option %s must be a string" k)
    in
    let boolean () =
      match Sjson.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "option %s must be a boolean" k)
    in
    let posint () =
      match Sjson.to_int v with
      | Some i when i > 0 -> Ok i
      | _ -> Error (Printf.sprintf "option %s must be a positive integer" k)
    in
    match k with
    | "engine" -> (
        let* s = str () in
        match engine_of_string s with
        | Some e -> Ok { o with Pipeline.engine = e }
        | None -> Error (Printf.sprintf "unknown engine %S" s))
    | "memory_model" | "memory-model" -> (
        let* s = str () in
        match Step.model_of_string s with
        | Some m -> Ok { o with Pipeline.memory_model = m }
        | None -> Error (Printf.sprintf "unknown memory model %S" s))
    | "coarsen" ->
        let* b = boolean () in
        Ok { o with Pipeline.coarsen = b }
    | "inline" ->
        let* b = boolean () in
        Ok { o with Pipeline.inline = b }
    | "races" | "find_races" ->
        let* b = boolean () in
        Ok { o with Pipeline.find_races = b }
    | "lint" ->
        let* b = boolean () in
        Ok { o with Pipeline.lint = b }
    | "interfere" ->
        let* b = boolean () in
        Ok { o with Pipeline.interfere = b }
    | "max_configs" ->
        let* i = posint () in
        Ok { o with Pipeline.max_configs = min i defaults.Pipeline.max_configs }
    | "max_transitions" ->
        let* i = posint () in
        Ok
          {
            o with
            Pipeline.max_transitions =
              min_opt defaults.Pipeline.max_transitions i;
          }
    | "timeout_s" -> (
        match Sjson.to_float v with
        | Some f when f > 0.0 ->
            Ok { o with Pipeline.timeout_s = min_opt defaults.Pipeline.timeout_s f }
        | _ -> Error "option timeout_s must be a positive number")
    | "max_heap_words" ->
        let* i = posint () in
        Ok
          {
            o with
            Pipeline.max_heap_words = min_opt defaults.Pipeline.max_heap_words i;
          }
    | "jobs" ->
        let* i = posint () in
        Ok { o with Pipeline.jobs = min i defaults.Pipeline.jobs }
    | "retries" -> (
        match Sjson.to_int v with
        | Some i when i >= 0 ->
            Ok { o with Pipeline.retries = min i defaults.Pipeline.retries }
        | _ -> Error "option retries must be a non-negative integer")
    | k -> Error (Printf.sprintf "unknown option %S" k)
  in
  match json with
  | Sjson.Null -> Ok defaults
  | Sjson.Obj fields -> List.fold_left set (Ok defaults) fields
  | _ -> Error "options must be an object"

(* --- request handling --- *)

let with_request_scope t f =
  if Journal.enabled () || Option.is_some t.cfg.spans then
    Mutex.protect t.scope_lock (fun () ->
        Metrics.reset ();
        Journal.clear_ring ();
        Option.iter Span.reset t.cfg.spans;
        f ())
  else f ()

let cacheable (r : Pipeline.report) =
  r.stage_failures = []
  && (not r.degraded)
  && r.recovery = []
  && Fault.installed () = None

let handle_analyze t req =
  match Option.map Sjson.to_string (Sjson.member "program" req) with
  | None -> error_response "request needs a \"program\" field"
  | Some None -> error_response "\"program\" must be a string"
  | Some (Some source) -> (
      let opts_json =
        Option.value ~default:Sjson.Null (Sjson.member "options" req)
      in
      match options_of_json ~defaults:t.cfg.defaults opts_json with
      | Error msg -> error_response msg
      | Ok options -> (
          match Pipeline.load_source source with
          | exception e -> error_response (Printexc.to_string e)
          | prog -> (
              let key = Pipeline.run_key options prog in
              match Cache.find t.cache key with
              | Some (e : Cache.entry) ->
                  report_response ~cache_tag:"hit" ~key ~exit_code:e.exit_code
                    ~report:e.report
              | None -> (
                  match
                    with_request_scope t (fun () ->
                        Pipeline.analyze ~options ?spans:t.cfg.spans prog)
                  with
                  | exception e -> error_response (Printexc.to_string e)
                  | r ->
                      let exit_code = Report.report_exit_code r in
                      let report = Report.to_json r in
                      if cacheable r then
                        Cache.store t.cache key { exit_code; report };
                      report_response ~cache_tag:"miss" ~key ~exit_code ~report))))

let is_error resp =
  String.length resp >= 11 && String.sub resp 0 11 = {|{"ok":false|}

let handle_line t line =
  Atomic.incr t.requests;
  let resp, shutdown =
    match Sjson.parse line with
    | Error msg -> (error_response ("bad request JSON: " ^ msg), false)
    | Ok req -> (
        match Option.bind (Sjson.member "op" req) Sjson.to_string with
        | Some "ping" -> ({|{"ok":true,"op":"ping"}|}, false)
        | Some "stats" ->
            let s = Cache.stats t.cache in
            ( Printf.sprintf
                {|{"ok":true,"op":"stats","requests":%d,"failures":%d,"hits":%d,"misses":%d,"entries":%d,"capacity":%d}|}
                (Atomic.get t.requests) (Atomic.get t.failures) s.Cache.hits
                s.Cache.misses s.Cache.entries s.Cache.capacity,
              false )
        | Some "shutdown" -> ({|{"ok":true,"op":"shutdown"}|}, true)
        | Some "analyze" | None -> (handle_analyze t req, false)
        | Some op -> (error_response (Printf.sprintf "unknown op %S" op), false))
  in
  if is_error resp then Atomic.incr t.failures;
  (resp, shutdown)

(* --- the daemon loop --- *)

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        let resp, shutdown = handle_line t line in
        (try
           output_string oc resp;
           output_char oc '\n';
           flush oc
         with Sys_error _ -> ());
        if shutdown then Atomic.set t.stop true else loop ()
  in
  loop ();
  (* close the fd exactly once: closing [oc] closes the descriptor, and
     [ic] must then be abandoned — a second close could hit an fd
     number another domain has already reused *)
  close_out_noerr oc

let rec worker_loop t q lock cond =
  let job =
    Mutex.protect lock (fun () ->
        while Queue.is_empty q do
          Condition.wait cond lock
        done;
        Queue.pop q)
  in
  match job with
  | None -> ()
  | Some fd ->
      serve_connection t fd;
      worker_loop t q lock cond

let run t =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX t.cfg.socket);
  Unix.listen sock 64;
  let q = Queue.create () in
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let push job =
    Mutex.protect lock (fun () ->
        Queue.push job q;
        Condition.signal cond)
  in
  let pool = max 1 t.cfg.pool in
  let workers =
    List.init pool (fun _ -> Domain.spawn (fun () -> worker_loop t q lock cond))
  in
  while not (Atomic.get t.stop) do
    match Unix.select [ sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ -> push (Some fd)
        | exception Unix.Unix_error _ -> ())
  done;
  List.iter (fun _ -> push None) workers;
  List.iter Domain.join workers

(* --- client side --- *)

let analyze_line ?options_json program =
  match options_json with
  | None -> Printf.sprintf {|{"program":"%s"}|} (json_escape program)
  | Some o ->
      Printf.sprintf {|{"program":"%s","options":%s}|} (json_escape program) o

let request ~socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc line;
    output_char oc '\n';
    flush oc;
    let resp = input_line ic in
    (* one close per fd: [oc] owns it, [ic] is abandoned *)
    close_out_noerr oc;
    ignore ic;
    resp
  with
  | resp -> resp
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let response_report_raw resp =
  let marker = {|,"report":|} in
  let mlen = String.length marker in
  let n = String.length resp in
  let rec find i =
    if i + mlen > n then None
    else if String.sub resp i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i when n > 0 && resp.[n - 1] = '}' ->
      Some (String.sub resp (i + mlen) (n - (i + mlen) - 1))
  | _ -> None
