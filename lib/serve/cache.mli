(** Content-addressed result cache for the serve daemon.

    Keys are digest-addressed run keys ({!Cobegin_core.Pipeline.run_key}
    — 16 hex digits over program digest × options fingerprint × memory
    model × report schema version); values are the rendered report JSON
    plus its exit code, so a hit replays the exact bytes a fresh run
    would have produced.

    Two tiers: a bounded in-memory LRU (capacity in entries), and an
    optional on-disk store — one file per key under [dir], written
    atomically with the run-manifest tmp+rename helper
    ({!Cobegin_obs.Atomic_io}), consulted on a memory miss so warm
    results survive a daemon restart.  The disk tier is unbounded; LRU
    eviction drops the memory node only.  A disk file that fails
    validation (torn write, stale report schema, wrong key) loads as a
    miss, never an error.

    All operations are domain-safe (one internal mutex). *)

type t

type entry = {
  exit_code : int;  (** the code the producing run exited with *)
  report : string;  (** the run's [Report.to_json] bytes, verbatim *)
}

type stats = {
  hits : int;  (** finds served from memory or disk *)
  misses : int;  (** finds that found nothing *)
  entries : int;  (** memory-tier occupancy *)
  capacity : int;
}

val create : ?dir:string -> capacity:int -> unit -> t
(** [capacity] is clamped to at least 1.  [dir] enables the disk tier;
    it is created (recursively) if missing. *)

val find : t -> string -> entry option
(** Memory first (promoting the node to most-recent), then disk (a
    valid disk entry is promoted into the memory tier). *)

val store : t -> string -> entry -> unit
(** Insert at most-recent, evicting least-recent entries beyond
    capacity, and persist to the disk tier when one is configured.  A
    key already in memory keeps its existing entry (two concurrent
    misses of the same key store byte-identical values anyway — the
    report JSON is deterministic). *)

val stats : t -> stats
