(** [coanalyze serve] — the persistent analysis daemon.

    A long-running Unix-domain-socket server: clients connect, send
    newline-delimited JSON requests, and read one JSON response line
    per request.  Each analysis runs through the ordinary supervised
    {!Cobegin_core.Pipeline} (crash isolation, degradation ladder,
    budgets) and its result is memoized in a content-addressed
    {!Cache} keyed by {!Cobegin_core.Pipeline.run_key}, so repeated
    submissions of the same program × options × memory model are
    served from memory (or the optional on-disk store) with the
    byte-identical report JSON and exit code of the original run.

    {2 Protocol}

    Requests (one JSON object per line):
    - [{"program": SRC, "options": {...}}] (optionally ["op":"analyze"])
      — analyze [SRC] (cobegin source text).  Every option field is
      optional; absent fields take the server's defaults.  Fields:
      [engine] (["full"], ["stubborn"], ["abstract"],
      ["abstract/DOMAIN"], ["abstract/DOMAIN/FOLDING"], or the
      report's ["concrete/full"]/["concrete/stubborn"] spellings),
      [memory_model] (["sc"]/["tso"]/["pso"]; ["memory-model"] also
      accepted), [coarsen], [inline], [races], [lint], [interfere]
      (booleans), [max_configs], [max_transitions], [max_heap_words],
      [jobs], [retries] (integers), [timeout_s] (number).  Budget and
      concurrency fields are {e capped} by the server's configuration:
      a request may lower them, never raise them.  Unknown fields are
      rejected.
    - [{"op":"ping"}] — liveness probe.
    - [{"op":"stats"}] — request and cache counters.
    - [{"op":"shutdown"}] — stop the daemon (after replying).

    Responses:
    - analysis: [{"ok":true,"cache":"hit"|"miss","key":K,
      "exit_code":C,"report":R}] where [K] is the run key, [C] the
      code [coanalyze analyze] would have exited with
      ({!Cobegin_core.Report.report_exit_code}) and [R] the verbatim
      {!Cobegin_core.Report.to_json} object — always the {e last}
      field, so {!response_report_raw} can slice the exact bytes out.
    - errors (unparsable request, unknown option, source that fails to
      parse/check, SC-only engine under tso/pso):
      [{"ok":false,"error":MSG,"exit_code":1}].  An error never kills
      the daemon.

    {2 Isolation}

    The analysis pipeline reports through process-global observability
    state (the {!Cobegin_obs.Metrics} registry, the
    {!Cobegin_obs.Journal} ring).  When the journal is running or a
    span recorder is configured, the daemon serializes the analysis
    section and scopes that state per request —
    [Metrics.reset]/[Journal.clear_ring]/[Span.reset] before each run
    — so one request's counters and flight-recorder breadcrumbs never
    appear in another request's report or crash dump.  With telemetry
    off (the default) requests run concurrently across the worker
    pool.

    Only pristine runs are cached: no stage failures, not degraded,
    empty recovery ladder, no fault plan installed — a chaos-disturbed
    result is returned to its requester but never memoized. *)

open Cobegin_core

type config = {
  socket : string;  (** path of the Unix-domain listening socket *)
  capacity : int;  (** memory-tier LRU capacity, in entries *)
  cache_dir : string option;  (** on-disk cache tier, see {!Cache} *)
  pool : int;  (** worker domains accepting connections, min 1 *)
  defaults : Pipeline.options;
      (** per-request defaults {e and} caps: requests may lower
          budgets/[jobs]/[retries] below these, never raise them *)
  spans : Cobegin_obs.Span.t option;
      (** when given, analyses run under this recorder (reset per
          request, analysis section serialized) and reports carry
          per-stage telemetry — at the cost of request concurrency *)
}

type t

val make : config -> t
(** Build the daemon state (cache included).  No I/O besides creating
    [cache_dir] when configured. *)

val handle_line : t -> string -> string * bool
(** [handle_line t line] processes one request line and returns the
    response line (no trailing newline) and whether the request asked
    the daemon to shut down.  This is the whole protocol — {!run} is
    only sockets around it — and what the tests drive directly. *)

val run : t -> unit
(** Bind the socket (unlinking any stale one), spawn the worker pool,
    and serve until a shutdown request.  Removes the socket file on
    the way out.  SIGPIPE is ignored (a client hanging up mid-response
    must not kill the daemon). *)

(** {2 Client side} *)

val analyze_line : ?options_json:string -> string -> string
(** [analyze_line ?options_json source] renders an analysis request
    line: the source JSON-escaped, [options_json] (a raw JSON object,
    the caller's responsibility) attached verbatim. *)

val request : socket:string -> string -> string
(** One-shot client: connect to [socket], send [line], return the
    response line.  Raises [Unix.Unix_error] when the daemon is not
    there and [End_of_file] if it hangs up without replying. *)

val response_report_raw : string -> string option
(** The verbatim report bytes of an analysis response — sliced out by
    position (the ["report"] field is always last), so a client can
    re-emit exactly what [coanalyze analyze --json] would have
    printed, byte for byte.  [None] on error responses. *)

(** {2 Exposed for tests} *)

val options_of_json :
  defaults:Pipeline.options -> Sjson.t -> (Pipeline.options, string) result
(** The request-options decoder: [Null] means [defaults], objects
    override field-wise with caps applied, anything else (and any
    unknown field) is an error. *)

val engine_of_string : string -> Pipeline.engine option
(** CLI and report spellings: ["full"], ["stubborn"],
    ["abstract[/DOMAIN[/FOLDING]]"], ["concrete/full"],
    ["concrete/stubborn"]. *)
