(* Content-addressed result cache (see cache.mli).

   Memory tier: a classic LRU — hash table from key to an intrusive
   doubly-linked node, most-recent at [mru].  Disk tier (optional): one
   file per key, written atomically (Atomic_io, the same tmp+rename
   helper run manifests use), re-read on a memory miss so entries
   survive a daemon restart.  Everything is serialized by one mutex;
   the disk reads/writes happen under it too, which is fine at the
   request rates a Unix-socket analysis daemon sees.

   Disk entry format, two lines:

     {"format_version":V,"key":"K","exit_code":C,"report_bytes":N}
     <the report JSON, exactly N bytes>

   A load validates all four fields against the file name and contents;
   anything that does not check out — torn file, stale schema, renamed
   file — is treated as a miss, never an error. *)

module Atomic_io = Cobegin_obs.Atomic_io
module Report = Cobegin_core.Report

type entry = { exit_code : int; report : string }
type stats = { hits : int; misses : int; entries : int; capacity : int }

type node = {
  n_key : string;
  n_entry : entry;
  mutable prev : node option; (* toward the MRU end *)
  mutable next : node option; (* toward the LRU end *)
}

type t = {
  lock : Mutex.t;
  capacity : int;
  dir : string option;
  tbl : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
}

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ~capacity () =
  Option.iter mkdirs dir;
  {
    lock = Mutex.create ();
    capacity = max 1 capacity;
    dir;
    tbl = Hashtbl.create 64;
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
  }

(* --- the linked list (callers hold the lock) --- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let insert t key entry =
  let n = { n_key = key; n_entry = entry; prev = None; next = None } in
  Hashtbl.replace t.tbl key n;
  push_front t n;
  while Hashtbl.length t.tbl > t.capacity do
    match t.lru with
    | None -> assert false
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.tbl victim.n_key
  done

(* --- the disk tier --- *)

let entry_path dir key = Filename.concat dir (key ^ ".entry")

let disk_write dir key (e : entry) =
  let meta =
    Printf.sprintf
      {|{"format_version":%d,"key":"%s","exit_code":%d,"report_bytes":%d}|}
      Report.format_version key e.exit_code (String.length e.report)
  in
  Atomic_io.write_string ~path:(entry_path dir key)
    (meta ^ "\n" ^ e.report ^ "\n")

let disk_load dir key =
  let path = entry_path dir key in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | content -> (
      match String.index_opt content '\n' with
      | None -> None
      | Some i -> (
          let meta_line = String.sub content 0 i in
          let rest = String.sub content (i + 1) (String.length content - i - 1) in
          let report =
            let n = String.length rest in
            if n > 0 && rest.[n - 1] = '\n' then String.sub rest 0 (n - 1)
            else rest
          in
          match Sjson.parse meta_line with
          | Error _ -> None
          | Ok m -> (
              let field name conv = Option.bind (Sjson.member name m) conv in
              match
                ( field "format_version" Sjson.to_int,
                  field "key" Sjson.to_string,
                  field "exit_code" Sjson.to_int,
                  field "report_bytes" Sjson.to_int )
              with
              | Some fv, Some k, Some exit_code, Some bytes
                when fv = Report.format_version
                     && k = key
                     && bytes = String.length report ->
                  Some { exit_code; report }
              | _ -> None)))

(* --- the public operations --- *)

let find t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          unlink t n;
          push_front t n;
          t.hits <- t.hits + 1;
          Some n.n_entry
      | None -> (
          match Option.bind t.dir (fun d -> disk_load d key) with
          | Some e ->
              (* promoted back into the memory tier; still a hit — the
                 result was served without re-analyzing *)
              insert t key e;
              t.hits <- t.hits + 1;
              Some e
          | None ->
              t.misses <- t.misses + 1;
              None))

let store t key entry =
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.tbl key) then insert t key entry;
      Option.iter (fun d -> disk_write d key entry) t.dir)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })
