(** Minimal JSON reader for the serve protocol.

    The framework emits JSON from many places but the daemon's
    newline-delimited request protocol is the first thing that has to
    {e read} any, and the toolchain ships no JSON library — so: a
    small, strict recursive-descent parser.  Full value grammar,
    standard string escapes (including [\uXXXX] with surrogate pairs,
    decoded to UTF-8), no extensions (no comments, no trailing
    commas).  Numbers without fraction/exponent that fit an OCaml
    [int] parse as {!Int}; all others as {!Float}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** fields in source order *)

val parse : string -> (t, string) result
(** Whole-input parse: trailing non-whitespace is an error.  The error
    string carries the byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and absent fields. *)

val to_string : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option

val to_float : t -> float option
(** Accepts {!Int} too (widened). *)
