(** Reachability-graph generation for place/transition nets: ordinary
    (full) expansion and stubborn-set expansion with Valmari's closure
    rules — the construction behind the paper's dining-philosophers
    scaling claim (section 2.2, citing [Val88]).

    Firing only the enabled members of a stubborn set at each marking
    preserves every deadlock while visiting far fewer markings. *)

type stats = {
  states : int;
  edges : int;
  deadlocks : int;
  max_frontier : int;
}

type result = {
  stats : stats;
  status : Budget.status;
      (** [Truncated _] when a budget fired: the stats and deadlocks
          describe the partial marking graph generated so far *)
  deadlock_markings : Net.marking list;
}

val pp_stats : Format.formatter -> stats -> unit

val explore :
  ?max_states:int ->
  ?budget:Budget.t ->
  Net.t ->
  expand:(Net.marking -> Net.transition list) ->
  result
(** Generic BFS under an expansion strategy; [expand] must return enabled
    transitions only.  Never raises on exhaustion: the partial marking
    graph comes back with [status = Truncated _]. *)

val full : ?max_states:int -> ?budget:Budget.t -> Net.t -> result
(** Ordinary reachability. *)

val closure : Net.t -> Net.indices -> Net.marking -> seed:int -> int list
(** The stubborn closure of a seed transition at a marking: enabled
    members drag in input-sharing transitions; disabled members drag in
    the producers of one insufficiently marked input place. *)

val stubborn_expand : Net.t -> Net.indices -> Net.marking -> Net.transition list
(** The enabled members of the smallest stubborn closure over all enabled
    seeds. *)

val stubborn : ?max_states:int -> ?budget:Budget.t -> Net.t -> result
(** Stubborn-set reachability. *)
