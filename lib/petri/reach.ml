(* Reachability-graph generation for nets: ordinary (full) expansion and
   stubborn-set expansion.  The stubborn closure follows Valmari's rules
   for place/transition nets:

     - every *enabled* member t must drag in all transitions sharing an
       input place with t (they could disable t, or be disabled by it);
     - every *disabled* member t must drag in all producers of one chosen
       insufficiently marked input place (its "scapegoat": only they can
       enable t);
     - the set must contain an enabled transition (the key transition).

   Firing only the enabled members of a stubborn set at each step preserves
   all deadlocks and, for our experiments, the set of reachable terminal
   markings — while visiting far fewer intermediate markings. *)

type stats = {
  states : int;
  edges : int;
  deadlocks : int;
  max_frontier : int;
}

type result = {
  stats : stats;
  status : Budget.status;
  deadlock_markings : Net.marking list;
}

let pp_stats ppf s =
  Format.fprintf ppf "states=%d edges=%d max_frontier=%d deadlocks=%d"
    s.states s.edges s.max_frontier s.deadlocks

(* Full-width marking hash: every place's token count contributes.
   The generic [Hashtbl.hash (Array.to_list m)] it replaces inspected
   only the first ~10 places, so markings of any real net collapsed
   into collision chains. *)
module MarkingTbl = Hashtbl.Make (struct
  type t = Net.marking

  let equal = ( = )
  let hash (m : Net.marking) = Cobegin_hash.hash_int_array m
end)

(* Generic exploration parameterized by the expansion strategy: [expand m]
   returns the transitions to fire at marking [m] (all of them enabled).
   Budget exhaustion stops the generation cleanly: the partial marking
   graph is returned tagged [Truncated]. *)
let explore ?(max_states = 10_000_000) ?budget net ~expand =
  let budget =
    match budget with
    | Some b -> b
    | None -> Budget.create ~max_configs:max_states ()
  in
  let visited = MarkingTbl.create 1024 in
  let queue = Queue.create () in
  let edges = ref 0 in
  let deadlocks = ref [] in
  let max_frontier = ref 0 in
  let stop = ref None in
  let m0 = Net.initial_marking net in
  MarkingTbl.add visited m0 ();
  Queue.add m0 queue;
  while !stop = None && not (Queue.is_empty queue) do
    match
      Budget.check budget ~configs:(MarkingTbl.length visited)
        ~transitions:!edges
    with
    | Some r -> stop := Some r
    | None ->
        Fault.hit "reach.pop";
        max_frontier := max !max_frontier (Queue.length queue);
        let m = Queue.pop queue in
        if Net.is_deadlock net m then deadlocks := m :: !deadlocks
        else begin
          (* stop firing the remaining transitions once the budget
             stops the run (mirrors Space.explore) *)
          let rec fire_each = function
            | [] -> ()
            | t :: rest ->
                incr edges;
                let m' = Net.fire m t in
                (if not (MarkingTbl.mem visited m') then
                   match
                     Budget.config_guard budget
                       ~configs:(MarkingTbl.length visited)
                   with
                   | Some r -> stop := Some r
                   | None ->
                       MarkingTbl.add visited m' ();
                       Queue.add m' queue);
                if !stop = None then fire_each rest
          in
          fire_each (expand m)
        end
  done;
  (* Classify the admitted-but-unpopped frontier on truncation, so a
     Truncated report doesn't undercount deadlocks (no expansion, no
     new edges — mirrors Space.explore). *)
  if !stop <> None then
    Queue.iter
      (fun m -> if Net.is_deadlock net m then deadlocks := m :: !deadlocks)
      queue;
  {
    status = Budget.status_of !stop;
    stats =
      {
        states = MarkingTbl.length visited;
        edges = !edges;
        deadlocks = List.length !deadlocks;
        max_frontier = !max_frontier;
      };
    deadlock_markings = !deadlocks;
  }

let full ?max_states ?budget net =
  explore ?max_states ?budget net ~expand:(fun m ->
      Net.enabled_transitions net m)

(* Stubborn closure from a seed transition.  Returns the tids in the
   closure.  [scapegoat] picks, for a disabled transition, one input place
   with too few tokens; we choose the one with the fewest producers to keep
   the closure small. *)
let closure net idx (m : Net.marking) ~seed =
  let in_set = Array.make (Net.num_transitions net) false in
  let work = Queue.create () in
  let add tid =
    if not (in_set.(tid)) then begin
      in_set.(tid) <- true;
      Queue.add tid work
    end
  in
  add seed;
  while not (Queue.is_empty work) do
    let tid = Queue.pop work in
    let t = Net.transition net tid in
    if Net.enabled m t then
      (* conflicting transitions: share an input place *)
      List.iter
        (fun (p, _) -> List.iter add idx.Net.consumers.(p))
        t.pre
    else begin
      (* scapegoat: an insufficiently marked input place w/ fewest producers *)
      let candidates =
        List.filter (fun (p, w) -> m.(p) < w) t.pre
      in
      match candidates with
      | [] -> assert false (* t is disabled, so some place lacks tokens *)
      | _ ->
          let best, _ =
            List.fold_left
              (fun (bp, bn) (p, _) ->
                let n = List.length idx.Net.producers.(p) in
                if n < bn then (p, n) else (bp, bn))
              (-1, max_int) candidates
          in
          List.iter add idx.Net.producers.(best)
    end
  done;
  let result = ref [] in
  Array.iteri (fun tid b -> if b then result := tid :: !result) in_set;
  !result

(* Pick the stubborn set with the fewest enabled transitions among the
   closures seeded at each enabled transition. *)
let stubborn_expand net idx (m : Net.marking) =
  let enabled = Net.enabled_transitions net m in
  match enabled with
  | [] -> []
  | _ ->
      let best = ref None in
      List.iter
        (fun (t : Net.transition) ->
          let c = closure net idx m ~seed:t.tid in
          let fired =
            List.filter_map
              (fun tid ->
                let t' = Net.transition net tid in
                if Net.enabled m t' then Some t' else None)
              c
          in
          match !best with
          | Some (_, n) when n <= List.length fired -> ()
          | _ -> best := Some (fired, List.length fired))
        enabled;
      (match !best with Some (fired, _) -> fired | None -> [])

let stubborn ?max_states ?budget net =
  let idx = Net.build_indices net in
  explore ?max_states ?budget net ~expand:(stubborn_expand net idx)
