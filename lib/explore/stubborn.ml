(* Stubborn-set (persistent-set) reduction for programs — the paper's
   Algorithm 1, generalized from Overman's method:

     "At each expansion step, let r_i and w_i be the set of locations to
      be read and written in process i's next actions ..."

   Construction.  Build a graph over ALL live processes: an (undirected)
   edge connects i and j whenever i's next-action footprint conflicts with
   the may-access of j's entire remaining continuation, or vice versa.
   Every connected component C containing an enabled process is a
   persistent set: for any process i in C and j outside C, nothing j (or
   anything j can ever do) does conflicts with or disables i's pending
   action, so actions outside C commute with C's actions.  We expand the
   component with the fewest enabled processes.

   Guarantees: all final configurations and all deadlocks of the full
   graph are found (classic persistent-set preservation).  Error
   configurations reachable only through ignored interleavings of
   *diverging* processes may be missed; use the full strategy for error
   search.  On programs with locality (the paper's Figure 5) the reduction
   collapses the interleaving of local prefixes entirely. *)

open Cobegin_semantics
module Metrics = Cobegin_obs.Metrics

(* Telemetry: size distribution of the chosen persistent sets, plus the
   totals the reduction ratio is computed from.  No-ops (one branch)
   while telemetry is disabled. *)
let h_set_size = Metrics.histogram "stubborn.set_size"
let m_enabled_total = Metrics.counter "stubborn.enabled_total"
let m_chosen_total = Metrics.counter "stubborn.chosen_total"

type reduction_stats = {
  mutable singleton_expansions : int; (* steps where one process sufficed *)
  mutable component_expansions : int; (* steps with a proper subset *)
  mutable full_expansions : int; (* steps that degenerated to full *)
}

let new_stats () =
  { singleton_expansions = 0; component_expansions = 0; full_expansions = 0 }

(* Union-find over process indices. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  go i

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(ri) <- rj

let choose_procs ?stats mctx ctx (c : Config.t) : Proc.t list =
  let enabled = Step.enabled_processes ctx c in
  match enabled with
  | [] -> []
  | [ _ ] ->
      Option.iter (fun s -> s.singleton_expansions <- s.singleton_expansions + 1)
        stats;
      if Metrics.enabled () then begin
        Metrics.observe h_set_size 1;
        Metrics.add m_enabled_total 1;
        Metrics.add m_chosen_total 1
      end;
      enabled
  | _ ->
      let procs = Array.of_list (Config.processes c) in
      let n = Array.length procs in
      let store = c.Config.store in
      let footprints =
        Array.map (fun p -> Step.action_footprint ctx c p) procs
      in
      let futures = Array.map (fun p -> Mayaccess.of_process mctx p) procs in
      let parent = Array.init n (fun i -> i) in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if
            Mayaccess.conflicts_footprint store footprints.(i) futures.(j)
            || Mayaccess.conflicts_footprint store footprints.(j) futures.(i)
          then union parent i j
        done
      done;
      let enabled_pids = List.map (fun p -> p.Proc.pid) enabled in
      let is_enabled i =
        List.exists
          (fun pid -> Value.compare_pid pid procs.(i).Proc.pid = 0)
          enabled_pids
      in
      (* components of the data-conflict graph *)
      let components = Hashtbl.create 8 in
      for i = 0 to n - 1 do
        let r = find parent i in
        let old = try Hashtbl.find components r with Not_found -> [] in
        Hashtbl.replace components r (i :: old)
      done;
      let index_of_pid pid =
        let found = ref (-1) in
        Array.iteri
          (fun k p ->
            if Value.compare_pid p.Proc.pid pid = 0 then found := k)
          procs;
        !found
      in
      (* A candidate persistent set must be closed under *enabling*: a
         process waiting at a join inside the set is enabled by the
         termination of its children, so the children (with their own
         conflict components) must be inside too.  This closure is
         directed — a child in the set does not drag its parent in. *)
      let closure_of seed_root =
        let in_set = Array.make n false in
        let work = Queue.create () in
        let add_component root =
          List.iter
            (fun i ->
              if not in_set.(i) then begin
                in_set.(i) <- true;
                Queue.add i work
              end)
            (try Hashtbl.find components root with Not_found -> [])
        in
        add_component seed_root;
        while not (Queue.is_empty work) do
          let i = Queue.pop work in
          match procs.(i).Proc.stack with
          | Proc.Ijoin { children; _ } :: _ ->
              List.iter
                (fun child ->
                  let j = index_of_pid child in
                  if j >= 0 && not in_set.(j) then
                    add_component (find parent j))
                children
          | _ -> ()
        done;
        let members = ref [] in
        Array.iteri (fun i b -> if b then members := i :: !members) in_set;
        !members
      in
      (* evaluate the closure of each component containing an enabled
         process; pick the one firing the fewest enabled processes *)
      let best = ref None in
      let roots =
        Hashtbl.fold (fun root members acc -> (root, members) :: acc) components []
        |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)
      in
      List.iter
        (fun (root, members) ->
          if List.exists is_enabled members then begin
            let closed = closure_of root in
            let enabled_members = List.filter is_enabled closed in
            let k = List.length enabled_members in
            if k > 0 then
              match !best with
              | Some (_, k') when k' <= k -> ()
              | _ -> best := Some (enabled_members, k)
          end)
        roots;
      let chosen =
        match !best with
        | Some (members, _) -> List.map (fun i -> procs.(i)) members
        | None -> enabled
      in
      Option.iter
        (fun s ->
          if List.length chosen = List.length enabled then
            s.full_expansions <- s.full_expansions + 1
          else if List.length chosen = 1 then
            s.singleton_expansions <- s.singleton_expansions + 1
          else s.component_expansions <- s.component_expansions + 1)
        stats;
      if Metrics.enabled () then begin
        Metrics.observe h_set_size (List.length chosen);
        Metrics.add m_enabled_total (List.length enabled);
        Metrics.add m_chosen_total (List.length chosen)
      end;
      chosen

(* The may-access conflict analysis above reasons about statement-level
   actions only: it does not see the pending flushes of a store buffer,
   which conflict with every future access of their locations.  Under
   TSO/PSO we therefore degenerate to full expansion — sound, no
   reduction — and count every such step as a full expansion. *)
let choose_expansion ?stats mctx ctx (c : Config.t) : Step.action list =
  match ctx.Step.model with
  | Step.Sc -> List.map (fun p -> Step.Arun p) (choose_procs ?stats mctx ctx c)
  | Step.Tso | Step.Pso ->
      let actions = Step.enabled_actions ctx c in
      (match actions with
      | [] -> ()
      | _ ->
          Option.iter
            (fun s -> s.full_expansions <- s.full_expansions + 1)
            stats;
          if Metrics.enabled () then begin
            let k = List.length actions in
            Metrics.observe h_set_size k;
            Metrics.add m_enabled_total k;
            Metrics.add m_chosen_total k
          end);
      actions

(* Stubborn-set exploration of a program. *)
let explore ?max_configs ?budget ?probe ?stats ctx : Space.result =
  let mctx = Mayaccess.make_ctx ctx.Step.prog in
  Space.explore ?max_configs ?budget ?probe ctx
    ~expand:(choose_expansion ?stats mctx ctx)
