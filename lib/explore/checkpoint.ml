(* Checkpointed state-space generation (see checkpoint.mli).

   The engine is Space.explore's BFS loop, iteration for iteration —
   the determinism contract depends on it: a pop-count cadence picks
   the same save points on every run, and a resumed run replays the
   exact suffix of an uninterrupted one, so the final counts are
   identical.

   On-disk format: a magic string, then a Marshal'd header (format
   version + full-width hash of the marshaled program), then a
   Marshal'd payload.  The payload stores the visited set as digests
   plus a snapshot of the intern pools behind them (Intern.snapshot):
   digests are ids into process-local pools, so the restoring process
   re-interns the snapshotted representations and remaps every saved
   digest (Config.digest_of_ids) before use.  Frontier and terminal
   configurations are marshaled structurally — they are pure data.

   Writes go to a temp file renamed into place, so a crash mid-write
   leaves the previous checkpoint intact, never a torn file. *)

open Cobegin_semantics
module Metrics = Cobegin_obs.Metrics
module Probe = Cobegin_obs.Probe
module Journal = Cobegin_obs.Journal

let m_saves = Metrics.counter "checkpoint.saves"
let m_restores = Metrics.counter "checkpoint.restores"
let h_save_ms = Metrics.histogram "checkpoint.save_ms"
let h_restore_ms = Metrics.histogram "checkpoint.restore_ms"

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some ("corrupt checkpoint: " ^ msg)
    | _ -> None)

type cadence = { every_configs : int; every_s : float option }

let default_cadence = { every_configs = 4096; every_s = None }

let magic = "COBEGIN-CKPT\n"

(* Version 2: configurations may carry per-process store buffers
   (TSO/PSO), and the identity hash binds the memory model alongside
   the program.  Version-1 files are refused with [Corrupt]. *)
let version = 2

type header = { hd_version : int; hd_program_hash : int }

(* The in-flight state of the BFS between two pops: everything
   Space.explore keeps in locals. *)
type payload = {
  ck_pools : Intern.snapshot;
  ck_visited : Config.digest list;
  ck_frontier : Config.t list; (* queue front first *)
  ck_finals : Config.t list;
  ck_deadlocks : Config.t list;
  ck_errors : Config.t list;
  ck_transitions : int;
  ck_max_frontier : int;
  ck_accesses : Step.access list list; (* reverse firing order *)
  ck_allocs : Step.alloc list list;
}

(* The identity a checkpoint is bound to: resuming under a different
   program — or the same program under a different memory model —
   would silently mix state spaces. *)
let program_hash (ctx : Step.ctx) =
  Cobegin_hash.combine
    (Cobegin_hash.hash_string (Marshal.to_string ctx.Step.prog []))
    (Cobegin_hash.hash_string (Step.model_name ctx.Step.model))

type live = {
  visited : unit Config.Digest_tbl.t;
  queue : Config.t Queue.t;
  mutable finals : Config.t list;
  mutable deadlocks : Config.t list;
  mutable errors : Config.t list;
  mutable transitions : int;
  mutable max_frontier : int;
  mutable accesses : Step.access list list;
  mutable allocs : Step.alloc list list;
}

let save ~path ctx live =
  Fault.hit "checkpoint.save";
  let t0 = Unix.gettimeofday () in
  let payload =
    {
      ck_pools = Intern.snapshot (Intern.global ());
      ck_visited =
        Config.Digest_tbl.fold (fun d () acc -> d :: acc) live.visited [];
      ck_frontier = List.of_seq (Queue.to_seq live.queue);
      ck_finals = live.finals;
      ck_deadlocks = live.deadlocks;
      ck_errors = live.errors;
      ck_transitions = live.transitions;
      ck_max_frontier = live.max_frontier;
      ck_accesses = live.accesses;
      ck_allocs = live.allocs;
    }
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     Marshal.to_channel oc
       { hd_version = version; hd_program_hash = program_hash ctx }
       [];
     Marshal.to_channel oc payload [];
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Metrics.incr m_saves;
  Metrics.observe h_save_ms
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
  if Journal.enabled () then
    Journal.emit "checkpoint.saved"
      [
        ("path", Journal.Str path);
        ("configurations", Journal.Int (List.length payload.ck_visited));
        ("frontier", Journal.Int (List.length payload.ck_frontier));
        ("transitions", Journal.Int payload.ck_transitions);
      ]

let load_payload ~path ctx : payload =
  let ic =
    try open_in_bin path
    with Sys_error e -> raise (Corrupt ("cannot open: " ^ e))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m =
        try really_input_string ic (String.length magic)
        with End_of_file -> raise (Corrupt "truncated (no magic)")
      in
      if m <> magic then raise (Corrupt "not a cobegin checkpoint");
      let hd =
        try (Marshal.from_channel ic : header)
        with End_of_file | Failure _ -> raise (Corrupt "truncated header")
      in
      if hd.hd_version <> version then
        raise
          (Corrupt
             (Printf.sprintf "format version %d, this build reads %d"
                hd.hd_version version));
      if hd.hd_program_hash <> program_hash ctx then
        raise (Corrupt "written for a different program");
      try (Marshal.from_channel ic : payload)
      with End_of_file | Failure _ -> raise (Corrupt "truncated payload"))

let fresh ctx =
  let visited = Config.Digest_tbl.create 1024 in
  let queue = Queue.create () in
  let c0 = Step.init ctx in
  Config.Digest_tbl.replace visited (Config.digest c0) ();
  Queue.add c0 queue;
  {
    visited;
    queue;
    finals = [];
    deadlocks = [];
    errors = [];
    transitions = 0;
    max_frontier = 0;
    accesses = [];
    allocs = [];
  }

let live_of_payload (p : payload) =
  let t0 = Unix.gettimeofday () in
  let rm = Intern.restore (Intern.global ()) p.ck_pools in
  let remap_digest (d : Config.digest) =
    Config.digest_of_ids
      ~d_procs:(Array.map (fun i -> rm.Intern.rm_procs.(i)) d.Config.d_procs)
      ~d_store:rm.Intern.rm_stores.(d.Config.d_store)
      ~d_counters:rm.Intern.rm_counters.(d.Config.d_counters)
      ~d_error:
        (if d.Config.d_error < 0 then -1
         else rm.Intern.rm_errors.(d.Config.d_error))
  in
  let visited = Config.Digest_tbl.create 1024 in
  List.iter
    (fun d -> Config.Digest_tbl.replace visited (remap_digest d) ())
    p.ck_visited;
  let queue = Queue.create () in
  List.iter (fun c -> Queue.add c queue) p.ck_frontier;
  Metrics.incr m_restores;
  Metrics.observe h_restore_ms
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1000.));
  if Journal.enabled () then
    Journal.emit "checkpoint.restored"
      [
        ("configurations", Journal.Int (List.length p.ck_visited));
        ("frontier", Journal.Int (List.length p.ck_frontier));
        ("transitions", Journal.Int p.ck_transitions);
      ];
  {
    visited;
    queue;
    finals = p.ck_finals;
    deadlocks = p.ck_deadlocks;
    errors = p.ck_errors;
    transitions = p.ck_transitions;
    max_frontier = p.ck_max_frontier;
    accesses = p.ck_accesses;
    allocs = p.ck_allocs;
  }

(* Space.explore's loop with a save every [cadence.every_configs] pops
   (and every [every_s] seconds, when set).  The save sits at the
   iteration boundary, before the pop it precedes, so "resume from the
   last save" replays whole iterations — never half-fired expansions. *)
let run ?(max_configs = 1_000_000) ?budget ?probe ~cadence ~path ctx live :
    Space.result =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~max_configs ()
  in
  let stop = ref None in
  let since_save = ref 0 in
  let last_save = ref (Unix.gettimeofday ()) in
  while !stop = None && not (Queue.is_empty live.queue) do
    match
      Budget.check budget
        ~configs:(Config.Digest_tbl.length live.visited)
        ~transitions:live.transitions
    with
    | Some r -> stop := Some r
    | None -> (
        let time_due =
          match cadence.every_s with
          | Some s -> Unix.gettimeofday () -. !last_save >= s
          | None -> false
        in
        (if !since_save >= cadence.every_configs || time_due then begin
           save ~path ctx live;
           since_save := 0;
           last_save := Unix.gettimeofday ()
         end);
        incr since_save;
        Fault.hit "checkpoint.pop";
        (match probe with
        | None -> ()
        | Some p ->
            Probe.tick p
              ~configurations:(Config.Digest_tbl.length live.visited)
              ~frontier:(Queue.length live.queue)
              ~transitions:live.transitions);
        live.max_frontier <- max live.max_frontier (Queue.length live.queue);
        let c = Queue.pop live.queue in
        if Config.is_error c then live.errors <- c :: live.errors
        else if Config.all_terminated c then live.finals <- c :: live.finals
        else
          match Step.enabled_actions ctx c with
          | [] -> live.deadlocks <- c :: live.deadlocks
          | _ ->
              let rec fire_each = function
                | [] -> ()
                | a :: rest ->
                    live.transitions <- live.transitions + 1;
                    let c', evs = Step.fire_action ctx c a in
                    live.accesses <- evs.Step.accesses :: live.accesses;
                    live.allocs <- evs.Step.allocs :: live.allocs;
                    let d' = Config.digest c' in
                    (if Config.Digest_tbl.mem live.visited d' then ()
                     else
                       match
                         Budget.config_guard budget
                           ~configs:(Config.Digest_tbl.length live.visited)
                       with
                       | Some r -> stop := Some r
                       | None ->
                           Config.Digest_tbl.replace live.visited d' ();
                           Queue.add c' live.queue);
                    if !stop = None then fire_each rest
              in
              fire_each (Step.enabled_actions ctx c))
  done;
  (* Save the pure in-flight state on truncation — the run can be
     resumed later with a larger budget.  Before the drain: the drain
     classifies the frontier without popping it, and a resumed run
     will re-classify those same configurations itself. *)
  if !stop <> None then save ~path ctx live;
  let finals = ref live.finals
  and deadlocks = ref live.deadlocks
  and errors = ref live.errors in
  if !stop <> None then
    Queue.iter
      (fun c ->
        if Config.is_error c then errors := c :: !errors
        else if Config.all_terminated c then finals := c :: !finals
        else
          match Step.enabled_actions ctx c with
          | [] -> deadlocks := c :: !deadlocks
          | _ -> ())
      live.queue;
  {
    Space.status = Budget.status_of !stop;
    stats =
      {
        Space.configurations = Config.Digest_tbl.length live.visited;
        transitions = live.transitions;
        max_frontier = live.max_frontier;
        finals = List.length !finals;
        deadlocks = List.length !deadlocks;
        errors = List.length !errors;
      };
    final_configs = !finals;
    deadlock_configs = !deadlocks;
    error_configs = !errors;
    log =
      {
        Step.accesses = List.concat (List.rev live.accesses);
        Step.allocs = List.concat (List.rev live.allocs);
      };
  }

let full ?max_configs ?budget ?probe ?(cadence = default_cadence) ~path ctx =
  run ?max_configs ?budget ?probe ~cadence ~path ctx (fresh ctx)

let resume ?max_configs ?budget ?probe ?(cadence = default_cadence) ~path ctx
    =
  let live = live_of_payload (load_payload ~path ctx) in
  (* The caller's budget typically dates from process startup, and its
     deadline is an absolute instant fixed at creation — by the time
     the snapshot above is loaded and re-interned, part (or all) of a
     --timeout grant would already be spent.  A resumed run gets the
     full timeout from the point the BFS actually restarts. *)
  Option.iter Budget.refresh_deadline budget;
  run ?max_configs ?budget ?probe ~cadence ~path ctx live
