(** Checkpointed state-space generation: {!Space.full} that survives
    being killed.

    The engine is the sequential full-interleaving BFS, iteration for
    iteration, plus a cadenced serialization of the in-flight state —
    visited set (as interned digests plus a snapshot of the intern
    pools behind them, see {!Cobegin_semantics.Intern.snapshot}),
    frontier, terminal configurations, transition counter and event
    log — to [path].  Writes are atomic (temp file + rename): a crash
    mid-write leaves the previous checkpoint intact.

    {b Determinism contract.}  The BFS is deterministic and saves sit
    at iteration boundaries, so a checkpoint is the exact state of the
    uninterrupted run between two pops.  Killing a run at any point and
    {!resume}-ing its last checkpoint therefore reports {e identical}
    final statistics — configurations, transitions, max_frontier,
    finals, deadlocks, errors — and identical final stores, as the run
    that was never killed.  A truncated run also saves its final state,
    so it can be resumed under a larger budget.

    A checkpoint is bound to the program {e and memory model} that
    produced it (a full-width hash of the marshaled AST, combined with
    the model name, is stored in the header); resuming under a
    different program or model, a different format version, or a torn
    file raises {!Corrupt}.  Format version 2: configurations may carry
    per-process store buffers (TSO/PSO) and the identity hash binds the
    model — version-1 files are refused.  Telemetry: [checkpoint.saves] /
    [checkpoint.restores] counters, [checkpoint.save_ms] /
    [checkpoint.restore_ms] histograms. *)

open Cobegin_semantics

exception Corrupt of string
(** The file at [path] is not a usable checkpoint: bad magic, wrong
    format version, written for a different program, or truncated. *)

type cadence = {
  every_configs : int;  (** save every n worklist pops *)
  every_s : float option;  (** and every s seconds, when set *)
}

val default_cadence : cadence
(** Every 4096 pops, no time trigger. *)

val full :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  ?cadence:cadence ->
  path:string ->
  Step.ctx ->
  Space.result
(** [full ~path ctx] — {!Space.full} with checkpoints written to
    [path].  On a complete run the result equals {!Space.full}'s,
    field for field. *)

val resume :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  ?cadence:cadence ->
  path:string ->
  Step.ctx ->
  Space.result
(** [resume ~path ctx] — load the checkpoint at [path] (written for
    the same program and memory model) and continue it, checkpointing
    onward to the same [path].  When [budget] carries a wall-clock
    timeout its deadline is re-anchored ({!Budget.refresh_deadline})
    after the snapshot is loaded, so the resumed run gets the full
    timeout from the point the BFS restarts — not from budget
    creation.
    @raise Corrupt when the file is missing, torn, version-skewed or
    bound to a different program or memory model *)
