(* The state-space generation engine (paper section 2).

   Breadth-first generation of the configuration graph under a pluggable
   *expansion strategy*: the full strategy fires every enabled process at
   every configuration; the stubborn strategy (Stubborn) fires only a
   persistent subset.  The engine accumulates:

     - counts (configurations, transitions, frontier width),
     - terminal configurations: final (all processes done), deadlocks,
       error configurations,
     - the merged instrumentation log (accesses + allocations), which is
       the input of the section-5 analyses.  *)

open Cobegin_semantics
module Metrics = Cobegin_obs.Metrics
module Probe = Cobegin_obs.Probe
module Journal = Cobegin_obs.Journal

(* Journal breadcrumbs are sampled — one Debug event per
   [journal_every] pops — so a flight-recorder dump shows where the
   engine was without the journal's lock ever entering the hot path
   more than ~0.4% of iterations. *)
let journal_every = 256

(* Telemetry handles: process-global, shared with Sleep (same loop
   shape) and no-ops (one branch) while telemetry is disabled. *)
let m_expansions = Metrics.counter "space.expansions"
let m_transitions = Metrics.counter "space.transitions"
let m_digest_hits = Metrics.counter "space.digest_hits"
let m_admitted = Metrics.counter "space.admitted"
let g_frontier = Metrics.gauge "space.frontier"
let g_visited = Metrics.gauge "space.visited"

type stats = {
  configurations : int;
  transitions : int;
  max_frontier : int;
  finals : int;
  deadlocks : int;
  errors : int;
}

type result = {
  stats : stats;
  status : Budget.status;
  final_configs : Config.t list;
  deadlock_configs : Config.t list;
  error_configs : Config.t list;
  log : Step.events;
}

(* Visited sets are keyed by the hash-consed digest (Config.digest):
   interned component ids with a precomputed full-width hash, so probes
   cost a few int comparisons instead of deep structural equality on
   the canonical representation.  The [_digest] variants let engines
   compute the digest once per configuration and thread it through a
   mem/add or find/add pair. *)
module ConfigTbl = struct
  type 'a t = 'a Config.Digest_tbl.t

  let create n : 'a t = Config.Digest_tbl.create n
  let mem tbl c = Config.Digest_tbl.mem tbl (Config.digest c)
  let add tbl c v = Config.Digest_tbl.replace tbl (Config.digest c) v
  let length = Config.Digest_tbl.length
  let find_opt tbl c = Config.Digest_tbl.find_opt tbl (Config.digest c)
  let mem_digest = Config.Digest_tbl.mem
  let add_digest tbl d v = Config.Digest_tbl.replace tbl d v
  let find_digest = Config.Digest_tbl.find_opt
end

(* [expand c] returns the actions to fire at [c]; it must return a
   subset of the enabled actions, and must be non-empty whenever some
   action is enabled.  Exhausting the budget stops the generation
   cleanly: everything visited so far is returned, tagged truncated. *)
let explore ?(max_configs = 1_000_000) ?budget ?probe ctx ~expand : result =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~max_configs ()
  in
  let visited = ConfigTbl.create 1024 in
  let queue = Queue.create () in
  let finals = ref [] and deadlocks = ref [] and errors = ref [] in
  let transitions = ref 0 and max_frontier = ref 0 in
  let accesses = ref [] and allocs = ref [] in
  let stop = ref None in
  let pops = ref 0 in
  let c0 = Step.init ctx in
  ConfigTbl.add visited c0 ();
  Queue.add c0 queue;
  while !stop = None && not (Queue.is_empty queue) do
    match
      Budget.check budget ~configs:(ConfigTbl.length visited)
        ~transitions:!transitions
    with
    | Some r -> stop := Some r
    | None -> (
        Fault.hit "space.pop";
        incr pops;
        if Journal.enabled () && !pops mod journal_every = 0 then
          Journal.emit ~level:Journal.Debug "space.progress"
            [
              ("pops", Journal.Int !pops);
              ("configurations", Journal.Int (ConfigTbl.length visited));
              ("frontier", Journal.Int (Queue.length queue));
              ("transitions", Journal.Int !transitions);
            ];
        (match probe with
        | None -> ()
        | Some p ->
            Probe.tick p
              ~configurations:(ConfigTbl.length visited)
              ~frontier:(Queue.length queue) ~transitions:!transitions);
        Metrics.incr m_expansions;
        if Metrics.enabled () then begin
          Metrics.set g_frontier (Queue.length queue);
          Metrics.set g_visited (ConfigTbl.length visited)
        end;
        max_frontier := max !max_frontier (Queue.length queue);
        let c = Queue.pop queue in
        if Config.is_error c then errors := c :: !errors
        else if Config.all_terminated c then finals := c :: !finals
        else
          match Step.enabled_actions ctx c with
          | [] -> deadlocks := c :: !deadlocks
          | _ ->
              (* break out of the expansion as soon as the budget stops
                 the run: the remaining successors must not fire, or
                 transitions and event logs inflate past the stop *)
              let rec fire_each = function
                | [] -> ()
                | a :: rest ->
                    incr transitions;
                    Metrics.incr m_transitions;
                    let c', evs = Step.fire_action ctx c a in
                    accesses := evs.Step.accesses :: !accesses;
                    allocs := evs.Step.allocs :: !allocs;
                    let d' = Config.digest c' in
                    (if ConfigTbl.mem_digest visited d' then
                       Metrics.incr m_digest_hits
                     else
                       match
                         Budget.config_guard budget
                           ~configs:(ConfigTbl.length visited)
                       with
                       | Some r -> stop := Some r
                       | None ->
                           Metrics.incr m_admitted;
                           ConfigTbl.add_digest visited d' ();
                           Queue.add c' queue);
                    if !stop = None then fire_each rest
              in
              fire_each (expand c))
  done;
  (* Budget truncation: the frontier still holds admitted configurations
     that were never popped, so without this pass a Truncated report
     undercounts finals/deadlocks/errors — every one of them counted as
     a configuration but none as a terminal.  Classify them (no
     expansion, no new transitions, no new admissions). *)
  if !stop <> None then
    Queue.iter
      (fun c ->
        if Config.is_error c then errors := c :: !errors
        else if Config.all_terminated c then finals := c :: !finals
        else
          match Step.enabled_actions ctx c with
          | [] -> deadlocks := c :: !deadlocks
          | _ -> ())
      queue;
  if Journal.enabled () then
    Journal.emit "space.done"
      [
        ("configurations", Journal.Int (ConfigTbl.length visited));
        ("transitions", Journal.Int !transitions);
        ("complete", Journal.Bool (!stop = None));
      ];
  {
    status = Budget.status_of !stop;
    stats =
      {
        configurations = ConfigTbl.length visited;
        transitions = !transitions;
        max_frontier = !max_frontier;
        finals = List.length !finals;
        deadlocks = List.length !deadlocks;
        errors = List.length !errors;
      };
    final_configs = !finals;
    deadlock_configs = !deadlocks;
    error_configs = !errors;
    log =
      {
        Step.accesses = List.concat (List.rev !accesses);
        Step.allocs = List.concat (List.rev !allocs);
      };
  }

(* Ordinary (full interleaving) generation. *)
let full ?max_configs ?budget ?probe ctx =
  explore ?max_configs ?budget ?probe ctx ~expand:(fun c ->
      Step.enabled_actions ctx c)

(* Canonical set of final stores, for strategy comparisons.  Keyed on
   the hash-consed store id — an int compare per element instead of
   polymorphic [compare] over whole store representations, and immune
   to any structural-compare/physical-sharing subtleties: id equality
   is exactly structural equality of the canonical repr (Intern).  The
   repr payload is kept for the caller; ids only order and dedup. *)
let final_store_reprs (r : result) =
  let interner = Intern.global () in
  List.map
    (fun c -> (Intern.store_id interner c.Config.store, c.Config.store))
    r.final_configs
  |> List.sort_uniq (fun (i, _) (j, _) -> Int.compare i j)
  |> List.map (fun (_, s) -> Store.repr s)

let pp_stats ppf s =
  Format.fprintf ppf
    "configurations=%d transitions=%d max_frontier=%d finals=%d \
     deadlocks=%d errors=%d"
    s.configurations s.transitions s.max_frontier s.finals s.deadlocks
    s.errors
