(** Multi-domain state-space generation (OCaml 5 domains).

    Drop-in parallel equivalent of {!Space.explore}: the visited set is
    sharded into mutex-protected digest tables, each of [jobs] domains
    owns a work queue and steals from the others when its own runs dry,
    and global progress (admissions, transitions, the truncation latch)
    lives in atomic cells.

    {b Determinism.}  For a run that completes, the results are
    bit-identical to the sequential engine's: every reachable
    configuration is admitted exactly once, expansion is a pure function
    of the configuration, so [configurations], [transitions],
    [finals]/[deadlocks]/[errors] and the terminal-configuration
    multisets do not depend on the schedule or on [jobs] — and the
    terminal lists are digest-sorted after the join, so even their
    order is reproducible.  Two schedule-dependent exceptions:
    [max_frontier] (a parallel frontier peaks differently than a
    sequential BFS queue), and the {e order} of the merged event log
    (a per-worker concatenation; its multiset of events is
    schedule-independent, which is what the order-insensitive
    section-5 analyses consume).

    Truncated runs are a best effort: the shared-budget latch
    guarantees truncation fires once with one recorded reason, but
    which configurations were admitted before the trip — and therefore
    the partial counts — is schedule-dependent, unlike the sequential
    engine.  The admitted-but-unexpanded frontier is still classified
    into the terminal counts, exactly like {!Space.explore}. *)

open Cobegin_semantics

exception
  Worker_failed of { domain : int; cause : exn; backtrace : string }
(** A worker domain raised.  The first failure is latched, every
    sibling drains out of the steal loop (no hang on the unbalanced
    in-flight counter) and joins, and the failure is re-raised as this
    structured diagnostic on the calling domain — [cause] is the
    original exception, [backtrace] its captured trace.  Raised by
    {!explore}/{!full} after the join; partial results are discarded
    (a crashed expansion cannot vouch for them). *)

val explore :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  ?spans:Cobegin_obs.Span.t ->
  jobs:int ->
  Step.ctx ->
  expand:(Config.t -> Step.action list) ->
  Space.result
(** [explore ~jobs ctx ~expand] generates the configuration graph on
    [jobs] domains.  [jobs <= 1] delegates to {!Space.explore} — the
    sequential engine, byte-for-byte.  [expand] must be a {e pure}
    function of the configuration (the full-interleaving expansion is;
    strategies with mutable selection state, e.g. {!Sleep}, are not and
    stay sequential).  When [budget] is omitted, one is created with
    [max_configs] in shared (multi-domain) mode; a caller-supplied
    budget should be created with [~shared:true] so truncation is
    latched once across domains.  [probe] is ticked by worker 0 only
    (probes are single-domain).  When [spans] is given, each worker
    domain runs inside its own ["worker<i>"] span, so the trace export
    renders one lane per worker; workers also journal their
    start/finish (and failures, at [Error]) when the process journal is
    running. *)

val full :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  ?spans:Cobegin_obs.Span.t ->
  jobs:int ->
  Step.ctx ->
  Space.result
(** Ordinary (full interleaving) generation on [jobs] domains. *)
