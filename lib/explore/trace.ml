(* Witness traces: breadth-first search for a configuration satisfying a
   predicate, keeping parent links so the schedule (sequence of pids) that
   reaches it can be reported.  Used by the race reporter and by tests
   that need a concrete interleaving exhibiting an outcome. *)

open Cobegin_semantics

type witness = {
  schedule : Value.pid list; (* pids fired, in order *)
  target : Config.t;
  explored : int;
}

module ConfigTbl = Space.ConfigTbl

let search ?(max_configs = 200_000) ctx ~(pred : Config.t -> bool) :
    witness option =
  let visited = ConfigTbl.create 1024 in
  let queue = Queue.create () in
  (* parent map: configuration -> (parent, pid fired) *)
  let parents : (Config.t * Value.pid) ConfigTbl.t = ConfigTbl.create 1024 in
  let c0 = Step.init ctx in
  let rebuild c =
    let rec go c acc =
      match ConfigTbl.find_opt parents c with
      | None -> acc
      | Some (parent, pid) -> go parent (pid :: acc)
    in
    go c []
  in
  let result = ref None in
  ConfigTbl.add visited c0 ();
  Queue.add c0 queue;
  (try
     while not (Queue.is_empty queue) do
       let c = Queue.pop queue in
       if pred c then begin
         result :=
           Some
             {
               schedule = rebuild c;
               target = c;
               explored = ConfigTbl.length visited;
             };
         raise Exit
       end;
       if not (Config.is_error c) then
         List.iter
           (fun p ->
             let c', _ = Step.fire ctx c p in
             let d' = Config.digest c' in
             if
               (not (ConfigTbl.mem_digest visited d'))
               && ConfigTbl.length visited < max_configs
             then begin
               ConfigTbl.add_digest visited d' ();
               ConfigTbl.add_digest parents d' (c, p.Proc.pid);
               Queue.add c' queue
             end)
           (Step.enabled_processes ctx c)
     done
   with Exit -> ());
  !result

(* Convenience: a schedule reaching an error configuration. *)
let error_witness ?max_configs ctx =
  search ?max_configs ctx ~pred:Config.is_error

(* A schedule reaching a final configuration whose store satisfies [pred]. *)
let final_witness ?max_configs ctx ~pred =
  search ?max_configs ctx ~pred:(fun c ->
      Config.all_terminated c && pred c.Config.store)

let pp_witness ppf w =
  Format.fprintf ppf "@[<v>schedule (%d steps, %d configs explored):@ %a@]"
    (List.length w.schedule) w.explored
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " → ")
       Value.pp_pid)
    w.schedule
