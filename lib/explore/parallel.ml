(* Multi-domain state-space generation (OCaml 5 domains).

   Same contract as Space.explore — breadth-ish generation of the
   configuration graph under a pluggable expansion strategy — but the
   work is spread over [jobs] domains:

     - the visited set is sharded: [num_shards] mutex-protected
       Digest_tbl shards, a configuration's shard picked by its
       full-width digest hash, so admission of distinct configurations
       almost never contends on the same lock;
     - each worker owns a mutex-protected work queue and steals from
       the others (round-robin scan) when its own runs dry;
     - global progress — admitted configurations, fired transitions,
       queued frontier, the truncation latch — lives in Atomic cells.

   Determinism: for a run that COMPLETES, every reachable configuration
   is admitted exactly once (the shard mutex serializes the
   mem/guard/add sequence), and expansion is a pure function of the
   configuration, so the visited set, the configuration and transition
   counts and the terminal-configuration multisets are independent of
   the schedule — identical to the sequential engine's.  The terminal
   lists are sorted by configuration digest after the join so even
   their order is reproducible.  Two caveats, both documented in the
   mli: [max_frontier] is schedule-dependent (a parallel frontier
   peaks differently), and the event log's order is a per-worker
   concatenation, not the sequential BFS order (the log is a multiset
   for the section-5 analyses, which are order-insensitive).

   Truncated runs are a best effort: the budget latch (Budget shared
   mode) guarantees the truncation fires once with one recorded
   reason, but which configurations got admitted before the trip is
   schedule-dependent, and admission can overshoot the configuration
   budget by at most one per in-flight domain (the guard reads the
   global count outside its own shard's critical section). *)

open Cobegin_semantics
module Metrics = Cobegin_obs.Metrics
module Probe = Cobegin_obs.Probe
module Span = Cobegin_obs.Span
module Journal = Cobegin_obs.Journal

exception
  Worker_failed of { domain : int; cause : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Worker_failed { domain; cause; backtrace = _ } ->
        Some
          (Printf.sprintf "parallel worker %d failed: %s" domain
             (Printexc.to_string cause))
    | _ -> None)

let m_transitions = Metrics.counter "parallel.transitions"
let m_digest_hits = Metrics.counter "parallel.digest_hits"
let m_admitted = Metrics.counter "parallel.admitted"
let m_steals = Metrics.counter "parallel.steals"
let g_jobs = Metrics.gauge "parallel.jobs"

(* Power of two so the shard index is a mask of the digest hash. *)
let num_shards = 64

type shard = { s_lock : Mutex.t; s_tbl : unit Config.Digest_tbl.t }

let shard_of shards d =
  shards.(Config.digest_hash d land (num_shards - 1))

(* Per-worker deque (plain FIFO under a mutex; pops and steals both
   take from the front — BFS-ish order, which keeps the frontier
   shallow like the sequential engine's). *)
type wq = { q_lock : Mutex.t; q : Config.t Queue.t }

let wq_push w c = Mutex.protect w.q_lock (fun () -> Queue.add c w.q)
let wq_pop w = Mutex.protect w.q_lock (fun () -> Queue.take_opt w.q)

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then
    atomic_max cell v

(* Per-worker accumulators: mutated only by the owning domain, read by
   the main domain after the join. *)
type acc = {
  mutable finals : Config.t list;
  mutable deadlocks : Config.t list;
  mutable errors : Config.t list;
  mutable evlogs : Step.events list; (* reverse firing order *)
}

let new_acc () = { finals = []; deadlocks = []; errors = []; evlogs = [] }

(* Total order on digests, for schedule-independent terminal lists.
   Compares the flat int tuple; two digests compare equal iff the
   configurations have equal canonical representations. *)
let digest_compare (a : Config.digest) (b : Config.digest) =
  let c = Int.compare a.Config.d_store b.Config.d_store in
  if c <> 0 then c
  else
    let c = Int.compare a.Config.d_counters b.Config.d_counters in
    if c <> 0 then c
    else
      let c = Int.compare a.Config.d_error b.Config.d_error in
      if c <> 0 then c
      else
        let pa = a.Config.d_procs and pb = b.Config.d_procs in
        let c = Int.compare (Array.length pa) (Array.length pb) in
        if c <> 0 then c
        else
          let rec go i =
            if i >= Array.length pa then 0
            else
              let c = Int.compare pa.(i) pb.(i) in
              if c <> 0 then c else go (i + 1)
          in
          go 0

let sort_by_digest cs =
  List.sort (fun a b -> digest_compare (Config.digest a) (Config.digest b)) cs

let explore ?(max_configs = 1_000_000) ?budget ?probe ?spans ~jobs ctx
    ~expand : Space.result =
  if jobs <= 1 then Space.explore ~max_configs ?budget ?probe ctx ~expand
  else begin
    let budget =
      match budget with
      | Some b -> b
      | None -> Budget.create ~max_configs ~shared:true ()
    in
    Metrics.set g_jobs jobs;
    let shards =
      Array.init num_shards (fun _ ->
          { s_lock = Mutex.create (); s_tbl = Config.Digest_tbl.create 64 })
    in
    let queues =
      Array.init jobs (fun _ -> { q_lock = Mutex.create (); q = Queue.create () })
    in
    let accs = Array.init jobs (fun _ -> new_acc ()) in
    let admitted = Atomic.make 0 in
    let transitions = Atomic.make 0 in
    let pending = Atomic.make 0 in (* enqueued + in-process *)
    let queued = Atomic.make 0 in (* enqueued only: the frontier *)
    let max_frontier = Atomic.make 0 in
    let stop : Budget.reason option Atomic.t = Atomic.make None in
    let latch r =
      ignore (Atomic.compare_and_set stop None (Some r) : bool)
    in
    (* Failure latch: the first escaping exception of any worker, with
       its domain and backtrace.  Setting it makes [stopping] true, so
       the siblings — including any spinning in the steal loop on a
       [pending] count the dead worker can no longer balance — drain
       out and join instead of hanging. *)
    let failed : (int * exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let stopping () =
      Atomic.get stop <> None || Atomic.get failed <> None
    in
    (* Seed: admit the initial configuration on worker 0. *)
    let c0 = Step.init ctx in
    let d0 = Config.digest c0 in
    Config.Digest_tbl.replace (shard_of shards d0).s_tbl d0 ();
    Atomic.incr admitted;
    Atomic.incr pending;
    Atomic.incr queued;
    atomic_max max_frontier 1;
    wq_push queues.(0) c0;
    let worker w () =
      let acc = accs.(w) in
      let my = queues.(w) in
      (* Pop from my queue, else steal; spin (cpu_relax) while work is
         still in flight elsewhere; return None when the whole run is
         drained (pending = 0) or stopped. *)
      let rec next () =
        if stopping () then None
        else
          match wq_pop my with
          | Some c ->
              Atomic.decr queued;
              Some c
          | None ->
              let rec scan k =
                if k >= jobs then None
                else
                  match wq_pop queues.((w + k) mod jobs) with
                  | Some c ->
                      Atomic.decr queued;
                      Metrics.incr m_steals;
                      Some c
                  | None -> scan (k + 1)
              in
              (match scan 1 with
              | Some c -> Some c
              | None ->
                  if Atomic.get pending = 0 then None
                  else begin
                    Domain.cpu_relax ();
                    next ()
                  end)
      in
      let process c =
        if Config.is_error c then acc.errors <- c :: acc.errors
        else if Config.all_terminated c then acc.finals <- c :: acc.finals
        else
          match Step.enabled_actions ctx c with
          | [] -> acc.deadlocks <- c :: acc.deadlocks
          | _ ->
              let rec fire_each = function
                | [] -> ()
                | a :: rest ->
                    Atomic.incr transitions;
                    Metrics.incr m_transitions;
                    let c', evs = Step.fire_action ctx c a in
                    acc.evlogs <- evs :: acc.evlogs;
                    let d' = Config.digest c' in
                    let shard = shard_of shards d' in
                    let verdict =
                      Mutex.protect shard.s_lock (fun () ->
                          if Config.Digest_tbl.mem shard.s_tbl d' then `Dup
                          else
                            match
                              Budget.config_guard budget
                                ~configs:(Atomic.get admitted)
                            with
                            | Some r -> `Stop r
                            | None ->
                                Config.Digest_tbl.replace shard.s_tbl d' ();
                                Atomic.incr admitted;
                                `Fresh)
                    in
                    (match verdict with
                    | `Dup -> Metrics.incr m_digest_hits
                    | `Stop r -> latch r
                    | `Fresh ->
                        Metrics.incr m_admitted;
                        Atomic.incr pending;
                        atomic_max max_frontier
                          (Atomic.fetch_and_add queued 1 + 1);
                        wq_push my c');
                    if Atomic.get stop = None then fire_each rest
              in
              fire_each (expand c)
      in
      let rec loop () =
        if not (stopping ()) then begin
          (if w = 0 then
             match probe with
             | None -> ()
             | Some p ->
                 Probe.tick p
                   ~configurations:(Atomic.get admitted)
                   ~frontier:(Atomic.get queued)
                   ~transitions:(Atomic.get transitions));
          match
            Budget.check budget ~configs:(Atomic.get admitted)
              ~transitions:(Atomic.get transitions)
          with
          | Some r -> latch r
          | None -> (
              match next () with
              | None -> ()
              | Some c ->
                  Fault.worker_pop w;
                  process c;
                  Atomic.decr pending;
                  loop ())
        end
      in
      (* An exception escaping the loop body (a bug in expansion, an
         injected fault) leaves [pending] unbalanced for the popped
         configuration; without the failure latch the siblings would
         spin on [pending > 0] forever.  Latch the first failure —
         [stopping] then drains everyone — and let the main domain
         re-raise it after the join.  Each worker runs inside its own
         span (one "tid" lane per domain in the trace export) and
         journals its start/finish, so a flight-recorder dump shows
         which workers were alive when something died. *)
      let run () =
        if Journal.enabled () then
          Journal.emit "parallel.worker_start" [ ("worker", Journal.Int w) ];
        match loop () with
        | () ->
            if Journal.enabled () then
              Journal.emit "parallel.worker_done"
                [ ("worker", Journal.Int w) ]
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            if Journal.enabled () then
              Journal.emit ~level:Journal.Error "parallel.worker_failed"
                [
                  ("worker", Journal.Int w);
                  ("diagnostic", Journal.Str (Printexc.to_string e));
                ];
            ignore
              (Atomic.compare_and_set failed None (Some (w, e, bt)) : bool)
      in
      match spans with
      | None -> run ()
      | Some t -> Span.with_span t (Printf.sprintf "worker%d" w) run
    in
    let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
    Array.iter Domain.join domains;
    (match Atomic.get failed with
    | Some (domain, cause, bt) ->
        Printexc.raise_with_backtrace
          (Worker_failed
             {
               domain;
               cause;
               backtrace = Printexc.raw_backtrace_to_string bt;
             })
          bt
    | None -> ());
    let finals = ref [] and deadlocks = ref [] and errors = ref [] in
    Array.iter
      (fun a ->
        finals := a.finals @ !finals;
        deadlocks := a.deadlocks @ !deadlocks;
        errors := a.errors @ !errors)
      accs;
    (* Truncation drain, mirroring Space.explore: classify the
       admitted-but-unpopped frontier so a Truncated report doesn't
       undercount terminals.  Each configuration was admitted (and so
       enqueued) exactly once, hence counted at most once here. *)
    if Atomic.get stop <> None then
      Array.iter
        (fun wq ->
          Queue.iter
            (fun c ->
              if Config.is_error c then errors := c :: !errors
              else if Config.all_terminated c then finals := c :: !finals
              else
                match Step.enabled_actions ctx c with
                | [] -> deadlocks := c :: !deadlocks
                | _ -> ())
            wq.q)
        queues;
    let finals = sort_by_digest !finals
    and deadlocks = sort_by_digest !deadlocks
    and errors = sort_by_digest !errors in
    let logs =
      List.concat_map (fun a -> List.rev a.evlogs) (Array.to_list accs)
    in
    {
      Space.status = Budget.status_of (Atomic.get stop);
      stats =
        {
          Space.configurations = Atomic.get admitted;
          transitions = Atomic.get transitions;
          max_frontier = Atomic.get max_frontier;
          finals = List.length finals;
          deadlocks = List.length deadlocks;
          errors = List.length errors;
        };
      final_configs = finals;
      deadlock_configs = deadlocks;
      error_configs = errors;
      log =
        {
          Step.accesses = List.concat_map (fun e -> e.Step.accesses) logs;
          Step.allocs = List.concat_map (fun e -> e.Step.allocs) logs;
        };
    }
  end

let full ?max_configs ?budget ?probe ?spans ~jobs ctx =
  explore ?max_configs ?budget ?probe ?spans ~jobs ctx ~expand:(fun c ->
      Step.enabled_actions ctx c)
