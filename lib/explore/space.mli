(** State-space generation (paper section 2).

    Breadth-first construction of the configuration graph of a program
    under a pluggable {e expansion strategy}: [full] fires every enabled
    process at every configuration; {!Stubborn} and {!Sleep} plug reduced
    strategies into {!explore}.  The engine accumulates configuration and
    transition counts, the terminal configurations (final, deadlocked,
    erroneous) and the merged instrumentation log consumed by the
    analyses of Cobegin_analysis. *)

open Cobegin_semantics

type stats = {
  configurations : int;  (** distinct configurations visited *)
  transitions : int;  (** transitions fired *)
  max_frontier : int;  (** peak size of the BFS queue *)
  finals : int;  (** configurations with every process terminated *)
  deadlocks : int;  (** non-final configurations with nothing enabled *)
  errors : int;  (** error configurations (runtime failures) *)
}

type result = {
  stats : stats;
  status : Budget.status;
      (** [Complete], or [Truncated reason] when a resource budget was
          exhausted — the other fields then hold the partial result *)
  final_configs : Config.t list;
  deadlock_configs : Config.t list;
  error_configs : Config.t list;
  log : Step.events;  (** merged instrumentation of every transition *)
}

(** Visited sets keyed by the hash-consed configuration digest
    ({!Config.digest}): O(1) probes with full-width precomputed hashes.
    The [_digest] variants take a digest computed once by the caller and
    threaded through, saving the second serialization of a mem/add or
    find/add pair. *)
module ConfigTbl : sig
  type 'a t = 'a Config.Digest_tbl.t

  val create : int -> 'a t
  val mem : 'a t -> Config.t -> bool
  val add : 'a t -> Config.t -> 'a -> unit
  val length : 'a t -> int
  val find_opt : 'a t -> Config.t -> 'a option
  val mem_digest : 'a t -> Config.digest -> bool
  val add_digest : 'a t -> Config.digest -> 'a -> unit
  val find_digest : 'a t -> Config.digest -> 'a option
end

val journal_every : int
(** Sampling period of the journal breadcrumbs: the engines emit one
    Debug progress event per this many worklist pops (shared by the
    Space-shaped loops in {!Sleep} and {!Checkpoint}), so an enabled
    journal costs the ring lock on ~0.4% of iterations. *)

val explore :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  Step.ctx ->
  expand:(Config.t -> Step.action list) ->
  result
(** [explore ctx ~expand] generates the graph, firing at each
    configuration exactly the actions [expand] returns.  [expand] must
    return a subset of the enabled actions, non-empty whenever any
    action is enabled (under {!Step.Sc} actions are exactly the enabled
    processes; under TSO/PSO they also include buffer flushes).  When [budget] is given it governs the run
    ([max_configs] is then ignored); otherwise [max_configs] (default
    one million) bounds the visited set.  Never raises on exhaustion:
    the partial result comes back with [status = Truncated _], and the
    admitted-but-unexpanded frontier is still {e classified} — terminal
    configurations sitting in the queue count toward
    [finals]/[deadlocks]/[errors] (without firing anything).  When
    [probe] is given it is ticked once per worklist pop — the same
    cadence as [Budget.check] — so long runs emit live progress. *)

val full :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  Step.ctx ->
  result
(** Ordinary (full interleaving) generation. *)

val final_store_reprs : result -> (Value.loc * Value.t) list list
(** Canonical list of the distinct final stores — the
    "result-configurations" used to compare strategies.  Deduplicated
    and ordered by hash-consed store id (first-intern order, stable
    within a process), so comparing two runs' lists for equality is
    meaningful in-process regardless of which engine produced them. *)

val pp_stats : Format.formatter -> stats -> unit
