(* Sleep-set reduction (Godefroid), the classic complement to
   persistent/stubborn sets from the same partial-order-reduction line
   the paper builds on (section 2.2 / related work).

   Where stubborn sets cut the *branching* at a configuration, sleep sets
   cut *revisits through commuting permutations*: after exploring the
   transition of process p at configuration c, the sibling exploration of
   q's transition carries p in its sleep set as long as p's action
   commutes with everything executed since — firing a sleeping process
   would only rediscover a permutation of an explored interleaving.

   We implement the standard combination: at each configuration take the
   persistent set from [Stubborn.choose_expansion], then prune it with
   the inherited sleep set; the successor's sleep set keeps the earlier
   siblings whose footprints are independent of the fired action.

   Sleep sets preserve deadlocks and final configurations like persistent
   sets do; together they typically reduce *transitions* well below the
   stubborn-only count (the harness's E3/E7 tables report both). *)

open Cobegin_semantics
module LS = Value.LocSet
module Metrics = Cobegin_obs.Metrics
module Probe = Cobegin_obs.Probe

(* Telemetry: transitions skipped because the process slept.  No-op (one
   branch) while telemetry is disabled. *)
let m_pruned = Metrics.counter "sleep.pruned"

(* Independence of two concrete footprints: no location conflicts. *)
let independent (f1 : Step.footprint) (f2 : Step.footprint) =
  LS.is_empty (LS.inter f1.Step.fwrites (LS.union f2.Step.freads f2.Step.fwrites))
  && LS.is_empty (LS.inter f2.Step.fwrites f1.Step.freads)

type stats = {
  mutable pruned_by_sleep : int; (* transitions skipped thanks to sleep *)
  mutable explored_transitions : int;
}

let new_stats () = { pruned_by_sleep = 0; explored_transitions = 0 }

(* Exploration with persistent sets + sleep sets.  The visited table maps
   a configuration to the sleep set (pids) it was first reached with; a
   revisit with a *smaller* sleep set must be re-expanded (standard sleep
   set algorithm), which we approximate by re-expanding when the recorded
   set is not a subset of the new one. *)
let explore ?(max_configs = 1_000_000) ?budget ?probe ?stats ctx :
    Space.result =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~max_configs ()
  in
  let mctx = Mayaccess.make_ctx ctx.Step.prog in
  let module PidSet = Set.Make (struct
    type t = Value.pid

    let compare = Value.compare_pid
  end) in
  let visited : PidSet.t Space.ConfigTbl.t = Space.ConfigTbl.create 1024 in
  let queue = Queue.create () in
  let finals = ref [] and deadlocks = ref [] and errors = ref [] in
  let transitions = ref 0 and max_frontier = ref 0 in
  let accesses = ref [] and allocs = ref [] in
  let stop = ref None in
  let pops = ref 0 in
  let c0 = Step.init ctx in
  Space.ConfigTbl.add visited c0 PidSet.empty;
  Queue.add (c0, PidSet.empty) queue;
  while !stop = None && not (Queue.is_empty queue) do
    match
      Budget.check budget
        ~configs:(Space.ConfigTbl.length visited)
        ~transitions:!transitions
    with
    | Some r -> stop := Some r
    | None -> (
    Fault.hit "sleep.pop";
    incr pops;
    if
      Cobegin_obs.Journal.enabled ()
      && !pops mod Space.journal_every = 0
    then
      Cobegin_obs.Journal.emit ~level:Cobegin_obs.Journal.Debug
        "sleep.progress"
        [
          ("pops", Cobegin_obs.Journal.Int !pops);
          ( "configurations",
            Cobegin_obs.Journal.Int (Space.ConfigTbl.length visited) );
          ("frontier", Cobegin_obs.Journal.Int (Queue.length queue));
          ("transitions", Cobegin_obs.Journal.Int !transitions);
        ];
    (match probe with
    | None -> ()
    | Some p ->
        Probe.tick p
          ~configurations:(Space.ConfigTbl.length visited)
          ~frontier:(Queue.length queue) ~transitions:!transitions);
    max_frontier := max !max_frontier (Queue.length queue);
    let c, sleep = Queue.pop queue in
    if Config.is_error c then errors := c :: !errors
    else if Config.all_terminated c then finals := c :: !finals
    else begin
      match Step.enabled_actions ctx c with
      | [] -> deadlocks := c :: !deadlocks
      | _ ->
          (* The sleep-set bookkeeping tracks processes by pid, which
             is only meaningful while a process has exactly one action
             alternative — under TSO/PSO a pid covers both a statement
             step and buffer flushes, so sleep pruning is disabled
             there (sleep sets stay empty; the stubborn layer already
             degenerated to full expansion). *)
          let sc = ctx.Step.model = Step.Sc in
          let chosen = Stubborn.choose_expansion mctx ctx c in
          let awake =
            if sc then
              List.filter
                (fun a -> not (PidSet.mem (Step.action_pid a) sleep))
                chosen
            else chosen
          in
          Option.iter
            (fun s ->
              s.pruned_by_sleep <-
                s.pruned_by_sleep + (List.length chosen - List.length awake))
            stats;
          if Metrics.enabled () then
            Metrics.add m_pruned (List.length chosen - List.length awake);
          (* if everything chosen is asleep the state is fully covered by
             earlier permutations: nothing to do *)
          let footprints =
            List.map (fun a -> (a, Step.action_footprint_of ctx c a)) awake
          in
          let rec expand earlier = function
            | [] -> ()
            | (a, fp_a) :: rest ->
                incr transitions;
                Option.iter
                  (fun s ->
                    s.explored_transitions <- s.explored_transitions + 1)
                  stats;
                let c', evs = Step.fire_action ctx c a in
                accesses := evs.Step.accesses :: !accesses;
                allocs := evs.Step.allocs :: !allocs;
                (* successor sleeps: inherited sleepers still independent
                   of the fired action, plus earlier awake siblings
                   independent of it (SC only — see above) *)
                let sleep' =
                  if not sc then PidSet.empty
                  else
                    let keep_sleeping pid =
                      match Config.find_proc pid c with
                      | None -> false
                      | Some q ->
                          independent fp_a (Step.action_footprint ctx c q)
                    in
                    PidSet.union
                      (PidSet.filter keep_sleeping sleep)
                      (PidSet.of_list
                         (List.filter_map
                            (fun (b, fb) ->
                              if independent fp_a fb then
                                Some (Step.action_pid b)
                              else None)
                            earlier))
                in
                let d' = Config.digest c' in
                (match Space.ConfigTbl.find_digest visited d' with
                | None -> (
                    match
                      Budget.config_guard budget
                        ~configs:(Space.ConfigTbl.length visited)
                    with
                    | Some r -> stop := Some r
                    | None ->
                        Space.ConfigTbl.add_digest visited d' sleep';
                        Queue.add (c', sleep') queue)
                | Some recorded ->
                    (* revisit with strictly fewer sleepers: re-expand *)
                    if not (PidSet.subset recorded sleep') then begin
                      let merged = PidSet.inter recorded sleep' in
                      Space.ConfigTbl.add_digest visited d' merged;
                      Queue.add (c', merged) queue
                    end);
                (* stop firing siblings once the budget stops the run *)
                if !stop = None then expand ((a, fp_a) :: earlier) rest
          in
          expand [] footprints
    end)
  done;
  (* On truncation, classify the admitted-but-unpopped frontier exactly
     as the pop would have (no expansion, no new transitions), so a
     Truncated report doesn't undercount terminals — mirrors
     Space.explore. *)
  if !stop <> None then
    Queue.iter
      (fun (c, _sleep) ->
        if Config.is_error c then errors := c :: !errors
        else if Config.all_terminated c then finals := c :: !finals
        else
          match Step.enabled_actions ctx c with
          | [] -> deadlocks := c :: !deadlocks
          | _ -> ())
      queue;
  {
    Space.status = Budget.status_of !stop;
    stats =
      {
        Space.configurations = Space.ConfigTbl.length visited;
        transitions = !transitions;
        max_frontier = !max_frontier;
        finals = List.length !finals;
        deadlocks = List.length !deadlocks;
        errors = List.length !errors;
      };
    final_configs = !finals;
    deadlock_configs = !deadlocks;
    error_configs = !errors;
    log =
      {
        Step.accesses = List.concat (List.rev !accesses);
        Step.allocs = List.concat (List.rev !allocs);
      };
  }
