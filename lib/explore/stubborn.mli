(** Stubborn-set (persistent-set) reduction for programs: the paper's
    Algorithm 1 generalized.

    At each configuration a graph is built over all live processes: an
    edge joins i and j when i's next-action footprint conflicts with the
    may-access of j's whole continuation or vice versa.  Any connected
    component closed under join-enabling (a waiting parent pulls its live
    children in) and containing an enabled process is a persistent set;
    the one firing the fewest enabled processes is expanded.

    Guarantees: all final configurations and deadlocks of the full graph
    are found.  Error configurations reachable only through ignored
    interleavings of diverging processes may be folded; use {!Space.full}
    for exhaustive error search. *)

open Cobegin_semantics

type reduction_stats = {
  mutable singleton_expansions : int;
      (** steps where a single process sufficed *)
  mutable component_expansions : int;
      (** steps firing a proper subset of the enabled processes *)
  mutable full_expansions : int;  (** steps that degenerated to full *)
}

val new_stats : unit -> reduction_stats

val choose_expansion :
  ?stats:reduction_stats ->
  Mayaccess.ctx ->
  Step.ctx ->
  Config.t ->
  Step.action list
(** The persistent set fired at one configuration: a non-empty subset of
    the enabled actions whenever any is enabled.  Under {!Step.Sc} this
    is a persistent set of processes (as [Arun] actions); under
    TSO/PSO the may-access analysis does not model pending flushes, so
    every step degenerates to full expansion (sound, no reduction). *)

val explore :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  ?stats:reduction_stats ->
  Step.ctx ->
  Space.result
(** Stubborn-set exploration of a program.  Stops cleanly at budget
    exhaustion and returns the partial result (see {!Space.explore});
    [probe] is ticked once per worklist pop. *)
