(** Sleep-set reduction (Godefroid), combined with the persistent sets of
    {!Stubborn}: after exploring process p's transition at a
    configuration, the sibling branches carry p in their sleep sets while
    p's action stays independent of everything fired since — firing a
    sleeping process would only rediscover a commuted permutation.

    Preserves final configurations and deadlocks like persistent sets;
    typically cuts {e transitions} well below the stubborn-only count. *)

open Cobegin_semantics

type stats = {
  mutable pruned_by_sleep : int;
      (** transitions skipped because the process slept *)
  mutable explored_transitions : int;
}

val new_stats : unit -> stats

val independent : Step.footprint -> Step.footprint -> bool
(** No read/write conflict between the two concrete footprints. *)

val explore :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  ?stats:stats ->
  Step.ctx ->
  Space.result
(** Persistent-set + sleep-set exploration.  Stops cleanly at budget
    exhaustion and returns the partial result (see {!Space.explore});
    [probe] is ticked once per worklist pop. *)
