(** Every named model in one list: paper figures, protocols, and
    program-form dining-philosopher instances.  Served by
    [coanalyze examples], swept by CI's [--lint-only] job, and used as
    the static/dynamic cross-validation corpus. *)

val all : (string * string) list
(** [(name, source)] pairs; names are unique. *)

val names : string list
val find : string -> string option
