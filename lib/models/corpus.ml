(* The whole named model corpus in one list: the paper figures, the
   protocol zoo, and program-form dining-philosopher instances.  This is
   what `coanalyze examples` serves, what the CI lint sweep iterates
   over, and what the static/dynamic cross-validation suite runs on. *)

let all : (string * string) list =
  Figures.all_named @ Protocols.all_named
  @ [
      ("phil2", Philosophers.program 2);
      ("phil3", Philosophers.program 3);
      ("phil2r2", Philosophers.program ~rounds:2 2);
    ]

let names = List.map fst all
let find name = List.assoc_opt name all
