(* Classic shared-variable synchronization protocols.  These are exactly
   the class of programs the paper's introduction argues a compiler must
   not break: their correctness depends on the order of shared accesses
   under sequential consistency, so any reordering a sequential compiler
   would perform (and any analysis that ignores interleavings) is unsound
   for them. *)

(* Peterson's mutual-exclusion algorithm.  The assertion inside the
   critical section fails iff both threads are inside simultaneously;
   exploration proves it never does — but only because every interleaving
   of the flag/turn protocol is considered. *)
let peterson =
  {|
proc main() {
  var flag0 = 0;
  var flag1 = 0;
  var turn = 0;
  var incrit = 0;
  cobegin
    {
      flag0 = 1;
      turn = 1;
      await(flag1 == 0 || turn == 0);
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      flag0 = 0;
    }
    {
      flag1 = 1;
      turn = 0;
      await(flag0 == 0 || turn == 1);
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      flag1 = 0;
    }
  coend;
}
|}

(* A broken Peterson: the writes to flag and turn are swapped in thread 0
   — the reordering a sequential optimizer might consider harmless.
   Exploration finds the mutual-exclusion violation. *)
let peterson_broken =
  {|
proc main() {
  var flag0 = 0;
  var flag1 = 0;
  var turn = 0;
  var incrit = 0;
  cobegin
    {
      turn = 1;
      await(flag1 == 0 || turn == 0);
      flag0 = 1;
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      flag0 = 0;
    }
    {
      flag1 = 1;
      turn = 0;
      await(flag0 == 0 || turn == 1);
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      flag1 = 0;
    }
  coend;
}
|}

(* Peterson with the store-buffer fences: a [fence] between the flag
   and turn stores (PSO reorders stores to distinct locations — the
   same swap as [peterson_broken]), one between the turn publication
   and the await read (the store-to-load ordering both TSO and PSO
   break), and one before the critical-section release store (so the
   incrit writes are visible before the flag drops).  Verifies clean
   under sc, tso and pso; the unfenced [peterson] violates mutual
   exclusion under tso/pso. *)
let peterson_fenced =
  {|
proc main() {
  var flag0 = 0;
  var flag1 = 0;
  var turn = 0;
  var incrit = 0;
  cobegin
    {
      flag0 = 1;
      fence;
      turn = 1;
      fence;
      await(flag1 == 0 || turn == 0);
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      fence;
      flag0 = 0;
    }
    {
      flag1 = 1;
      fence;
      turn = 0;
      fence;
      await(flag0 == 0 || turn == 1);
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      fence;
      flag1 = 0;
    }
  coend;
}
|}

(* Dekker's mutual-exclusion algorithm — the original software mutual
   exclusion, and the textbook program whose correctness dies under
   store buffering: each thread raises its flag and then reads the
   other's, exactly the store-to-load pair TSO lets pass each other. *)
let dekker =
  {|
proc main() {
  var flag0 = 0;
  var flag1 = 0;
  var turn = 0;
  var incrit = 0;
  cobegin
    {
      flag0 = 1;
      while (flag1 == 1) {
        if (turn != 0) {
          flag0 = 0;
          await(turn == 0);
          flag0 = 1;
        }
      }
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      turn = 1;
      flag0 = 0;
    }
    {
      flag1 = 1;
      while (flag0 == 1) {
        if (turn != 1) {
          flag1 = 0;
          await(turn == 1);
          flag1 = 1;
        }
      }
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      turn = 0;
      flag1 = 0;
    }
  coend;
}
|}

(* Dekker with the fences that restore it under store buffering: one
   after every flag raise (before the read of the other thread's flag)
   and one before the critical-section exit stores. *)
let dekker_fenced =
  {|
proc main() {
  var flag0 = 0;
  var flag1 = 0;
  var turn = 0;
  var incrit = 0;
  cobegin
    {
      flag0 = 1;
      fence;
      while (flag1 == 1) {
        if (turn != 0) {
          flag0 = 0;
          await(turn == 0);
          flag0 = 1;
          fence;
        }
      }
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      fence;
      turn = 1;
      flag0 = 0;
    }
    {
      flag1 = 1;
      fence;
      while (flag0 == 1) {
        if (turn != 1) {
          flag1 = 0;
          await(turn == 1);
          flag1 = 1;
          fence;
        }
      }
      incrit = incrit + 1;
      assert(incrit == 1);
      incrit = incrit - 1;
      fence;
      turn = 0;
      flag1 = 0;
    }
  coend;
}
|}

(* A sense-reversing two-thread barrier, crossed [rounds] times: each
   thread increments the arrival counter under a lock; the last arriver
   flips the sense.  After each crossing both threads must agree on the
   round number. *)
let barrier rounds =
  Printf.sprintf
    {|
proc main() {
  var l = 0;
  var arrived = 0;
  var sense = 0;
  var r0 = 0;
  var r1 = 0;
  cobegin
    {
      while (r0 < %d) {
        lock(l);
        arrived = arrived + 1;
        if (arrived == 2) { arrived = 0; sense = 1 - sense; unlock(l); }
        else { var my = sense; unlock(l); await(sense != my); }
        r0 = r0 + 1;
      }
    }
    {
      while (r1 < %d) {
        lock(l);
        arrived = arrived + 1;
        if (arrived == 2) { arrived = 0; sense = 1 - sense; unlock(l); }
        else { var my = sense; unlock(l); await(sense != my); }
        r1 = r1 + 1;
      }
    }
  coend;
  assert(r0 == %d && r1 == %d);
}
|}
    rounds rounds rounds rounds

(* Readers/writers with a single writer lock and a lock-protected reader
   count: the writer must never observe a torn pair. *)
let readers_writers =
  {|
proc main() {
  var l = 0;
  var readers = 0;
  var a = 0;
  var b = 0;
  var bad = 0;
  cobegin
    {
      lock(l);
      readers = readers + 1;
      unlock(l);
      if (a != b) { bad = 1; }
      lock(l);
      readers = readers - 1;
      unlock(l);
    }
    {
      var written = 0;
      while (written == 0) {
        lock(l);
        if (readers == 0) {
          a = a + 1;
          b = b + 1;
          written = 1;
        }
        unlock(l);
      }
    }
  coend;
  assert(bad == 0);
}
|}

let all_named =
  [
    ("peterson", peterson);
    ("peterson_broken", peterson_broken);
    ("peterson_fenced", peterson_fenced);
    ("dekker", dekker);
    ("dekker_fenced", dekker_fenced);
    ("barrier2", barrier 2);
    ("readers_writers", readers_writers);
  ]
