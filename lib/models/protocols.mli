(** Classic shared-variable synchronization protocols — the programs the
    paper's introduction says a compiler must analyze rather than break:
    their correctness depends on the order of shared accesses under
    sequential consistency. *)

val peterson : string
(** Peterson's mutual exclusion; the in-critical-section assert never
    fails. *)

val peterson_broken : string
(** The same algorithm with thread 0's flag/turn writes reordered — the
    "harmless" compiler transformation; exploration finds the mutual
    exclusion violation. *)

val peterson_fenced : string
(** Peterson with [fence]s after each flag/turn publication and before
    each critical-section release store: verifies clean under sc, tso
    and pso, where the unfenced {!peterson} violates mutual exclusion
    under tso/pso. *)

val dekker : string
(** Dekker's mutual exclusion — correct under SC, broken by store
    buffering (each thread's flag raise may still sit in its buffer
    when the other thread reads the flag). *)

val dekker_fenced : string
(** Dekker with the fences that restore it under TSO/PSO. *)

val barrier : int -> string
(** Sense-reversing two-thread barrier, crossed n times. *)

val readers_writers : string
(** Lock-protected reader registration with a retrying writer; the
    reader never observes a torn pair. *)

val all_named : (string * string) list
