(** Crash-safe whole-file writes: temp file + atomic rename.

    One shared implementation of the checkpoint-style write discipline,
    used for every artifact a restarted process may re-read — run
    manifests ({!Manifest.write}) and the serve daemon's on-disk cache
    entries.  A crash (or an injected [--chaos] fault) at any point
    leaves either the previous file or the complete new one on disk,
    never a torn prefix. *)

val write_string : path:string -> string -> unit
(** [write_string ~path content] writes [content] to a uniquely-named
    temp file next to [path] (same directory, so the rename never
    crosses a filesystem) and renames it over [path].  Safe to call
    concurrently from several domains, for the same or different
    paths: every rename installs a complete payload.
    @raise Sys_error when the directory is missing or unwritable; the
    temp file is removed on the way out. *)
