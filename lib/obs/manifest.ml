(* Digest-addressed run manifests (see manifest.mli). *)

let format_version = 1

(* FNV-1a 64-bit: offset basis then xor-multiply per byte.  Int64
   arithmetic so the result is identical on every platform. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let key ~program_digest ~options_fingerprint ~memory_model =
  Printf.sprintf "%016Lx"
    (fnv1a64
       (String.concat "\x00"
          [
            program_digest;
            options_fingerprint;
            memory_model;
            string_of_int format_version;
          ]))

type t = {
  mf_key : string;
  mf_format_version : int;
  mf_program_digest : string;
  mf_options_fingerprint : string;
  mf_memory_model : string;
  mf_status : string;
  mf_exit_code : int;
  mf_elapsed_s : float;
  mf_metrics : string option;
  mf_chaos : string option;
  mf_checkpoint : string option;
}

let make ~program_digest ~options_fingerprint ~memory_model ~status
    ~exit_code ~elapsed_s ?metrics ?chaos ?checkpoint () =
  {
    mf_key = key ~program_digest ~options_fingerprint ~memory_model;
    mf_format_version = format_version;
    mf_program_digest = program_digest;
    mf_options_fingerprint = options_fingerprint;
    mf_memory_model = memory_model;
    mf_status = status;
    mf_exit_code = exit_code;
    mf_elapsed_s = elapsed_s;
    mf_metrics = metrics;
    mf_chaos = chaos;
    mf_checkpoint = checkpoint;
  }

let to_json m =
  let buf = Buffer.create 512 in
  let field ?(first = false) name add =
    if not first then Buffer.add_char buf ',';
    Obs_json.escape_into buf name;
    Buffer.add_char buf ':';
    add ()
  in
  let str s () = Obs_json.escape_into buf s in
  let opt_str o () =
    match o with
    | None -> Buffer.add_string buf "null"
    | Some s -> Obs_json.escape_into buf s
  in
  Buffer.add_char buf '{';
  field ~first:true "key" (str m.mf_key);
  field "format_version" (fun () ->
      Buffer.add_string buf (string_of_int m.mf_format_version));
  field "program_digest" (str m.mf_program_digest);
  field "options_fingerprint" (str m.mf_options_fingerprint);
  field "memory_model" (str m.mf_memory_model);
  field "status" (str m.mf_status);
  field "exit_code" (fun () ->
      Buffer.add_string buf (string_of_int m.mf_exit_code));
  field "elapsed_s" (fun () ->
      Buffer.add_string buf (Obs_json.float m.mf_elapsed_s));
  (* metrics is raw, already-rendered JSON, embedded as-is *)
  field "metrics" (fun () ->
      Buffer.add_string buf (Option.value m.mf_metrics ~default:"null"));
  field "chaos" (opt_str m.mf_chaos);
  field "checkpoint" (opt_str m.mf_checkpoint);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Atomic (tmp+rename): a crash mid-write must never leave a torn,
   unparseable manifest behind — a restarted result cache would read it
   as garbage.  Same discipline as checkpoints and cache entries. *)
let write m path = Atomic_io.write_string ~path (to_json m ^ "\n")
