(** Process-global registry of named counters, gauges and log-scale
    histograms.

    Engines create handles once (at module-initialization time) with
    {!counter}/{!gauge}/{!histogram} — creation is memoized by name, so
    the same name always yields the same handle, including across
    functor instantiations — and mutate them from hot loops with
    {!incr}/{!add}/{!set}/{!observe}.  Every mutation is guarded by one
    flag test: with telemetry disabled (the default) a hot loop pays a
    single predictable branch per call site and allocates nothing.

    The registry is process-global on purpose: it matches the
    process-wide intern pools and visited sets it instruments, and it
    lets [coanalyze --metrics] collect everything the run touched
    without threading a context through every engine.

    Domain-safety: counters and gauges are atomic cells, safe to mutate
    from any number of OCaml domains (increments are lock-free);
    creation, {!snapshot} and {!reset} are serialized by a registry
    mutex.  Histograms carry a per-histogram mutex: {!observe} is safe
    from any number of domains, serializing only observations of the
    same histogram, and {!snapshot}/{!reset} take the same lock so
    concurrent reads are consistent. *)

type counter
type gauge
type histogram

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Telemetry master switch; starts disabled. *)

val counter : string -> counter
(** Find or create the counter registered under this name. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
(** One branch when disabled. *)

val add : counter -> int -> unit
(** Counters are monotonic.
    @raise Invalid_argument on a negative increment (even disabled). *)

val counter_value : counter -> int
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Log-scale bucketing: values [<= 0] land in bucket 0; value [v > 0]
    lands in the bucket whose lower bound is the largest power of two
    [<= v]. *)

val bucket_of : int -> int
val bucket_lower : int -> int
(** Exposed for tests: [bucket_lower (bucket_of v) <= v] for [v > 0]. *)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_buckets : (int * int) list;
      (** (bucket lower bound, count), ascending, empty buckets
          omitted *)
}

type snapshot = {
  s_counters : (string * int) list;  (** sorted by name *)
  s_gauges : (string * int) list;
  s_histograms : (string * histogram_snapshot) list;
}

val snapshot : unit -> snapshot
(** Every registered instrument, values as of now, sorted by name. *)

val reset : unit -> unit
(** Zero every value.  Handles already held by engines stay valid. *)

val to_json : snapshot -> string
(** One JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{..}}]. *)

val pp : Format.formatter -> snapshot -> unit
