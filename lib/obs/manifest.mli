(** Digest-addressed run manifests.

    One JSON record per analysis run, addressed by a key derived from
    everything that determines the run's result: the program digest,
    the canonical options fingerprint, the memory model and the
    manifest format version.  Two runs with the same key computed the
    same analysis, so the key is exactly what a result cache (the
    planned [serve] daemon) looks up before re-analyzing.

    This module is deliberately string-typed: it sits in [lib/obs],
    below the language and semantics libraries, so callers (the
    pipeline, the CLI) render their digests and fingerprints and pass
    them down. *)

val format_version : int
(** Bumped whenever the manifest schema or the key derivation changes;
    part of the key, so caches never serve records across versions. *)

val fnv1a64 : string -> int64
(** FNV-1a, 64-bit — the key hash.  Stable across processes and OCaml
    versions (pure arithmetic on the bytes). *)

val key :
  program_digest:string ->
  options_fingerprint:string ->
  memory_model:string ->
  string
(** The 16-hex-digit run key: [fnv1a64] over the NUL-separated
    components plus {!format_version}. *)

type t = {
  mf_key : string;  (** {!key} of the components below *)
  mf_format_version : int;
  mf_program_digest : string;
  mf_options_fingerprint : string;
  mf_memory_model : string;
  mf_status : string;  (** [Budget.status_to_string] of the run *)
  mf_exit_code : int;
  mf_elapsed_s : float;
  mf_metrics : string option;
      (** metrics snapshot as raw JSON ([Metrics.to_json]), when
          telemetry was enabled *)
  mf_chaos : string option;  (** canonical installed chaos spec *)
  mf_checkpoint : string option;  (** checkpoint path, when one was used *)
}

val make :
  program_digest:string ->
  options_fingerprint:string ->
  memory_model:string ->
  status:string ->
  exit_code:int ->
  elapsed_s:float ->
  ?metrics:string ->
  ?chaos:string ->
  ?checkpoint:string ->
  unit ->
  t
(** Computes the key from the identity components. *)

val to_json : t -> string
(** One JSON object; absent provenance fields are [null]. *)

val write : t -> string -> unit
(** [write m path] writes {!to_json} plus a newline to [path],
    atomically ({!Atomic_io.write_string}): a crash mid-write leaves
    the previous manifest (or nothing), never a torn record a restarted
    cache would misread. *)
