(* Crash-safe file writes (see atomic_io.mli).

   The checkpoint subsystem established the pattern: write the whole
   payload to a temp file in the destination directory, then rename it
   into place.  POSIX rename is atomic within a filesystem, so a reader
   (a restarted daemon re-reading its cache directory, a manifest
   consumer) sees either the previous file or the complete new one —
   never a torn prefix from a crash (or an injected --chaos fault)
   mid-write.

   The temp name carries the pid and a process-wide counter so
   concurrent writers — worker domains persisting cache entries for
   different keys into one directory, or racing on the same key — never
   collide on the temp file; last rename wins, and every rename installs
   a complete payload. *)

let tmp_counter = Atomic.make 0

let write_string ~path content =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
