(** Leveled structured event journal with a flight recorder.

    Engines and the pipeline emit {e events} — a name, a level, a few
    typed fields — through one process-global journal.  While the
    journal is disabled (the default) every {!emit} costs a single
    atomic load and allocates nothing, so emission sites can stay in
    engine loops.

    When started, the journal does two things with each event:

    - appends it to a {e bounded ring buffer} (default 256 slots) that
      always holds the most recent events of {e every} level — the
      flight recorder.  On a crash, {!flight_dump} renders the ring so
      the last moments before the failure are recoverable even when no
      sink was configured or the sink's threshold filtered the
      breadcrumbs out;
    - writes it to the optional JSONL sink (one JSON object per line,
      flushed) when its level passes the sink threshold.

    Events carry a process-wide sequence number (a total order even
    across domains), a timestamp relative to {!start}, and the id of
    the emitting domain — multi-domain runs interleave safely; dumps
    sort by sequence number, so artifacts are deterministic given a
    deterministic emission order.

    The journal is process-global like {!Metrics}: engines deep in the
    library graph reach it without threading a context. *)

(** Severity, ordered [Debug < Info < Warn < Error]. *)
type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"] — stable. *)

val level_of_string : string -> level option
(** Inverse of {!level_name} (case-insensitive). *)

(** A typed field value. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  e_seq : int;  (** process-wide sequence number, from 0 at {!start} *)
  e_ts : float;  (** seconds since {!start} *)
  e_level : level;
  e_domain : int;  (** id of the emitting domain *)
  e_name : string;  (** dotted site name, e.g. ["space.done"] *)
  e_fields : (string * value) list;
}

val enabled : unit -> bool
(** One atomic load — the guard emission sites test before building
    their field lists. *)

val start :
  ?threshold:level ->
  ?capacity:int ->
  ?clock:(unit -> float) ->
  ?sink:out_channel ->
  unit ->
  unit
(** Enable the journal: reset the sequence counter and the ring (sized
    [capacity], default 256, clamped to at least 1), anchor timestamps
    at now, and attach [sink], to which events of level [>= threshold]
    (default [Info]) are written as JSONL.  The ring records every
    event regardless of [threshold].  The caller owns [sink] — the
    journal flushes it but never closes it.  [clock] is injectable for
    deterministic tests (default [Unix.gettimeofday]). *)

val stop : unit -> unit
(** Disable and detach the sink (flushing it first).  The ring's
    contents are dropped. *)

val emit : ?level:level -> string -> (string * value) list -> unit
(** Record one event.  No-op (one atomic load) while disabled. *)

val ring_events : unit -> event list
(** The flight recorder's current contents, oldest first (sorted by
    sequence number).  Empty while disabled. *)

val ring_capacity : unit -> int
(** The configured ring size (0 while disabled). *)

val clear_ring : unit -> unit
(** Empty the flight recorder without stopping the journal: the ring's
    slots are dropped, the sink stays attached, and the sequence
    counter keeps running (ordering stays a process-wide total order).
    Callers that run several analyses in one process — the serve
    daemon, a test harness — clear the ring at each run's start so a
    crash dumps only that run's breadcrumbs, never a predecessor's.
    No-op while disabled. *)

val event_to_json : event -> string
(** One JSON object:
    [{"seq":0,"ts":1.5,"level":"info","domain":0,"event":"space.done",
    "fields":{...}}]. *)

val flight_dump : reason:string -> unit -> string list
(** Render the ring as JSON lines (oldest first) and — when a sink is
    attached — write a single [flight_recorder] event to it carrying
    [reason] and the ring, {e bypassing the threshold}.  Returns the
    rendered lines so callers can attach them to a report.  Empty list
    while disabled. *)
