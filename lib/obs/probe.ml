(* Periodic live-progress heartbeat for long engine runs.

   The engines call [tick] once per worklist pop — the same cadence as
   [Budget.check] — and the probe fires a sample whenever enough new
   configurations accumulated or enough wall time passed.  The
   non-firing path costs one int comparison plus, every [check_every]
   ticks, one clock read: cheap enough to leave attached to hot loops.

   Samples go to a pluggable sink: a stderr progress line or a JSONL
   stream.  Pool sizes come from an injected supplier so this library
   depends on nothing above Budget. *)

type sample = {
  p_elapsed_s : float;
  p_configurations : int;
  p_frontier : int;
  p_transitions : int;
  p_rate : float; (* transitions per second since the probe started *)
  p_heap_words : int;
  p_pools : (string * int) list;
  p_headroom : Budget.headroom list;
}

type sink = sample -> unit

type t = {
  every_configs : int;
  every_s : float;
  check_every : int;
  clock : unit -> float;
  pools : unit -> (string * int) list;
  mutable budget : Budget.t option;
  sink : sink;
  t0 : float;
  mutable ticks : int;
  mutable last_fire_configs : int;
  mutable last_fire_t : float;
  mutable fired : int;
}

let make ?(every_configs = 5_000) ?(every_s = 1.0) ?(check_every = 256)
    ?(clock = Unix.gettimeofday) ?(pools = fun () -> []) ?budget sink =
  let t0 = clock () in
  {
    every_configs = max 1 every_configs;
    every_s;
    check_every = max 1 check_every;
    clock;
    pools;
    budget;
    sink;
    t0;
    ticks = 0;
    last_fire_configs = 0;
    last_fire_t = t0;
    fired = 0;
  }

let set_budget t b = t.budget <- Some b
let fired t = t.fired

let fire t ~configurations ~frontier ~transitions ~now =
  let elapsed = now -. t.t0 in
  let sample =
    {
      p_elapsed_s = elapsed;
      p_configurations = configurations;
      p_frontier = frontier;
      p_transitions = transitions;
      p_rate =
        (if elapsed > 0. then float_of_int transitions /. elapsed else 0.);
      p_heap_words = (Gc.quick_stat ()).Gc.heap_words;
      p_pools = t.pools ();
      p_headroom =
        (match t.budget with
        | None -> []
        | Some b -> Budget.snapshot b ~configs:configurations ~transitions);
    }
  in
  t.fired <- t.fired + 1;
  t.last_fire_configs <- configurations;
  t.last_fire_t <- now;
  t.sink sample

let tick t ~configurations ~frontier ~transitions =
  if configurations - t.last_fire_configs >= t.every_configs then
    fire t ~configurations ~frontier ~transitions ~now:(t.clock ())
  else begin
    let sampled = t.ticks mod t.check_every = 0 in
    t.ticks <- t.ticks + 1;
    if sampled then begin
      let now = t.clock () in
      if now -. t.last_fire_t >= t.every_s then
        fire t ~configurations ~frontier ~transitions ~now
    end
  end

(* --- sinks --- *)

let pp_headroom_line buf hs =
  List.iteri
    (fun i h ->
      Buffer.add_string buf (if i = 0 then " budget " else " ");
      Printf.bprintf buf "%s=%.0f/%.0f"
        (Budget.reason_label h.Budget.h_reason)
        h.Budget.h_consumed h.Budget.h_limit)
    hs

let stderr_sink sample =
  let buf = Buffer.create 128 in
  Printf.bprintf buf
    "[probe] %6.1fs configs=%d frontier=%d transitions=%d (%.0f/s) heap=%.1fMW"
    sample.p_elapsed_s sample.p_configurations sample.p_frontier
    sample.p_transitions sample.p_rate
    (float_of_int sample.p_heap_words /. 1e6);
  List.iter
    (fun (name, v) -> Printf.bprintf buf " %s=%d" name v)
    sample.p_pools;
  pp_headroom_line buf sample.p_headroom;
  prerr_endline (Buffer.contents buf)

let sample_to_json sample =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "{\"elapsed_s\":%s,\"configurations\":%d,\"frontier\":%d,\"transitions\":%d,\"rate\":%s,\"heap_words\":%d,\"pools\":{"
    (Obs_json.float sample.p_elapsed_s)
    sample.p_configurations sample.p_frontier sample.p_transitions
    (Obs_json.float sample.p_rate)
    sample.p_heap_words;
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Obs_json.escape_into buf name;
      Printf.bprintf buf ":%d" v)
    sample.p_pools;
  Buffer.add_string buf "},\"budget\":[";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"limit\":%s,\"consumed\":%s,\"max\":%s}"
        (Obs_json.string (Budget.reason_label h.Budget.h_reason))
        (Obs_json.float h.Budget.h_consumed)
        (Obs_json.float h.Budget.h_limit))
    sample.p_headroom;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let jsonl_sink oc sample =
  output_string oc (sample_to_json sample);
  output_char oc '\n';
  flush oc
