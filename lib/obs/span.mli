(** Nestable wall-clock spans, exported as Chrome trace-event JSON.

    A recorder ({!t}) keeps one stack of open spans per domain; each
    {!enter} links the new span to the one currently innermost on the
    calling domain, so the export carries a thread of parent ids.
    {!to_trace_json} produces the trace-event format loadable in
    [chrome://tracing] and Perfetto, with one ["tid"] lane per domain —
    parallel workers each get their own lane.

    Domain-safety: all operations are serialized by the recorder's
    mutex, so one recorder may be shared across worker domains.  A
    span must be exited on the domain that entered it.

    The clock is injectable ({!create}) so tests drive a deterministic
    one; timestamps are relative to the recorder's creation. *)

type t
(** A span recorder. *)

type span
(** An open span handle. *)

type event = {
  ev_name : string;
  ev_id : int;  (** ids are sequential in {!enter} order *)
  ev_parent : int;
      (** the enclosing span's id on the same domain, or [-1] for a
          root *)
  ev_domain : int;  (** id of the domain that ran the span *)
  ev_start : float;  (** seconds since recorder creation *)
  ev_dur : float;  (** seconds *)
}

val create : ?clock:(unit -> float) -> unit -> t
(** Default clock: [Unix.gettimeofday]. *)

val enter : t -> string -> span

val exit : t -> span -> unit
(** Closes the span and anything still open inside it on the calling
    domain.  Exiting a span that is not open there is a no-op. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [enter]/[exit] around [f], exception-safe. *)

val reset : t -> unit
(** Drop every completed event and any span still open, keeping the
    recorder (and its time origin) alive — per-run scoping when one
    recorder outlives many analyses in a process, e.g. the serve
    daemon between requests.  Span ids keep ascending across resets. *)

val events : t -> event list
(** Completed spans, in completion order. *)

val event_count : t -> int

val durations : t -> (string * float) list
(** [(name, seconds)] of the completed spans, completion order. *)

val to_trace_json : t -> string
(** The completed spans as one Chrome trace-event JSON object
    ([{"traceEvents":[...]}]); timestamps and durations in
    microseconds, complete ("ph":"X") events, sorted by span id, the
    emitting domain as the ["tid"] lane. *)

val write_trace : t -> string -> unit
(** [write_trace t path] writes {!to_trace_json} to [path]. *)
