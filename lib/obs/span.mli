(** Nestable wall-clock spans, exported as Chrome trace-event JSON.

    A recorder ({!t}) keeps a stack of open spans; each {!enter} links
    the new span to the one currently innermost, so the export carries a
    thread of parent ids.  {!to_trace_json} produces the trace-event
    format loadable in [chrome://tracing] and Perfetto.

    The clock is injectable ({!create}) so tests drive a deterministic
    one; timestamps are relative to the recorder's creation. *)

type t
(** A span recorder. *)

type span
(** An open span handle. *)

type event = {
  ev_name : string;
  ev_id : int;  (** ids are sequential in {!enter} order *)
  ev_parent : int;  (** the enclosing span's id, or [-1] for a root *)
  ev_start : float;  (** seconds since recorder creation *)
  ev_dur : float;  (** seconds *)
}

val create : ?clock:(unit -> float) -> unit -> t
(** Default clock: [Unix.gettimeofday]. *)

val enter : t -> string -> span

val exit : t -> span -> unit
(** Closes the span and anything still open inside it.  Exiting a span
    that is not open is a no-op. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [enter]/[exit] around [f], exception-safe. *)

val events : t -> event list
(** Completed spans, in completion order. *)

val event_count : t -> int

val durations : t -> (string * float) list
(** [(name, seconds)] of the completed spans, completion order. *)

val to_trace_json : t -> string
(** The completed spans as one Chrome trace-event JSON object
    ([{"traceEvents":[...]}]); timestamps and durations in
    microseconds, complete ("ph":"X") events. *)

val write_trace : t -> string -> unit
(** [write_trace t path] writes {!to_trace_json} to [path]. *)
