(** Periodic live-progress heartbeat for long engine runs.

    The engines call {!tick} once per worklist pop — the same cadence as
    [Budget.check] — and the probe fires a {!sample} to its sink when at
    least [every_configs] new configurations accumulated since the last
    sample or at least [every_s] seconds of wall time passed (the clock
    is read every [check_every] ticks, mirroring the budget's sampling).
    The non-firing path is one int comparison, so a probe can stay
    attached to a hot loop.

    Pool sizes (intern pools, caches) come from an injected supplier so
    this library depends on nothing above {!Budget}. *)

type sample = {
  p_elapsed_s : float;  (** since the probe was created *)
  p_configurations : int;
  p_frontier : int;
  p_transitions : int;
  p_rate : float;  (** transitions per second over the whole run *)
  p_heap_words : int;  (** GC major-heap words *)
  p_pools : (string * int) list;  (** from the [pools] supplier *)
  p_headroom : Budget.headroom list;
      (** consumed vs limit per configured budget dimension *)
}

type sink = sample -> unit

type t

val make :
  ?every_configs:int ->
  ?every_s:float ->
  ?check_every:int ->
  ?clock:(unit -> float) ->
  ?pools:(unit -> (string * int) list) ->
  ?budget:Budget.t ->
  sink ->
  t
(** Defaults: a sample every 5000 configurations or 1 second, the clock
    read every 256 ticks, real time, no pools, no budget headroom. *)

val set_budget : t -> Budget.t -> unit
(** Attach (or replace) the budget whose headroom samples report —
    engines that build their budget internally call this just before
    running. *)

val tick :
  t -> configurations:int -> frontier:int -> transitions:int -> unit

val fired : t -> int
(** How many samples have been emitted. *)

val stderr_sink : sink
(** One human-readable progress line per sample on stderr. *)

val jsonl_sink : out_channel -> sink
(** One JSON object per sample, one per line, flushed. *)

val sample_to_json : sample -> string
