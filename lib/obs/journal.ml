(* Structured event journal (see journal.mli).

   One process-global journal: an atomic enabled flag guards the empty
   fast path, and a single mutex serializes the slow path — sequence
   numbering, the ring append and the sink write — so events from
   concurrent domains interleave without tearing and the sequence
   numbers are a total order.  The ring records every emitted event
   whatever the sink threshold says: the flight recorder must keep the
   debug breadcrumbs that precede a crash even when the sink only wants
   warnings. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  e_seq : int;
  e_ts : float;
  e_level : level;
  e_domain : int;
  e_name : string;
  e_fields : (string * value) list;
}

type state = {
  threshold : level;
  clock : unit -> float;
  t0 : float;
  ring : event option array; (* capacity slots, seq mod capacity *)
  mutable seq : int;
  mutable sink : out_channel option;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* The mutex guards [state] and every field inside it; the atomic flag
   is only the fast-path guard and is flipped under the mutex. *)
let lock = Mutex.create ()
let state : state option ref = ref None

let default_capacity = 256

let start ?(threshold = Info) ?(capacity = default_capacity)
    ?(clock = Unix.gettimeofday) ?sink () =
  Mutex.protect lock (fun () ->
      state :=
        Some
          {
            threshold;
            clock;
            t0 = clock ();
            ring = Array.make (max 1 capacity) None;
            seq = 0;
            sink;
          };
      Atomic.set enabled_flag true)

let stop () =
  Mutex.protect lock (fun () ->
      Atomic.set enabled_flag false;
      (match !state with
      | Some { sink = Some oc; _ } -> flush oc
      | _ -> ());
      state := None)

let add_value buf = function
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Obs_json.float f)
  | Str s -> Obs_json.escape_into buf s
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let event_into buf ev =
  Printf.bprintf buf "{\"seq\":%d,\"ts\":%s,\"level\":\"%s\",\"domain\":%d"
    ev.e_seq
    (Obs_json.float ev.e_ts)
    (level_name ev.e_level) ev.e_domain;
  Buffer.add_string buf ",\"event\":";
  Obs_json.escape_into buf ev.e_name;
  Buffer.add_string buf ",\"fields\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Obs_json.escape_into buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    ev.e_fields;
  Buffer.add_string buf "}}"

let event_to_json ev =
  let buf = Buffer.create 128 in
  event_into buf ev;
  Buffer.contents buf

let emit ?(level = Info) name fields =
  if Atomic.get enabled_flag then
    Mutex.protect lock (fun () ->
        match !state with
        | None -> ()
        | Some st ->
            let ev =
              {
                e_seq = st.seq;
                e_ts = st.clock () -. st.t0;
                e_level = level;
                e_domain = (Domain.self () :> int);
                e_name = name;
                e_fields = fields;
              }
            in
            st.ring.(st.seq mod Array.length st.ring) <- Some ev;
            st.seq <- st.seq + 1;
            (match st.sink with
            | Some oc when level_rank level >= level_rank st.threshold ->
                output_string oc (event_to_json ev);
                output_char oc '\n';
                flush oc
            | _ -> ()))

(* Oldest first: slot order is seq mod capacity, so sorting the live
   slots by sequence number recovers emission order whatever the wrap
   position is. *)
let ring_events_locked st =
  Array.to_list st.ring
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> Int.compare a.e_seq b.e_seq)

let ring_events () =
  Mutex.protect lock (fun () ->
      match !state with None -> [] | Some st -> ring_events_locked st)

(* Per-run scoping of the flight recorder: the journal is process-global
   and the ring would otherwise persist across analyses in one process —
   a stage crash in run N would dump run N-1's breadcrumbs into its
   flight record.  Clearing drops the slots only; the sequence counter
   keeps running so event ordering stays a process-wide total order. *)
let clear_ring () =
  Mutex.protect lock (fun () ->
      match !state with
      | None -> ()
      | Some st -> Array.fill st.ring 0 (Array.length st.ring) None)

let ring_capacity () =
  Mutex.protect lock (fun () ->
      match !state with None -> 0 | Some st -> Array.length st.ring)

let flight_dump ~reason () =
  Mutex.protect lock (fun () ->
      match !state with
      | None -> []
      | Some st ->
          let evs = ring_events_locked st in
          let lines = List.map event_to_json evs in
          (match st.sink with
          | None -> ()
          | Some oc ->
              (* one self-contained record, past the threshold: the
                 flight recorder exists precisely for abnormal ends *)
              let buf = Buffer.create 1024 in
              Printf.bprintf buf
                "{\"event\":\"flight_recorder\",\"ts\":%s,\"reason\":"
                (Obs_json.float (st.clock () -. st.t0));
              Obs_json.escape_into buf reason;
              Buffer.add_string buf ",\"events\":[";
              List.iteri
                (fun i line ->
                  if i > 0 then Buffer.add_char buf ',';
                  Buffer.add_string buf line)
                lines;
              Buffer.add_string buf "]}";
              output_string oc (Buffer.contents buf);
              output_char oc '\n';
              flush oc);
          lines)
