(* Process-global registry of named counters, gauges and log-scale
   histograms.  Handles are created once (module-initialization time in
   the engines) and mutated from hot loops; every mutation is guarded by
   a single flag test, so with telemetry disabled a hot loop pays one
   predictable branch and allocates nothing. *)

(* Counters and gauges are Atomic.t cells: the parallel engine mutates
   them from every domain, and an atomic increment is lock-free and
   still a couple of nanoseconds when uncontended.  A histogram update
   touches several words (a bucket, the count, the sum, the max), so
   each histogram carries its own mutex: observations from concurrent
   domains serialize per histogram, never against each other or the
   registry, and the disabled path still pays only the flag test. *)
type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : int Atomic.t }

(* Log-scale buckets: bucket 0 holds values <= 0, bucket b >= 1 holds
   [2^(b-1), 2^b).  63 buckets cover the whole int range. *)
let num_buckets = 64

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* One registry lock serializes creation, snapshot and reset — all cold
   paths (handles are created at module-initialization time; snapshots
   bracket runs).  Hot-path mutations go through the handle, never the
   tables, so they take no lock. *)
let registry_lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let gauge name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_value = Atomic.make 0 } in
          Hashtbl.replace gauges name g;
          g)

let histogram name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_lock = Mutex.create ();
              h_buckets = Array.make num_buckets 0;
              h_count = 0;
              h_sum = 0;
              h_max = 0;
            }
          in
          Hashtbl.replace histograms name h;
          h)

let incr c =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)

let counter_value c = Atomic.get c.c_value
let set g v = if Atomic.get enabled_flag then Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let bucket_of v =
  if v <= 0 then 0
  else begin
    let n = ref v and bits = ref 0 in
    while !n <> 0 do
      n := !n lsr 1;
      Stdlib.incr bits
    done;
    min (num_buckets - 1) !bits
  end

let bucket_lower b = if b = 0 then 0 else 1 lsl (b - 1)

let observe h v =
  if Atomic.get enabled_flag then
    Mutex.protect h.h_lock (fun () ->
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum + v;
        if v > h.h_max then h.h_max <- v)

(* --- snapshots --- *)

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_buckets : (int * int) list; (* (bucket lower bound, count), sparse *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * int) list;
  s_histograms : (string * histogram_snapshot) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      let cs =
        Hashtbl.fold
          (fun n c acc -> (n, Atomic.get c.c_value) :: acc)
          counters []
        |> List.sort by_name
      in
      let gs =
        Hashtbl.fold
          (fun n g acc -> (n, Atomic.get g.g_value) :: acc)
          gauges []
        |> List.sort by_name
      in
      let hs =
        Hashtbl.fold
          (fun n h acc ->
            (* take the histogram's own lock so a snapshot racing an
               observe reads a consistent (buckets, count, sum, max) *)
            Mutex.protect h.h_lock (fun () ->
                let buckets = ref [] in
                for b = num_buckets - 1 downto 0 do
                  if h.h_buckets.(b) > 0 then
                    buckets := (bucket_lower b, h.h_buckets.(b)) :: !buckets
                done;
                ( n,
                  {
                    hs_count = h.h_count;
                    hs_sum = h.h_sum;
                    hs_max = h.h_max;
                    hs_buckets = !buckets;
                  } )
                :: acc))
          histograms []
        |> List.sort by_name
      in
      { s_counters = cs; s_gauges = gs; s_histograms = hs })

(* Zero every value; registrations (and handles already held by the
   engines) stay valid. *)
let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0) gauges;
      Hashtbl.iter
        (fun _ h ->
          Mutex.protect h.h_lock (fun () ->
              Array.fill h.h_buckets 0 num_buckets 0;
              h.h_count <- 0;
              h.h_sum <- 0;
              h.h_max <- 0))
        histograms)

let to_json (s : snapshot) =
  let buf = Buffer.create 1024 in
  let fields kind emit entries =
    Buffer.add_string buf kind;
    Buffer.add_string buf ":{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Obs_json.escape_into buf name;
        Buffer.add_char buf ':';
        emit v)
      entries;
    Buffer.add_char buf '}'
  in
  Buffer.add_char buf '{';
  fields "\"counters\"" (fun v -> Buffer.add_string buf (string_of_int v))
    s.s_counters;
  Buffer.add_char buf ',';
  fields "\"gauges\"" (fun v -> Buffer.add_string buf (string_of_int v))
    s.s_gauges;
  Buffer.add_char buf ',';
  fields "\"histograms\""
    (fun h ->
      Printf.bprintf buf "{\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":{"
        h.hs_count h.hs_sum h.hs_max;
      List.iteri
        (fun i (lower, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "\"%d\":%d" lower n)
        h.hs_buckets;
      Buffer.add_string buf "}}")
    s.s_histograms;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp ppf (s : snapshot) =
  let line name v = Format.fprintf ppf "@ %-32s %d" name v in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (n, v) -> line n v) s.s_counters;
  List.iter (fun (n, v) -> line n v) s.s_gauges;
  List.iter
    (fun (n, h) ->
      Format.fprintf ppf "@ %-32s count=%d sum=%d max=%d" n h.hs_count
        h.hs_sum h.hs_max)
    s.s_histograms;
  Format.fprintf ppf "@]"
