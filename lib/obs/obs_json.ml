(* Minimal JSON emission helpers shared by the telemetry sinks.  The
   subsystem emits JSON but never parses it, so a Buffer-based escaper
   is all we need — no external dependency. *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let string s =
  let buf = Buffer.create (String.length s + 2) in
  escape_into buf s;
  Buffer.contents buf

(* Floats must stay valid JSON: no [nan], no [inf], and always a
   leading digit (printf %g already guarantees that). *)
let float f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.6g" f
