(* Nestable wall-clock spans.  A recorder keeps one stack of open spans
   per domain (each new span's parent is the span below it on the same
   domain's stack) and a list of completed events; the export is Chrome
   trace-event JSON, loadable in chrome://tracing and Perfetto, with
   one lane ("tid") per domain so parallel workers render side by side.

   Domain-safety: a single mutex serializes enter/exit/read — spans
   bracket stages and workers, not hot-loop iterations, so the lock is
   cold.  A span must be exited on the domain that entered it (each
   domain pops its own stack).

   The clock is injectable so tests can drive a deterministic one;
   timestamps are relative to the recorder's creation. *)

type event = {
  ev_name : string;
  ev_id : int;
  ev_parent : int; (* -1 for a root span *)
  ev_domain : int; (* id of the domain that ran the span *)
  ev_start : float; (* seconds since recorder creation *)
  ev_dur : float; (* seconds *)
}

type span = int

type t = {
  clock : unit -> float;
  t0 : float;
  lock : Mutex.t;
  mutable next_id : int;
  stacks : (int, (int * string * float) list) Hashtbl.t;
      (* per-domain open spans, innermost first *)
  mutable completed : event list; (* reverse completion order *)
  mutable n_completed : int;
}

let create ?(clock = Unix.gettimeofday) () =
  {
    clock;
    t0 = clock ();
    lock = Mutex.create ();
    next_id = 0;
    stacks = Hashtbl.create 8;
    completed = [];
    n_completed = 0;
  }

let my_stack t =
  Option.value
    (Hashtbl.find_opt t.stacks (Domain.self () :> int))
    ~default:[]

let set_my_stack t s = Hashtbl.replace t.stacks (Domain.self () :> int) s

let enter t name =
  Mutex.protect t.lock (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      set_my_stack t ((id, name, t.clock () -. t.t0) :: my_stack t);
      id)

(* Closing a span also closes any span still open inside it on the same
   domain (tolerant of mismatched nesting); exiting a span that is not
   open here is a no-op. *)
let exit t id =
  Mutex.protect t.lock (fun () ->
      let stack = my_stack t in
      if List.exists (fun (id', _, _) -> id' = id) stack then begin
        let now = t.clock () -. t.t0 in
        let dom = (Domain.self () :> int) in
        let rec pop = function
          | [] -> []
          | (id', name, start) :: rest ->
              let parent = match rest with (p, _, _) :: _ -> p | [] -> -1 in
              t.completed <-
                {
                  ev_name = name;
                  ev_id = id';
                  ev_parent = parent;
                  ev_domain = dom;
                  ev_start = start;
                  ev_dur = now -. start;
                }
                :: t.completed;
              t.n_completed <- t.n_completed + 1;
              if id' = id then rest else pop rest
        in
        set_my_stack t (pop stack)
      end)

let with_span t name f =
  let s = enter t name in
  Fun.protect ~finally:(fun () -> exit t s) f

(* Per-run scoping for a reused recorder: drop completed events and any
   stray open stacks so the next run's durations and trace export carry
   only its own spans.  Span ids keep ascending (enter order stays a
   total order across resets); the time origin is unchanged. *)
let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.stacks;
      t.completed <- [];
      t.n_completed <- 0)

let events t = Mutex.protect t.lock (fun () -> List.rev t.completed)
let event_count t = Mutex.protect t.lock (fun () -> t.n_completed)
let durations t = List.map (fun ev -> (ev.ev_name, ev.ev_dur)) (events t)

(* Chrome trace-event format: complete ("ph":"X") events, microsecond
   timestamps, one "tid" lane per emitting domain.  Sorted by span id —
   enter order — so the export is deterministic whatever order
   concurrent spans completed in.  The parent id rides in "args" — the
   viewers nest by time inclusion, tools can use the explicit link. *)
let to_trace_json t =
  let evs =
    List.sort (fun a b -> Int.compare a.ev_id b.ev_id) (events t)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      Obs_json.escape_into buf ev.ev_name;
      Printf.bprintf buf
        ",\"cat\":\"cobegin\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"id\":%d,\"parent\":%d}}"
        ev.ev_domain
        (Obs_json.float (ev.ev_start *. 1e6))
        (Obs_json.float (ev.ev_dur *. 1e6))
        ev.ev_id ev.ev_parent)
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_trace t path =
  let oc = open_out path in
  output_string oc (to_trace_json t);
  output_char oc '\n';
  close_out oc
