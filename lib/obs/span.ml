(* Nestable wall-clock spans.  A recorder keeps a stack of open spans
   (each new span's parent is the span below it) and a list of completed
   events; the export is Chrome trace-event JSON, loadable in
   chrome://tracing and Perfetto.

   The clock is injectable so tests can drive a deterministic one;
   timestamps are relative to the recorder's creation. *)

type event = {
  ev_name : string;
  ev_id : int;
  ev_parent : int; (* -1 for a root span *)
  ev_start : float; (* seconds since recorder creation *)
  ev_dur : float; (* seconds *)
}

type span = int

type t = {
  clock : unit -> float;
  t0 : float;
  mutable next_id : int;
  mutable open_spans : (int * string * float) list; (* innermost first *)
  mutable completed : event list; (* reverse completion order *)
  mutable n_completed : int;
}

let create ?(clock = Unix.gettimeofday) () =
  {
    clock;
    t0 = clock ();
    next_id = 0;
    open_spans = [];
    completed = [];
    n_completed = 0;
  }

let enter t name =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.open_spans <- (id, name, t.clock () -. t.t0) :: t.open_spans;
  id

(* Closing a span also closes any span still open inside it (tolerant
   of mismatched nesting); exiting a span that is not open is a no-op. *)
let exit t id =
  if List.exists (fun (id', _, _) -> id' = id) t.open_spans then begin
    let now = t.clock () -. t.t0 in
    let rec pop = function
      | [] -> []
      | (id', name, start) :: rest ->
          let parent = match rest with (p, _, _) :: _ -> p | [] -> -1 in
          t.completed <-
            {
              ev_name = name;
              ev_id = id';
              ev_parent = parent;
              ev_start = start;
              ev_dur = now -. start;
            }
            :: t.completed;
          t.n_completed <- t.n_completed + 1;
          if id' = id then rest else pop rest
    in
    t.open_spans <- pop t.open_spans
  end

let with_span t name f =
  let s = enter t name in
  Fun.protect ~finally:(fun () -> exit t s) f

let events t = List.rev t.completed
let event_count t = t.n_completed
let durations t = List.map (fun ev -> (ev.ev_name, ev.ev_dur)) (events t)

(* Chrome trace-event format: complete ("ph":"X") events, microsecond
   timestamps.  The parent id rides in "args" — the viewers nest by
   time inclusion, tools can use the explicit link. *)
let to_trace_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      Obs_json.escape_into buf ev.ev_name;
      Printf.bprintf buf
        ",\"cat\":\"cobegin\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%s,\"dur\":%s,\"args\":{\"id\":%d,\"parent\":%d}}"
        (Obs_json.float (ev.ev_start *. 1e6))
        (Obs_json.float (ev.ev_dur *. 1e6))
        ev.ev_id ev.ev_parent)
    (events t);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_trace t path =
  let oc = open_out path in
  output_string oc (to_trace_json t);
  output_char oc '\n';
  close_out oc
