(* Findings of the static concurrency lint suite.

   Every finding is anchored at a statement label (or none, for
   program-level findings) and rendered in a canonical order: unlabeled
   findings first, then by ascending primary label, secondary label,
   rule and message.  The order is a contract — `coanalyze --lint-only`
   output is diffable across runs, and the CI sweep asserts it. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  f_rule : string; (* e.g. "static-race", "lock-order-cycle" *)
  f_severity : severity;
  f_label : int option; (* primary statement, None = whole program *)
  f_other : int option; (* secondary statement for pair findings *)
  f_message : string;
}

(* Unlabeled findings sort first; ties broken by every remaining field
   so equal inputs always render identically. *)
let compare_finding a b =
  let c = compare a.f_label b.f_label in
  if c <> 0 then c
  else
    let c = compare a.f_other b.f_other in
    if c <> 0 then c
    else
      let c = compare a.f_rule b.f_rule in
      if c <> 0 then c else compare a.f_message b.f_message

let sort findings = List.sort_uniq compare_finding findings

let is_canonical findings =
  let rec go = function
    | a :: (b :: _ as rest) -> compare_finding a b <= 0 && go rest
    | [] | [ _ ] -> true
  in
  go findings

exception Non_canonical

let assert_canonical findings =
  if not (is_canonical findings) then raise Non_canonical

let pp_finding ppf f =
  let pp_anchor ppf = function
    | None -> Format.pp_print_string ppf "program"
    | Some l -> Format.fprintf ppf "s%d" l
  in
  Format.fprintf ppf "%s[%s] %a: %s"
    (severity_to_string f.f_severity)
    f.f_rule pp_anchor f.f_label f.f_message

let pp ppf findings =
  if findings = [] then Format.pp_print_string ppf "no static findings"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_finding)
      findings
