(* Eraser-style lockset analysis over [Sacquire]/[Srelease].

   Three per-label facts are computed by a flow-sensitive walk of every
   procedure body, iterated with an interprocedural context to a
   fixpoint:

     - [must_held l]: locks definitely held when the action at [l]
       fires, on every path (intersection at joins, shrinking loop
       fixpoint), including locks inherited from an enclosing process
       that held them at the fork;
     - [may_held l]: locks possibly held (union at joins, growing
       fixpoint) — the basis of the lock-order graph in [Deadlock];
     - [local_must_held l]: the subset of [must_held] acquired by the
       executing process itself since its own fork (reset to empty at
       every cobegin branch entry and procedure entry).

   Lock identity is by name, which is only meaningful for *stable*
   locks: declared exactly once, in the entry procedure, never a
   parameter, never address-taken, with the entry procedure itself
   never called.  Such a name denotes one cell for the whole run.
   Procedure bodies can only name their own parameters and locals
   ([Check] enforces this), so callees can never acquire or release a
   stable lock directly, and not being address-taken rules out pointer
   writes — the interprocedural context therefore only carries stable
   locks, and intra-procedural transfer is exact for them.

   A pair of MHP sites is *suppressed* (not reported as a static race)
   when both sides hold a common *eligible* lock acquired by their own
   process after the generating fork.  Eligible = stable, and every
   release of the lock anywhere is performed by a process that itself
   holds it ([local_must_held] at the release site) — otherwise a
   stray [unlock] could break mutual exclusion and the suppression
   would be unsound.  Locks merely held at the fork protect the
   branches against outsiders but not against each other, hence the
   subtraction of the fork-point lockset. *)

open Cobegin_lang
open Ast
module SS = Ast.StringSet

type t = {
  stable : SS.t;
  eligible : SS.t;
  must : (int, SS.t) Hashtbl.t;
  may : (int, SS.t) Hashtbl.t;
  local_must : (int, SS.t) Hashtbl.t;
}

let find_set tbl l =
  match Hashtbl.find_opt tbl l with Some s -> s | None -> SS.empty

let must_held t l = find_set t.must l
let may_held t l = find_set t.may l
let local_must_held t l = find_set t.local_must l
let stable t = t.stable
let eligible t = t.eligible

(* --- stable locks --- *)

let stable_locks (prog : Ast.program) ~(callable : SS.t) : SS.t =
  match prog.procs with
  | [] -> SS.empty
  | _ ->
      let entry = Ast.entry_proc prog in
      if SS.mem entry.pname callable then SS.empty
      else
        let addr_taken = Ast.addr_taken_of_program prog in
        let params =
          List.fold_left
            (fun acc p -> SS.union acc (SS.of_list p.params))
            SS.empty prog.procs
        in
        let decl_count = Hashtbl.create 16 in
        ignore
          (fold_program
             (fun () s ->
               match s.kind with
               | Sdecl (x, _) ->
                   Hashtbl.replace decl_count x
                     (1 + Option.value ~default:0 (Hashtbl.find_opt decl_count x))
               | _ -> ())
             () prog);
        let entry_decls =
          fold_stmt
            (fun acc s ->
              match s.kind with Sdecl (x, _) -> SS.add x acc | _ -> acc)
            SS.empty entry.body
        in
        SS.filter
          (fun x ->
            Hashtbl.find_opt decl_count x = Some 1
            && (not (SS.mem x params))
            && not (SS.mem x addr_taken))
          entry_decls

(* --- the flow analysis --- *)

type st = { m : SS.t; y : SS.t; lm : SS.t }
(* must / may / process-local must, all "held on entry to the next action" *)

let st_equal a b = SS.equal a.m b.m && SS.equal a.y b.y && SS.equal a.lm b.lm

let analyze (mhp : Mhp.t) : t =
  let prog = Mhp.program mhp in
  let callable = Mhp.callable_procs mhp in
  let stable = stable_locks prog ~callable in
  let must = Hashtbl.create 128 in
  let may = Hashtbl.create 128 in
  let local_must = Hashtbl.create 128 in
  let record l st =
    Hashtbl.replace must l st.m;
    Hashtbl.replace may l st.y;
    Hashtbl.replace local_must l st.lm
  in
  (* one pass over a statement; records every label's entry state *)
  let rec walk st (s : Ast.stmt) : st =
    record s.label st;
    match s.kind with
    | Sskip | Sassign _ | Smalloc _ | Sfree _ | Scall _ | Sreturn _
    | Sawait _ | Sassert _ | Sfence ->
        st
    | Sacquire x ->
        { m = SS.add x st.m; y = SS.add x st.y; lm = SS.add x st.lm }
    | Srelease x ->
        { m = SS.remove x st.m; y = SS.remove x st.y; lm = SS.remove x st.lm }
    | Sdecl (x, _) ->
        (* the name now denotes a fresh, unheld cell; the old cell may
           still be held, so [may] keeps it as an over-approximation *)
        { st with m = SS.remove x st.m; lm = SS.remove x st.lm }
    | Sblock ss | Satomic ss -> List.fold_left walk st ss
    | Sif (_, s1, s2) ->
        let a = walk st s1 and b = walk st s2 in
        { m = SS.inter a.m b.m; y = SS.union a.y b.y; lm = SS.inter a.lm b.lm }
    | Swhile (_, body) ->
        let rec fix st_in =
          let out = walk st_in body in
          let st_in' =
            {
              m = SS.inter st.m out.m;
              y = SS.union st.y out.y;
              lm = SS.inter st.lm out.lm;
            }
          in
          if st_equal st_in st_in' then st_in
          else (
            record s.label st_in';
            fix st_in')
        in
        fix st
    | Scobegin bs ->
        (* branches start with the inherited locks but an empty local
           set; after the join the parent conservatively keeps only
           locks surviving every branch *)
        let outs = List.map (fun b -> walk { st with lm = SS.empty } b) bs in
        let m' =
          List.fold_left (fun acc o -> SS.inter acc o.m)
            (match outs with o :: _ -> o.m | [] -> st.m)
            outs
        in
        {
          m = m';
          y = List.fold_left (fun acc o -> SS.union acc o.y) st.y outs;
          lm = SS.inter st.lm m';
        }
  in
  let entry_name =
    match prog.procs with [] -> "" | _ -> (Ast.entry_proc prog).pname
  in
  (* interprocedural context: locks (stable only) held at every call
     site that may invoke the procedure; descending for must, ascending
     for may *)
  let ctx_must = Hashtbl.create 16 and ctx_may = Hashtbl.create 16 in
  List.iter
    (fun p ->
      Hashtbl.replace ctx_must p.pname stable;
      Hashtbl.replace ctx_may p.pname SS.empty)
    prog.procs;
  let call_sites = Mhp.call_sites mhp in
  let rec iterate n =
    List.iter
      (fun p ->
        let init =
          if p.pname = entry_name then
            { m = SS.empty; y = SS.empty; lm = SS.empty }
          else
            {
              m = find_set ctx_must p.pname;
              y = find_set ctx_may p.pname;
              lm = SS.empty;
            }
        in
        ignore (walk init p.body))
      prog.procs;
    let changed = ref false in
    List.iter
      (fun p ->
        if p.pname <> entry_name then begin
          let sites =
            List.filter
              (fun k -> SS.mem p.pname k.Mhp.k_callees)
              call_sites
          in
          let nm =
            match sites with
            | [] -> find_set ctx_must p.pname
            | _ ->
                SS.inter stable
                  (List.fold_left
                     (fun acc k -> SS.inter acc (find_set must k.Mhp.k_label))
                     stable sites)
          in
          let ny =
            SS.inter stable
              (List.fold_left
                 (fun acc k -> SS.union acc (find_set may k.Mhp.k_label))
                 SS.empty sites)
          in
          if
            (not (SS.equal nm (find_set ctx_must p.pname)))
            || not (SS.equal ny (find_set ctx_may p.pname))
          then begin
            changed := true;
            Hashtbl.replace ctx_must p.pname nm;
            Hashtbl.replace ctx_may p.pname ny
          end
        end)
      prog.procs;
    if !changed && n > 0 then iterate (n - 1)
  in
  iterate (List.length prog.procs * (1 + SS.cardinal stable) + 2);
  (* eligibility: every release of the lock is by a process that itself
     holds it — a stray unlock would void mutual exclusion *)
  let bad =
    fold_program
      (fun acc s ->
        match s.kind with
        | Srelease x
          when SS.mem x stable && not (SS.mem x (find_set local_must s.label))
          ->
            SS.add x acc
        | _ -> acc)
      SS.empty prog
  in
  { stable; eligible = SS.diff stable bad; must; may; local_must }

(* --- static races --- *)

type race = { r_stmt1 : int; r_stmt2 : int; r_ww : bool; r_what : string }

let compare_race a b =
  compare
    (a.r_stmt1, a.r_stmt2, a.r_what, a.r_ww)
    (b.r_stmt1, b.r_stmt2, b.r_what, b.r_ww)

module RaceSet = Set.Make (struct
  type t = race

  let compare = compare_race
end)

let races (mhp : Mhp.t) (t : t) : race list =
  let add_race acc l1 l2 ~ww what =
    let a, b = if l1 <= l2 then (l1, l2) else (l2, l1) in
    RaceSet.add { r_stmt1 = a; r_stmt2 = b; r_ww = ww; r_what = what } acc
  in
  (* all conflicts between two sites, assuming disjoint locksets *)
  let conflicts acc (s1 : Mhp.site) (s2 : Mhp.site) =
    let open Mhp in
    let l1 = s1.s_label and l2 = s2.s_label in
    (* same-cell conflicts by name: only names bound before the fork *)
    let acc =
      SS.fold
        (fun x acc -> add_race acc l1 l2 ~ww:true x)
        (SS.inter s1.s_vw s2.s_vw) acc
    in
    let acc =
      SS.fold
        (fun x acc -> add_race acc l1 l2 ~ww:false x)
        (SS.diff
           (SS.union (SS.inter s1.s_vw s2.s_vr) (SS.inter s2.s_vw s1.s_vr))
           (SS.inter s1.s_vw s2.s_vw))
        acc
    in
    (* memory token vs memory token *)
    let acc =
      if
        (s1.s_mem_wr && (s2.s_mem_rd || s2.s_mem_wr))
        || (s2.s_mem_wr && s1.s_mem_rd)
      then add_race acc l1 l2 ~ww:(s1.s_mem_wr && s2.s_mem_wr) "memory"
      else acc
    in
    (* memory token vs address-taken names: a pointer access may reach
       any address-taken variable, in any scope *)
    let tok_vs_at acc (a : Mhp.site) (b : Mhp.site) =
      let acc =
        if a.s_mem_wr then
          SS.fold
            (fun x acc ->
              add_race acc a.s_label b.s_label ~ww:(SS.mem x b.s_aw) x)
            (SS.union b.s_ar b.s_aw) acc
        else acc
      in
      if a.s_mem_rd then
        SS.fold
          (fun x acc -> add_race acc a.s_label b.s_label ~ww:false x)
          b.s_aw acc
      else acc
    in
    tok_vs_at (tok_vs_at acc s1 s2) s2 s1
  in
  let set =
    List.fold_left
      (fun acc (c : Mhp.context) ->
        let inherited = must_held t c.c_label in
        let protection (s : Mhp.site) =
          SS.inter (SS.diff (must_held t s.Mhp.s_label) inherited) t.eligible
        in
        let rec cross acc = function
          | [] -> acc
          | (b : Mhp.branch) :: rest ->
              let acc =
                List.fold_left
                  (fun acc (b' : Mhp.branch) ->
                    List.fold_left
                      (fun acc s1 ->
                        if s1.Mhp.s_sync then acc
                        else
                          let p1 = protection s1 in
                          List.fold_left
                            (fun acc s2 ->
                              if s2.Mhp.s_sync then acc
                              else if
                                not (SS.is_empty (SS.inter p1 (protection s2)))
                              then acc
                              else conflicts acc s1 s2)
                            acc b'.Mhp.b_sites)
                      acc b.Mhp.b_sites)
                  acc rest
              in
              cross acc rest
        in
        cross acc c.c_branches)
      RaceSet.empty (Mhp.contexts mhp)
  in
  RaceSet.elements set

let race_pairs rs =
  List.sort_uniq compare (List.map (fun r -> (r.r_stmt1, r.r_stmt2)) rs)

let pp_race ppf r =
  Format.fprintf ppf "%s race on %s between s%d and s%d"
    (if r.r_ww then "write/write" else "read/write")
    r.r_what r.r_stmt1 r.r_stmt2
