(** Lock-order graph: an edge a -> b for every acquire site of stable
    lock b where stable lock a may already be held.  Strongly connected
    components with two or more locks whose acquire sites may happen in
    parallel are reported as potential deadlocks.  An acyclic graph
    cannot deadlock on stable locks; a reported cycle is a may-result. *)

type cycle = {
  locks : string list;  (** the locks of the SCC, sorted *)
  sites : int list;  (** acquire sites of the SCC's edges, sorted *)
}

val compare_cycle : cycle -> cycle -> int

val find : Mhp.t -> Lockset.t -> cycle list
(** Canonically ordered by lock set. *)

val pp_cycle : Format.formatter -> cycle -> unit
