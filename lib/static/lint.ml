(* The static concurrency lint suite: one entry point bundling the MHP
   relation, the lockset race detector, the lock-order deadlock scan and
   three cheap diagnostics into a canonical, position-sorted report.

   The cheap lints:

     - double-acquire: [lock(x)] at a site where the executing process
       already holds x on every path since its own fork
       ([Lockset.local_must_held]) — the test-and-set can never succeed,
       the process blocks forever.  An error, not a warning.

     - release-unheld: [unlock(x)] at a site where x is not possibly
       held ([Lockset.may_held]) on any path — either dead code or a
       lock-discipline bug that can void someone else's critical
       section.

     - await-no-writer: an [await] whose condition reads at least one
       variable, where no branch of any enclosing cobegin can write any
       of those variables (by visible name, or through a pointer for
       address-taken ones — branch summaries come from
       [Access.stmt_summary], closing over callees).  Once the
       condition is false the process can never be woken.  The check is
       conservative in the quiet direction: any syntactic parallel
       writer silences it, even one that never executes. *)

open Cobegin_lang
open Ast
module SS = Ast.StringSet

type result = {
  races : Lockset.race list;
  cycles : Deadlock.cycle list;
  findings : Report.finding list;  (** canonical order, all rules *)
}

let finding ?label ?other ~rule ~severity fmt =
  Format.kasprintf
    (fun msg ->
      {
        Report.f_rule = rule;
        f_severity = severity;
        f_label = label;
        f_other = other;
        f_message = msg;
      })
    fmt

let race_findings races =
  List.map
    (fun (r : Lockset.race) ->
      finding ~label:r.r_stmt1 ~other:r.r_stmt2 ~rule:"static-race"
        ~severity:Report.Warning "possible %s race on %s with s%d"
        (if r.r_ww then "write/write" else "read/write")
        r.r_what r.r_stmt2)
    races

let cycle_findings cycles =
  List.map
    (fun (c : Deadlock.cycle) ->
      let label = match c.sites with l :: _ -> Some l | [] -> None in
      finding ?label ~rule:"lock-order-cycle" ~severity:Report.Warning
        "potential deadlock: %a" Deadlock.pp_cycle c)
    cycles

let lock_findings prog ls =
  fold_program
    (fun acc s ->
      match s.kind with
      | Sacquire x when SS.mem x (Lockset.local_must_held ls s.label) ->
          finding ~label:s.label ~rule:"double-acquire" ~severity:Report.Error
            "lock(%s) while already holding it: the process blocks forever" x
          :: acc
      | Srelease x when not (SS.mem x (Lockset.may_held ls s.label)) ->
          finding ~label:s.label ~rule:"release-unheld"
            ~severity:Report.Warning
            "unlock(%s) without a matching lock on any path" x
          :: acc
      | _ -> acc)
    [] prog

let await_findings (mhp : Mhp.t) =
  let prog = Mhp.program mhp in
  let addr_taken = Mhp.addr_taken mhp in
  (* every await in the program, with the variables its condition reads *)
  let awaits =
    fold_program
      (fun acc s ->
        match s.kind with
        | Sawait e -> (s.label, SS.of_list (expr_vars e)) :: acc
        | _ -> acc)
      [] prog
  in
  let eff = Access.proc_effects_of_program prog in
  let any =
    List.fold_left
      (fun a p -> Access.union_effects a (eff p.pname))
      Access.no_effects prog.procs
  in
  let branch_summary (b : Mhp.branch) =
    Access.stmt_summary
      ~effects:(fun f -> if Ast.has_proc prog f then Some (eff f) else None)
      ~any b.b_stmt
  in
  (* a writer for [vars] among the branches of context [c]: a visible
     name written by some branch, or an address-taken name while some
     branch may write through a pointer *)
  let has_writer (c : Mhp.context) vars =
    List.exists
      (fun b ->
        let sum = branch_summary b in
        SS.exists
          (fun v ->
            (SS.mem v c.c_visible && SS.mem v sum.Access.wvars)
            || (SS.mem v addr_taken && sum.Access.mem_write))
          vars)
      c.c_branches
  in
  let contexts = Mhp.contexts mhp in
  let in_branch label (b : Mhp.branch) =
    List.exists (fun s -> s.Mhp.s_label = label) b.Mhp.b_sites
  in
  List.filter_map
    (fun (label, vars) ->
      if SS.is_empty vars then None
      else
        let enclosing =
          List.filter
            (fun c -> List.exists (in_branch label) c.Mhp.c_branches)
            contexts
        in
        if List.exists (fun c -> has_writer c vars) enclosing then None
        else
          Some
            (finding ~label ~rule:"await-no-writer" ~severity:Report.Warning
               "await reads {%s} but no parallel process writes them"
               (String.concat ", " (SS.elements vars))))
    awaits

let run (prog : Ast.program) : result =
  let mhp = Mhp.of_program prog in
  let ls = Lockset.analyze mhp in
  let races = Lockset.races mhp ls in
  let cycles = Deadlock.find mhp ls in
  let findings =
    Report.sort
      (race_findings races @ cycle_findings cycles @ lock_findings prog ls
     @ await_findings mhp)
  in
  { races; cycles; findings }

let pp ppf r = Report.pp ppf r.findings
