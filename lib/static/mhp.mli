(** May-Happen-in-Parallel from the nested cobegin structure and the
    interprocedural call graph — polynomial in program size, no
    exploration.  Two labels are MHP iff they are reachable (closing
    over calls; indirect calls reach every procedure) from two distinct
    branches of some cobegin; a procedure reachable from two branches is
    MHP with itself.

    The relation over-approximates the dynamic one: every pair of
    actions co-enabled in some reachable configuration of [Step] is an
    MHP pair here, which is what the cross-validation harness in [test/]
    checks against [Race.find]. *)

open Cobegin_lang
module SS = Ast.StringSet

type site = {
  s_label : int;
  s_sync : bool;
      (** await / lock / unlock — excluded from race candidates, like
          the dynamic detector's [is_sync] filter *)
  s_vr : SS.t;  (** reads of names visible at the generating cobegin *)
  s_vw : SS.t;  (** writes of such names *)
  s_ar : SS.t;  (** reads of address-taken names, any scope *)
  s_aw : SS.t;  (** writes of address-taken names, any scope *)
  s_mem_rd : bool;  (** may read through a pointer *)
  s_mem_wr : bool;  (** may write through a pointer, or free *)
}

type branch = { b_stmt : Ast.stmt; b_sites : site list }

type context = {
  c_label : int;  (** label of the generating cobegin *)
  c_visible : SS.t;  (** names in scope at the cobegin *)
  c_branches : branch list;
}

type call_site = {
  k_label : int;
  k_proc : string;  (** procedure containing the call *)
  k_callees : SS.t;  (** procedures the call may invoke *)
}

type t

val of_program : Ast.program -> t
val program : t -> Ast.program
val contexts : t -> context list
val pairs : t -> (int * int) list
(** Normalized ([fst <= snd]) MHP pairs, ascending. *)

val may_happen_parallel : t -> int -> int -> bool
val addr_taken : t -> SS.t
val call_sites : t -> call_site list
val callable_procs : t -> SS.t
(** Procedures some call site may invoke (callers of the entry kill
    lock-stability, see [Lockset]). *)

val proc_of_label : t -> int -> string option
val pp : Format.formatter -> t -> unit
