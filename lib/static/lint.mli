(** The static concurrency lint suite: MHP + lockset races + lock-order
    deadlock cycles + cheap lock/await discipline checks, bundled into a
    canonical position-sorted report.  Polynomial in program size; never
    explores the state space.

    Rules emitted: ["static-race"], ["lock-order-cycle"],
    ["double-acquire"] (an error — the process provably blocks
    forever), ["release-unheld"], ["await-no-writer"]. *)

open Cobegin_lang

type result = {
  races : Lockset.race list;
  cycles : Deadlock.cycle list;
  findings : Report.finding list;  (** canonical order, all rules *)
}

val run : Ast.program -> result
val pp : Format.formatter -> result -> unit
