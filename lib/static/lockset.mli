(** Eraser-style must-hold lockset analysis over [lock]/[unlock], and
    the static race report built on it: every MHP pair of
    conflicting, non-synchronization sites whose own-process locksets
    (relative to the generating fork) share no eligible lock.

    Lock identity is by name, meaningful only for {e stable} locks:
    declared exactly once, in the (never-called) entry procedure, never
    a parameter, never address-taken.  A lock is {e eligible} for race
    suppression when it is stable and every [unlock] of it anywhere is
    performed by a process that itself holds it; anything weaker could
    void mutual exclusion, so weaker locks never suppress.  The result
    over-approximates the dynamic detector: every race found by
    [Race.find] shows up here (the cross-validation suite asserts
    this), the converse does not hold. *)

open Cobegin_lang
module SS = Ast.StringSet

type t

val analyze : Mhp.t -> t

val stable : t -> SS.t
val eligible : t -> SS.t

val must_held : t -> int -> SS.t
(** Locks definitely held on entry to the action at this label
    (including locks inherited from the spawning process). *)

val may_held : t -> int -> SS.t
(** Locks possibly held — the basis of the [Deadlock] lock-order
    graph. *)

val local_must_held : t -> int -> SS.t
(** The subset of [must_held] acquired by the executing process itself
    since its own fork. *)

(** {1 Static races} *)

type race = {
  r_stmt1 : int;  (** always [<= r_stmt2] *)
  r_stmt2 : int;
  r_ww : bool;  (** write/write (vs read/write) *)
  r_what : string;  (** variable name, or ["memory"] for the token *)
}

val compare_race : race -> race -> int

val races : Mhp.t -> t -> race list
(** Canonically ordered, duplicate-free. *)

val race_pairs : race list -> (int * int) list
(** The distinct [(stmt1, stmt2)] pairs of a race list, ascending. *)

val pp_race : Format.formatter -> race -> unit
