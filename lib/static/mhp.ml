(* May-Happen-in-Parallel, computed from the nested cobegin structure and
   the interprocedural call graph — no state-space exploration involved.

   Two labeled statements may happen in parallel iff some cobegin has two
   distinct branches such that each statement is reachable from one of
   them, where "reachable" closes over procedure calls (indirect calls
   over-approximate to every procedure).  A procedure reachable from two
   branches puts its statements in parallel with themselves.

   Each MHP pair is produced by a *context*: the generating cobegin, the
   names visible in scope at it, and the per-branch site sets.  Scope
   matters for precision without losing soundness: the language scopes
   procedure bodies to their own parameters and locals (see [Check]), so
   a variable cell can only be shared between two parallel processes if
   its binding predates the fork — i.e. the name is visible at the
   cobegin.  Name accesses are therefore split per site into

     - [s_vr]/[s_vw]: reads/writes of names visible at the generating
       cobegin (candidates for cross-branch conflicts by name);
     - [s_ar]/[s_aw]: reads/writes of address-taken names (candidates
       for conflicts against pointer accesses, in any scope);
     - [s_mem_rd]/[s_mem_wr]: the memory token — may read/write through
       a pointer, or free.  Concretizes to heap cells and address-taken
       variables, exactly like [Explore.Mayaccess].

   Statement footprints mirror the dynamic action granularity of
   [Step.action_footprint]: if/while conditions are charged to the
   branching statement, a whole [atomic] block to its own label (inner
   statements are not separate actions), a call to the call label
   (arguments plus the destination, which the fall-through return writes
   there), and an explicit [return] to the return label plus the
   destinations of the call sites that may invoke the procedure. *)

open Cobegin_lang
open Ast
module SS = Ast.StringSet

module IntPairSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let norm_pair a b = if a <= b then (a, b) else (b, a)

type site = {
  s_label : int;
  s_sync : bool; (* await / lock / unlock: excluded from race candidates *)
  s_vr : SS.t; (* reads of names visible at the generating cobegin *)
  s_vw : SS.t; (* writes of such names *)
  s_ar : SS.t; (* reads of address-taken names (any scope) *)
  s_aw : SS.t; (* writes of address-taken names (any scope) *)
  s_mem_rd : bool;
  s_mem_wr : bool;
}

type branch = { b_stmt : Ast.stmt; b_sites : site list }

type context = {
  c_label : int; (* the generating cobegin *)
  c_visible : SS.t; (* names in scope at the cobegin *)
  c_branches : branch list;
}

type call_site = { k_label : int; k_proc : string; k_callees : SS.t }

type t = {
  prog : Ast.program;
  addr_taken : SS.t;
  contexts : context list;
  pairs : IntPairSet.t;
  call_sites : call_site list;
  callable : SS.t; (* procedures some call may invoke *)
  proc_of_label : (int, string) Hashtbl.t;
}

(* --- syntactic name footprint of one action --- *)

type raw_fp = {
  frd : SS.t;
  fwr : SS.t;
  mem_rd : bool;
  mem_wr : bool;
  sync : bool;
}

let empty_fp =
  { frd = SS.empty; fwr = SS.empty; mem_rd = false; mem_wr = false; sync = false }

let fp_reads e fp =
  {
    fp with
    frd = SS.union fp.frd (SS.of_list (expr_vars e));
    mem_rd = fp.mem_rd || expr_derefs e;
  }

let fp_writes_lvalue lv fp =
  match lv with
  | Lvar x -> { fp with fwr = SS.add x fp.fwr }
  | Lderef e -> fp_reads e { fp with mem_wr = true }

(* Footprint of [s] as one atomic action; does not descend into
   sub-statements other than [atomic] bodies (those fire as one action). *)
let rec action_fp (s : Ast.stmt) : raw_fp =
  match s.kind with
  | Sskip | Sblock _ | Scobegin _ -> empty_fp
  | Sfence -> { empty_fp with sync = true }
  | Sdecl (_, e) -> fp_reads e empty_fp (* the declared cell is fresh *)
  | Sassign (lv, e) | Smalloc (lv, e) -> fp_writes_lvalue lv (fp_reads e empty_fp)
  | Sfree e -> fp_reads e { empty_fp with mem_wr = true }
  | Scall (dest, callee, args) ->
      let fp = List.fold_left (fun fp e -> fp_reads e fp) empty_fp args in
      let fp = fp_reads callee fp in
      (* the destination is written when the callee returns, charged here
         for the fall-through return (Race reports it at the call site) *)
      (match dest with Some lv -> fp_writes_lvalue lv fp | None -> fp)
  | Sreturn None -> empty_fp
  | Sreturn (Some e) -> fp_reads e empty_fp
  | Sif (c, _, _) | Swhile (c, _) -> fp_reads c empty_fp
  | Sawait e -> { (fp_reads e empty_fp) with sync = true }
  | Sacquire x ->
      { empty_fp with frd = SS.singleton x; fwr = SS.singleton x; sync = true }
  | Srelease x -> { empty_fp with fwr = SS.singleton x; sync = true }
  | Sassert e -> fp_reads e empty_fp
  | Satomic ss ->
      List.fold_left
        (fun fp s' ->
          let f = action_fp s' in
          {
            frd = SS.union fp.frd f.frd;
            fwr = SS.union fp.fwr f.fwr;
            mem_rd = fp.mem_rd || f.mem_rd;
            mem_wr = fp.mem_wr || f.mem_wr;
            sync = fp.sync;
          })
        empty_fp ss

(* Fold over the action statements of a subtree: like [Ast.fold_stmt] but
   atomic blocks are one action, so their inner statements are skipped. *)
let rec fold_actions f acc (s : Ast.stmt) =
  let acc = f acc s in
  match s.kind with
  | Sskip | Sdecl _ | Sassign _ | Smalloc _ | Sfree _ | Scall _ | Sreturn _
  | Sawait _ | Sacquire _ | Srelease _ | Sassert _ | Satomic _ | Sfence ->
      acc
  | Sblock ss | Scobegin ss -> List.fold_left (fold_actions f) acc ss
  | Sif (_, s1, s2) -> fold_actions f (fold_actions f acc s1) s2
  | Swhile (_, s1) -> fold_actions f acc s1

(* --- call graph --- *)

(* A direct callee [f] resolves to [f] only when the name can never be
   shadowed by a variable (no declaration or parameter anywhere uses it);
   otherwise, and for every computed callee, the call may invoke any
   procedure (coarse but sound). *)
let build_callgraph (prog : Ast.program) =
  let proc_names = SS.of_list (List.map (fun p -> p.pname) prog.procs) in
  let declared =
    fold_program
      (fun acc s ->
        match s.kind with Sdecl (x, _) -> SS.add x acc | _ -> acc)
      (List.fold_left
         (fun acc p -> SS.union acc (SS.of_list p.params))
         SS.empty prog.procs)
      prog
  in
  let callees_of_expr = function
    | Evar f when SS.mem f proc_names && not (SS.mem f declared) ->
        SS.singleton f
    | _ -> proc_names
  in
  let stmt_callees s =
    match s.kind with
    | Scall (_, callee, _) -> Some (callees_of_expr callee)
    | _ -> None
  in
  (stmt_callees, proc_names)

(* Transitive closure of procedure reachability from a seed set. *)
let reach_procs (proc_callees : string -> SS.t) seed =
  let rec go visited frontier =
    if SS.is_empty frontier then visited
    else
      let next =
        SS.fold
          (fun f acc -> SS.union acc (proc_callees f))
          frontier SS.empty
      in
      let fresh = SS.diff next visited in
      go (SS.union visited fresh) fresh
  in
  go seed seed

(* --- sites --- *)

let mk_site ~visible ~addr_taken (s : Ast.stmt) : site =
  let fp = action_fp s in
  {
    s_label = s.label;
    s_sync = fp.sync;
    s_vr = SS.inter fp.frd visible;
    s_vw = SS.inter fp.fwr visible;
    s_ar = SS.inter fp.frd addr_taken;
    s_aw = SS.inter fp.fwr addr_taken;
    s_mem_rd = fp.mem_rd;
    s_mem_wr = fp.mem_wr;
  }

(* --- the analysis --- *)

let of_program (prog : Ast.program) : t =
  let addr_taken = Ast.addr_taken_of_program prog in
  let stmt_callees, _proc_names = build_callgraph prog in
  (* per-procedure direct callee sets and global call-site list *)
  let proc_of_label = Hashtbl.create 64 in
  List.iter
    (fun p ->
      ignore
        (fold_stmt
           (fun () s -> Hashtbl.replace proc_of_label s.label p.pname)
           () p.body))
    prog.procs;
  let call_sites =
    List.concat_map
      (fun p ->
        fold_stmt
          (fun acc s ->
            match stmt_callees s with
            | Some ks ->
                { k_label = s.label; k_proc = p.pname; k_callees = ks } :: acc
            | None -> acc)
          [] p.body)
      prog.procs
  in
  let proc_callees_tbl = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let ks =
        fold_stmt
          (fun acc s ->
            match stmt_callees s with
            | Some ks -> SS.union acc ks
            | None -> acc)
          SS.empty p.body
      in
      Hashtbl.replace proc_callees_tbl p.pname ks)
    prog.procs;
  let proc_callees f =
    match Hashtbl.find_opt proc_callees_tbl f with
    | Some ks -> ks
    | None -> SS.empty
  in
  let callable =
    List.fold_left
      (fun acc k -> SS.union acc k.k_callees)
      SS.empty call_sites
  in
  (* destinations written by returns of [f]: the dests of every call site
     that may invoke [f].  Split into names (by scope they are only
     meaningful to the caller, so cross-branch matching happens through
     the visible/addr-taken filters) and the memory token for deref
     destinations. *)
  let ret_dests f =
    List.fold_left
      (fun (names, reads, memw) k ->
        if not (SS.mem f k.k_callees) then (names, reads, memw)
        else
          match Ast.stmt_at prog k.k_label with
          | Some { kind = Scall (Some (Lvar x), _, _); _ } ->
              (SS.add x names, reads, memw)
          | Some { kind = Scall (Some (Lderef e), _, _); _ } ->
              (names, SS.union reads (SS.of_list (expr_vars e)), true)
          | _ -> (names, reads, memw))
      (SS.empty, SS.empty, false)
      call_sites
  in
  let ret_dests_tbl = Hashtbl.create 16 in
  let ret_dests f =
    match Hashtbl.find_opt ret_dests_tbl f with
    | Some r -> r
    | None ->
        let r = ret_dests f in
        Hashtbl.replace ret_dests_tbl f r;
        r
  in
  (* site set of one branch: the branch's own action statements plus the
     statements of every procedure reachable from its calls *)
  let branch_sites ~visible (b : Ast.stmt) : site list =
    let direct =
      fold_actions (fun acc s -> mk_site ~visible ~addr_taken s :: acc) [] b
    in
    let seed =
      fold_actions
        (fun acc s ->
          match stmt_callees s with
          | Some ks -> SS.union acc ks
          | None -> acc)
        SS.empty b
    in
    let reached = reach_procs proc_callees seed in
    (* dests of call sites inside this branch, per callee: candidates for
       cross-branch name conflicts (the dest names live in the scope of
       the procedure containing the cobegin) *)
    let branch_dests f =
      fold_actions
        (fun ((names, reads) as acc) s ->
          match (s.kind, stmt_callees s) with
          | Scall (Some (Lvar x), _, _), Some ks when SS.mem f ks ->
              (SS.add x names, reads)
          | Scall (Some (Lderef e), _, _), Some ks when SS.mem f ks ->
              (names, SS.union reads (SS.of_list (expr_vars e)))
          | _ -> acc)
        (SS.empty, SS.empty) b
    in
    let interior =
      SS.fold
        (fun f acc ->
          match Ast.find_proc prog f with
          | None -> acc
          | Some p ->
              fold_actions
                (fun acc s ->
                  match s.kind with
                  | Sreturn _ ->
                      (* returns write the caller's destination: dests of
                         call sites in this branch are visible-scope
                         candidates; every call site that may invoke [f]
                         contributes the address-taken and memory-token
                         part *)
                      let g_names, g_reads, g_memw = ret_dests f in
                      let b_names, b_reads = branch_dests f in
                      let site = mk_site ~visible:SS.empty ~addr_taken s in
                      {
                        site with
                        s_vr = SS.inter b_reads visible;
                        s_vw = SS.inter b_names visible;
                        s_ar =
                          SS.union site.s_ar (SS.inter g_reads addr_taken);
                        s_aw =
                          SS.union site.s_aw (SS.inter g_names addr_taken);
                        s_mem_wr = site.s_mem_wr || g_memw;
                      }
                      :: acc
                  | _ -> mk_site ~visible:SS.empty ~addr_taken s :: acc)
                acc p.body)
        reached direct
    in
    interior
  in
  (* walk every procedure body, threading the visible scope exactly like
     [Check] does, and record a context per cobegin *)
  let contexts = ref [] in
  let rec walk scope (s : Ast.stmt) : SS.t =
    match s.kind with
    | Sskip | Sassign _ | Smalloc _ | Sfree _ | Scall _ | Sreturn _
    | Sawait _ | Sacquire _ | Srelease _ | Sassert _ | Sfence ->
        scope
    | Sdecl (x, _) -> SS.add x scope
    | Sblock ss | Satomic ss ->
        ignore (List.fold_left walk scope ss);
        scope
    | Sif (_, s1, s2) ->
        ignore (walk scope s1);
        ignore (walk scope s2);
        scope
    | Swhile (_, b) ->
        ignore (walk scope b);
        scope
    | Scobegin bs ->
        let branches =
          List.map
            (fun b -> { b_stmt = b; b_sites = branch_sites ~visible:scope b })
            bs
        in
        contexts :=
          { c_label = s.label; c_visible = scope; c_branches = branches }
          :: !contexts;
        List.iter (fun b -> ignore (walk scope b)) bs;
        scope
  in
  List.iter
    (fun p -> ignore (walk (SS.of_list p.params) p.body))
    prog.procs;
  let contexts = List.rev !contexts in
  (* the raw MHP relation: label pairs across distinct branches *)
  let pairs =
    List.fold_left
      (fun acc c ->
        let rec cross acc = function
          | [] -> acc
          | b :: rest ->
              let acc =
                List.fold_left
                  (fun acc b' ->
                    List.fold_left
                      (fun acc s1 ->
                        List.fold_left
                          (fun acc s2 ->
                            IntPairSet.add
                              (norm_pair s1.s_label s2.s_label)
                              acc)
                          acc b'.b_sites)
                      acc b.b_sites)
                  acc rest
              in
              cross acc rest
        in
        cross acc c.c_branches)
      IntPairSet.empty contexts
  in
  {
    prog;
    addr_taken;
    contexts;
    pairs;
    call_sites;
    callable;
    proc_of_label;
  }

let program t = t.prog
let contexts t = t.contexts
let pairs t = IntPairSet.elements t.pairs
let may_happen_parallel t l1 l2 = IntPairSet.mem (norm_pair l1 l2) t.pairs
let addr_taken t = t.addr_taken
let call_sites t = t.call_sites
let callable_procs t = t.callable
let proc_of_label t l = Hashtbl.find_opt t.proc_of_label l

let pp ppf t =
  Format.fprintf ppf "@[<v>%d cobegin context(s), %d MHP pair(s)@]"
    (List.length t.contexts)
    (IntPairSet.cardinal t.pairs)
