(* Potential deadlocks from the lock-order graph.

   There is an edge a -> b for every acquire site of stable lock b at
   which stable lock a may already be held ([Lockset.may_held]).  A
   strongly connected component with at least two locks is a cyclic
   acquisition order; it is reported as a potential deadlock when at
   least two of the acquire sites involved may happen in parallel —
   without MHP evidence the orders can never actually contend (e.g. a
   single process taking locks in both orders sequentially).

   Classic dining philosophers produce the cycle fork0 -> fork1 -> ...
   -> fork0; the asymmetric (ordered) variant breaks the cycle and is
   not reported.  Over-approximation: may-held locksets and the MHP
   relation are both supersets of what executions realize, so a
   reported cycle is a hint, not a proof — but an acyclic lock-order
   graph really cannot deadlock on stable locks. *)

open Cobegin_lang
open Ast
module SS = Ast.StringSet

type cycle = {
  locks : string list;  (** the locks of the SCC, sorted *)
  sites : int list;  (** acquire sites of the SCC's edges, sorted *)
}

let compare_cycle a b = compare (a.locks, a.sites) (b.locks, b.sites)

type edge = { e_from : string; e_to : string; e_site : int }

let edges (mhp : Mhp.t) (ls : Lockset.t) : edge list =
  let stable = Lockset.stable ls in
  fold_program
    (fun acc s ->
      match s.kind with
      | Sacquire b when SS.mem b stable ->
          SS.fold
            (fun a acc ->
              if a = b then acc
              else { e_from = a; e_to = b; e_site = s.label } :: acc)
            (SS.inter (Lockset.may_held ls s.label) stable)
            acc
      | _ -> acc)
    []
    (Mhp.program mhp)

(* Strongly connected components (Tarjan) over the lock names. *)
let sccs (nodes : string list) (succ : string -> string list) :
    string list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  !out

let find (mhp : Mhp.t) (ls : Lockset.t) : cycle list =
  let es = edges mhp ls in
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) es)
  in
  let succ v =
    List.filter_map (fun e -> if e.e_from = v then Some e.e_to else None) es
  in
  sccs nodes succ
  |> List.filter_map (fun comp ->
         if List.length comp < 2 then None
         else
           let in_comp x = List.mem x comp in
           let sites =
             List.sort_uniq compare
               (List.filter_map
                  (fun e ->
                    if in_comp e.e_from && in_comp e.e_to then Some e.e_site
                    else None)
                  es)
           in
           let contended =
             List.exists
               (fun s1 ->
                 List.exists
                   (fun s2 ->
                     s1 < s2 && Mhp.may_happen_parallel mhp s1 s2)
                   sites)
               sites
           in
           if contended then
             Some { locks = List.sort compare comp; sites }
           else None)
  |> List.sort compare_cycle

let pp_cycle ppf c =
  Format.fprintf ppf "cyclic lock order {%s} acquired at {%s}"
    (String.concat ", " c.locks)
    (String.concat ", " (List.map (fun l -> Printf.sprintf "s%d" l) c.sites))
