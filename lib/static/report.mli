(** Findings of the static concurrency lint suite, with a canonical
    position-sorted order: unlabeled findings first, then ascending
    primary label, secondary label, rule, message.  [coanalyze
    --lint-only] output relies on this order being total, so equal
    inputs always render identically. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type finding = {
  f_rule : string;  (** e.g. ["static-race"], ["lock-order-cycle"] *)
  f_severity : severity;
  f_label : int option;  (** primary statement; [None] = whole program *)
  f_other : int option;  (** secondary statement for pair findings *)
  f_message : string;
}

val compare_finding : finding -> finding -> int
val sort : finding list -> finding list
(** Canonical order, duplicates removed. *)

val is_canonical : finding list -> bool

exception Non_canonical

val assert_canonical : finding list -> unit
(** @raise Non_canonical when the list is not in canonical order — the
    self-check behind the CI lint sweep. *)

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> finding list -> unit
