(** Configurations — the global states of the interleaving semantics
    (paper section 2): live processes, shared store, allocation counters
    and an optional error marker.  Equality and hashing go through a
    canonical representation so that exploration folds states reached by
    different interleavings. *)

module PidMap : Map.S with type key = Value.pid
module CounterMap : Map.S with type key = Value.pid * int

type t = {
  procs : Proc.t PidMap.t;
  store : Store.t;
  counters : int CounterMap.t;  (** next sequence number per (pid, site) *)
  error : string option;  (** a runtime failure: the configuration is terminal *)
}

val make :
  procs:Proc.t PidMap.t ->
  store:Store.t ->
  counters:int CounterMap.t ->
  error:string option ->
  t

val processes : t -> Proc.t list
(** Live processes, in pid order. *)

val find_proc : Value.pid -> t -> Proc.t option
val num_procs : t -> int
val is_error : t -> bool

val all_terminated : t -> bool
(** Every process has run to completion: a final configuration. *)

val next_seq : pid:Value.pid -> site:int -> t -> int * t
(** Allocate the next sequence number for (pid, site). *)

val update_proc : Proc.t -> t -> t
val remove_proc : Value.pid -> t -> t
val add_proc : Proc.t -> t -> t
val with_store : Store.t -> t -> t
val with_error : string -> t -> t

type repr
(** Canonical representation: pure data with structural equality. *)

val repr : t -> repr

type digest = {
  d_procs : int array;  (** interned {!Proc.repr} ids, in pid order *)
  d_store : int;  (** interned {!Store.repr} id *)
  d_counters : int;  (** interned counter-map id *)
  d_error : int;  (** -1, or the interned error string id *)
  d_hash : int;  (** precomputed full-width hash of the tuple *)
}
(** Hash-consed identity (see {!Intern}): a flat int tuple such that
    [digest_equal (digest a) (digest b)] iff [repr a = repr b].
    Components are interned incrementally — a one-process step
    re-serializes only the changed process and the store when written;
    the untouched components hit the physical-identity memo. *)

val digest : t -> digest
(** Intern against the process-wide default interner
    ({!Intern.global}).  Cost: O(changed components) plus O(#procs) to
    assemble the tuple. *)

val digest_of_ids :
  d_procs:int array -> d_store:int -> d_counters:int -> d_error:int -> digest
(** Rebuild a digest from component ids (recomputing [d_hash] with the
    same formula {!digest} uses).  For checkpoint restore, where saved
    ids are mapped through an {!Intern.remap} before reuse.  The ids
    must come from the interner the digest will be compared under. *)

val digest_equal : digest -> digest -> bool
val digest_hash : digest -> int

module Digest_tbl : Hashtbl.S with type key = digest
(** The specialized visited-set table every state-folding client keys
    by: hashing reads the precomputed [d_hash], equality compares a
    handful of ints. *)

val equal : t -> t -> bool
val hash : t -> int
(** Both go through {!digest} (full-width, memoized). *)

val pp : Format.formatter -> t -> unit
