(* Direct execution under a scheduler: runs one interleaving to completion.
   This is the testing oracle for the exploration engine — every final
   store an executor can produce must appear among the explored final
   configurations. *)

type outcome =
  | Terminated of Config.t
  | Error of string * Config.t
  | Deadlock of Config.t
  | Out_of_fuel of Config.t

type trace_entry = { chosen : Value.pid; events : Step.events }

type run = { outcome : outcome; trace : trace_entry list (* reversed *) }

let final_config = function
  | Terminated c | Error (_, c) | Deadlock c | Out_of_fuel c -> c

(* [pick] chooses among the enabled actions (never called on []). *)
let run ?(max_steps = 10_000) ctx ~pick : run =
  let rec go c trace fuel =
    if Config.is_error c then
      {
        outcome = Error (Option.get c.Config.error, c);
        trace;
      }
    else if Config.all_terminated c then { outcome = Terminated c; trace }
    else if fuel = 0 then { outcome = Out_of_fuel c; trace }
    else
      match Step.enabled_actions ctx c with
      | [] -> { outcome = Deadlock c; trace }
      | enabled ->
          let a = pick enabled in
          let c', events = Step.fire_action ctx c a in
          go c'
            ({ chosen = Step.action_pid a; events } :: trace)
            (fuel - 1)
  in
  go (Step.init ctx) [] max_steps

let run_random ?max_steps ctx ~seed : run =
  let rng = Random.State.make [| seed |] in
  run ?max_steps ctx ~pick:(fun enabled ->
      List.nth enabled (Random.State.int rng (List.length enabled)))

(* Round-robin: rotate the cursor through the enabled actions. *)
let run_round_robin ?max_steps ctx : run =
  let cursor = ref 0 in
  run ?max_steps ctx ~pick:(fun enabled ->
      let n = List.length enabled in
      let a = List.nth enabled (!cursor mod n) in
      incr cursor;
      a)

(* Deterministic left-most scheduling (the first enabled action — under
   SC, the least pid). *)
let run_leftmost ?max_steps ctx : run =
  run ?max_steps ctx ~pick:(fun enabled -> List.hd enabled)

let all_events r =
  List.fold_left
    (fun acc e -> Step.merge_events acc e.events)
    Step.no_events (List.rev r.trace)
