(* The shared store: a map from locations to values, plus instrumentation
   metadata (birthdates, heap-ness) that is deliberately EXCLUDED from
   configuration identity — it is a function of the logical state, and
   keeping it out of the comparison lets interleavings that reach the same
   state fold.

   Freeing removes the cells; any later access to a removed location is a
   runtime error surfaced as an error configuration. *)

type t = {
  cells : Value.t Value.LocMap.t;
  births : Pstring.t Value.LocMap.t; (* birthdate of each object *)
  heap : Value.LocSet.t; (* locations created by malloc *)
  exposed : Value.LocSet.t; (* address-taken variables' locations *)
  blocks : int Value.LocMap.t; (* malloc base location -> block size *)
}

let empty =
  {
    cells = Value.LocMap.empty;
    births = Value.LocMap.empty;
    heap = Value.LocSet.empty;
    exposed = Value.LocSet.empty;
    blocks = Value.LocMap.empty;
  }

let find loc st = Value.LocMap.find_opt loc st.cells
let mem loc st = Value.LocMap.mem loc st.cells
let set loc v st = { st with cells = Value.LocMap.add loc v st.cells }

let alloc ?(heap = false) ?(exposed = false) ~birth loc v st =
  {
    st with
    cells = Value.LocMap.add loc v st.cells;
    births = Value.LocMap.add loc birth st.births;
    heap = (if heap then Value.LocSet.add loc st.heap else st.heap);
    exposed =
      (if exposed then Value.LocSet.add loc st.exposed else st.exposed);
  }

let free locs st =
  { st with cells = Value.LocSet.fold Value.LocMap.remove locs st.cells }

let birth loc st = Value.LocMap.find_opt loc st.births
let is_heap loc st = Value.LocSet.mem loc st.heap

(* Is the location coverable through a pointer: a heap cell or an
   address-taken variable?  The memory token of the may-access summaries
   covers exactly these. *)
let is_mem_covered loc st =
  Value.LocSet.mem loc st.heap || Value.LocSet.mem loc st.exposed

(* Register a malloc block and return its cell locations. *)
let register_block base size st = { st with blocks = Value.LocMap.add base size st.blocks }

(* The cells of the block whose base is [loc] with offset reset to 0;
   None when [loc] does not point into a registered block. *)
let block_cells loc st =
  let base = { loc with Value.l_off = 0 } in
  match Value.LocMap.find_opt base st.blocks with
  | None -> None
  | Some size ->
      Some
        (List.init size (fun i -> { base with Value.l_off = i })
        |> Value.LocSet.of_list)

(* Canonical representation for hashing/equality: sorted bindings of the
   cells only. *)
let repr st = Value.LocMap.bindings st.cells

let equal a b = Value.LocMap.equal Value.equal_value a.cells b.cells

let bindings st = Value.LocMap.bindings st.cells

let fold_cells f st acc = Value.LocMap.fold f st.cells acc
let cardinal st = Value.LocMap.cardinal st.cells

let pp ppf st =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (l, v) ->
         Format.fprintf ppf "%a = %a" Value.pp_loc l Value.pp v))
    (bindings st)
