(* Hash-consed interning of configuration components (see intern.mli).

   Layout: one Pool per component kind, keyed by the component's
   canonical representation under a full-width structural hash, fronted
   by a physical-identity memo.  Successor configurations share the
   untouched components physically (Config updates are functional
   record updates), so the memo turns the per-step interning cost into
   "changed components only". *)

module H = Cobegin_hash
module Metrics = Cobegin_obs.Metrics

(* Telemetry: hit rate of the physical-identity memo in front of the
   pools.  No-ops (one branch) while telemetry is disabled. *)
let m_memo_hits = Metrics.counter "intern.memo_hits"
let m_memo_misses = Metrics.counter "intern.memo_misses"

module CounterMap = Map.Make (struct
  type t = Value.pid * int (* (pid, site) *)

  let compare (p1, s1) (p2, s2) =
    let c = Value.compare_pid p1 p2 in
    if c <> 0 then c else Int.compare s1 s2
end)

(* --- full-width hashes over canonical representations --- *)

let hash_pid (p : Value.pid) =
  H.hash_list (fun (cob, idx) -> H.combine cob idx) p

let hash_loc (l : Value.loc) =
  H.combine
    (hash_pid l.Value.l_pid)
    (H.combine l.Value.l_site (H.combine l.Value.l_seq l.Value.l_off))

let hash_value = function
  | Value.Vint n -> H.combine 0x1 (H.hash_int n)
  | Value.Vbool b -> H.combine 0x2 (H.hash_bool b)
  | Value.Vloc l -> H.combine 0x3 (hash_loc l)
  | Value.Vfun f -> H.combine 0x4 (H.hash_string f)

let hash_env_bindings bs =
  H.hash_list (fun (x, l) -> H.combine (H.hash_string x) (hash_loc l)) bs

let hash_item_repr = function
  | Proc.Rstmt label -> H.combine 0x21 (H.hash_int label)
  | Proc.Rpop bs -> H.combine 0x22 (hash_env_bindings bs)
  | Proc.Rret (tag, bs) ->
      H.combine 0x23 (H.combine (H.hash_string tag) (hash_env_bindings bs))
  | Proc.Rjoin (cob, children) ->
      H.combine 0x24 (H.combine cob (H.hash_list hash_pid children))

let hash_buf entries =
  H.hash_list (fun (l, v) -> H.combine (hash_loc l) (hash_value v)) entries

let hash_proc_repr (r : Proc.repr) =
  H.combine
    (hash_pid r.Proc.r_pid)
    (H.combine
       (hash_env_bindings r.Proc.r_env)
       (H.combine
          (H.hash_list hash_item_repr r.Proc.r_stack)
          (H.combine (H.hash_string r.Proc.r_pstr) (hash_buf r.Proc.r_buf))))

let hash_store_repr bs =
  H.hash_list (fun (l, v) -> H.combine (hash_loc l) (hash_value v)) bs

let hash_counter_bindings bs =
  H.hash_list
    (fun ((pid, site), n) -> H.combine (hash_pid pid) (H.combine site n))
    bs

(* --- full-width hashes over *live* components ---

   These key the physical-identity memos in front of the pools: the
   bucket hash must spread structurally distinct live values across
   buckets (the generic [Hashtbl.hash] stops after ~10 nodes, which
   collapses deep processes and stores into a handful of buckets whose
   cap then evicts live entries).  They walk the live structures
   directly — no canonical representation is allocated on the memo-hit
   path. *)

let hash_pstring_frame = function
  | Pstring.Fcall { proc; site; inst } ->
      H.combine 0x31 (H.combine (H.hash_string proc) (H.combine site inst))
  | Pstring.Fbranch { cob; idx; inst } ->
      H.combine 0x32 (H.combine cob (H.combine idx inst))

let hash_env (e : Env.t) = hash_env_bindings (Env.bindings e)

let hash_item_live = function
  | Proc.Istmt s -> H.combine 0x21 (H.hash_int s.Cobegin_lang.Ast.label)
  | Proc.Ipop e -> H.combine 0x22 (hash_env e)
  | Proc.Iret { site; saved_env; _ } ->
      H.combine 0x23 (H.combine site (hash_env saved_env))
  | Proc.Ijoin { cob; children } ->
      H.combine 0x24 (H.combine cob (H.hash_list hash_pid children))

let hash_proc_live (p : Proc.t) =
  H.combine
    (hash_pid p.Proc.pid)
    (H.combine
       (hash_env p.Proc.env)
       (H.combine
          (H.hash_list hash_item_live p.Proc.stack)
          (H.combine
             (H.hash_list hash_pstring_frame p.Proc.pstr)
             (hash_buf p.Proc.buf))))

let hash_store_live (s : Store.t) =
  Store.fold_cells
    (fun l v h -> H.combine h (H.combine (hash_loc l) (hash_value v)))
    s
    (H.hash_int (Store.cardinal s))

let hash_counters_live (m : int CounterMap.t) =
  CounterMap.fold
    (fun (pid, site) n h ->
      H.combine h (H.combine (hash_pid pid) (H.combine site n)))
    m (H.hash_int 0)

(* --- pools --- *)

module Proc_pool = H.Pool (struct
  type t = Proc.repr

  let equal = ( = )
  let hash = hash_proc_repr
end)

module Store_pool = H.Pool (struct
  type t = (Value.loc * Value.t) list

  let equal = ( = )
  let hash = hash_store_repr
end)

module Counter_pool = H.Pool (struct
  type t = ((Value.pid * int) * int) list

  let equal = ( = )
  let hash = hash_counter_bindings
end)

module String_pool = H.Pool (struct
  type t = string

  let equal = String.equal
  let hash = H.hash_string
end)

(* One mutex per component kind, guarding the memo and the pool lookup
   together: the pools are themselves mutex-guarded (Cobegin_hash.Pool),
   but the Phys_memo in front is a plain hashtable, and the memo-miss
   path must publish (memo add) the id it interned atomically with
   respect to other domains interning the same component.  The locks
   nest strictly kind-mutex → pool-mutex, so there is no deadlock, and
   ids stay sequential and stable: the pool assigns them under its own
   lock in first-intern order. *)
type state = {
  proc_lock : Mutex.t;
  procs : Proc_pool.t;
  proc_memo : (Proc.t, int) H.Phys_memo.t;
  store_lock : Mutex.t;
  stores : Store_pool.t;
  store_memo : (Store.t, int) H.Phys_memo.t;
  counter_lock : Mutex.t;
  counters : Counter_pool.t;
  counter_memo : (int CounterMap.t, int) H.Phys_memo.t;
  error_lock : Mutex.t;
  errors : String_pool.t;
}

let create () =
  {
    proc_lock = Mutex.create ();
    procs = Proc_pool.create 1024;
    proc_memo = H.Phys_memo.create ~hash:hash_proc_live 1024;
    store_lock = Mutex.create ();
    stores = Store_pool.create 1024;
    store_memo = H.Phys_memo.create ~hash:hash_store_live 1024;
    counter_lock = Mutex.create ();
    counters = Counter_pool.create 64;
    counter_memo = H.Phys_memo.create ~hash:hash_counters_live 64;
    error_lock = Mutex.create ();
    errors = String_pool.create 16;
  }

(* Eager, not lazy: Lazy.force from several domains at once raises
   [Lazy.Undefined] on the losers, and the parallel engine digests from
   every worker. *)
let the_global = create ()
let global () = the_global

let proc_id st (p : Proc.t) =
  Mutex.protect st.proc_lock (fun () ->
      match H.Phys_memo.find st.proc_memo p with
      | Some id ->
          Metrics.incr m_memo_hits;
          id
      | None ->
          Metrics.incr m_memo_misses;
          let id = Proc_pool.intern st.procs (Proc.repr p) in
          H.Phys_memo.add st.proc_memo p id;
          id)

let store_id st (s : Store.t) =
  Mutex.protect st.store_lock (fun () ->
      match H.Phys_memo.find st.store_memo s with
      | Some id ->
          Metrics.incr m_memo_hits;
          id
      | None ->
          Metrics.incr m_memo_misses;
          let id = Store_pool.intern st.stores (Store.repr s) in
          H.Phys_memo.add st.store_memo s id;
          id)

let counters_id st (m : int CounterMap.t) =
  Mutex.protect st.counter_lock (fun () ->
      match H.Phys_memo.find st.counter_memo m with
      | Some id ->
          Metrics.incr m_memo_hits;
          id
      | None ->
          Metrics.incr m_memo_misses;
          let id = Counter_pool.intern st.counters (CounterMap.bindings m) in
          H.Phys_memo.add st.counter_memo m id;
          id)

let error_id st = function
  | None -> -1
  | Some msg ->
      Mutex.protect st.error_lock (fun () ->
          String_pool.intern st.errors msg)

let distinct_procs st = Proc_pool.size st.procs
let distinct_stores st = Store_pool.size st.stores

(* --- snapshot / restore (checkpointing) ---

   A snapshot is the canonical representations of every pool, indexed
   by id.  Restoring re-interns them into a (possibly already
   populated) interner and returns the old-id → new-id maps, so
   digests serialized alongside a snapshot can be rebuilt against the
   restoring process's pools.  Restoring into a fresh interner is the
   identity remap (reprs are re-interned in saved-id order); restoring
   into a warm one still yields valid, stable ids — only the numbers
   change, and the remap records how. *)

type snapshot = {
  sn_procs : Proc.repr array;
  sn_stores : (Value.loc * Value.t) list array;
  sn_counters : ((Value.pid * int) * int) list array;
  sn_errors : string array;
}

let pool_array (type k) ~(entries : (k * int) list) ~(size : int) : k array =
  match entries with
  | [] -> [||]
  | (k0, _) :: _ ->
      let a = Array.make size k0 in
      List.iter (fun (k, id) -> a.(id) <- k) entries;
      a

let snapshot st =
  {
    sn_procs =
      pool_array
        ~entries:(Proc_pool.entries st.procs)
        ~size:(Proc_pool.size st.procs);
    sn_stores =
      pool_array
        ~entries:(Store_pool.entries st.stores)
        ~size:(Store_pool.size st.stores);
    sn_counters =
      pool_array
        ~entries:(Counter_pool.entries st.counters)
        ~size:(Counter_pool.size st.counters);
    sn_errors =
      pool_array
        ~entries:(String_pool.entries st.errors)
        ~size:(String_pool.size st.errors);
  }

type remap = {
  rm_procs : int array;
  rm_stores : int array;
  rm_counters : int array;
  rm_errors : int array;
}

let restore st snap =
  (* Straight to the pools, in saved-id order: the memos in front key
     by physical identity and cannot help with freshly unmarshaled
     values anyway.  Interning is idempotent, so components already in
     the pools just resolve to their existing ids. *)
  {
    rm_procs =
      Array.map
        (fun r ->
          Mutex.protect st.proc_lock (fun () -> Proc_pool.intern st.procs r))
        snap.sn_procs;
    rm_stores =
      Array.map
        (fun r ->
          Mutex.protect st.store_lock (fun () ->
              Store_pool.intern st.stores r))
        snap.sn_stores;
    rm_counters =
      Array.map
        (fun r ->
          Mutex.protect st.counter_lock (fun () ->
              Counter_pool.intern st.counters r))
        snap.sn_counters;
    rm_errors =
      Array.map
        (fun r ->
          Mutex.protect st.error_lock (fun () ->
              String_pool.intern st.errors r))
        snap.sn_errors;
  }
