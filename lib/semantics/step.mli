(** The small-step interleaving semantics (paper sections 2 and 4).

    One transition is one atomic action of one process: a simple
    statement, a branch test, a call/return movement, a cobegin spawn, a
    join, or a whole [atomic] block.  Expressions are pure and evaluated
    within the action containing them.  Every transition is instrumented
    with the accesses and allocations it performs — the input of the
    section-5 analyses.

    Under {!Tso}/{!Pso} (operational store buffers, Boudol–Petri style)
    plain assignments are buffered per process and published by separate
    nondeterministic {e flush} transitions; a process's own reads forward
    from its buffer.  [fence]/[atomic]/[lock]/[unlock] fire only on an
    empty buffer.  Under {!Sc} the {!action} interface degenerates to
    exactly one {!Arun} per enabled process — SC exploration is
    unchanged by the buffer machinery. *)

open Cobegin_lang

(** The memory model of the concrete semantics.  [Sc] is the paper's
    interleaving semantics; [Tso] adds per-process FIFO store buffers
    (total store order: only the oldest write may flush); [Pso] lets the
    oldest write {e per location} flush, so stores to distinct locations
    reorder. *)
type model = Sc | Tso | Pso

val model_of_string : string -> model option
(** ["sc"], ["tso"], ["pso"]. *)

val model_name : model -> string

type ctx = {
  prog : Ast.program;
  addr_taken : Ast.StringSet.t;  (** names whose address is taken *)
  model : model;
}

val make_ctx : ?model:model -> Ast.program -> ctx
(** [model] defaults to {!Sc}. *)

(** {1 Instrumentation} *)

type access = {
  a_label : int;  (** statement performing the access; -1 = implicit *)
  a_loc : Value.loc;
  a_kind : [ `Read | `Write ];
  a_pstr : Pstring.t;  (** procedure string at the access *)
  a_pid : Value.pid;
}

type alloc = {
  al_loc : Value.loc;
  al_site : int;
  al_birth : Pstring.t;  (** the object's birthdate *)
  al_heap : bool;
}

type events = { accesses : access list; allocs : alloc list }

val no_events : events
val merge_events : events -> events -> events

(** {1 Evaluation} *)

exception Runtime_error of string

val eval :
  ctx -> Env.t -> Store.t -> Value.LocSet.t ref -> Ast.expr -> Value.t
(** Evaluate an expression, accumulating the locations read.
    @raise Runtime_error on type errors, dangling pointers, division by
    zero, etc. *)

val eval_bool : ctx -> Env.t -> Store.t -> Value.LocSet.t ref -> Ast.expr -> bool

val resolve_lvalue :
  ctx -> Env.t -> Store.t -> Value.LocSet.t ref -> Ast.lvalue -> Value.loc

(** {1 Configurations} *)

val normalize : Config.t -> Config.t
(** Unfold administrative items (blocks, environment pops) and drop
    terminated processes; all configurations handled by [fire] and
    returned by it are normalized. *)

val init : ctx -> Config.t
(** Initial configuration: one root process at the entry procedure. *)

val enabled_proc : ctx -> Config.t -> Proc.t -> bool
(** Disabled: an [await]/[lock] whose condition is false, a join with
    live children, a sync action ([fence]/[atomic]/[lock]/[unlock]) with
    a non-empty store buffer, or an empty stack (only flushes remain).
    Failing evaluations count as enabled — firing them yields the error
    configuration. *)

val enabled_processes : ctx -> Config.t -> Proc.t list

(** {1 Footprints (dry runs)} *)

type footprint = { freads : Value.LocSet.t; fwrites : Value.LocSet.t }

val empty_footprint : footprint

val footprint_conflict : footprint -> footprint -> bool
(** Write/read or write/write overlap. *)

val action_footprint : ctx -> Config.t -> Proc.t -> footprint
(** The locations the process's next action would read and write,
    computed without committing — what the stubborn-set reduction
    compares across processes (Algorithm 1). *)

(** {1 Transitions} *)

val fire : ctx -> Config.t -> Proc.t -> Config.t * events
(** Fire the next statement-level action of an enabled process.  Runtime
    failures yield an error configuration rather than raising.  Under
    TSO/PSO a plain assignment is appended to the process's store buffer
    instead of hitting the shared store (its access events are still
    charged here, at the program-order point). *)

(** {1 Actions: statement steps and buffer flushes}

    The scheduling alternatives of a configuration.  Engines expand over
    {!enabled_actions}/{!fire_action}; under {!Sc} that is exactly one
    {!Arun} per enabled process, in pid order. *)

type action =
  | Arun of Proc.t  (** run the process's next statement-level action *)
  | Aflush of Proc.t * Value.loc
      (** publish the process's oldest buffered write to that location *)

val action_pid : action -> Value.pid

val enabled_actions : ctx -> Config.t -> action list
(** All enabled actions: [Arun] per enabled process plus, under
    TSO/PSO, the flush alternatives of each non-empty buffer (TSO: the
    buffer head; PSO: the oldest entry per distinct pending location). *)

val fire_action : ctx -> Config.t -> action -> Config.t * events
(** Flushing to a location freed since the write was issued yields an
    error configuration; flushes report no events (the write was charged
    at issue time). *)

val action_footprint_of : ctx -> Config.t -> action -> footprint
(** {!action_footprint} for [Arun]; a flush writes its location. *)

val successors : ctx -> Config.t -> (Value.pid * Config.t * events) list
(** Full expansion: one successor per enabled action (flushes included
    under TSO/PSO). *)

val is_deadlock : ctx -> Config.t -> bool
(** Not terminated, no error, nothing enabled. *)
