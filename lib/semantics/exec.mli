(** Direct execution under a scheduler: one interleaving, run to
    completion.  The testing oracle for the exploration engines — every
    final store an executor can produce must appear among the explored
    final configurations. *)

type outcome =
  | Terminated of Config.t
  | Error of string * Config.t
  | Deadlock of Config.t
  | Out_of_fuel of Config.t

type trace_entry = { chosen : Value.pid; events : Step.events }

type run = {
  outcome : outcome;
  trace : trace_entry list;  (** most recent step first *)
}

val final_config : outcome -> Config.t

val run :
  ?max_steps:int -> Step.ctx -> pick:(Step.action list -> Step.action) -> run
(** [pick] chooses among the enabled actions (under TSO/PSO these
    include buffer flushes, recorded in the trace under the flushing
    process's pid); it is never called on the empty list. *)

val run_random : ?max_steps:int -> Step.ctx -> seed:int -> run
val run_round_robin : ?max_steps:int -> Step.ctx -> run

val run_leftmost : ?max_steps:int -> Step.ctx -> run
(** Deterministic: always the first enabled action (under SC, the least
    pid). *)

val all_events : run -> Step.events
(** The merged instrumentation of the whole run, in execution order. *)
