(* Process states.  A process is its fork path (pid), its current
   environment, its procedure string, a continuation stack of work
   items, and — under relaxed memory models — a FIFO store buffer of
   writes it has issued but not yet made globally visible.  Statements
   are items; [Ipop] restores the environment at block exit; [Iret]
   marks a pending procedure return; [Ijoin] waits for the children of a
   cobegin. *)

open Cobegin_lang

type item =
  | Istmt of Ast.stmt
  | Ipop of Env.t
  | Iret of { dest : Ast.lvalue option; saved_env : Env.t; site : int }
  | Ijoin of { cob : int; children : Value.pid list }

type t = {
  pid : Value.pid;
  env : Env.t;
  stack : item list;
  pstr : Pstring.t;
  buf : (Value.loc * Value.t) list;
      (* store buffer, oldest write first; always [] under SC *)
}

let make ?(buf = []) ~pid ~env ~stack ~pstr () =
  { pid; env; stack; pstr; buf }

let item_equal i1 i2 =
  match (i1, i2) with
  | Istmt s1, Istmt s2 -> s1.Ast.label = s2.Ast.label
  | Ipop e1, Ipop e2 -> Env.equal e1 e2
  | Iret r1, Iret r2 ->
      r1.dest = r2.dest && r1.site = r2.site
      && Env.equal r1.saved_env r2.saved_env
  | Ijoin j1, Ijoin j2 ->
      j1.cob = j2.cob
      && List.equal (fun a b -> Value.compare_pid a b = 0) j1.children j2.children
  | (Istmt _ | Ipop _ | Iret _ | Ijoin _), _ -> false

let buf_entry_equal (l1, v1) (l2, v2) =
  Value.compare_loc l1 l2 = 0 && Value.compare_value v1 v2 = 0

let equal p1 p2 =
  Value.compare_pid p1.pid p2.pid = 0
  && Env.equal p1.env p2.env
  && List.equal item_equal p1.stack p2.stack
  && Pstring.equal p1.pstr p2.pstr
  && List.equal buf_entry_equal p1.buf p2.buf

(* A canonical, hashable digest of a process: statement items are
   identified by label; environments by their sorted bindings; the store
   buffer is order-significant, so its repr is the list itself. *)
type item_repr =
  | Rstmt of int
  | Rpop of (string * Value.loc) list
  | Rret of string * (string * Value.loc) list
  | Rjoin of int * Value.pid list

let item_repr = function
  | Istmt s -> Rstmt s.Ast.label
  | Ipop e -> Rpop (Env.bindings e)
  | Iret { dest; saved_env; site } ->
      let d =
        match dest with
        | None -> ""
        | Some lv -> Format.asprintf "%a" Pretty.pp_lvalue lv
      in
      Rret (Printf.sprintf "%d:%s" site d, Env.bindings saved_env)
  | Ijoin { cob; children } -> Rjoin (cob, children)

type repr = {
  r_pid : Value.pid;
  r_env : (string * Value.loc) list;
  r_stack : item_repr list;
  r_pstr : string;
  r_buf : (Value.loc * Value.t) list;
}

let repr p =
  {
    r_pid = p.pid;
    r_env = Env.bindings p.env;
    r_stack = List.map item_repr p.stack;
    r_pstr = Pstring.to_string p.pstr;
    r_buf = p.buf;
  }

(* The statement the process will execute next, if its top item is one. *)
let next_stmt p =
  match p.stack with Istmt s :: _ -> Some s | _ -> None

let is_terminated p = p.stack = [] && p.buf = []

let pp_item ppf = function
  | Istmt s -> Format.fprintf ppf "stmt:%d" s.Ast.label
  | Ipop _ -> Format.pp_print_string ppf "pop"
  | Iret _ -> Format.pp_print_string ppf "ret"
  | Ijoin { cob; _ } -> Format.fprintf ppf "join:%d" cob

let pp ppf p =
  Format.fprintf ppf "@[<h>[%a] %a | stack: %a%a@]" Value.pp_pid p.pid
    Pstring.pp p.pstr
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_item)
    p.stack
    (fun ppf -> function
      | [] -> ()
      | buf -> Format.fprintf ppf " | buf: %d pending" (List.length buf))
    p.buf
