(** The shared store: locations to values, plus instrumentation metadata
    (birthdates, heap/exposure flags, malloc block sizes).  Metadata is
    excluded from equality — it is functionally determined by the logical
    state, and keeping it out lets interleavings that reach the same
    state fold during exploration. *)

type t

val empty : t
val find : Value.loc -> t -> Value.t option
val mem : Value.loc -> t -> bool
val set : Value.loc -> Value.t -> t -> t

val alloc :
  ?heap:bool -> ?exposed:bool -> birth:Pstring.t -> Value.loc -> Value.t -> t -> t
(** Create a cell.  [heap] marks malloc cells; [exposed] marks
    address-taken variables; [birth] is the creating procedure string. *)

val free : Value.LocSet.t -> t -> t
(** Remove the cells; later accesses are runtime errors. *)

val birth : Value.loc -> t -> Pstring.t option
val is_heap : Value.loc -> t -> bool

val is_mem_covered : Value.loc -> t -> bool
(** Reachable through a pointer: a heap cell or an address-taken
    variable.  The memory token of the may-access summaries concretizes
    to exactly these. *)

val register_block : Value.loc -> int -> t -> t
(** Record a malloc block's size under its base location. *)

val block_cells : Value.loc -> t -> Value.LocSet.t option
(** All cells of the block [loc] points into; [None] if [loc] is not a
    registered block. *)

val repr : t -> (Value.loc * Value.t) list
(** Canonical representation (cells only, sorted) for hashing. *)

val equal : t -> t -> bool
val bindings : t -> (Value.loc * Value.t) list

val fold_cells : (Value.loc -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the live cells in location order, without materializing
    the bindings list (the memo-hash path of {!Intern}). *)

val cardinal : t -> int
val pp : Format.formatter -> t -> unit
