(** Hash-consed interning of configuration components.

    The exploration engines fold states through their canonical
    representations — deep nested lists that OCaml's generic hash
    truncates after ~10 nodes.  This layer interns each component of a
    configuration ({!Proc.repr}, {!Store.repr}, the allocation-counter
    map, the error marker) into a small integer id with a {e full-width}
    structural hash, so a whole configuration collapses to a flat int
    tuple ({!Config.digest}) whose equality and hashing are O(#procs).

    Interning is incremental: each component is first looked up in a
    physical-identity memo, so a one-process step re-serializes only the
    changed process (and the store, when it was written) — the untouched
    processes and counter map are physically shared by the successor and
    hit the memo in O(1).

    Invariants:
    - id equality is equivalent to structural equality of the canonical
      representation ([proc_id a = proc_id b] iff
      [Proc.repr a = Proc.repr b], and likewise for the other pools);
    - ids are never reused, so digests remain valid for the lifetime of
      the interner that produced them;
    - the memos are best-effort: a memo miss falls back to structural
      interning and can never produce a wrong id.

    Domain-safety: every [*_id] lookup is guarded by a per-component
    mutex (covering the memo and the pool together), so one interner —
    in particular {!global}, which is created eagerly at module
    initialization — may be shared by any number of OCaml 5 domains.
    Ids stay sequential and stable no matter how many domains intern
    concurrently; the parallel exploration engine relies on this. *)

module CounterMap : Map.S with type key = Value.pid * int
(** The allocation-counter map, keyed by (pid, site).  Defined here (and
    re-exported by {!Config}) so the interner can memoize whole counter
    maps by physical identity. *)

type state
(** An interner: pools of interned components plus their memos. *)

val create : unit -> state

val global : unit -> state
(** The process-wide default interner used by {!Config.digest}.  Ids
    from distinct [state]s are not comparable; stick to one. *)

val proc_id : state -> Proc.t -> int
val store_id : state -> Store.t -> int
val counters_id : state -> int CounterMap.t -> int
val error_id : state -> string option -> int
(** [-1] for [None]; interned string ids (≥ 0) for [Some _]. *)

val distinct_procs : state -> int
val distinct_stores : state -> int
(** Pool sizes, for instrumentation and the E14 bench. *)

(** {2 Snapshot / restore}

    Checkpointing support ({!Cobegin_explore.Checkpoint}): a snapshot
    captures the canonical representations behind every interned id, so
    digests serialized to disk can be rebuilt in another process. *)

type snapshot
(** The id-indexed contents of all four pools.  Pure data
    ([Marshal]-safe), taken atomically per pool. *)

val snapshot : state -> snapshot

type remap = {
  rm_procs : int array;  (** saved proc id → id in the restored pools *)
  rm_stores : int array;
  rm_counters : int array;
  rm_errors : int array;
}

val restore : state -> snapshot -> remap
(** Re-intern every snapshotted representation into [st] (idempotent
    for components already present) and return the saved-id → new-id
    maps.  Restoring a snapshot into the fresh interner of a new
    process yields the identity remap; restoring into a warm interner
    yields valid ids that merely differ in numbering.  The saved error
    id [-1] ([None]) is not in the map — it stays [-1]. *)

(** {2 Full-width hashes over canonical representations}

    Exposed for the intern pools themselves and for clients that hash
    representation fragments directly (tests, the Petri substrate). *)

val hash_pid : Value.pid -> int
val hash_loc : Value.loc -> int
val hash_value : Value.t -> int
val hash_proc_repr : Proc.repr -> int
val hash_store_repr : (Value.loc * Value.t) list -> int
val hash_counter_bindings : ((Value.pid * int) * int) list -> int
