(* The small-step interleaving semantics (paper sections 2 and 4).

   One transition = one atomic action of one process: a simple statement,
   a branch test, a call/return movement, a cobegin spawn, a join, or a
   whole [atomic] block.  Expressions are pure and are evaluated entirely
   within the action that contains them ([&&]/[||] are strict).

   Under the relaxed memory models (TSO/PSO, in the operational
   store-buffer style of Boudol-Petri) a plain assignment to an existing
   cell does not hit the shared store: it is appended to the process's
   FIFO store buffer, and a separate nondeterministic *flush* transition
   later makes it globally visible.  The process's own reads see its
   buffered writes first (read-own-write-early forwarding).  Under TSO
   only the oldest buffered write may flush; under PSO the oldest write
   *per location* may, so writes to distinct locations reorder.  [fence]
   (and [atomic]/[lock]/[unlock]) only fire on an empty buffer, so they
   act as drain points.  Allocation-carrying statements (decl, malloc,
   call/return plumbing, free) write to the store directly: buffers model
   the data race surface of plain stores, not the allocator.

   Each transition is *instrumented*: it reports the accesses (read/write,
   location, statement label, procedure string) and allocations it
   performs — the data from which the side-effect, dependence and lifetime
   analyses are computed (paper section 5).

   The module also computes the *footprint* of a process's next action
   without committing it (a dry run), which is what the stubborn-set
   reduction compares across processes (paper Algorithm 1). *)

open Cobegin_lang
module LS = Value.LocSet

type model = Sc | Tso | Pso

let model_of_string = function
  | "sc" -> Some Sc
  | "tso" -> Some Tso
  | "pso" -> Some Pso
  | _ -> None

let model_name = function Sc -> "sc" | Tso -> "tso" | Pso -> "pso"

type ctx = {
  prog : Ast.program;
  addr_taken : Ast.StringSet.t; (* variable names whose address is taken *)
  model : model;
}

let make_ctx ?(model = Sc) prog =
  { prog; addr_taken = Ast.addr_taken_of_program prog; model }

(* --- instrumentation events --- *)

type access = {
  a_label : int; (* statement performing the access *)
  a_loc : Value.loc;
  a_kind : [ `Read | `Write ];
  a_pstr : Pstring.t;
  a_pid : Value.pid;
}

type alloc = {
  al_loc : Value.loc;
  al_site : int;
  al_birth : Pstring.t;
  al_heap : bool;
}

type events = { accesses : access list; allocs : alloc list }

let no_events = { accesses = []; allocs = [] }

let merge_events a b =
  { accesses = a.accesses @ b.accesses; allocs = a.allocs @ b.allocs }

(* --- expression evaluation --- *)

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Evaluate [e]; accumulate read locations into [reads].  Procedure names
   not shadowed by a binding evaluate to function values. *)
let rec eval ctx env store reads e : Value.t =
  match e with
  | Ast.Eint n -> Value.Vint n
  | Ast.Ebool b -> Value.Vbool b
  | Ast.Evar x -> (
      match Env.find x env with
      | Some loc -> (
          reads := LS.add loc !reads;
          match Store.find loc store with
          | Some v -> v
          | None -> error "variable %s refers to a freed location" x)
      | None ->
          if Ast.has_proc ctx.prog x then Value.Vfun x
          else error "undeclared variable %s" x)
  | Ast.Eaddr x -> (
      match Env.find x env with
      | Some loc -> Value.Vloc loc
      | None -> error "address of undeclared variable %s" x)
  | Ast.Ederef e1 -> (
      match eval ctx env store reads e1 with
      | Value.Vloc loc -> (
          reads := LS.add loc !reads;
          match Store.find loc store with
          | Some v -> v
          | None -> error "dereference of a dangling pointer")
      | v -> error "dereference of a %s value" (Value.type_name v))
  | Ast.Eunop (op, e1) -> (
      let v = eval ctx env store reads e1 in
      match (op, v) with
      | Ast.Not, Value.Vbool b -> Value.Vbool (not b)
      | Ast.Neg, Value.Vint n -> Value.Vint (-n)
      | Ast.Not, v -> error "! applied to a %s value" (Value.type_name v)
      | Ast.Neg, v -> error "unary - applied to a %s value" (Value.type_name v))
  | Ast.Ebinop (op, e1, e2) ->
      let v1 = eval ctx env store reads e1 in
      let v2 = eval ctx env store reads e2 in
      eval_binop op v1 v2

and eval_binop op v1 v2 =
  let open Value in
  let int_op f =
    match (v1, v2) with
    | Vint a, Vint b -> Vint (f a b)
    | _ -> error "arithmetic on %s and %s" (type_name v1) (type_name v2)
  in
  let cmp_op f =
    match (v1, v2) with
    | Vint a, Vint b -> Vbool (f a b)
    | _ -> error "comparison of %s and %s" (type_name v1) (type_name v2)
  in
  let bool_op f =
    match (v1, v2) with
    | Vbool a, Vbool b -> Vbool (f a b)
    | _ ->
        error "boolean operation on %s and %s" (type_name v1) (type_name v2)
  in
  match op with
  | Ast.Add -> (
      match (v1, v2) with
      | Vloc l, Vint n | Vint n, Vloc l -> Vloc { l with l_off = l.l_off + n }
      | _ -> int_op ( + ))
  | Ast.Sub -> (
      match (v1, v2) with
      | Vloc l, Vint n -> Vloc { l with l_off = l.l_off - n }
      | _ -> int_op ( - ))
  | Ast.Mul -> int_op ( * )
  | Ast.Div -> (
      match (v1, v2) with
      | Vint _, Vint 0 -> error "division by zero"
      | _ -> int_op ( / ))
  | Ast.Eq -> Vbool (equal_value v1 v2)
  | Ast.Ne -> Vbool (not (equal_value v1 v2))
  | Ast.Lt -> cmp_op ( < )
  | Ast.Le -> cmp_op ( <= )
  | Ast.Gt -> cmp_op ( > )
  | Ast.Ge -> cmp_op ( >= )
  | Ast.And -> bool_op ( && )
  | Ast.Or -> bool_op ( || )

let eval_bool ctx env store reads e =
  match eval ctx env store reads e with
  | Value.Vbool b -> b
  | v -> error "condition evaluated to a %s value" (Value.type_name v)

(* Resolve an lvalue to the location it denotes.  Reads performed while
   evaluating a [Lderef] expression are accumulated. *)
let resolve_lvalue ctx env store reads = function
  | Ast.Lvar x -> (
      match Env.find x env with
      | Some loc -> loc
      | None -> error "assignment to undeclared variable %s" x)
  | Ast.Lderef e -> (
      match eval ctx env store reads e with
      | Value.Vloc loc -> loc
      | v -> error "assignment through a %s value" (Value.type_name v))

(* --- normalization: unfold administrative items --- *)

let rec normalize_proc (p : Proc.t) : Proc.t option =
  match p.Proc.stack with
  | [] ->
      (* terminated only once its store buffer has drained; until then
         the process stays alive so its flush transitions remain
         visible (and a parent's join keeps waiting) *)
      if p.Proc.buf = [] then None else Some p
  | Proc.Istmt { kind = Ast.Sblock ss; _ } :: rest ->
      let items = List.map (fun s -> Proc.Istmt s) ss in
      normalize_proc { p with stack = items @ (Proc.Ipop p.env :: rest) }
  | Proc.Ipop env :: rest -> normalize_proc { p with env; stack = rest }
  | (Proc.Istmt _ | Proc.Iret _ | Proc.Ijoin _) :: _ -> Some p

let normalize (c : Config.t) : Config.t =
  Config.PidMap.fold
    (fun pid p acc ->
      match normalize_proc p with
      | Some p' -> Config.update_proc p' acc
      | None -> Config.remove_proc pid acc)
    c.Config.procs c

(* --- initial configuration --- *)

let init ctx : Config.t =
  let entry = Ast.entry_proc ctx.prog in
  let p =
    Proc.make ~pid:Value.root_pid ~env:Env.empty
      ~stack:[ Proc.Istmt entry.Ast.body ]
      ~pstr:Pstring.empty ()
  in
  normalize
    (Config.make
       ~procs:(Config.PidMap.singleton Value.root_pid p)
       ~store:Store.empty ~counters:Config.CounterMap.empty ~error:None)

(* --- enabledness --- *)

(* The store as process [p] observes it: its own buffered writes overlay
   the shared store, oldest first, so a later buffered write to the same
   location wins (read-own-write-early forwarding).  Physically the
   shared store itself when the buffer is empty — in particular always
   under SC. *)
let effective_store (p : Proc.t) store =
  List.fold_left (fun st (l, v) -> Store.set l v st) store p.Proc.buf

(* Synchronization actions fire only on an empty store buffer: they are
   the drain points of the relaxed semantics.  (Trivially true under SC,
   where buffers are always empty.) *)
let requires_empty_buffer (s : Ast.stmt) =
  match s.Ast.kind with
  | Ast.Sfence | Ast.Satomic _ | Ast.Sacquire _ | Ast.Srelease _ -> true
  | _ -> false

(* A process whose next action is [await]/[lock] with a false condition is
   disabled; a join with live children is disabled; a sync action with a
   non-empty store buffer is disabled (flushes must drain it first).
   Every other process with a non-empty stack is enabled.  Evaluation
   failures count as enabled: firing them yields the error
   configuration. *)
let enabled_proc ctx (c : Config.t) (p : Proc.t) : bool =
  match p.Proc.stack with
  | [] -> false (* fully terminated, or only flushes remain *)
  | Proc.Ipop _ :: _ -> assert false (* configurations are normalized *)
  | Proc.Iret _ :: _ -> true
  | Proc.Ijoin { children; _ } :: _ ->
      List.for_all (fun pid -> Config.find_proc pid c = None) children
  | Proc.Istmt s :: _ -> (
      if requires_empty_buffer s && p.Proc.buf <> [] then false
      else
        match s.Ast.kind with
        | Ast.Sawait e -> (
            let reads = ref LS.empty in
            try eval_bool ctx p.env (effective_store p c.Config.store) reads e
            with Runtime_error _ -> true)
        | Ast.Sacquire x -> (
            match Env.find x p.env with
            | None -> true (* firing reports the error *)
            | Some loc -> (
                match Store.find loc c.Config.store with
                | Some (Value.Vint 0) -> true
                | Some _ -> false
                | None -> true))
        | _ -> true)

let enabled_processes ctx c =
  if Config.is_error c then []
  else List.filter (enabled_proc ctx c) (Config.processes c)

(* --- footprints (dry runs) --- *)

type footprint = { freads : LS.t; fwrites : LS.t }

let empty_footprint = { freads = LS.empty; fwrites = LS.empty }

let footprint_conflict f1 f2 =
  (not (LS.is_empty (LS.inter f1.fwrites (LS.union f2.freads f2.fwrites))))
  || not (LS.is_empty (LS.inter f2.fwrites f1.freads))

(* Dry-run of evaluating an expression: just the read set; errors give the
   reads collected so far. *)
let expr_reads ctx env store e =
  let reads = ref LS.empty in
  (try ignore (eval ctx env store reads e) with Runtime_error _ -> ());
  !reads

let lvalue_footprint ctx env store lv =
  let reads = ref LS.empty in
  let write =
    try Some (resolve_lvalue ctx env store reads lv) with Runtime_error _ -> None
  in
  (!reads, write)

(* Footprint of one simple statement, given current env/store (used both
   for single statements and within atomic blocks). *)
let simple_stmt_footprint ctx env store (s : Ast.stmt) : footprint =
  match s.Ast.kind with
  | Ast.Sskip -> empty_footprint
  | Ast.Sdecl (_, e) ->
      { freads = expr_reads ctx env store e; fwrites = LS.empty }
      (* the declared cell is fresh: invisible to others *)
  | Ast.Sassign (lv, e) ->
      let r1, w = lvalue_footprint ctx env store lv in
      let r2 = expr_reads ctx env store e in
      {
        freads = LS.union r1 r2;
        fwrites = (match w with Some l -> LS.singleton l | None -> LS.empty);
      }
  | Ast.Sassert e -> { freads = expr_reads ctx env store e; fwrites = LS.empty }
  | _ -> invalid_arg "simple_stmt_footprint"

(* Footprint of the next action of a process.  Dry runs evaluate against
   the process's effective store, so lvalue resolution sees its own
   buffered writes (identical to the shared store under SC). *)
let action_footprint ctx (c : Config.t) (p : Proc.t) : footprint =
  let store = effective_store p c.Config.store in
  let env = p.Proc.env in
  match p.Proc.stack with
  | [] -> empty_footprint
  | Proc.Ipop _ :: _ -> empty_footprint
  | Proc.Ijoin _ :: _ -> empty_footprint
  | Proc.Iret { dest; saved_env; _ } :: _ ->
      (* fall-through return writes the destination with the default *)
      (match dest with
      | None -> empty_footprint
      | Some lv ->
          let r, w = lvalue_footprint ctx saved_env store lv in
          {
            freads = r;
            fwrites = (match w with Some l -> LS.singleton l | None -> LS.empty);
          })
  | Proc.Istmt s :: rest -> (
      match s.Ast.kind with
      | Ast.Sfence -> empty_footprint
      | Ast.Sskip | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sassert _ ->
          simple_stmt_footprint ctx env store s
      | Ast.Smalloc (lv, e) ->
          let r1, w = lvalue_footprint ctx env store lv in
          let r2 = expr_reads ctx env store e in
          {
            freads = LS.union r1 r2;
            fwrites = (match w with Some l -> LS.singleton l | None -> LS.empty);
          }
      | Ast.Sfree e -> (
          (* freeing invalidates cells: treat as writes to the block *)
          let reads = ref LS.empty in
          match eval ctx env store reads e with
          | Value.Vloc l -> (
              match Store.block_cells l store with
              | Some cells -> { freads = !reads; fwrites = cells }
              | None -> { freads = !reads; fwrites = LS.empty })
          | _ | (exception Runtime_error _) ->
              { freads = !reads; fwrites = LS.empty })
      | Ast.Scall (_, callee, args) ->
          let reads =
            List.fold_left
              (fun acc e -> LS.union acc (expr_reads ctx env store e))
              (expr_reads ctx env store callee)
              args
          in
          (* parameters are fresh cells; destination is written at return *)
          { freads = reads; fwrites = LS.empty }
      | Ast.Sreturn e_opt -> (
          let r0 =
            match e_opt with
            | Some e -> expr_reads ctx env store e
            | None -> LS.empty
          in
          (* find the pending return to locate the destination *)
          let rec find = function
            | Proc.Iret { dest; saved_env; _ } :: _ -> Some (dest, saved_env)
            | Proc.Ijoin _ :: _ -> None
            | _ :: tl -> find tl
            | [] -> None
          in
          match find rest with
          | Some (Some lv, saved_env) ->
              let r1, w = lvalue_footprint ctx saved_env store lv in
              {
                freads = LS.union r0 r1;
                fwrites =
                  (match w with Some l -> LS.singleton l | None -> LS.empty);
              }
          | _ -> { freads = r0; fwrites = LS.empty })
      | Ast.Sif (e, _, _) | Ast.Swhile (e, _) | Ast.Sawait e ->
          { freads = expr_reads ctx env store e; fwrites = LS.empty }
      | Ast.Sacquire x -> (
          match Env.find x env with
          | Some l -> { freads = LS.singleton l; fwrites = LS.singleton l }
          | None -> empty_footprint)
      | Ast.Srelease x -> (
          match Env.find x env with
          | Some l -> { freads = LS.empty; fwrites = LS.singleton l }
          | None -> empty_footprint)
      | Ast.Scobegin _ -> empty_footprint
      | Ast.Satomic ss ->
          (* dry-run the block on scratch state *)
          let rec go env store acc = function
            | [] -> acc
            | (s' : Ast.stmt) :: tl -> (
                let fp = simple_stmt_footprint ctx env store s' in
                let acc =
                  {
                    freads = LS.union acc.freads fp.freads;
                    fwrites = LS.union acc.fwrites fp.fwrites;
                  }
                in
                (* commit the effect so later footprints see it *)
                match s'.Ast.kind with
                | Ast.Sdecl (x, e) -> (
                    let reads = ref LS.empty in
                    match eval ctx env store reads e with
                    | v ->
                        let loc =
                          {
                            Value.l_pid = p.Proc.pid;
                            l_site = s'.Ast.label;
                            l_seq = max_int (* scratch: never compared *);
                            l_off = 0;
                          }
                        in
                        let store =
                          Store.alloc ~birth:p.Proc.pstr loc v store
                        in
                        go (Env.bind x loc env) store acc tl
                    | exception Runtime_error _ -> acc)
                | Ast.Sassign (lv, e) -> (
                    let reads = ref LS.empty in
                    match
                      let v = eval ctx env store reads e in
                      let l = resolve_lvalue ctx env store reads lv in
                      (v, l)
                    with
                    | v, l -> go env (Store.set l v store) acc tl
                    | exception Runtime_error _ -> acc)
                | _ -> go env store acc tl)
          in
          go env store empty_footprint ss
      | Ast.Sblock _ -> assert false (* normalized away *))

(* --- firing transitions --- *)

let read_events ~label ~pstr ~pid reads =
  LS.fold
    (fun l acc ->
      { a_label = label; a_loc = l; a_kind = `Read; a_pstr = pstr; a_pid = pid }
      :: acc)
    reads []

let write_event ~label ~pstr ~pid l =
  { a_label = label; a_loc = l; a_kind = `Write; a_pstr = pstr; a_pid = pid }

(* Execute one simple statement (skip/decl/assign/assert) for process [p],
   threading env, configuration (store + counters) and events.  Reads go
   through the process's effective store (forwarding from its buffer);
   writes and allocations commit to the shared store — callers guarantee
   the buffer is empty whenever a statement writing an existing cell gets
   here (SC always; non-SC only inside [atomic], which drains first).
   Raises [Runtime_error]. *)
let exec_simple ctx (p : Proc.t) (env, c, evs) (s : Ast.stmt) =
  let label = s.Ast.label in
  let pstr = p.Proc.pstr and pid = p.Proc.pid in
  let store = c.Config.store in
  let rstore = effective_store p store in
  match s.Ast.kind with
  | Ast.Sskip | Ast.Sfence -> (env, c, evs)
  | Ast.Sdecl (x, e) ->
      let reads = ref LS.empty in
      let v = eval ctx env rstore reads e in
      let seq, c = Config.next_seq ~pid ~site:label c in
      let loc = { Value.l_pid = pid; l_site = label; l_seq = seq; l_off = 0 } in
      let exposed = Ast.StringSet.mem x ctx.addr_taken in
      let store = Store.alloc ~exposed ~birth:pstr loc v store in
      let evs =
        {
          accesses =
            (write_event ~label ~pstr ~pid loc :: read_events ~label ~pstr ~pid !reads)
            @ evs.accesses;
          allocs =
            { al_loc = loc; al_site = label; al_birth = pstr; al_heap = false }
            :: evs.allocs;
        }
      in
      (Env.bind x loc env, Config.with_store store c, evs)
  | Ast.Sassign (lv, e) ->
      let reads = ref LS.empty in
      let v = eval ctx env rstore reads e in
      let l = resolve_lvalue ctx env rstore reads lv in
      if not (Store.mem l store) then error "write to a freed or invalid location";
      let evs =
        {
          evs with
          accesses =
            (write_event ~label ~pstr ~pid l :: read_events ~label ~pstr ~pid !reads)
            @ evs.accesses;
        }
      in
      (env, Config.with_store (Store.set l v store) c, evs)
  | Ast.Sassert e ->
      let reads = ref LS.empty in
      let b = eval_bool ctx env rstore reads e in
      if not b then error "assertion failed at statement %d" label;
      let evs =
        { evs with accesses = read_events ~label ~pstr ~pid !reads @ evs.accesses }
      in
      (env, c, evs)
  | _ -> invalid_arg "exec_simple"

(* Fire the next action of process [p] in configuration [c].  The caller
   must have checked [enabled_proc].  Returns the successor configuration
   (normalized) and the instrumentation events of the action. *)
let fire ctx (c : Config.t) (p : Proc.t) : Config.t * events =
  let pid = p.Proc.pid and pstr = p.Proc.pstr in
  let store = c.Config.store in
  let rstore = effective_store p store in
  try
    match p.Proc.stack with
    | [] -> invalid_arg "Step.fire: terminated process"
    | Proc.Ipop _ :: _ -> invalid_arg "Step.fire: unnormalized configuration"
    | Proc.Ijoin _ :: rest ->
        (normalize (Config.update_proc { p with stack = rest } c), no_events)
    | Proc.Iret { dest; saved_env; site } :: rest ->
        (* fall off the end of a procedure: return the default value.
           The destination write belongs to the caller, at the call
           statement. *)
        let caller_pstr = Pstring.exit_frame pstr in
        let reads = ref LS.empty in
        let c, evs =
          match dest with
          | None -> (c, no_events)
          | Some lv ->
              let l = resolve_lvalue ctx saved_env rstore reads lv in
              if not (Store.mem l store) then
                error "write to a freed or invalid location";
              ( Config.with_store (Store.set l (Value.Vint 0) store) c,
                {
                  accesses =
                    write_event ~label:site ~pstr:caller_pstr ~pid l
                    :: read_events ~label:site ~pstr:caller_pstr ~pid !reads;
                  allocs = [];
                } )
        in
        let p' =
          {
            p with
            env = saved_env;
            stack = rest;
            pstr = Pstring.exit_frame pstr;
          }
        in
        (normalize (Config.update_proc p' c), evs)
    | Proc.Istmt s :: rest -> (
        let label = s.Ast.label in
        match s.Ast.kind with
        | Ast.Sassign (lv, e) when ctx.model <> Sc ->
            (* relaxed: the write enters this process's store buffer; a
               later flush action publishes it.  The access events are
               charged here, at the program-order point of the store. *)
            let reads = ref LS.empty in
            let v = eval ctx p.env rstore reads e in
            let l = resolve_lvalue ctx p.env rstore reads lv in
            if not (Store.mem l rstore) then
              error "write to a freed or invalid location";
            let evs =
              {
                accesses =
                  write_event ~label ~pstr ~pid l
                  :: read_events ~label ~pstr ~pid !reads;
                allocs = [];
              }
            in
            ( normalize
                (Config.update_proc
                   { p with stack = rest; buf = p.Proc.buf @ [ (l, v) ] }
                   c),
              evs )
        | Ast.Sskip | Ast.Sfence | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sassert _
          ->
            let env, c, evs = exec_simple ctx p (p.env, c, no_events) s in
            (normalize (Config.update_proc { p with env; stack = rest } c), evs)
        | Ast.Satomic ss ->
            let env, c, evs =
              List.fold_left (exec_simple ctx p) (p.env, c, no_events) ss
            in
            (normalize (Config.update_proc { p with env; stack = rest } c), evs)
        | Ast.Smalloc (lv, e) ->
            let reads = ref LS.empty in
            let size =
              match eval ctx p.env rstore reads e with
              | Value.Vint n when n >= 0 -> n
              | Value.Vint n -> error "malloc with negative size %d" n
              | v -> error "malloc size is a %s value" (Value.type_name v)
            in
            let seq, c = Config.next_seq ~pid ~site:label c in
            let base =
              { Value.l_pid = pid; l_site = label; l_seq = seq; l_off = 0 }
            in
            let store = c.Config.store in
            let store, allocs =
              List.fold_left
                (fun (store, allocs) i ->
                  let cell = { base with Value.l_off = i } in
                  ( Store.alloc ~heap:true ~birth:pstr cell (Value.Vint 0) store,
                    {
                      al_loc = cell;
                      al_site = label;
                      al_birth = pstr;
                      al_heap = true;
                    }
                    :: allocs ))
                (store, [])
                (List.init size (fun i -> i))
            in
            let store = Store.register_block base size store in
            let l = resolve_lvalue ctx p.env (effective_store p store) reads lv in
            if not (Store.mem l store) then
              error "write to a freed or invalid location";
            let store = Store.set l (Value.Vloc base) store in
            let evs =
              {
                accesses =
                  write_event ~label ~pstr ~pid l
                  :: read_events ~label ~pstr ~pid !reads;
                allocs;
              }
            in
            ( normalize
                (Config.update_proc { p with stack = rest }
                   (Config.with_store store c)),
              evs )
        | Ast.Sfree e -> (
            let reads = ref LS.empty in
            match eval ctx p.env rstore reads e with
            | Value.Vloc l when l.Value.l_off = 0 -> (
                match Store.block_cells l store with
                | None -> error "free of a non-malloc pointer"
                | Some cells ->
                    if
                      (not (LS.is_empty cells))
                      && not (Store.mem (LS.min_elt cells) store)
                    then error "double free";
                    let store = Store.free cells store in
                    let evs =
                      {
                        accesses =
                          LS.fold
                            (fun cell acc ->
                              write_event ~label ~pstr ~pid cell :: acc)
                            cells
                            (read_events ~label ~pstr ~pid !reads);
                        allocs = [];
                      }
                    in
                    ( normalize
                        (Config.update_proc { p with stack = rest }
                           (Config.with_store store c)),
                      evs ))
            | Value.Vloc _ -> error "free of an interior pointer"
            | v -> error "free of a %s value" (Value.type_name v))
        | Ast.Scall (dest, callee, args) ->
            let reads = ref LS.empty in
            let fname =
              match eval ctx p.env rstore reads callee with
              | Value.Vfun f -> f
              | v -> error "call of a %s value" (Value.type_name v)
            in
            let callee_proc =
              match Ast.find_proc ctx.prog fname with
              | Some pr -> pr
              | None -> error "call of unknown procedure %s" fname
            in
            if List.length args <> List.length callee_proc.Ast.params then
              error "procedure %s expects %d argument(s), got %d" fname
                (List.length callee_proc.Ast.params)
                (List.length args);
            let arg_vals = List.map (eval ctx p.env rstore reads) args in
            let seq, c = Config.next_seq ~pid ~site:label c in
            let new_pstr =
              Pstring.enter_call ~proc:fname ~site:label ~inst:seq pstr
            in
            let store = c.Config.store in
            let store, env', allocs, writes =
              List.fold_left
                (fun (store, env', allocs, writes) (i, (x, v)) ->
                  let cell =
                    { Value.l_pid = pid; l_site = label; l_seq = seq; l_off = i }
                  in
                  let exposed = Ast.StringSet.mem x ctx.addr_taken in
                  ( Store.alloc ~exposed ~birth:new_pstr cell v store,
                    Env.bind x cell env',
                    {
                      al_loc = cell;
                      al_site = label;
                      al_birth = new_pstr;
                      al_heap = false;
                    }
                    :: allocs,
                    write_event ~label ~pstr:new_pstr ~pid cell :: writes ))
                (store, Env.empty, [], [])
                (List.mapi (fun i xv -> (i, xv))
                   (List.combine callee_proc.Ast.params arg_vals))
            in
            let p' =
              {
                p with
                env = env';
                pstr = new_pstr;
                stack =
                  Proc.Istmt callee_proc.Ast.body
                  :: Proc.Iret { dest; saved_env = p.env; site = label }
                  :: rest;
              }
            in
            let evs =
              {
                accesses = writes @ read_events ~label ~pstr ~pid !reads;
                allocs;
              }
            in
            ( normalize (Config.update_proc p' (Config.with_store store c)),
              evs )
        | Ast.Sreturn e_opt ->
            let reads = ref LS.empty in
            let v =
              match e_opt with
              | Some e -> eval ctx p.env rstore reads e
              | None -> Value.Vint 0
            in
            let rec unwind = function
              | Proc.Iret { dest; saved_env; site } :: tl ->
                  (dest, saved_env, site, tl)
              | Proc.Ijoin _ :: _ ->
                  error "return crosses a cobegin boundary"
              | Proc.Ipop _ :: tl | Proc.Istmt _ :: tl -> unwind tl
              | [] -> error "return outside a procedure"
            in
            let dest, saved_env, site, tail = unwind rest in
            (* the destination write belongs to the caller, at the call
               statement *)
            let caller_pstr = Pstring.exit_frame pstr in
            let c, wevs =
              match dest with
              | None -> (c, [])
              | Some lv ->
                  let dreads = ref LS.empty in
                  let l = resolve_lvalue ctx saved_env rstore dreads lv in
                  if not (Store.mem l store) then
                    error "write to a freed or invalid location";
                  ( Config.with_store (Store.set l v store) c,
                    write_event ~label:site ~pstr:caller_pstr ~pid l
                    :: read_events ~label:site ~pstr:caller_pstr ~pid !dreads )
            in
            let p' =
              {
                p with
                env = saved_env;
                stack = tail;
                pstr = Pstring.exit_frame pstr;
              }
            in
            let evs =
              { accesses = wevs @ read_events ~label ~pstr ~pid !reads; allocs = [] }
            in
            (normalize (Config.update_proc p' c), evs)
        | Ast.Sif (e, s1, s2) ->
            let reads = ref LS.empty in
            let b = eval_bool ctx p.env rstore reads e in
            let chosen = if b then s1 else s2 in
            let p' = { p with stack = Proc.Istmt chosen :: rest } in
            ( normalize (Config.update_proc p' c),
              { accesses = read_events ~label ~pstr ~pid !reads; allocs = [] } )
        | Ast.Swhile (e, body) ->
            let reads = ref LS.empty in
            let b = eval_bool ctx p.env rstore reads e in
            let stack =
              if b then Proc.Istmt body :: Proc.Istmt s :: rest else rest
            in
            ( normalize (Config.update_proc { p with stack } c),
              { accesses = read_events ~label ~pstr ~pid !reads; allocs = [] } )
        | Ast.Scobegin bs ->
            let seq, c = Config.next_seq ~pid ~site:label c in
            let children =
              List.mapi
                (fun i b ->
                  Proc.make
                    ~pid:(Value.child_pid pid ~cob:label ~idx:i)
                    ~env:p.env
                    ~stack:[ Proc.Istmt b ]
                    ~pstr:(Pstring.enter_branch ~cob:label ~idx:i ~inst:seq pstr)
                    ())
                bs
            in
            let parent =
              {
                p with
                stack =
                  Proc.Ijoin
                    { cob = label; children = List.map (fun ch -> ch.Proc.pid) children }
                  :: rest;
              }
            in
            let c = List.fold_left (fun c ch -> Config.add_proc ch c) c children in
            (normalize (Config.update_proc parent c), no_events)
        | Ast.Sawait e ->
            let reads = ref LS.empty in
            let b = eval_bool ctx p.env rstore reads e in
            if not b then invalid_arg "Step.fire: await not enabled";
            ( normalize (Config.update_proc { p with stack = rest } c),
              { accesses = read_events ~label ~pstr ~pid !reads; allocs = [] } )
        | Ast.Sacquire x -> (
            match Env.find x p.env with
            | None -> error "lock of undeclared variable %s" x
            | Some l -> (
                match Store.find l store with
                | Some (Value.Vint 0) ->
                    let store = Store.set l (Value.Vint 1) store in
                    ( normalize
                        (Config.update_proc { p with stack = rest }
                           (Config.with_store store c)),
                      {
                        accesses =
                          [
                            write_event ~label ~pstr ~pid l;
                            {
                              a_label = label;
                              a_loc = l;
                              a_kind = `Read;
                              a_pstr = pstr;
                              a_pid = pid;
                            };
                          ];
                        allocs = [];
                      } )
                | Some _ -> invalid_arg "Step.fire: lock not enabled"
                | None -> error "lock of a freed location"))
        | Ast.Srelease x -> (
            match Env.find x p.env with
            | None -> error "unlock of undeclared variable %s" x
            | Some l ->
                if not (Store.mem l store) then error "unlock of a freed location";
                let store = Store.set l (Value.Vint 0) store in
                ( normalize
                    (Config.update_proc { p with stack = rest }
                       (Config.with_store store c)),
                  {
                    accesses = [ write_event ~label ~pstr ~pid l ];
                    allocs = [];
                  } ))
        | Ast.Sblock _ -> assert false (* normalized away *))
  with Runtime_error msg -> (Config.with_error msg c, no_events)

(* --- flush transitions and the action interface --- *)

(* Publish process [p]'s oldest buffered write to location [l]: remove it
   from the buffer and commit it to the shared store.  For TSO callers
   pass the buffer head's location (FIFO); for PSO any pending location
   is eligible, and taking the oldest entry *per location* preserves
   program order per location while letting distinct locations reorder. *)
let fire_flush _ctx (c : Config.t) (p : Proc.t) (l : Value.loc) :
    Config.t * events =
  let rec remove_oldest acc = function
    | [] -> invalid_arg "Step.fire_flush: no buffered write to that location"
    | (l', v) :: tl when Value.compare_loc l' l = 0 ->
        (List.rev_append acc tl, v)
    | entry :: tl -> remove_oldest (entry :: acc) tl
  in
  let buf, v = remove_oldest [] p.Proc.buf in
  let p' = { p with Proc.buf = buf } in
  if not (Store.mem l c.Config.store) then
    (* the cell was freed while the write sat in the buffer *)
    (Config.with_error "flush to a freed location" c, no_events)
  else
    ( normalize
        (Config.update_proc p'
           (Config.with_store (Store.set l v c.Config.store) c)),
      no_events )

(* One scheduling alternative: run a process's next statement-level
   action, or flush one of its buffered writes.  Under SC the action
   list is exactly [Arun] of each enabled process, in the same order —
   SC exploration is byte-for-byte the pre-buffer semantics. *)
type action = Arun of Proc.t | Aflush of Proc.t * Value.loc

let action_pid = function Arun p | Aflush (p, _) -> p.Proc.pid

(* The flush alternatives a process's buffer currently offers. *)
let flush_actions model (p : Proc.t) : action list =
  match (model, p.Proc.buf) with
  | _, [] | Sc, _ -> []
  | Tso, (l, _) :: _ -> [ Aflush (p, l) ]
  | Pso, buf ->
      (* one alternative per distinct pending location, oldest-first
         order of first occurrence (deterministic across runs) *)
      let distinct =
        List.fold_left
          (fun acc (l, _) ->
            if List.exists (fun l' -> Value.compare_loc l' l = 0) acc then acc
            else l :: acc)
          [] buf
      in
      List.rev_map (fun l -> Aflush (p, l)) distinct

let enabled_actions ctx (c : Config.t) : action list =
  if Config.is_error c then []
  else
    List.concat_map
      (fun p ->
        let runs = if enabled_proc ctx c p then [ Arun p ] else [] in
        runs @ flush_actions ctx.model p)
      (Config.processes c)

let fire_action ctx (c : Config.t) = function
  | Arun p -> fire ctx c p
  | Aflush (p, l) -> fire_flush ctx c p l

(* Footprint of an action: a flush writes its location (the read of the
   buffered value is process-local). *)
let action_footprint_of ctx (c : Config.t) = function
  | Arun p -> action_footprint ctx c p
  | Aflush (_, l) -> { freads = LS.empty; fwrites = LS.singleton l }

(* All successors of a configuration with the firing process and events:
   the full expansion of the paper's ordinary state-space generation
   (flush actions included under TSO/PSO). *)
let successors ctx (c : Config.t) : (Value.pid * Config.t * events) list =
  List.map
    (fun a ->
      let c', evs = fire_action ctx c a in
      (action_pid a, c', evs))
    (enabled_actions ctx c)

(* Deadlock: not terminated, no error, but nothing can move. *)
let is_deadlock ctx (c : Config.t) =
  (not (Config.is_error c))
  && (not (Config.all_terminated c))
  && enabled_actions ctx c = []
