(* Configurations: the global states of the interleaving semantics
   (paper section 2): the set of live processes plus the shared store,
   the allocation counters, and an optional error marker.

   Equality and hashing go through a canonical representation so that the
   exploration engine folds states reached by different interleavings.
   Instrumentation metadata (birthdates, heap-ness) is excluded: it is
   functionally determined by the rest. *)

module PidMap = Map.Make (struct
  type t = Value.pid

  let compare = Value.compare_pid
end)

(* Defined in Intern so the interner can memoize whole counter maps. *)
module CounterMap = Intern.CounterMap

type t = {
  procs : Proc.t PidMap.t;
  store : Store.t;
  counters : int CounterMap.t; (* next sequence number per (pid, site) *)
  error : string option;
}

let make ~procs ~store ~counters ~error = { procs; store; counters; error }

let processes c = List.map snd (PidMap.bindings c.procs)
let find_proc pid c = PidMap.find_opt pid c.procs
let num_procs c = PidMap.cardinal c.procs
let is_error c = Option.is_some c.error

(* Terminal: error, or every process has terminated (the root included).
   A configuration where some process is blocked forever and none can move
   is a *deadlock*, also terminal but distinguished by the explorer. *)
let all_terminated c = PidMap.is_empty c.procs

(* Bump the allocation counter for (pid, site); returns seq and the new
   configuration counters. *)
let next_seq ~pid ~site c =
  let key = (pid, site) in
  let seq = match CounterMap.find_opt key c.counters with Some n -> n | None -> 0 in
  (seq, { c with counters = CounterMap.add key (seq + 1) c.counters })

let update_proc p c = { c with procs = PidMap.add p.Proc.pid p c.procs }
let remove_proc pid c = { c with procs = PidMap.remove pid c.procs }
let add_proc p c = { c with procs = PidMap.add p.Proc.pid p c.procs }
let with_store store c = { c with store }
let with_error msg c = { c with error = Some msg }

(* Canonical representation for hashing and equality. *)
type repr = {
  r_procs : Proc.repr list;
  r_store : (Value.loc * Value.t) list;
  r_counters : ((Value.pid * int) * int) list;
  r_error : string option;
}

let repr c =
  {
    r_procs = List.map (fun (_, p) -> Proc.repr p) (PidMap.bindings c.procs);
    r_store = Store.repr c.store;
    r_counters = CounterMap.bindings c.counters;
    r_error = c.error;
  }

(* Hash-consed digest: every component interned to a small id with a
   full-width precomputed hash (see intern.mli).  Digest equality is
   equivalent to repr equality, at the cost of comparing a handful of
   ints instead of deep lists. *)
type digest = {
  d_procs : int array; (* interned Proc reprs, in pid order *)
  d_store : int;
  d_counters : int;
  d_error : int;
  d_hash : int; (* precomputed full-width hash of the tuple *)
}

(* The one hash formula for digests — [digest] and [digest_of_ids]
   must agree, or checkpointed visited sets stop matching live ones. *)
let digest_of_ids ~d_procs ~d_store ~d_counters ~d_error =
  let d_hash =
    Cobegin_hash.combine
      (Cobegin_hash.hash_int_array d_procs)
      (Cobegin_hash.combine d_store
         (Cobegin_hash.combine d_counters d_error))
  in
  { d_procs; d_store; d_counters; d_error; d_hash }

let digest c =
  let st = Intern.global () in
  let d_procs =
    Array.of_list
      (List.rev
         (PidMap.fold
            (fun _ p acc -> Intern.proc_id st p :: acc)
            c.procs []))
  in
  let d_store = Intern.store_id st c.store in
  let d_counters = Intern.counters_id st c.counters in
  let d_error = Intern.error_id st c.error in
  digest_of_ids ~d_procs ~d_store ~d_counters ~d_error

let digest_equal a b =
  a.d_hash = b.d_hash && a.d_store = b.d_store
  && a.d_counters = b.d_counters && a.d_error = b.d_error
  &&
  let n = Array.length a.d_procs in
  n = Array.length b.d_procs
  &&
  let rec eq i = i >= n || (a.d_procs.(i) = b.d_procs.(i) && eq (i + 1)) in
  eq 0

let digest_hash d = d.d_hash

module Digest_tbl = Hashtbl.Make (struct
  type t = digest

  let equal = digest_equal
  let hash = digest_hash
end)

let equal a b = digest_equal (digest a) (digest b)
let hash c = (digest c).d_hash

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@ store: %a%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Proc.pp)
    (processes c) Store.pp c.store
    (fun ppf -> function
      | None -> ()
      | Some e -> Format.fprintf ppf "@ ERROR: %s" e)
    c.error
