(** Process states: fork path, current environment, procedure string, a
    continuation stack of work items and — under relaxed memory models —
    a FIFO store buffer of issued-but-unflushed writes. *)

open Cobegin_lang

(** Continuation items.  [Ipop] restores the environment at block exit;
    [Iret] marks a pending procedure return (destination + caller
    environment); [Ijoin] waits for the children of a cobegin. *)
type item =
  | Istmt of Ast.stmt
  | Ipop of Env.t
  | Iret of { dest : Ast.lvalue option; saved_env : Env.t; site : int }
  | Ijoin of { cob : int; children : Value.pid list }

type t = {
  pid : Value.pid;
  env : Env.t;
  stack : item list;
  pstr : Pstring.t;
  buf : (Value.loc * Value.t) list;
      (** store buffer, oldest write first; always [[]] under SC *)
}

val make :
  ?buf:(Value.loc * Value.t) list ->
  pid:Value.pid ->
  env:Env.t ->
  stack:item list ->
  pstr:Pstring.t ->
  unit ->
  t

val item_equal : item -> item -> bool
val equal : t -> t -> bool

(** Canonical, hashable digest: statements identified by label,
    environments by sorted bindings, store buffers verbatim (order is
    semantically significant). *)
type item_repr =
  | Rstmt of int
  | Rpop of (string * Value.loc) list
  | Rret of string * (string * Value.loc) list
  | Rjoin of int * Value.pid list

type repr = {
  r_pid : Value.pid;
  r_env : (string * Value.loc) list;
  r_stack : item_repr list;
  r_pstr : string;
  r_buf : (Value.loc * Value.t) list;
}

val item_repr : item -> item_repr
val repr : t -> repr

val next_stmt : t -> Ast.stmt option
(** The statement the process executes next, when its top item is one. *)

val is_terminated : t -> bool
(** The process has run to completion: no continuation left {e and} no
    buffered write still awaiting a flush. *)

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit
