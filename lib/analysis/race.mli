(** Access-anomaly (data-race) detection by co-enabledness: two enabled
    processes whose next-action footprints conflict at a reachable
    configuration are simultaneously poised to touch the same location —
    the anomaly the compile-time debugging literature reports (paper
    sections 1 and 8, [MH89]).  Synchronization operations (lock, unlock,
    await) contend by design and are excluded.

    Exact up to the engine's atomicity: lock-protected accesses never
    become co-enabled; await-ordered accesses do not race. *)

open Cobegin_semantics

type race = {
  stmt1 : int;  (** statement labels, [stmt1 <= stmt2] *)
  stmt2 : int;
  loc : Value.loc;
  write_write : bool;  (** both sides write *)
}

val compare_race : race -> race -> int

val make :
  stmt1:int -> stmt2:int -> loc:Value.loc -> write_write:bool -> race
(** The only constructor: normalizes the pair so [stmt1 <= stmt2],
    collapsing mirrored discoveries. *)

module RaceSet : Set.S with type elt = race

type result = {
  races : RaceSet.t;
  status : Budget.status;
      (** [Truncated _] when the scan covered only a reachable prefix *)
}

val find :
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  Step.ctx ->
  result
(** Scan every reachable configuration for co-enabled conflicting
    pairs.  At budget exhaustion the scan finishes the configurations
    already discovered and reports the races of that prefix.  [probe]
    is ticked once per worklist pop. *)

val pp_race : Format.formatter -> race -> unit
val pp : Format.formatter -> RaceSet.t -> unit
