(* Access-anomaly (data-race) detection via co-enabledness: during an
   exploration of the configuration graph, two enabled processes whose
   next-action footprints conflict at the same reachable configuration
   are simultaneously poised to touch the same location — the anomaly
   compile-time debugging tools report (paper sections 1 and 8, [MH89]).

   This is exact up to the engine's atomicity (one statement per action):
   lock-protected accesses never become co-enabled, busy-wait-ordered
   accesses do not race once the await settles. *)

open Cobegin_lang
open Cobegin_semantics
open Cobegin_explore
module Metrics = Cobegin_obs.Metrics
module Probe = Cobegin_obs.Probe
module Journal = Cobegin_obs.Journal

(* Telemetry: process pairs examined for conflicts vs pairs that produced
   at least one anomaly.  No-ops (one branch) while telemetry is off. *)
let m_pairs_scanned = Metrics.counter "race.pairs_scanned"
let m_pairs_confirmed = Metrics.counter "race.pairs_confirmed"

type race = {
  stmt1 : int;
  stmt2 : int;
  loc : Value.loc;
  write_write : bool;
}

let compare_race a b =
  let c =
    compare (a.stmt1, a.stmt2, a.write_write) (b.stmt1, b.stmt2, b.write_write)
  in
  if c <> 0 then c else Value.compare_loc a.loc b.loc

(* The only constructor: pairs are normalized at birth so mirrored
   discoveries collapse in the set and reports are canonical. *)
let make ~stmt1 ~stmt2 ~loc ~write_write =
  {
    stmt1 = min stmt1 stmt2;
    stmt2 = max stmt1 stmt2;
    loc;
    write_write;
  }

module RaceSet = Set.Make (struct
  type t = race

  let compare = compare_race
end)

(* The label the anomaly is reported at.  A process whose head is a
   pending return is about to write the call's destination: attribute
   that to the call site, where the write is visible in the source. *)
let stmt_label_of (p : Proc.t) =
  match p.Proc.stack with
  | Proc.Istmt s :: _ -> s.Ast.label
  | Proc.Iret { site; _ } :: _ -> site
  | _ -> -1

type result = { races : RaceSet.t; status : Budget.status }

(* Scan every reachable configuration for co-enabled conflicting pairs.
   The scan degrades gracefully: when the configuration budget fires it
   stops admitting new configurations but still scans everything already
   queued, so the reported races are those of a reachable prefix. *)
let find ?(max_configs = 200_000) ?budget ?probe ctx : result =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~max_configs ()
  in
  let races = ref RaceSet.empty in
  let module Tbl = Space.ConfigTbl in
  let visited = Tbl.create 1024 in
  let queue = Queue.create () in
  let trunc = ref None in
  let stop = ref None in
  let steps = ref 0 in
  let c0 = Step.init ctx in
  Tbl.add visited c0 ();
  Queue.add c0 queue;
  while !stop = None && not (Queue.is_empty queue) do
    (match Budget.check budget ~configs:(Tbl.length visited)
             ~transitions:!steps
     with
    | Some (Budget.Configs _ as r) ->
        (* keep draining the queue; just stop admitting new configs *)
        if !trunc = None then trunc := Some r
    | Some r -> stop := Some r
    | None -> ());
    if !stop = None then begin
    Fault.hit "races.pop";
    if Journal.enabled () && !steps mod Space.journal_every = 0 then
      Journal.emit ~level:Journal.Debug "races.progress"
        [
          ("pops", Journal.Int !steps);
          ("configurations", Journal.Int (Tbl.length visited));
          ("races", Journal.Int (RaceSet.cardinal !races));
        ];
    (match probe with
    | None -> ()
    | Some p ->
        Probe.tick p ~configurations:(Tbl.length visited)
          ~frontier:(Queue.length queue) ~transitions:!steps);
    incr steps;
    let c = Queue.pop queue in
    if not (Config.is_error c) then begin
      let enabled = Step.enabled_processes ctx c in
      (* synchronization operations (lock/unlock/await) contend by
         design; their accesses are not anomalies *)
      let is_sync (p : Proc.t) =
        match Proc.next_stmt p with
        | Some { Ast.kind = Ast.Sacquire _ | Ast.Srelease _ | Ast.Sawait _; _ }
          ->
            true
        | _ -> false
      in
      let with_fp =
        List.filter_map
          (fun p ->
            if is_sync p then None
            else Some (p, Step.action_footprint ctx c p))
          enabled
      in
      let rec pairs = function
        | [] -> ()
        | (p1, f1) :: rest ->
            List.iter
              (fun (p2, f2) ->
                let w1 = f1.Step.fwrites and w2 = f2.Step.fwrites in
                let r1 = f1.Step.freads and r2 = f2.Step.freads in
                let module LS = Value.LocSet in
                Metrics.incr m_pairs_scanned;
                let ww = LS.inter w1 w2 in
                let rw = LS.union (LS.inter w1 r2) (LS.inter w2 r1) in
                if not (LS.is_empty ww && LS.is_empty rw) then
                  Metrics.incr m_pairs_confirmed;
                let add ~ww locs =
                  LS.iter
                    (fun loc ->
                      races :=
                        RaceSet.add
                          (make ~stmt1:(stmt_label_of p1)
                             ~stmt2:(stmt_label_of p2) ~loc ~write_write:ww)
                          !races)
                    locs
                in
                add ~ww:true ww;
                add ~ww:false rw)
              rest;
            pairs rest
      in
      pairs with_fp;
      (* Traverse over the full action alternatives — under TSO/PSO
         flush interleavings reach configurations (stale reads) the
         process-only view would miss.  The pair scan above stays on
         statement-level accesses: a flush publishes a write already
         charged (and scanned) at its issue point. *)
      List.iter
        (fun a ->
          let c', _ = Step.fire_action ctx c a in
          let d' = Config.digest c' in
          if not (Tbl.mem_digest visited d') then
            match Budget.config_guard budget ~configs:(Tbl.length visited)
            with
            | Some r -> if !trunc = None then trunc := Some r
            | None ->
                Tbl.add_digest visited d' ();
                Queue.add c' queue)
        (Step.enabled_actions ctx c)
    end
    end
  done;
  {
    races = !races;
    status =
      Budget.status_of (match !stop with Some _ -> !stop | None -> !trunc);
  }

let pp_race ppf r =
  Format.fprintf ppf "s%d %s s%d on %a"
    r.stmt1
    (if r.write_write then "W/W" else "R/W")
    r.stmt2 Value.pp_loc r.loc

let pp ppf rs =
  if RaceSet.is_empty rs then Format.pp_print_string ppf "no access anomalies"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_race)
      (RaceSet.elements rs)
