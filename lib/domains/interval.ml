(* The interval domain over extended integers [-oo, +oo], with the standard
   widening (unstable bounds jump to infinity).  This is the default numeric
   domain of the abstract semantics. *)

type bound = NegInf | Fin of int | PosInf

let pp_bound ppf = function
  | NegInf -> Format.pp_print_string ppf "-oo"
  | PosInf -> Format.pp_print_string ppf "+oo"
  | Fin n -> Format.pp_print_int ppf n

let bound_leq a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | Fin x, Fin y -> x <= y
  | _, NegInf | PosInf, _ -> false

let bound_min a b = if bound_leq a b then a else b
let bound_max a b = if bound_leq a b then b else a

let bound_add a b =
  match (a, b) with
  | NegInf, PosInf | PosInf, NegInf ->
      invalid_arg "Interval.bound_add: -oo + +oo"
  | NegInf, _ | _, NegInf -> NegInf
  | PosInf, _ | _, PosInf -> PosInf
  | Fin x, Fin y -> Fin (x + y)

let bound_neg = function NegInf -> PosInf | PosInf -> NegInf | Fin n -> Fin (-n)

let bound_mul a b =
  let sign = function
    | NegInf -> -1
    | PosInf -> 1
    | Fin n -> compare n 0
  in
  match (a, b) with
  | Fin x, Fin y -> Fin (x * y)
  | _ -> (
      match sign a * sign b with
      | 0 -> Fin 0
      | s when s > 0 -> PosInf
      | _ -> NegInf)

(* An interval is either empty (bottom) or [lo, hi] with lo <= hi. *)
type t = Empty | Range of bound * bound

let bottom = Empty
let top = Range (NegInf, PosInf)
let is_bottom = function Empty -> true | Range _ -> false
let is_top = function Range (NegInf, PosInf) -> true | Range _ | Empty -> false
let of_int n = Range (Fin n, Fin n)
let of_bounds lo hi = if bound_leq lo hi then Range (lo, hi) else Empty
let range lo hi = of_bounds (Fin lo) (Fin hi)
let at_least lo = Range (Fin lo, PosInf)
let at_most hi = Range (NegInf, Fin hi)

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Range (l1, h1), Range (l2, h2) -> l1 = l2 && h1 = h2
  | (Empty | Range _), _ -> false

let leq a b =
  match (a, b) with
  | Empty, _ -> true
  | Range _, Empty -> false
  | Range (l1, h1), Range (l2, h2) -> bound_leq l2 l1 && bound_leq h1 h2

let join a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Range (l1, h1), Range (l2, h2) ->
      Range (bound_min l1 l2, bound_max h1 h2)

let meet a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) ->
      of_bounds (bound_max l1 l2) (bound_min h1 h2)

let widen old_ new_ =
  match (old_, new_) with
  | Empty, x | x, Empty -> x
  | Range (l1, h1), Range (l2, h2) ->
      let lo = if bound_leq l1 l2 then l1 else NegInf in
      let hi = if bound_leq h2 h1 then h1 else PosInf in
      Range (lo, hi)

(* Widening with thresholds: an unstable bound first jumps to the nearest
   threshold beyond it (harvested from program constants by the caller) and
   only escalates to infinity when no threshold remains.  Increasing chains
   still stabilize — each unstable step consumes at least one threshold. *)
let widen_thresholds ts old_ new_ =
  match (old_, new_) with
  | Empty, x | x, Empty -> x
  | Range (l1, h1), Range (l2, h2) ->
      let lo =
        if bound_leq l1 l2 then l1
        else
          List.fold_left
            (fun acc t -> if bound_leq (Fin t) l2 then bound_max acc (Fin t) else acc)
            NegInf ts
      in
      let hi =
        if bound_leq h2 h1 then h1
        else
          List.fold_left
            (fun acc t -> if bound_leq h2 (Fin t) then bound_min acc (Fin t) else acc)
            PosInf ts
      in
      Range (lo, hi)

(* Narrowing: refine a widened fixpoint downwards. *)
let narrow old_ new_ =
  match (old_, new_) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) ->
      let lo = if l1 = NegInf then l2 else l1 in
      let hi = if h1 = PosInf then h2 else h1 in
      of_bounds lo hi

let add a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) -> Range (bound_add l1 l2, bound_add h1 h2)

let neg = function
  | Empty -> Empty
  | Range (lo, hi) -> Range (bound_neg hi, bound_neg lo)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) ->
      let products =
        [ bound_mul l1 l2; bound_mul l1 h2; bound_mul h1 l2; bound_mul h1 h2 ]
      in
      Range
        ( List.fold_left bound_min PosInf products,
          List.fold_left bound_max NegInf products )

(* Integer division, over-approximated conservatively.  We only refine the
   common cases (strictly positive / strictly negative divisor); anything
   straddling zero yields top (division by zero halts the concrete program,
   so over-approximation is sound for reachable values). *)
let div a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, h2) ->
      let positive = bound_leq (Fin 1) l2
      and negative = bound_leq h2 (Fin (-1)) in
      if not (positive || negative) then top
      else
        let quot x y =
          match (x, y) with
          | Fin a, Fin b when b <> 0 -> Fin (a / b)
          | Fin _, Fin _ -> assert false (* divisor 0 excluded above *)
          | Fin 0, (NegInf | PosInf) -> Fin 0
          | Fin _, (NegInf | PosInf) -> Fin 0
          | NegInf, b -> if bound_leq (Fin 0) b then NegInf else PosInf
          | PosInf, b -> if bound_leq (Fin 0) b then PosInf else NegInf
        in
        let quotients = [ quot l1 l2; quot l1 h2; quot h1 l2; quot h1 h2 ] in
        Range
          ( List.fold_left bound_min PosInf quotients,
            List.fold_left bound_max NegInf quotients )

let contains v n =
  match v with
  | Empty -> false
  | Range (lo, hi) -> bound_leq lo (Fin n) && bound_leq (Fin n) hi

let singleton = function
  | Range (Fin a, Fin b) when a = b -> Some a
  | Range _ | Empty -> None

let cmp_eq a b =
  match (a, b) with
  | Empty, _ | _, Empty -> None
  | _ -> (
      match (singleton a, singleton b) with
      | Some x, Some y -> Some (x = y)
      | _ -> if is_bottom (meet a b) then Some false else None)

let cmp_lt a b =
  match (a, b) with
  | Empty, _ | _, Empty -> None
  | Range (l1, h1), Range (l2, h2) ->
      if bound_leq h1 l2 && h1 <> l2 then Some true
      else if
        (* h1 < l2 fails; decide "always >=": l1 >= h2 *)
        bound_leq h2 l1
      then Some false
      else if h1 = l2 then
        (* touching: a < b unless both equal that bound everywhere *)
        match (singleton a, singleton b) with
        | Some x, Some y -> Some (x < y)
        | _ -> None
      else None

let cmp_le a b =
  match cmp_lt b a with Some r -> Some (not r) | None -> None

(* Branch refinements. *)
let assume_le a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (_, h2) -> of_bounds l1 (bound_min h1 h2)

let assume_ge a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Range (l1, h1), Range (l2, _) -> of_bounds (bound_max l1 l2) h1

let pred_bound = function Fin n -> Fin (n - 1) | b -> b
let succ_bound = function Fin n -> Fin (n + 1) | b -> b

let assume_lt a b =
  match b with
  | Empty -> Empty
  | Range (_, h2) -> assume_le a (Range (NegInf, pred_bound h2))

let assume_gt a b =
  match b with
  | Empty -> Empty
  | Range (l2, _) -> assume_ge a (Range (succ_bound l2, PosInf))

let assume_eq a b = meet a b

let assume_ne a b =
  (* Only precise when b is a singleton at one of a's finite bounds. *)
  match (a, singleton b) with
  | Empty, _ | _, None -> a
  | Range (Fin lo, hi), Some n when lo = n -> of_bounds (Fin (lo + 1)) hi
  | Range (lo, Fin hi), Some n when hi = n -> of_bounds lo (Fin (hi - 1))
  | Range _, Some _ -> a

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "⊥"
  | Range (lo, hi) -> Format.fprintf ppf "[%a,%a]" pp_bound lo pp_bound hi
