(** The interval domain over extended integers, with the classic widening
    (unstable bounds jump to infinity) and a narrowing.  This is the
    default numeric domain of the abstract machine; it satisfies
    {!Lattice.NUMERIC}. *)

type bound = NegInf | Fin of int | PosInf

val pp_bound : Format.formatter -> bound -> unit

type t = Empty | Range of bound * bound
    (** [Empty] is bottom; [Range (lo, hi)] requires [lo <= hi] — use
        {!of_bounds} to normalize. *)

val bottom : t
val top : t
val is_bottom : t -> bool
val is_top : t -> bool

val of_int : int -> t
(** The singleton interval. *)

val of_bounds : bound -> bound -> t
(** [of_bounds lo hi] is [Empty] when [lo > hi]. *)

val range : int -> int -> t
(** Finite interval. *)

val at_least : int -> t
val at_most : int -> t

val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old next] keeps stable bounds and discards unstable ones to
    the corresponding infinity; guarantees stabilization of increasing
    chains. *)

val widen_thresholds : int list -> t -> t -> t
(** [widen_thresholds ts old next] is {!widen}, except an unstable bound
    first lands on the nearest threshold in [ts] beyond it (smallest
    [t >= hi] for the upper bound, largest [t <= lo] for the lower) and
    only falls to infinity when no threshold remains.  Thresholds are
    typically harvested from the program's integer constants; chains
    still stabilize since each unstable step consumes a threshold. *)

val narrow : t -> t -> t
(** Refine a widened fixpoint downwards: infinite bounds of the first
    argument are replaced by the second's. *)

(** Abstract arithmetic (over-approximating the concrete operations). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Sound for reachable concrete values: division by zero halts the
    concrete program, so divisors straddling zero yield [top]. *)

val contains : t -> int -> bool
val singleton : t -> int option

(** Three-valued comparison: [Some r] only when the comparison is [r] for
    every pair of concretizations. *)

val cmp_eq : t -> t -> bool option
val cmp_lt : t -> t -> bool option
val cmp_le : t -> t -> bool option

(** Branch refinements: [assume_rel a b] keeps the part of [a] compatible
    with [rel] holding against {e some} concretization of [b]. *)

val assume_eq : t -> t -> t
val assume_ne : t -> t -> t
val assume_lt : t -> t -> t
val assume_le : t -> t -> t
val assume_gt : t -> t -> t
val assume_ge : t -> t -> t

val pp : Format.formatter -> t -> unit
