(** Ready-made instantiations of the abstract machine, and a
    domain-agnostic driver whose result ({!Alog.t} + counts) feeds the
    analyses of Cobegin_analysis unchanged. *)

open Cobegin_domains

module Interval_machine : module type of Machine.Make (Interval)
module Const_machine : module type of Machine.Make (Const)
module Sign_machine : module type of Machine.Make (Sign)
module Parity_machine : module type of Machine.Make (Parity)
module Int_parity_machine : module type of Machine.Make (Int_parity)

(** The numeric domain of the abstract values (paper section 3: each
    choice induces a different analysis). *)
type domain = Intervals | Constants | Signs | Parities | Interval_parity

val pp_domain : Format.formatter -> domain -> unit
val domain_of_string : string -> domain option

type summary = {
  domain : domain;
  folding : Machine.folding;
  abstract_configs : int;  (** distinct abstract configurations *)
  revisits : int;  (** joins into an existing key *)
  widenings : int;
  max_frontier : int;  (** peak size of the worklist *)
  finals : int;  (** abstract final stores *)
  errors : int;  (** possible runtime failures (may-analysis) *)
  status : Budget.status;  (** [Truncated _] when a budget fired *)
  log : Alog.t;
}

val pp_summary : Format.formatter -> summary -> unit

val analyze :
  ?domain:domain ->
  ?folding:Machine.folding ->
  ?widen_after:int ->
  ?max_configs:int ->
  ?budget:Budget.t ->
  ?max_iterations:int ->
  ?probe:Cobegin_obs.Probe.t ->
  ?k_pstring:int ->
  ?max_call_depth:int ->
  Cobegin_lang.Ast.program ->
  summary
(** Run the abstract machine.  Defaults: intervals, Control folding,
    widening after 3 revisits, k_pstring = 8, call depth 64.
    [budget] (which subsumes [max_configs]) and [max_iterations] (the
    fixpoint fuel) bound the run; exhaustion never raises — the summary
    comes back with its partial counts and [status = Truncated _].
    [probe] is ticked once per worklist pop. *)
