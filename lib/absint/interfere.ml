(* Thread-modular rely-guarantee interference analysis (Miné-style;
   PAPERS.md: "Static Analysis of Run-Time Errors in Embedded Real-Time
   Parallel C Programs").

   Each process of a cobegin is analyzed *sequentially*: every read of a
   shared variable joins in the current interference I(x) — the join of
   all values concurrent processes may write to x — and every write to a
   shared variable feeds I(x) back.  The ensemble (entry procedure plus
   every called procedure, summarized by joined argument/return values)
   is iterated to a fixpoint with widening, so the cost is polynomial in
   program size times fixpoint rounds where the explicit engines pay the
   interleaving explosion (paper section 2).

   Lock refinement: a shared variable whose cross-process accesses all
   happen under a common eligible lock (in the [Lockset] sense, relative
   to the generating fork) is *protected*.  Reads and writes made while
   holding the lock see/feed no interference; instead the value at each
   [unlock] accumulates into a per-variable *lock invariant* that is
   re-imported at each [lock].  This both models mutual exclusion
   soundly (a value written inside a critical section can only be
   observed by others after the release that publishes it) and makes
   lock-based critical-section assertions provable.

   Pointer accesses are flow-insensitive: one abstract value accumulates
   every pointer-mediated write ([i_at]), one the heap (malloc cells are
   0-initialized), and dereference reads join them with the accumulated
   values of every address-taken variable.  Coarse, but sound and cheap.

   Soundness contract (checked corpus-wide in test/test_interfere.ml and
   CI): on every model the explicit engines can finish, every concrete
   reachable store binding is contained in the abstract per-variable
   results ([check] returns the violations; it must return none). *)

open Cobegin_lang
open Cobegin_domains
module Mhp = Cobegin_static.Mhp
module Lockset = Cobegin_static.Lockset
module Value = Cobegin_semantics.Value
module SS = Ast.StringSet
module SM = Map.Make (String)
module IM = Map.Make (Int)
module IS = Set.Make (Int)
module Obs_metrics = Cobegin_obs.Metrics
module Obs_probe = Cobegin_obs.Probe
module Obs_journal = Cobegin_obs.Journal

(* Telemetry handles, shared across functor instantiations. *)
let m_rounds = Obs_metrics.counter "interfere.rounds"
let m_widenings = Obs_metrics.counter "interfere.widenings"
let m_visits = Obs_metrics.counter "interfere.stmt_visits"
let g_ivars = Obs_metrics.gauge "interfere.interference_vars"

type verdicts = {
  assert_may_fail : int list;
  never_proceeds : int list;
  error_sites : int list;
  races : Lockset.race list;
}

let pp_labels ppf = function
  | [] -> ()
  | ls ->
      Format.fprintf ppf " (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf l -> Format.fprintf ppf "s%d" l))
        ls

let pp_verdicts ppf v =
  Format.fprintf ppf
    "@[<v>asserts-may-fail: %d%a@,never-proceeds: %d%a@,error-sites: %d%a@,race-candidates: %d@]"
    (List.length v.assert_may_fail)
    pp_labels v.assert_may_fail
    (List.length v.never_proceeds)
    pp_labels v.never_proceeds
    (List.length v.error_sites)
    pp_labels v.error_sites (List.length v.races)

(* Domain-independent payload every functor instantiation reports. *)
type outcome = {
  o_rounds : int;
  o_widenings : int;
  o_visits : int;
  o_status : Budget.status;
  o_shared : string list;
  o_protected : (string * string) list;
  o_interference : (string * string) list;
  o_bindings : (string * string) list;
  o_verdicts : verdicts;
  o_check : (Value.loc * Value.t) list -> (Value.loc * Value.t) list;
}

(* --- shared variables and lock protection, from the MHP contexts --- *)

(* Per-branch (accesses, writes) of cobegin-visible names. *)
let branch_footprints (ctx : Mhp.context) =
  List.map
    (fun (b : Mhp.branch) ->
      List.fold_left
        (fun (r, w) (s : Mhp.site) ->
          ( SS.union r (SS.union s.Mhp.s_vr s.Mhp.s_vw),
            SS.union w s.Mhp.s_vw ))
        (SS.empty, SS.empty) b.Mhp.b_sites)
    ctx.Mhp.c_branches

(* Names written by one branch and accessed by a distinct branch. *)
let cross_shared (ctx : Mhp.context) =
  let fps = branch_footprints ctx in
  let rec cross acc = function
    | [] -> acc
    | (r1, w1) :: rest ->
        let acc =
          List.fold_left
            (fun acc (r2, w2) ->
              SS.union acc (SS.union (SS.inter w1 r2) (SS.inter w2 r1)))
            acc rest
        in
        cross acc rest
  in
  cross SS.empty fps

let compute_shared mhp =
  List.fold_left
    (fun acc ctx -> SS.union acc (cross_shared ctx))
    SS.empty (Mhp.contexts mhp)

(* A variable is protected by lock [l] when every site of every context
   in which it is cross-shared accesses it holding [l], with [l] eligible
   and acquired by the accessing process itself after the generating fork
   (the same relative-to-the-fork rule [Lockset.races] uses: locks merely
   inherited at the fork are held by every branch at once and give no
   mutual exclusion between them).  Address-taken variables are never
   protected — a pointer write can bypass any locking discipline. *)
let compute_protection mhp ls ~shared ~addr_taken =
  let eligible = Lockset.eligible ls in
  if SS.is_empty eligible then (SM.empty, SM.empty)
  else begin
    let prot = ref SM.empty in
    let constrain x locks =
      prot :=
        SM.update x
          (function None -> Some locks | Some cur -> Some (SS.inter cur locks))
          !prot
    in
    List.iter
      (fun (ctx : Mhp.context) ->
        let cross =
          SS.inter (cross_shared ctx) (SS.diff shared addr_taken)
        in
        if not (SS.is_empty cross) then begin
          let inherited = Lockset.must_held ls ctx.Mhp.c_label in
          List.iter
            (fun (b : Mhp.branch) ->
              List.iter
                (fun (s : Mhp.site) ->
                  let touched =
                    SS.inter (SS.union s.Mhp.s_vr s.Mhp.s_vw) cross
                  in
                  if not (SS.is_empty touched) then begin
                    let p =
                      SS.inter
                        (SS.diff (Lockset.must_held ls s.Mhp.s_label) inherited)
                        eligible
                    in
                    SS.iter (fun x -> constrain x p) touched
                  end)
                b.Mhp.b_sites)
            ctx.Mhp.c_branches
        end)
      (Mhp.contexts mhp);
    SM.fold
      (fun x locks (by_var, by_lock) ->
        if SS.is_empty locks then (by_var, by_lock)
        else
          let l = SS.min_elt locks in
          ( SM.add x l by_var,
            SM.update l
              (function
                | None -> Some (SS.singleton x) | Some s -> Some (SS.add x s))
              by_lock ))
      !prot (SM.empty, SM.empty)
  end

(* --- abstract race candidates --- *)

module RaceSet = Set.Make (struct
  type t = Lockset.race

  let compare = Lockset.compare_race
end)

(* The same enumeration as [Lockset.races] (conflicts between MHP pairs
   of non-synchronization sites), with lock suppression optional and
   both endpoints required to be abstractly reachable. *)
let compute_races mhp ls ~use_locks ~reach =
  let add_race acc l1 l2 ~ww what =
    let a, b = if l1 <= l2 then (l1, l2) else (l2, l1) in
    RaceSet.add
      { Lockset.r_stmt1 = a; r_stmt2 = b; r_ww = ww; r_what = what }
      acc
  in
  let conflicts acc (s1 : Mhp.site) (s2 : Mhp.site) =
    let l1 = s1.Mhp.s_label and l2 = s2.Mhp.s_label in
    let acc =
      SS.fold
        (fun x acc -> add_race acc l1 l2 ~ww:true x)
        (SS.inter s1.Mhp.s_vw s2.Mhp.s_vw)
        acc
    in
    let acc =
      SS.fold
        (fun x acc -> add_race acc l1 l2 ~ww:false x)
        (SS.diff
           (SS.union
              (SS.inter s1.Mhp.s_vw s2.Mhp.s_vr)
              (SS.inter s2.Mhp.s_vw s1.Mhp.s_vr))
           (SS.inter s1.Mhp.s_vw s2.Mhp.s_vw))
        acc
    in
    let acc =
      if
        (s1.Mhp.s_mem_wr && (s2.Mhp.s_mem_rd || s2.Mhp.s_mem_wr))
        || (s2.Mhp.s_mem_wr && s1.Mhp.s_mem_rd)
      then
        add_race acc l1 l2
          ~ww:(s1.Mhp.s_mem_wr && s2.Mhp.s_mem_wr)
          "memory"
      else acc
    in
    let tok_vs_at acc (a : Mhp.site) (b : Mhp.site) =
      let acc =
        if a.Mhp.s_mem_wr then
          SS.fold
            (fun x acc ->
              add_race acc a.Mhp.s_label b.Mhp.s_label
                ~ww:(SS.mem x b.Mhp.s_aw) x)
            (SS.union b.Mhp.s_ar b.Mhp.s_aw)
            acc
        else acc
      in
      if a.Mhp.s_mem_rd then
        SS.fold
          (fun x acc ->
            add_race acc a.Mhp.s_label b.Mhp.s_label ~ww:false x)
          b.Mhp.s_aw acc
      else acc
    in
    tok_vs_at (tok_vs_at acc s1 s2) s2 s1
  in
  let set =
    List.fold_left
      (fun acc (c : Mhp.context) ->
        let inherited = Lockset.must_held ls c.Mhp.c_label in
        let protection (s : Mhp.site) =
          if use_locks then
            SS.inter
              (SS.diff (Lockset.must_held ls s.Mhp.s_label) inherited)
              (Lockset.eligible ls)
          else SS.empty
        in
        let rec cross acc = function
          | [] -> acc
          | (b : Mhp.branch) :: rest ->
              let acc =
                List.fold_left
                  (fun acc (b' : Mhp.branch) ->
                    List.fold_left
                      (fun acc s1 ->
                        if
                          s1.Mhp.s_sync
                          || not (IS.mem s1.Mhp.s_label reach)
                        then acc
                        else
                          let p1 = protection s1 in
                          List.fold_left
                            (fun acc s2 ->
                              if
                                s2.Mhp.s_sync
                                || not (IS.mem s2.Mhp.s_label reach)
                                || not
                                     (SS.is_empty
                                        (SS.inter p1 (protection s2)))
                              then acc
                              else conflicts acc s1 s2)
                            acc b'.Mhp.b_sites)
                      acc b.Mhp.b_sites)
                  acc rest
              in
              cross acc rest
        in
        cross acc c.Mhp.c_branches)
      RaceSet.empty (Mhp.contexts mhp)
  in
  RaceSet.elements set

(* --- the per-domain engine --- *)

module Make (N : Lattice.NUMERIC) = struct
  (* One abstract value per cell: a product of the numeric domain, a
     three-valued boolean, and may-be-pointer / may-be-procedure flags —
     mirrors the concrete [Value.t] sum. *)
  type aval = { num : N.t; bool3 : Bool3.t; ptr : bool; fn : bool }

  let vbot = { num = N.bottom; bool3 = Bool3.Bot; ptr = false; fn = false }
  let vnum n = { vbot with num = n }
  let vint n = vnum (N.of_int n)
  let vbool b = { vbot with bool3 = Bool3.of_bool b }
  let vb3 b = { vbot with bool3 = b }
  let vptr = { vbot with ptr = true }
  let vfun = { vbot with fn = true }

  let is_vbot v =
    N.is_bottom v.num && Bool3.is_bottom v.bool3 && (not v.ptr) && not v.fn

  let vjoin a b =
    {
      num = N.join a.num b.num;
      bool3 = Bool3.join a.bool3 b.bool3;
      ptr = a.ptr || b.ptr;
      fn = a.fn || b.fn;
    }

  let vleq a b =
    N.leq a.num b.num
    && Bool3.leq a.bool3 b.bool3
    && ((not a.ptr) || b.ptr)
    && ((not a.fn) || b.fn)

  let vwiden wid a b =
    {
      num = wid a.num b.num;
      bool3 = Bool3.join a.bool3 b.bool3;
      ptr = a.ptr || b.ptr;
      fn = a.fn || b.fn;
    }

  let pp_aval ppf v =
    if is_vbot v then Format.pp_print_string ppf "_|_"
    else begin
      let first = ref true in
      let sep () =
        if !first then first := false else Format.pp_print_string ppf "|"
      in
      if not (N.is_bottom v.num) then begin
        sep ();
        N.pp ppf v.num
      end;
      (match v.bool3 with
      | Bool3.Bot -> ()
      | b ->
          sep ();
          Format.fprintf ppf "bool:%a" Bool3.pp b);
      if v.ptr then begin
        sep ();
        Format.pp_print_string ppf "ptr"
      end;
      if v.fn then begin
        sep ();
        Format.pp_print_string ppf "fn"
      end
    end

  type state = Bot | St of aval SM.t

  let sm_get m x = match SM.find_opt x m with Some v -> v | None -> vbot

  let st_join s1 s2 =
    match (s1, s2) with
    | Bot, x | x, Bot -> x
    | St m1, St m2 ->
        St (SM.union (fun _ v1 v2 -> Some (vjoin v1 v2)) m1 m2)

  let st_leq s1 s2 =
    match (s1, s2) with
    | Bot, _ -> true
    | St _, Bot -> false
    | St m1, St m2 ->
        SM.for_all
          (fun x v ->
            match SM.find_opt x m2 with Some v2 -> vleq v v2 | None -> false)
          m1

  (* Static context of one analysis. *)
  type info = {
    prog : Ast.program;
    ls : Lockset.t;
    shared : SS.t;
    at : SS.t; (* address-taken names *)
    prot : string SM.t; (* protected variable -> its lock *)
    prot_by : SS.t SM.t; (* lock -> the variables it protects *)
    cands : SS.t IM.t; (* call label -> candidate procedures *)
    widen_num : N.t -> N.t -> N.t;
    widen_after : int;
  }

  (* Mutable cross-process accumulators, iterated to a fixpoint. *)
  type acc = {
    mutable interf : aval SM.t; (* interference per shared variable *)
    mutable inv : aval SM.t; (* lock invariant per protected variable *)
    mutable i_at : aval; (* every pointer-mediated write *)
    mutable heap : aval; (* malloc cells (0-initialized) *)
    mutable vals : aval SM.t; (* every value each name's cells ever hold *)
    mutable args : aval array SM.t; (* per-procedure argument summaries *)
    mutable rets : aval SM.t; (* per-procedure return summaries *)
    mutable called : SS.t;
    mutable reach : IS.t; (* abstractly reachable labels (record pass) *)
    mutable visits : int;
    mutable dirty : bool;
    mutable widenings : int;
    mutable wround : bool; (* widen accumulator joins this round *)
    mutable v_assert : IS.t;
    mutable v_never : IS.t;
    mutable v_error : IS.t;
  }

  let init_acc () =
    {
      interf = SM.empty;
      inv = SM.empty;
      i_at = vbot;
      heap = vbot;
      vals = SM.empty;
      args = SM.empty;
      rets = SM.empty;
      called = SS.empty;
      reach = IS.empty;
      visits = 0;
      dirty = false;
      widenings = 0;
      wround = false;
      v_assert = IS.empty;
      v_never = IS.empty;
      v_error = IS.empty;
    }

  (* Join [v] into an accumulator cell, marking the round dirty on growth
     and widening the chain once the widening rounds begin. *)
  let bump a c old_ v =
    if vleq v old_ then old_
    else begin
      c.dirty <- true;
      if c.wround then begin
        c.widenings <- c.widenings + 1;
        Obs_metrics.incr m_widenings;
        vwiden a.widen_num old_ (vjoin old_ v)
      end
      else vjoin old_ v
    end

  let bump_map a c m x v =
    let old_ = sm_get m x in
    let nv = bump a c old_ v in
    if nv == old_ then m else SM.add x nv m

  let holding a label lock = SS.mem lock (Lockset.must_held a.ls label)

  (* Read of a name: shared variables join their interference (and, for
     protected variables read without the lock, the lock invariant);
     address-taken variables additionally join every pointer write. *)
  let read_var a c label m x =
    match SM.find_opt x m with
    | None -> if Ast.has_proc a.prog x then vfun else vbot
    | Some v ->
        let v =
          if SS.mem x a.shared then
            match SM.find_opt x a.prot with
            | Some l when holding a label l -> v
            | Some _ -> vjoin v (vjoin (sm_get c.interf x) (sm_get c.inv x))
            | None -> vjoin v (sm_get c.interf x)
          else v
        in
        if SS.mem x a.at then vjoin v c.i_at else v

  (* Write of a name: strong update of the local state; shared variables
     feed the interference unless written inside their own critical
     section (those values are published by [Srelease] via the lock
     invariant instead).  Every written value is recorded in [vals] for
     the soundness oracle.  [br] = lexically inside a cobegin branch —
     the entry procedure's code outside every cobegin never runs in
     parallel with the branches, so its writes are not interference. *)
  let write_var a c ~br label m x v =
    c.vals <- bump_map a c c.vals x v;
    (if br && SS.mem x a.shared then
       let in_crit =
         match SM.find_opt x a.prot with
         | Some l -> holding a label l
         | None -> false
       in
       if not in_crit then c.interf <- bump_map a c c.interf x v);
    SM.add x v m

  (* A dereference may read any heap cell or any address-taken cell. *)
  let deref_read a c =
    SS.fold
      (fun x acc -> vjoin acc (sm_get c.vals x))
      a.at
      (vjoin c.heap c.i_at)

  let may_non_int v =
    (not (Bool3.is_bottom v.bool3)) || v.ptr || v.fn

  let may_non_bool v = (not (N.is_bottom v.num)) || v.ptr || v.fn

  (* Three-valued equality over the value product: join the verdicts of
     every kind both sides may inhabit; two different kinds compare
     unequal (the concrete [Eq] never errors). *)
  let eq_bool3 v1 v2 =
    let pieces = ref Bool3.Bot in
    let addp b = pieces := Bool3.join !pieces b in
    if (not (N.is_bottom v1.num)) && not (N.is_bottom v2.num) then
      addp (Bool3.of_option (N.cmp_eq v1.num v2.num));
    if (not (Bool3.is_bottom v1.bool3)) && not (Bool3.is_bottom v2.bool3)
    then
      addp
        (match (v1.bool3, v2.bool3) with
        | Bool3.True, Bool3.True | Bool3.False, Bool3.False -> Bool3.True
        | Bool3.True, Bool3.False | Bool3.False, Bool3.True -> Bool3.False
        | _ -> Bool3.Either);
    if v1.ptr && v2.ptr then addp Bool3.Either;
    if v1.fn && v2.fn then addp Bool3.Either;
    let kinds v =
      [ not (N.is_bottom v.num); not (Bool3.is_bottom v.bool3); v.ptr; v.fn ]
    in
    let k1 = kinds v1 and k2 = kinds v2 in
    let cross_kind =
      List.exists
        (fun i ->
          List.nth k1 i
          && List.exists (fun j -> j <> i && List.nth k2 j) [ 0; 1; 2; 3 ])
        [ 0; 1; 2; 3 ]
    in
    if cross_kind then addp Bool3.False;
    !pieces

  let rec eval a c label m err e : aval =
    match e with
    | Ast.Eint n -> vint n
    | Ast.Ebool b -> vbool b
    | Ast.Evar x ->
        let v = read_var a c label m x in
        if is_vbot v then err := true;
        v
    | Ast.Eaddr x ->
        if not (SM.mem x m) then err := true;
        vptr
    | Ast.Ederef e1 ->
        let p = eval a c label m err e1 in
        if not p.ptr then begin
          err := true;
          vbot
        end
        else begin
          if (not (N.is_bottom p.num)) || (not (Bool3.is_bottom p.bool3)) || p.fn
          then err := true;
          deref_read a c
        end
    | Ast.Eunop (Ast.Not, e1) ->
        let v = eval a c label m err e1 in
        if may_non_bool v then err := true;
        vb3 (Bool3.not_ v.bool3)
    | Ast.Eunop (Ast.Neg, e1) ->
        let v = eval a c label m err e1 in
        if may_non_int v then err := true;
        vnum (N.neg v.num)
    | Ast.Ebinop (op, e1, e2) ->
        let v1 = eval a c label m err e1 in
        let v2 = eval a c label m err e2 in
        binop err op v1 v2

  and binop err op v1 v2 =
    match op with
    | Ast.Add ->
        if
          (not (Bool3.is_bottom v1.bool3))
          || v1.fn
          || (not (Bool3.is_bottom v2.bool3))
          || v2.fn
          || (v1.ptr && v2.ptr)
        then err := true;
        {
          vbot with
          num = N.add v1.num v2.num;
          ptr =
            (v1.ptr && not (N.is_bottom v2.num))
            || (v2.ptr && not (N.is_bottom v1.num));
        }
    | Ast.Sub ->
        if
          (not (Bool3.is_bottom v1.bool3))
          || v1.fn
          || (not (Bool3.is_bottom v2.bool3))
          || v2.fn || v2.ptr
        then err := true;
        {
          vbot with
          num = N.sub v1.num v2.num;
          ptr = v1.ptr && not (N.is_bottom v2.num);
        }
    | Ast.Mul ->
        if may_non_int v1 || may_non_int v2 then err := true;
        vnum (N.mul v1.num v2.num)
    | Ast.Div ->
        if may_non_int v1 || may_non_int v2 || N.contains v2.num 0 then
          err := true;
        vnum (N.div v1.num v2.num)
    | Ast.Eq -> vb3 (eq_bool3 v1 v2)
    | Ast.Ne -> vb3 (Bool3.not_ (eq_bool3 v1 v2))
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        if may_non_int v1 || may_non_int v2 then err := true;
        if N.is_bottom v1.num || N.is_bottom v2.num then vbot
        else
          vb3
            (Bool3.of_option
               (match op with
               | Ast.Lt -> N.cmp_lt v1.num v2.num
               | Ast.Le -> N.cmp_le v1.num v2.num
               | Ast.Gt -> N.cmp_lt v2.num v1.num
               | Ast.Ge -> N.cmp_le v2.num v1.num
               | _ -> assert false))
    | Ast.And | Ast.Or ->
        if may_non_bool v1 || may_non_bool v2 then err := true;
        vb3
          (if op = Ast.And then Bool3.and_ v1.bool3 v2.bool3
           else Bool3.or_ v1.bool3 v2.bool3)

  (* --- branch refinement --- *)

  let flip_rel = function
    | Ast.Lt -> Ast.Gt
    | Ast.Gt -> Ast.Lt
    | Ast.Le -> Ast.Ge
    | Ast.Ge -> Ast.Le
    | op -> op

  let negate_rel = function
    | Ast.Eq -> Ast.Ne
    | Ast.Ne -> Ast.Eq
    | Ast.Lt -> Ast.Ge
    | Ast.Ge -> Ast.Lt
    | Ast.Le -> Ast.Gt
    | Ast.Gt -> Ast.Le
    | op -> op

  (* Refine the binding of [x] under "x op e2 is [truth]".  The value
     refined is the *full read* (local state joined with interference) —
     refining the local binding alone would be unsound when the guard is
     only satisfiable through interference, e.g. await(x == 1) where 1
     is another process's write. *)
  let rec refine a c label st e truth =
    match st with
    | Bot -> Bot
    | St m -> (
        match (e, truth) with
        | Ast.Eunop (Ast.Not, e1), _ -> refine a c label st e1 (not truth)
        | Ast.Ebinop (Ast.And, e1, e2), true ->
            refine a c label (refine a c label st e1 true) e2 true
        | Ast.Ebinop (Ast.Or, e1, e2), false ->
            refine a c label (refine a c label st e1 false) e2 false
        | Ast.Evar x, _ ->
            let v = read_var a c label m x in
            let b = Bool3.meet v.bool3 (Bool3.of_bool truth) in
            if Bool3.is_bottom b then Bot else St (SM.add x (vb3 b) m)
        | ( Ast.Ebinop
              ( ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
                Ast.Evar x,
                e2 ),
            _ ) ->
            refine_rel a c label m x op e2 truth
        | ( Ast.Ebinop
              ( ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
                e1,
                Ast.Evar x ),
            _ ) ->
            refine_rel a c label m x (flip_rel op) e1 truth
        | _ -> st)

  and refine_rel a c label m x op e2 truth =
    match SM.find_opt x m with
    | None -> St m
    | Some _ ->
        let vx = read_var a c label m x in
        let dummy = ref false in
        let v2 = eval a c label m dummy e2 in
        let op = if truth then op else negate_rel op in
        let v' =
          match op with
          | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
              (* int-only comparison: on the surviving path both sides
                 are integers *)
              if N.is_bottom v2.num then vbot
              else
                vnum
                  ((match op with
                   | Ast.Lt -> N.assume_lt
                   | Ast.Le -> N.assume_le
                   | Ast.Gt -> N.assume_gt
                   | Ast.Ge -> N.assume_ge
                   | _ -> assert false)
                     vx.num v2.num)
          | Ast.Eq ->
              {
                num = N.assume_eq vx.num v2.num;
                bool3 = Bool3.meet vx.bool3 v2.bool3;
                ptr = vx.ptr && v2.ptr;
                fn = vx.fn && v2.fn;
              }
          | Ast.Ne ->
              (* only sound when e2 is definitely an integer *)
              if Bool3.is_bottom v2.bool3 && (not v2.ptr) && not v2.fn then
                { vx with num = N.assume_ne vx.num v2.num }
              else vx
          | _ -> assert false
        in
        if is_vbot v' then Bot else St (SM.add x v' m)

  (* --- per-statement widening for loop heads --- *)

  let st_widen a c s1 s2 =
    match (s1, s2) with
    | Bot, x | x, Bot -> x
    | St m1, St m2 ->
        St
          (SM.merge
             (fun _ o n ->
               match (o, n) with
               | None, n -> n
               | o, None -> o
               | Some ov, Some nv ->
                   if vleq nv ov then Some ov
                   else begin
                     c.widenings <- c.widenings + 1;
                     Obs_metrics.incr m_widenings;
                     Some (vwiden a.widen_num ov nv)
                   end)
             m1 m2)

  (* --- the sequential abstract interpreter --- *)

  (* [br]: lexically inside a cobegin branch (writes feed interference;
     returns cross the join and error).  [proc]: enclosing procedure for
     return summaries, [None] for the entry procedure (whose returns
     error, as in the concrete machine).  [record]: final reporting pass
     — collect reachable labels and verdicts. *)
  let rec exec a c ~br ~proc ~record st (s : Ast.stmt) : state =
    match st with
    | Bot -> Bot
    | St m -> (
        c.visits <- c.visits + 1;
        Obs_metrics.incr m_visits;
        let label = s.Ast.label in
        if record then c.reach <- IS.add label c.reach;
        let err = ref false in
        let finish st' =
          if record && !err then c.v_error <- IS.add label c.v_error;
          st'
        in
        match s.Ast.kind with
        | Ast.Sskip | Ast.Sfence -> St m
        | Ast.Sdecl (x, e) ->
            let v = eval a c label m err e in
            if is_vbot v then begin
              err := true;
              finish Bot
            end
            else begin
              (* a fresh cell: records its initial value but feeds no
                 interference (the binding predates any sharing) *)
              c.vals <- bump_map a c c.vals x v;
              finish (St (SM.add x v m))
            end
        | Ast.Sassign (Ast.Lvar x, e) ->
            let v = eval a c label m err e in
            if is_vbot v || not (SM.mem x m) then begin
              err := true;
              finish Bot
            end
            else finish (St (write_var a c ~br label m x v))
        | Ast.Sassign (Ast.Lderef pe, e) ->
            let p = eval a c label m err pe in
            let v = eval a c label m err e in
            if (not p.ptr) || is_vbot v then begin
              err := true;
              finish Bot
            end
            else begin
              if
                (not (N.is_bottom p.num))
                || (not (Bool3.is_bottom p.bool3))
                || p.fn
              then err := true;
              c.i_at <- bump a c c.i_at v;
              finish (St m)
            end
        | Ast.Smalloc (lv, e) ->
            let sz = eval a c label m err e in
            if N.is_bottom sz.num then begin
              err := true;
              finish Bot
            end
            else begin
              if may_non_int sz then err := true;
              c.heap <- bump a c c.heap (vint 0);
              match lv with
              | Ast.Lvar x ->
                  if SM.mem x m then
                    finish (St (write_var a c ~br label m x vptr))
                  else begin
                    err := true;
                    finish Bot
                  end
              | Ast.Lderef pe ->
                  let p = eval a c label m err pe in
                  if not p.ptr then begin
                    err := true;
                    finish Bot
                  end
                  else begin
                    c.i_at <- bump a c c.i_at vptr;
                    finish (St m)
                  end
            end
        | Ast.Sfree e ->
            let p = eval a c label m err e in
            if not p.ptr then begin
              err := true;
              finish Bot
            end
            else begin
              if
                (not (N.is_bottom p.num))
                || (not (Bool3.is_bottom p.bool3))
                || p.fn
              then err := true;
              finish (St m)
            end
        | Ast.Scall (dest, callee, args) ->
            let cv = eval a c label m err callee in
            if not cv.fn then begin
              err := true;
              finish Bot
            end
            else begin
              if
                (not (N.is_bottom cv.num))
                || (not (Bool3.is_bottom cv.bool3))
                || cv.ptr
              then err := true;
              let argvs = List.map (eval a c label m err) args in
              if List.exists is_vbot argvs then begin
                err := true;
                finish Bot
              end
              else begin
                let cands =
                  match IM.find_opt label a.cands with
                  | Some ks -> ks
                  | None -> SS.empty
                in
                let nargs = List.length args in
                let matching =
                  SS.filter
                    (fun f ->
                      match Ast.find_proc a.prog f with
                      | Some p -> List.length p.Ast.params = nargs
                      | None -> false)
                    cands
                in
                if SS.is_empty matching then begin
                  err := true;
                  finish Bot
                end
                else begin
                  SS.iter
                    (fun f ->
                      if not (SS.mem f c.called) then begin
                        c.called <- SS.add f c.called;
                        c.dirty <- true
                      end;
                      let arr =
                        match SM.find_opt f c.args with
                        | Some arr -> arr
                        | None ->
                            let arr = Array.make nargs vbot in
                            if nargs > 0 then c.args <- SM.add f arr c.args;
                            arr
                      in
                      List.iteri (fun i v -> arr.(i) <- bump a c arr.(i) v) argvs)
                    matching;
                  let rv =
                    SS.fold
                      (fun f acc -> vjoin acc (sm_get c.rets f))
                      matching vbot
                  in
                  if is_vbot rv then
                    (* no candidate can return (yet): the caller blocks;
                       later rounds revisit once a summary appears *)
                    finish Bot
                  else
                    match dest with
                    | None -> finish (St m)
                    | Some (Ast.Lvar x) ->
                        if SM.mem x m then
                          finish (St (write_var a c ~br label m x rv))
                        else begin
                          err := true;
                          finish Bot
                        end
                    | Some (Ast.Lderef pe) ->
                        let p = eval a c label m err pe in
                        if not p.ptr then begin
                          err := true;
                          finish Bot
                        end
                        else begin
                          c.i_at <- bump a c c.i_at rv;
                          finish (St m)
                        end
                end
              end
            end
        | Ast.Sreturn e_opt -> (
            let v =
              match e_opt with
              | Some e -> eval a c label m err e
              | None -> vint 0
            in
            match proc with
            | Some f when not br ->
                if is_vbot v then err := true
                else c.rets <- bump_map a c c.rets f v;
                finish Bot
            | _ ->
                (* return in the entry procedure or crossing a cobegin
                   boundary: a concrete runtime error *)
                err := true;
                finish Bot)
        | Ast.Sblock ss | Ast.Satomic ss -> (
            let st', restores =
              List.fold_left
                (fun (st, rs) (si : Ast.stmt) ->
                  let rs =
                    match (si.Ast.kind, st) with
                    | Ast.Sdecl (x, _), St mm -> (x, SM.find_opt x mm) :: rs
                    | _ -> rs
                  in
                  (exec a c ~br ~proc ~record st si, rs))
                (St m, []) ss
            in
            match st' with
            | Bot -> Bot
            | St m' ->
                (* restore the outer bindings shadowed by the block's own
                   declarations, innermost first *)
                St
                  (List.fold_left
                     (fun mm (x, old_) ->
                       match old_ with
                       | Some v -> SM.add x v mm
                       | None -> SM.remove x mm)
                     m' restores))
        | Ast.Sif (cond, s1, s2) ->
            let cv = eval a c label m err cond in
            if Bool3.is_bottom cv.bool3 then begin
              err := true;
              finish Bot
            end
            else begin
              if may_non_bool cv then err := true;
              let t =
                if Bool3.may_be_true cv.bool3 then
                  exec a c ~br ~proc ~record
                    (refine a c label (St m) cond true)
                    s1
                else Bot
              in
              let f =
                if Bool3.may_be_false cv.bool3 then
                  exec a c ~br ~proc ~record
                    (refine a c label (St m) cond false)
                    s2
                else Bot
              in
              finish (st_join t f)
            end
        | Ast.Swhile (cond, body) -> (
            let rec go i head =
              match head with
              | Bot -> Bot
              | St hm ->
                  let werr = ref false in
                  let cv = eval a c label hm werr cond in
                  let entered =
                    if Bool3.may_be_true cv.bool3 then
                      exec a c ~br ~proc ~record
                        (refine a c label head cond true)
                        body
                    else Bot
                  in
                  let next = st_join head entered in
                  if st_leq next head then head
                  else
                    go (i + 1)
                      (if i >= a.widen_after then st_widen a c head next
                       else next)
            in
            match go 0 (St m) with
            | Bot -> Bot
            | St hm as headfix ->
                let cv = eval a c label hm err cond in
                if Bool3.is_bottom cv.bool3 then begin
                  err := true;
                  finish Bot
                end
                else begin
                  if may_non_bool cv then err := true;
                  if Bool3.may_be_false cv.bool3 then
                    finish (refine a c label headfix cond false)
                  else finish Bot
                end)
        | Ast.Scobegin bs ->
            let exits =
              List.map
                (fun b -> exec a c ~br:true ~proc ~record (St m) b)
                bs
            in
            (* a branch that never terminates makes the join unreachable *)
            if List.exists (function Bot -> true | St _ -> false) exits
            then Bot
            else finish (List.fold_left st_join Bot exits)
        | Ast.Sawait cond ->
            let cv = eval a c label m err cond in
            if Bool3.is_bottom cv.bool3 then begin
              err := true;
              finish Bot
            end
            else begin
              if may_non_bool cv then err := true;
              if Bool3.may_be_true cv.bool3 then
                finish (refine a c label (St m) cond true)
              else begin
                if record then c.v_never <- IS.add label c.v_never;
                finish Bot
              end
            end
        | Ast.Sacquire x ->
            let v = read_var a c label m x in
            if is_vbot v then begin
              err := true;
              finish Bot
            end
            else if N.contains v.num 0 then begin
              let m = write_var a c ~br label m x (vint 1) in
              (* entering the critical sections this lock guards:
                 re-import the published lock invariants *)
              let m =
                match SM.find_opt x a.prot_by with
                | None -> m
                | Some ys ->
                    SS.fold
                      (fun y mm ->
                        match SM.find_opt y mm with
                        | None -> mm
                        | Some vy ->
                            SM.add y (vjoin vy (sm_get c.inv y)) mm)
                      ys m
              in
              finish (St m)
            end
            else begin
              if record then c.v_never <- IS.add label c.v_never;
              finish Bot
            end
        | Ast.Srelease x ->
            if not (SM.mem x m) then begin
              err := true;
              finish Bot
            end
            else begin
              (* publish the critical-section-exit values of the
                 variables this lock protects *)
              (match SM.find_opt x a.prot_by with
              | None -> ()
              | Some ys ->
                  SS.iter
                    (fun y ->
                      match SM.find_opt y m with
                      | None -> ()
                      | Some vy -> c.inv <- bump_map a c c.inv y vy)
                    ys);
              finish (St (write_var a c ~br label m x (vint 0)))
            end
        | Ast.Sassert cond ->
            let cv = eval a c label m err cond in
            if Bool3.is_bottom cv.bool3 then begin
              err := true;
              finish Bot
            end
            else begin
              if may_non_bool cv then err := true;
              if record && Bool3.may_be_false cv.bool3 then
                c.v_assert <- IS.add label c.v_assert;
              if Bool3.may_be_true cv.bool3 then
                finish (refine a c label (St m) cond true)
              else finish Bot
            end)

  (* One ensemble pass: the entry procedure from the empty state, then
     every called procedure from its accumulated argument summary. *)
  let run_pass a c ~record =
    let entry = Ast.entry_proc a.prog in
    ignore (exec a c ~br:false ~proc:None ~record (St SM.empty) entry.Ast.body);
    SS.iter
      (fun f ->
        match Ast.find_proc a.prog f with
        | None -> ()
        | Some p ->
            let arr =
              match SM.find_opt f c.args with Some arr -> arr | None -> [||]
            in
            if Array.length arr = List.length p.Ast.params then begin
              let _, m0 =
                List.fold_left
                  (fun (i, mm) x ->
                    let v = arr.(i) in
                    (* parameter cells are allocation sites too: feed the
                       soundness oracle *)
                    c.vals <- bump_map a c c.vals x v;
                    (i + 1, SM.add x v mm))
                  (0, SM.empty) p.Ast.params
              in
              match exec a c ~br:false ~proc:(Some f) ~record (St m0) p.Ast.body with
              | Bot -> ()
              | St _ ->
                  (* fall-through return yields 0, as in the concrete
                     machine *)
                  c.rets <- bump_map a c c.rets f (vint 0)
            end)
      c.called

  let analyze ?(widen = N.widen) ?(locksets = true) ?(widen_after = 2)
      ?(max_rounds = 200) ?budget ?probe (prog : Ast.program) : outcome =
    let mhp = Mhp.of_program prog in
    let ls = Lockset.analyze mhp in
    let at = Mhp.addr_taken mhp in
    let shared = compute_shared mhp in
    let prot, prot_by =
      if locksets then compute_protection mhp ls ~shared ~addr_taken:at
      else (SM.empty, SM.empty)
    in
    let cands =
      List.fold_left
        (fun acc (k : Mhp.call_site) -> IM.add k.Mhp.k_label k.Mhp.k_callees acc)
        IM.empty (Mhp.call_sites mhp)
    in
    let a =
      { prog; ls; shared; at; prot; prot_by; cands; widen_num = widen;
        widen_after }
    in
    let c = init_acc () in
    (match (probe, budget) with
    | Some p, Some b -> Obs_probe.set_budget p b
    | _ -> ());
    let rec rounds r =
      Fault.hit "interfere.iter";
      (* one event per fixpoint round — rounds are few (≤ max_rounds),
         so no sampling needed *)
      if Obs_journal.enabled () then
        Obs_journal.emit ~level:Obs_journal.Debug "interfere.round"
          [
            ("round", Obs_journal.Int r);
            ("interference_vars", Obs_journal.Int (SM.cardinal c.interf));
            ("stmt_visits", Obs_journal.Int c.visits);
          ];
      let stop =
        match budget with
        | Some b -> Budget.check b ~configs:r ~transitions:c.visits
        | None -> None
      in
      match stop with
      | Some reason -> (r, Budget.Truncated reason)
      | None ->
          if r > max_rounds then (max_rounds, Budget.Truncated (Budget.Fuel max_rounds))
          else begin
            Obs_metrics.incr m_rounds;
            (match probe with
            | Some p ->
                Obs_probe.tick p ~configurations:r
                  ~frontier:(SM.cardinal c.interf)
                  ~transitions:c.visits
            | None -> ());
            c.dirty <- false;
            c.wround <- r >= a.widen_after;
            run_pass a c ~record:false;
            Obs_metrics.set g_ivars (SM.cardinal c.interf);
            if c.dirty then rounds (r + 1) else (r, Budget.Complete)
          end
    in
    let nrounds, status = rounds 1 in
    (* final reporting pass: verdicts and abstract reachability.  It runs
       after truncation too — partial but real, never fabricated. *)
    run_pass a c ~record:true;
    (* fold the pointer-mediated writes into the per-name results *)
    let vals =
      SS.fold
        (fun x acc -> SM.add x (vjoin (sm_get acc x) c.i_at) acc)
        a.at c.vals
    in
    let heap = vjoin c.heap c.i_at in
    let verdicts =
      {
        assert_may_fail = IS.elements c.v_assert;
        never_proceeds = IS.elements c.v_never;
        error_sites = IS.elements c.v_error;
        races = compute_races mhp ls ~use_locks:locksets ~reach:c.reach;
      }
    in
    (* the soundness oracle: map each concrete allocation site to the
       abstract values its cells may hold *)
    let site_kinds =
      Ast.fold_program
        (fun acc (s : Ast.stmt) ->
          match s.Ast.kind with
          | Ast.Sdecl (x, _) -> IM.add s.Ast.label (`Decl x) acc
          | Ast.Smalloc _ -> IM.add s.Ast.label `Malloc acc
          | Ast.Scall _ ->
              let pss =
                match IM.find_opt s.Ast.label cands with
                | None -> []
                | Some ks ->
                    SS.fold
                      (fun f acc ->
                        match Ast.find_proc prog f with
                        | Some p -> p.Ast.params :: acc
                        | None -> acc)
                      ks []
              in
              IM.add s.Ast.label (`Call pss) acc
          | _ -> acc)
        IM.empty prog
    in
    let contains_value av (v : Value.t) =
      match v with
      | Value.Vint n -> N.contains av.num n
      | Value.Vbool b ->
          if b then Bool3.may_be_true av.bool3
          else Bool3.may_be_false av.bool3
      | Value.Vloc _ -> av.ptr
      | Value.Vfun _ -> av.fn
    in
    let check bindings =
      List.filter
        (fun ((loc : Value.loc), v) ->
          let ok =
            match IM.find_opt loc.Value.l_site site_kinds with
            | Some (`Decl x) -> contains_value (sm_get vals x) v
            | Some `Malloc -> contains_value heap v
            | Some (`Call pss) ->
                List.exists
                  (fun ps ->
                    match List.nth_opt ps loc.Value.l_off with
                    | Some x -> contains_value (sm_get vals x) v
                    | None -> false)
                  pss
            | None -> false
          in
          not ok)
        bindings
    in
    let printed m =
      List.map
        (fun (x, v) -> (x, Format.asprintf "%a" pp_aval v))
        (SM.bindings m)
    in
    {
      o_rounds = nrounds;
      o_widenings = c.widenings;
      o_visits = c.visits;
      o_status = status;
      o_shared = SS.elements shared;
      o_protected = SM.bindings prot;
      o_interference = printed c.interf;
      o_bindings = printed vals;
      o_verdicts = verdicts;
      o_check = check;
    }
end

(* --- ready-made instantiations and the domain-erased driver --- *)

module I_interval = Make (Interval)
module I_const = Make (Const)
module I_sign = Make (Sign)
module I_parity = Make (Parity)
module I_int_parity = Make (Int_parity)

type summary = {
  domain : Analyzer.domain;
  locksets : bool;
  rounds : int;
  widenings : int;
  stmt_visits : int;
  status : Budget.status;
  shared : string list;
  protected_ : (string * string) list;
  interference : (string * string) list;
  bindings : (string * string) list;
  verdicts : verdicts;
  check :
    (Value.loc * Value.t) list -> (Value.loc * Value.t) list;
}

(* Widening thresholds: the program's integer constants (and their
   negations), so interference fixpoints land on the constants loops
   actually compare against instead of jumping straight to infinity. *)
let harvest_thresholds (prog : Ast.program) =
  let rec consts acc = function
    | Ast.Eint n -> n :: -n :: acc
    | Ast.Ebool _ | Ast.Evar _ | Ast.Eaddr _ -> acc
    | Ast.Eunop (_, e1) -> consts acc e1
    | Ast.Ebinop (_, e1, e2) -> consts (consts acc e1) e2
    | Ast.Ederef e1 -> consts acc e1
  in
  let of_lv acc = function Ast.Lvar _ -> acc | Ast.Lderef e -> consts acc e in
  List.sort_uniq compare
    (Ast.fold_program
       (fun acc (s : Ast.stmt) ->
         match s.Ast.kind with
         | Ast.Sskip | Ast.Sfence | Ast.Sreturn None | Ast.Sacquire _
         | Ast.Srelease _ | Ast.Sblock _ | Ast.Scobegin _ | Ast.Satomic _ ->
             acc
         | Ast.Sdecl (_, e)
         | Ast.Sawait e
         | Ast.Sassert e
         | Ast.Sreturn (Some e)
         | Ast.Sfree e
         | Ast.Sif (e, _, _)
         | Ast.Swhile (e, _) ->
             consts acc e
         | Ast.Sassign (lv, e) | Ast.Smalloc (lv, e) ->
             of_lv (consts acc e) lv
         | Ast.Scall (lv, callee, args) ->
             let acc =
               match lv with Some l -> of_lv acc l | None -> acc
             in
             List.fold_left consts (consts acc callee) args)
       [ 0; 1 ] prog)

let run ?(domain = Analyzer.Intervals) ?(locksets = true) ?(widen_after = 2)
    ?(max_rounds = 200) ?budget ?probe (prog : Ast.program) : summary =
  let mk (o : outcome) =
    {
      domain;
      locksets;
      rounds = o.o_rounds;
      widenings = o.o_widenings;
      stmt_visits = o.o_visits;
      status = o.o_status;
      shared = o.o_shared;
      protected_ = o.o_protected;
      interference = o.o_interference;
      bindings = o.o_bindings;
      verdicts = o.o_verdicts;
      check = o.o_check;
    }
  in
  match domain with
  | Analyzer.Intervals ->
      let ts = harvest_thresholds prog in
      mk
        (I_interval.analyze
           ~widen:(Interval.widen_thresholds ts)
           ~locksets ~widen_after ~max_rounds ?budget ?probe prog)
  | Analyzer.Constants ->
      mk (I_const.analyze ~locksets ~widen_after ~max_rounds ?budget ?probe prog)
  | Analyzer.Signs ->
      mk (I_sign.analyze ~locksets ~widen_after ~max_rounds ?budget ?probe prog)
  | Analyzer.Parities ->
      mk
        (I_parity.analyze ~locksets ~widen_after ~max_rounds ?budget ?probe prog)
  | Analyzer.Interval_parity ->
      mk
        (I_int_parity.analyze ~locksets ~widen_after ~max_rounds ?budget ?probe
           prog)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>interference [%a%s]: rounds=%d widenings=%d visits=%d%a@,shared (%d):%a@,"
    Analyzer.pp_domain s.domain
    (if s.locksets then ", locksets" else "")
    s.rounds s.widenings s.stmt_visits
    (fun ppf -> function
      | Budget.Complete -> ()
      | st -> Format.fprintf ppf " %a" Budget.pp_status st)
    s.status (List.length s.shared)
    (fun ppf -> function
      | [] -> Format.pp_print_string ppf " -"
      | xs ->
          List.iter
            (fun x ->
              match List.assoc_opt x s.protected_ with
              | Some l -> Format.fprintf ppf " %s(lock %s)" x l
              | None -> Format.fprintf ppf " %s" x)
            xs)
    s.shared;
  List.iter
    (fun (x, v) ->
      let i =
        match List.assoc_opt x s.interference with
        | Some i -> Format.sprintf "  interference %s" i
        | None -> ""
      in
      Format.fprintf ppf "  %s: %s%s@," x v i)
    s.bindings;
  Format.fprintf ppf "%a@]" pp_verdicts s.verdicts
