(** Thread-modular rely-guarantee interference analysis (Miné-style).

    Instead of enumerating interleavings, each process of a cobegin is
    analyzed {e sequentially} by a per-process abstract interpreter;
    every read of a shared variable joins in the current {e
    interference} — the join of all abstract values concurrent
    processes may write to it — and every write to a shared variable
    feeds that interference back.  The whole ensemble is iterated to a
    fixpoint with widening, so cost is polynomial in program size times
    fixpoint rounds where the explicit engines pay the interleaving
    explosion (paper section 2).

    With [~locksets] (the default), the must-held lockset analysis of
    {!Cobegin_static.Lockset} refines the interference: a shared
    variable all of whose cross-process accesses happen under a common
    eligible lock is {e protected} — reads made while holding the lock
    see no interference, and the value it holds at each [unlock]
    accumulates into a {e lock invariant} that is re-imported at each
    [lock].  This is what makes lock-based critical-section assertions
    provable; await-based protocols (Peterson) stay out of reach, which
    the precision-pin tests assert.

    Soundness contract (checked corpus-wide in [test/test_interfere.ml]
    and in CI): on every model the explicit engines finish, every
    concrete reachable store binding is contained in the abstract
    per-variable result delivered by {!val-check}.

    {b SC only.}  The rely-guarantee transfer functions model the
    sequentially consistent interleaving semantics: a write is
    published to the interference the moment it executes, and [fence]
    is a no-op.  Under the TSO/PSO store-buffer semantics
    ({!Cobegin_semantics.Step.model}) delayed flushes produce stale
    reads this analysis never accounts for, so its verdicts would be
    unsound there; {!Cobegin_core.Pipeline.analyze} therefore refuses
    to combine [interfere] with a non-SC memory model
    ([Invalid_argument]). *)

open Cobegin_lang
module SS = Ast.StringSet

(** {1 Verdicts} *)

type verdicts = {
  assert_may_fail : int list;
      (** labels of asserts not provable to always hold *)
  never_proceeds : int list;
      (** awaits / locks whose guard is never satisfiable — the process
          abstractly blocks forever past this label *)
  error_sites : int list;
      (** labels where a run-time error (type confusion, bad deref,
          bad call) may occur *)
  races : Cobegin_static.Lockset.race list;
      (** abstract race candidates: conflicting MHP accesses, lockset-
          refined, both endpoints abstractly reachable *)
}

val pp_verdicts : Format.formatter -> verdicts -> unit

(** {1 Domain-erased driver} *)

type summary = {
  domain : Analyzer.domain;
  locksets : bool;
  rounds : int;  (** ensemble fixpoint rounds *)
  widenings : int;
  stmt_visits : int;
  status : Budget.status;
  shared : string list;  (** interference variables, sorted *)
  protected_ : (string * string) list;
      (** (variable, protecting lock), locksets mode only *)
  interference : (string * string) list;
      (** (variable, printed abstract interference) *)
  bindings : (string * string) list;
      (** (variable, printed abstract over-approximation of every value
          it ever holds) *)
  verdicts : verdicts;
  check :
    (Cobegin_semantics.Value.loc * Cobegin_semantics.Value.t) list ->
    (Cobegin_semantics.Value.loc * Cobegin_semantics.Value.t) list;
      (** soundness oracle: the sublist of concrete store bindings NOT
          contained in the abstract results (empty = contained) *)
}

val run :
  ?domain:Analyzer.domain ->
  ?locksets:bool ->
  ?widen_after:int ->
  ?max_rounds:int ->
  ?budget:Budget.t ->
  ?probe:Cobegin_obs.Probe.t ->
  Ast.program ->
  summary
(** Defaults: intervals (with widening thresholds harvested from the
    program's integer constants), locksets on, widening from round 2,
    at most 200 rounds (then [Truncated (Fuel _)]). *)

val pp_summary : Format.formatter -> summary -> unit
