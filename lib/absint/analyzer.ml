(* Ready-made instantiations of the abstract machine and a domain-agnostic
   driver.  The analyses in Cobegin_analysis consume the [Alog.t] this
   produces, independent of the numeric domain chosen. *)

open Cobegin_domains

module Interval_machine = Machine.Make (Interval)
module Const_machine = Machine.Make (Const)
module Sign_machine = Machine.Make (Sign)
module Parity_machine = Machine.Make (Parity)
module Int_parity_machine = Machine.Make (Int_parity)

type domain = Intervals | Constants | Signs | Parities | Interval_parity

let pp_domain ppf d =
  Format.pp_print_string ppf
    (match d with
    | Intervals -> "intervals"
    | Constants -> "constants"
    | Signs -> "signs"
    | Parities -> "parity"
    | Interval_parity -> "interval×parity")

let domain_of_string = function
  | "intervals" | "interval" -> Some Intervals
  | "constants" | "const" -> Some Constants
  | "signs" | "sign" -> Some Signs
  | "parity" -> Some Parities
  | "interval-parity" | "intparity" -> Some Interval_parity
  | _ -> None

(* Domain-independent result summary. *)
type summary = {
  domain : domain;
  folding : Machine.folding;
  abstract_configs : int;
  revisits : int;
  widenings : int;
  max_frontier : int;
  finals : int;
  errors : int;
  status : Budget.status;
  log : Alog.t;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "[%a/%a] abstract configurations=%d revisits=%d widenings=%d finals=%d errors=%d%a"
    pp_domain s.domain Machine.pp_folding s.folding s.abstract_configs
    s.revisits s.widenings s.finals s.errors
    (fun ppf -> function
      | Budget.Complete -> ()
      | st -> Format.fprintf ppf " %a" Budget.pp_status st)
    s.status

let analyze ?(domain = Intervals) ?(folding = Machine.Control) ?widen_after
    ?max_configs ?budget ?max_iterations ?probe ?(k_pstring = 8)
    ?(max_call_depth = 64) (prog : Cobegin_lang.Ast.program) : summary =
  let pack ~abstract_configs ~revisits ~widenings ~max_frontier ~finals
      ~errors ~status ~log =
    {
      domain;
      folding;
      abstract_configs;
      revisits;
      widenings;
      max_frontier;
      finals;
      errors;
      status;
      log;
    }
  in
  match domain with
  | Intervals ->
      let module M = Interval_machine in
      let ctx = M.make_ctx ~params:{ M.k_pstring; max_call_depth } prog in
      let r =
        M.explore ~folding ?widen_after ?max_configs ?budget ?max_iterations
          ?probe ctx
      in
      pack ~abstract_configs:r.M.stats.M.abstract_configs
        ~revisits:r.M.stats.M.revisits ~widenings:r.M.stats.M.widenings
        ~max_frontier:r.M.stats.M.max_frontier ~finals:r.M.stats.M.finals
        ~errors:r.M.stats.M.errors ~status:r.M.status ~log:r.M.log
  | Constants ->
      let module M = Const_machine in
      let ctx = M.make_ctx ~params:{ M.k_pstring; max_call_depth } prog in
      let r =
        M.explore ~folding ?widen_after ?max_configs ?budget ?max_iterations
          ?probe ctx
      in
      pack ~abstract_configs:r.M.stats.M.abstract_configs
        ~revisits:r.M.stats.M.revisits ~widenings:r.M.stats.M.widenings
        ~max_frontier:r.M.stats.M.max_frontier ~finals:r.M.stats.M.finals
        ~errors:r.M.stats.M.errors ~status:r.M.status ~log:r.M.log
  | Signs ->
      let module M = Sign_machine in
      let ctx = M.make_ctx ~params:{ M.k_pstring; max_call_depth } prog in
      let r =
        M.explore ~folding ?widen_after ?max_configs ?budget ?max_iterations
          ?probe ctx
      in
      pack ~abstract_configs:r.M.stats.M.abstract_configs
        ~revisits:r.M.stats.M.revisits ~widenings:r.M.stats.M.widenings
        ~max_frontier:r.M.stats.M.max_frontier ~finals:r.M.stats.M.finals
        ~errors:r.M.stats.M.errors ~status:r.M.status ~log:r.M.log
  | Parities ->
      let module M = Parity_machine in
      let ctx = M.make_ctx ~params:{ M.k_pstring; max_call_depth } prog in
      let r =
        M.explore ~folding ?widen_after ?max_configs ?budget ?max_iterations
          ?probe ctx
      in
      pack ~abstract_configs:r.M.stats.M.abstract_configs
        ~revisits:r.M.stats.M.revisits ~widenings:r.M.stats.M.widenings
        ~max_frontier:r.M.stats.M.max_frontier ~finals:r.M.stats.M.finals
        ~errors:r.M.stats.M.errors ~status:r.M.status ~log:r.M.log
  | Interval_parity ->
      let module M = Int_parity_machine in
      let ctx = M.make_ctx ~params:{ M.k_pstring; max_call_depth } prog in
      let r =
        M.explore ~folding ?widen_after ?max_configs ?budget ?max_iterations
          ?probe ctx
      in
      pack ~abstract_configs:r.M.stats.M.abstract_configs
        ~revisits:r.M.stats.M.revisits ~widenings:r.M.stats.M.widenings
        ~max_frontier:r.M.stats.M.max_frontier ~finals:r.M.stats.M.finals
        ~errors:r.M.stats.M.errors ~status:r.M.status ~log:r.M.log
