(* The abstract machine (paper sections 4 and 6): an abstract
   interpretation of the interleaving semantics.  Mirrors the concrete
   machine of Cobegin_semantics, but over abstract values, site-based
   abstract locations, instance-erased k-limited procedure strings, and —
   crucially — a pluggable *folding* of configurations:

     Exact    no folding beyond abstract values: configurations compare
              with their stores (terminates only for loop-free programs);
     Control  fold configurations with the same control skeleton, joining
              their stores (Taylor's concurrency states [Tay83]: the
              "dangling links" of the paper's Figure 3 merge);
     Clan     additionally forget *which* branch of a cobegin a process
              is (fold by the multiset of shapes): McDowell's clans
              [McD89]; symmetric branches collapse.

   The machine is a functor over the numeric domain (intervals by
   default; constants, signs, parity also instantiate). *)

open Cobegin_lang
open Cobegin_domains

type folding = Exact | Control | Clan

(* Telemetry handles: defined once outside the functor so every numeric
   domain's machine shares the same registered counters.  No-ops (one
   branch) while telemetry is disabled. *)
module Obs_metrics = Cobegin_obs.Metrics
module Obs_probe = Cobegin_obs.Probe

(* Engine-namespaced like the concrete engines' [space.*] / [stubborn.*]
   families, so [--metrics] output lines up column-for-column. *)
let m_widenings = Obs_metrics.counter "abstract.widenings"
let m_fold_hits = Obs_metrics.counter "abstract.fold_hits"
let g_abs_frontier = Obs_metrics.gauge "abstract.frontier"
let g_abs_visited = Obs_metrics.gauge "abstract.visited"

let pp_folding ppf f =
  Format.pp_print_string ppf
    (match f with Exact -> "exact" | Control -> "control" | Clan -> "clan")

module Make (N : Lattice.NUMERIC) = struct
  module V = Aval.Make (N)
  module SM = Map.Make (String)
  module AM = Map.Make (Aloc.Ordered)

  type apid = (int * int) list (* fork path, as in the concrete machine *)

  let compare_apid = List.compare (fun (a, b) (c, d) ->
      let x = Int.compare a c in
      if x <> 0 then x else Int.compare b d)

  module PM = Map.Make (struct
    type t = apid

    let compare = compare_apid
  end)

  type env = Aloc.Set.t SM.t

  type item =
    | AIstmt of Ast.stmt
    | AIpop of env
    | AIret of { dest : Ast.lvalue option; saved_env : env; site : int }
    | AIjoin of { cob : int; children : apid list }

  type shape = { env : env; stack : item list; apstr : Pstring.t }

  type config = {
    procs : shape PM.t;
    store : V.t AM.t;
    multi : Aloc.Set.t; (* alocs that may denote several live cells *)
    err : bool;
  }

  type params = {
    k_pstring : int; (* procedure-string depth limit *)
    max_call_depth : int;
        (* recursion bound: deeper abstract calls are flagged as errors
           ("analysis gave up on this path") instead of growing the
           control space without bound *)
  }

  let default_params = { k_pstring = 8; max_call_depth = 64 }

  type ctx = {
    prog : Ast.program;
    params : params;
    log : Alog.t ref; (* global instrumentation log *)
  }

  let make_ctx ?(params = default_params) prog =
    { prog; params; log = ref Alog.empty }

  (* --- environments --- *)

  let env_find x (e : env) =
    match SM.find_opt x e with Some s -> s | None -> Aloc.Set.bottom

  let env_bind x alocs (e : env) = SM.add x alocs e

  let env_join (a : env) (b : env) =
    SM.union (fun _ s1 s2 -> Some (Aloc.Set.union s1 s2)) a b

  let env_equal = SM.equal Aloc.Set.equal

  (* --- store --- *)

  let store_find l (st : V.t AM.t) =
    match AM.find_opt l st with Some v -> v | None -> V.bottom

  let store_join = AM.union (fun _ v1 v2 -> Some (V.join v1 v2))

  let store_widen (old_ : V.t AM.t) (new_ : V.t AM.t) =
    AM.union (fun _ v1 v2 -> Some (V.widen v1 v2)) old_ new_

  let store_leq a b = AM.for_all (fun l v -> V.leq v (store_find l b)) a

  let store_equal = AM.equal V.equal

  (* Weak or strong write: strong when the target is a single abstract
     location that denotes at most one live concrete cell. *)
  let write targets v multi st =
    match Aloc.Set.elements targets with
    | [ l ] when not (Aloc.Set.mem l multi) -> AM.add l v st
    | ls -> List.fold_left (fun st l -> AM.add l (V.join v (store_find l st)) st) st ls

  (* Allocation: a site allocated while already live becomes multi. *)
  let allocate l v (multi, st) =
    let multi = if AM.mem l st then Aloc.Set.add l multi else multi in
    (multi, AM.add l (V.join v (store_find l st)) st)
    (* join at allocation: under multi the old cells persist *)

  (* --- instrumentation --- *)

  let log_access ctx ~label ~aloc ~kind ~apstr =
    ctx.log :=
      Alog.add_access { Alog.label; aloc; kind; apstr } !(ctx.log)

  let log_reads ctx ~label ~apstr alocs =
    Aloc.Set.iter
      (fun aloc -> log_access ctx ~label ~aloc ~kind:Alog.Read ~apstr)
      alocs

  let log_writes ctx ~label ~apstr alocs =
    Aloc.Set.iter
      (fun aloc -> log_access ctx ~label ~aloc ~kind:Alog.Write ~apstr)
      alocs

  let log_alloc ctx ~aloc ~site ~birth =
    ctx.log := Alog.add_alloc { Alog.al_aloc = aloc; al_site = site; al_birth = birth } !(ctx.log)

  (* --- abstract expression evaluation --- *)

  (* Evaluation returns the abstract value and the abstract locations
     read.  A "definitely erroneous" evaluation returns bottom; the
     caller raises the error flag when the result of a needed evaluation
     is bottom. *)
  let rec eval ctx (env : env) store (reads : Aloc.Set.t ref) e : V.t =
    match e with
    | Ast.Eint n -> V.of_int n
    | Ast.Ebool b -> V.of_bool b
    | Ast.Evar x ->
        let alocs = env_find x env in
        if Aloc.Set.is_bottom alocs then
          if Ast.has_proc ctx.prog x then V.of_fun x else V.bottom
        else begin
          reads := Aloc.Set.union alocs !reads;
          Aloc.Set.fold (fun l acc -> V.join acc (store_find l store)) alocs V.bottom
        end
    | Ast.Eaddr x ->
        let alocs = env_find x env in
        if Aloc.Set.is_bottom alocs then V.bottom else V.of_alocs alocs
    | Ast.Ederef e1 ->
        let v1 = eval ctx env store reads e1 in
        let targets = v1.V.ptrs in
        if Aloc.Set.is_bottom targets then V.bottom
        else begin
          reads := Aloc.Set.union targets !reads;
          Aloc.Set.fold
            (fun l acc -> V.join acc (store_find l store))
            targets V.bottom
        end
    | Ast.Eunop (op, e1) -> (
        let v = eval ctx env store reads e1 in
        match op with Ast.Not -> V.not_ v | Ast.Neg -> V.neg v)
    | Ast.Ebinop (op, e1, e2) ->
        let v1 = eval ctx env store reads e1 in
        let v2 = eval ctx env store reads e2 in
        eval_binop op v1 v2

  and eval_binop op v1 v2 =
    match op with
    | Ast.Add ->
        (* pointer arithmetic folds into the same abstract block *)
        let num = V.add v1 v2 in
        let ptrs = Aloc.Set.union v1.V.ptrs v2.V.ptrs in
        { num with V.ptrs }
    | Ast.Sub ->
        let num = V.sub v1 v2 in
        { num with V.ptrs = v1.V.ptrs }
    | Ast.Mul -> V.mul v1 v2
    | Ast.Div -> V.div v1 v2
    | Ast.Eq -> V.cmp_eq v1 v2
    | Ast.Ne -> V.cmp_ne v1 v2
    | Ast.Lt -> V.cmp_lt v1 v2
    | Ast.Le -> V.cmp_le v1 v2
    | Ast.Gt -> V.cmp_gt v1 v2
    | Ast.Ge -> V.cmp_ge v1 v2
    | Ast.And -> V.and_ v1 v2
    | Ast.Or -> V.or_ v1 v2

  (* Targets of an lvalue. *)
  let lvalue_targets ctx env store reads = function
    | Ast.Lvar x -> env_find x env
    | Ast.Lderef e ->
        let v = eval ctx env store reads e in
        v.V.ptrs

  (* --- normalization --- *)

  let rec normalize_shape (s : shape) : shape option =
    match s.stack with
    | [] -> None
    | AIstmt { kind = Ast.Sblock ss; _ } :: rest ->
        let items = List.map (fun st -> AIstmt st) ss in
        normalize_shape { s with stack = items @ (AIpop s.env :: rest) }
    | AIpop env :: rest -> normalize_shape { s with env; stack = rest }
    | (AIstmt _ | AIret _ | AIjoin _) :: _ -> Some s

  let normalize (c : config) : config =
    let procs =
      PM.fold
        (fun apid sh acc ->
          match normalize_shape sh with
          | Some sh' -> PM.add apid sh' acc
          | None -> PM.remove apid acc)
        c.procs c.procs
    in
    { c with procs }

  let init ctx : config =
    let entry = Ast.entry_proc ctx.prog in
    let sh = { env = SM.empty; stack = [ AIstmt entry.Ast.body ]; apstr = Pstring.empty } in
    normalize
      { procs = PM.singleton [] sh; store = AM.empty; multi = Aloc.Set.bottom; err = false }

  (* --- enabledness --- *)

  let enabled ctx (c : config) (apid, sh) : bool =
    match sh.stack with
    | [] -> false
    | AIpop _ :: _ -> assert false
    | AIret _ :: _ -> true
    | AIjoin { children; _ } :: _ ->
        List.for_all (fun child -> not (PM.mem child c.procs)) children
    | AIstmt s :: _ -> (
        ignore apid;
        match s.Ast.kind with
        | Ast.Sawait e ->
            let v = eval ctx sh.env c.store (ref Aloc.Set.bottom) e in
            Bool3.may_be_true v.V.bool3 || V.is_bottom v (* error fires *)
        | Ast.Sacquire x ->
            let alocs = env_find x sh.env in
            Aloc.Set.is_bottom alocs
            || Aloc.Set.exists
                 (fun l -> N.contains (store_find l c.store).V.num 0)
                 alocs
        | _ -> true)

  let enabled_shapes ctx c =
    if c.err then []
    else List.filter (enabled ctx c) (PM.bindings c.procs)

  (* --- abstract transitions --- *)

  let apstr_exit p = match p with [] -> [] | _ -> Pstring.exit_frame p

  let abstract_pstr ctx p = Pstring.abstract ~k:ctx.params.k_pstring p

  (* Replace shape of [apid] and normalize. *)
  let commit apid sh (c : config) : config =
    normalize { c with procs = PM.add apid sh c.procs }

  let err_config (c : config) = { c with err = true }

  (* Branch-condition refinement: when the condition is a comparison of a
     variable bound to a single non-multi location, narrow its stored
     value in the corresponding successor. *)
  let refine ctx env store multi cond ~branch =
    let refinable x =
      match Aloc.Set.elements (env_find x env) with
      | [ l ] when not (Aloc.Set.mem l multi) -> Some l
      | _ -> None
    in
    let narrow x f other =
      match refinable x with
      | None -> store
      | Some l ->
          let v = store_find l store in
          let rhs = eval ctx env store (ref Aloc.Set.bottom) other in
          let v' = { v with V.num = f v.V.num rhs.V.num } in
          AM.add l v' store
    in
    match cond with
    | Ast.Ebinop (op, Ast.Evar x, e2) -> (
        match (op, branch) with
        | Ast.Lt, true -> narrow x N.assume_lt e2
        | Ast.Lt, false -> narrow x N.assume_ge e2
        | Ast.Le, true -> narrow x N.assume_le e2
        | Ast.Le, false -> narrow x N.assume_gt e2
        | Ast.Gt, true -> narrow x N.assume_gt e2
        | Ast.Gt, false -> narrow x N.assume_le e2
        | Ast.Ge, true -> narrow x N.assume_ge e2
        | Ast.Ge, false -> narrow x N.assume_lt e2
        | Ast.Eq, true -> narrow x N.assume_eq e2
        | Ast.Eq, false -> narrow x N.assume_ne e2
        | Ast.Ne, true -> narrow x N.assume_ne e2
        | Ast.Ne, false -> narrow x N.assume_eq e2
        | _ -> store)
    | _ -> store

  (* Execute one simple statement abstractly, threading (env, store,
     multi).  Returns the successor state when the statement may succeed
     and a flag saying whether it may also fail (an assert whose
     condition is possibly false yields both). *)
  let exec_simple ctx apid apstr (env, store, multi) (s : Ast.stmt) :
      (env * V.t AM.t * Aloc.Set.t) option * bool =
    ignore apid;
    let label = s.Ast.label in
    match s.Ast.kind with
    | Ast.Sskip -> (Some (env, store, multi), false)
    | Ast.Sdecl (x, e) ->
        let reads = ref Aloc.Set.bottom in
        let v = eval ctx env store reads e in
        let aloc = Aloc.Adecl { site = label; var = x } in
        let multi, store = allocate aloc v (multi, store) in
        log_reads ctx ~label ~apstr !reads;
        log_writes ctx ~label ~apstr (Aloc.Set.singleton aloc);
        log_alloc ctx ~aloc ~site:label ~birth:apstr;
        (Some (env_bind x (Aloc.Set.singleton aloc) env, store, multi), false)
    | Ast.Sassign (lv, e) ->
        let reads = ref Aloc.Set.bottom in
        let v = eval ctx env store reads e in
        let targets = lvalue_targets ctx env store reads lv in
        if Aloc.Set.is_bottom targets then (None, true)
        else begin
          log_reads ctx ~label ~apstr !reads;
          log_writes ctx ~label ~apstr targets;
          (Some (env, write targets v multi store, multi), false)
        end
    | Ast.Sassert e ->
        let reads = ref Aloc.Set.bottom in
        let v = eval ctx env store reads e in
        log_reads ctx ~label ~apstr !reads;
        ( (if Bool3.may_be_true v.V.bool3 then Some (env, store, multi)
           else None),
          Bool3.may_be_false v.V.bool3 || V.is_bottom v )
    | _ -> invalid_arg "Machine.exec_simple"

  (* Successors of firing shape [apid]. *)
  let fire ctx (c : config) (apid, sh) : config list =
    let store = c.store and multi = c.multi in
    let apstr = sh.apstr in
    match sh.stack with
    | [] | AIpop _ :: _ -> assert false
    | AIjoin _ :: rest -> [ commit apid { sh with stack = rest } c ]
    | AIret { dest; saved_env; site } :: rest ->
        let caller_pstr = apstr_exit apstr in
        let c' =
          match dest with
          | None -> c
          | Some lv ->
              let reads = ref Aloc.Set.bottom in
              let targets = lvalue_targets ctx saved_env store reads lv in
              if Aloc.Set.is_bottom targets then err_config c
              else begin
                log_reads ctx ~label:site ~apstr:caller_pstr !reads;
                log_writes ctx ~label:site ~apstr:caller_pstr targets;
                { c with store = write targets V.zero multi store }
              end
        in
        if c'.err then [ c' ]
        else
          [
            commit apid
              { env = saved_env; stack = rest; apstr = apstr_exit apstr }
              c';
          ]
    | AIstmt s :: rest -> (
        let label = s.Ast.label in
        match s.Ast.kind with
        | Ast.Sfence -> [ commit apid { sh with stack = rest } c ]
        | Ast.Sskip | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sassert _ -> (
            match exec_simple ctx apid apstr (sh.env, store, multi) s with
            | Some (env, store, multi), may_fail ->
                (if may_fail then [ err_config c ] else [])
                @ [
                    commit apid { sh with env; stack = rest }
                      { c with store; multi };
                  ]
            | None, _ -> [ err_config c ])
        | Ast.Satomic ss -> (
            let rec go acc failed = function
              | [] -> (Some acc, failed)
              | s' :: tl -> (
                  match exec_simple ctx apid apstr acc s' with
                  | Some acc, f -> go acc (failed || f) tl
                  | None, _ -> (None, true))
            in
            match go (sh.env, store, multi) false ss with
            | Some (env, store, multi), may_fail ->
                (if may_fail then [ err_config c ] else [])
                @ [
                    commit apid { sh with env; stack = rest }
                      { c with store; multi };
                  ]
            | None, _ -> [ err_config c ])
        | Ast.Smalloc (lv, e) ->
            let reads = ref Aloc.Set.bottom in
            let _size = eval ctx sh.env store reads e in
            let aloc = Aloc.Asite { site = label } in
            let multi, store = allocate aloc V.zero (multi, store) in
            let targets = lvalue_targets ctx sh.env store reads lv in
            if Aloc.Set.is_bottom targets then [ err_config c ]
            else begin
              log_reads ctx ~label ~apstr !reads;
              log_writes ctx ~label ~apstr targets;
              log_alloc ctx ~aloc ~site:label ~birth:apstr;
              let store = write targets (V.of_aloc aloc) multi store in
              [ commit apid { sh with stack = rest } { c with store; multi } ]
            end
        | Ast.Sfree e ->
            (* abstract free keeps the cells (weak free): sound for the
               analyses; dangling detection is a concrete-engine concern *)
            let reads = ref Aloc.Set.bottom in
            let v = eval ctx sh.env store reads e in
            log_reads ctx ~label ~apstr !reads;
            log_writes ctx ~label ~apstr v.V.ptrs;
            [ commit apid { sh with stack = rest } c ]
        | Ast.Scall (dest, callee, args) -> (
            let depth =
              List.length
                (List.filter
                   (function AIret _ -> true | _ -> false)
                   sh.stack)
            in
            if depth >= ctx.params.max_call_depth then [ err_config c ]
            else
            let reads = ref Aloc.Set.bottom in
            let cv = eval ctx sh.env store reads callee in
            let fnames = V.FunSet.elements cv.V.funs in
            log_reads ctx ~label ~apstr !reads;
            match fnames with
            | [] -> [ err_config c ]
            | _ ->
                List.map
                  (fun fname ->
                    match Ast.find_proc ctx.prog fname with
                    | None -> err_config c
                    | Some callee_proc ->
                        if
                          List.length args
                          <> List.length callee_proc.Ast.params
                        then err_config c
                        else begin
                          let arg_reads = ref Aloc.Set.bottom in
                          let arg_vals =
                            List.map (eval ctx sh.env store arg_reads) args
                          in
                          log_reads ctx ~label ~apstr !arg_reads;
                          let new_pstr =
                            abstract_pstr ctx
                              (Pstring.enter_call ~proc:fname ~site:label
                                 ~inst:0 apstr)
                          in
                          let multi, store, env' =
                            List.fold_left2
                              (fun (multi, store, env') (i, x) v ->
                                let aloc =
                                  Aloc.Aparam { proc = fname; idx = i; var = x }
                                in
                                let multi, store =
                                  allocate aloc v (multi, store)
                                in
                                log_writes ctx ~label ~apstr:new_pstr
                                  (Aloc.Set.singleton aloc);
                                log_alloc ctx ~aloc ~site:label
                                  ~birth:new_pstr;
                                ( multi,
                                  store,
                                  env_bind x (Aloc.Set.singleton aloc) env' ))
                              (multi, store, SM.empty)
                              (List.mapi (fun i x -> (i, x)) callee_proc.Ast.params)
                              arg_vals
                          in
                          let sh' =
                            {
                              env = env';
                              apstr = new_pstr;
                              stack =
                                AIstmt callee_proc.Ast.body
                                :: AIret { dest; saved_env = sh.env; site = label }
                                :: rest;
                            }
                          in
                          commit apid sh' { c with store; multi }
                        end)
                  fnames)
        | Ast.Sreturn e_opt -> (
            let reads = ref Aloc.Set.bottom in
            let v =
              match e_opt with
              | Some e -> eval ctx sh.env store reads e
              | None -> V.zero
            in
            log_reads ctx ~label ~apstr !reads;
            let rec unwind = function
              | AIret { dest; saved_env; site } :: tl ->
                  Some (dest, saved_env, site, tl)
              | AIjoin _ :: _ -> None
              | (AIpop _ | AIstmt _) :: tl -> unwind tl
              | [] -> None
            in
            match unwind rest with
            | None -> [ err_config c ]
            | Some (dest, saved_env, site, tail) ->
                let caller_pstr = apstr_exit apstr in
                let c' =
                  match dest with
                  | None -> c
                  | Some lv ->
                      let r2 = ref Aloc.Set.bottom in
                      let targets =
                        lvalue_targets ctx saved_env store r2 lv
                      in
                      if Aloc.Set.is_bottom targets then err_config c
                      else begin
                        log_reads ctx ~label:site ~apstr:caller_pstr !r2;
                        log_writes ctx ~label:site ~apstr:caller_pstr targets;
                        { c with store = write targets v multi store }
                      end
                in
                if c'.err then [ c' ]
                else
                  [
                    commit apid
                      {
                        env = saved_env;
                        stack = tail;
                        apstr = apstr_exit apstr;
                      }
                      c';
                  ])
        | Ast.Sif (e, s1, s2) ->
            let reads = ref Aloc.Set.bottom in
            let v = eval ctx sh.env store reads e in
            log_reads ctx ~label ~apstr !reads;
            let succs = ref [] in
            if Bool3.may_be_true v.V.bool3 then begin
              let store' = refine ctx sh.env store multi e ~branch:true in
              succs :=
                commit apid
                  { sh with stack = AIstmt s1 :: rest }
                  { c with store = store' }
                :: !succs
            end;
            if Bool3.may_be_false v.V.bool3 then begin
              let store' = refine ctx sh.env store multi e ~branch:false in
              succs :=
                commit apid
                  { sh with stack = AIstmt s2 :: rest }
                  { c with store = store' }
                :: !succs
            end;
            if !succs = [] then [ err_config c ] else !succs
        | Ast.Swhile (e, body) ->
            let reads = ref Aloc.Set.bottom in
            let v = eval ctx sh.env store reads e in
            log_reads ctx ~label ~apstr !reads;
            let succs = ref [] in
            if Bool3.may_be_true v.V.bool3 then begin
              let store' = refine ctx sh.env store multi e ~branch:true in
              succs :=
                commit apid
                  { sh with stack = AIstmt body :: AIstmt s :: rest }
                  { c with store = store' }
                :: !succs
            end;
            if Bool3.may_be_false v.V.bool3 then begin
              let store' = refine ctx sh.env store multi e ~branch:false in
              succs :=
                commit apid { sh with stack = rest } { c with store = store' }
                :: !succs
            end;
            if !succs = [] then [ err_config c ] else !succs
        | Ast.Scobegin bs ->
            let children =
              List.mapi
                (fun i b ->
                  let cpid = apid @ [ (label, i) ] in
                  let cpstr =
                    abstract_pstr ctx
                      (Pstring.enter_branch ~cob:label ~idx:i ~inst:0 apstr)
                  in
                  (cpid, { env = sh.env; stack = [ AIstmt b ]; apstr = cpstr }))
                bs
            in
            let parent =
              {
                sh with
                stack =
                  AIjoin { cob = label; children = List.map fst children }
                  :: rest;
              }
            in
            let procs =
              List.fold_left
                (fun procs (cpid, csh) -> PM.add cpid csh procs)
                (PM.add apid parent c.procs)
                children
            in
            [ normalize { c with procs } ]
        | Ast.Sawait e ->
            let reads = ref Aloc.Set.bottom in
            let v = eval ctx sh.env store reads e in
            log_reads ctx ~label ~apstr !reads;
            if V.is_bottom v then [ err_config c ]
            else if Bool3.may_be_true v.V.bool3 then
              let store' = refine ctx sh.env store multi e ~branch:true in
              [ commit apid { sh with stack = rest } { c with store = store' } ]
            else []
        | Ast.Sacquire x ->
            let alocs = env_find x sh.env in
            if Aloc.Set.is_bottom alocs then [ err_config c ]
            else begin
              log_reads ctx ~label ~apstr alocs;
              log_writes ctx ~label ~apstr alocs;
              (* acquiring sets the lock to 1 *)
              let store = write alocs (V.of_int 1) multi store in
              [ commit apid { sh with stack = rest } { c with store } ]
            end
        | Ast.Srelease x ->
            let alocs = env_find x sh.env in
            if Aloc.Set.is_bottom alocs then [ err_config c ]
            else begin
              log_writes ctx ~label ~apstr alocs;
              let store = write alocs (V.of_int 0) multi store in
              [ commit apid { sh with stack = rest } { c with store } ]
            end
        | Ast.Sblock _ -> assert false)

  (* --- configuration keys and folding (paper section 6) --- *)

  (* Control skeleton of a stack item.  With [`Labels] statements are
     identified by label (Control folding); with [`Text] by their concrete
     syntax, so that alpha-identical code points coincide (Clan folding,
     McDowell's "same sequence of statements"). *)
  let item_skeleton mode = function
    | AIstmt s -> (
        match mode with
        | `Labels -> Printf.sprintf "s%d" s.Ast.label
        | `Text -> "t:" ^ Pretty.stmt_to_string s)
    | AIpop _ -> "pop"
    | AIret { dest; site; _ } ->
        (* branch identity is forgotten under Clan folding: the call
           site would re-distinguish alpha-identical branches *)
        (match mode with
        | `Labels -> Printf.sprintf "ret%d:" site
        | `Text -> "ret:")
        ^ (match dest with
          | None -> ""
          | Some lv -> Format.asprintf "%a" Pretty.pp_lvalue lv)
    | AIjoin { cob; children } -> (
        match mode with
        | `Labels ->
            Format.asprintf "join:%d:%a" cob
              (Format.pp_print_list (fun ppf p ->
                   Format.fprintf ppf "%s"
                     (String.concat "."
                        (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) p))))
              children
        | `Text -> Printf.sprintf "join:%d:%d" cob (List.length children))

  let shape_skeleton mode sh =
    String.concat ";" (List.map (item_skeleton mode) sh.stack)

  (* Branch indices erased from procedure strings under Clan folding. *)
  let clan_pstr sh =
    Pstring.frames sh.apstr
    |> List.map (function
         | Pstring.Fcall { proc; _ } -> Printf.sprintf "c%s" proc
         | Pstring.Fbranch { cob; _ } -> Printf.sprintf "b%d" cob)
    |> String.concat "."

  type key = string

  (* Folding keys are long strings rebuilt per visit; interning them
     into small ids (full-width string hash, see Cobegin_hash) makes
     the worklist table int-keyed: revisit probes stop re-hashing and
     re-comparing whole key strings. *)
  module Key_pool = Cobegin_hash.Pool (struct
    type t = key

    let equal = String.equal
    let hash = Cobegin_hash.hash_string
  end)

  module Key_tbl = Hashtbl.Make (Int)

  let apid_string apid =
    String.concat "." (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) apid)

  let store_string store =
    AM.bindings store
    |> List.map (fun (l, v) ->
           Format.asprintf "%a=%a" Aloc.pp l V.pp v)
    |> String.concat ","

  let env_string env =
    SM.bindings env
    |> List.map (fun (x, s) -> Format.asprintf "%s=%a" x Aloc.Set.pp s)
    |> String.concat ","

  let key_of ~folding (c : config) : key =
    let err = if c.err then "ERR|" else "" in
    match folding with
    | Exact ->
        err
        ^ String.concat "|"
            (List.map
               (fun (apid, sh) ->
                 apid_string apid ^ "@" ^ shape_skeleton `Labels sh ^ "@"
                 ^ env_string sh.env ^ "@"
                 ^ Pstring.to_string sh.apstr)
               (PM.bindings c.procs))
        ^ "||" ^ store_string c.store
    | Control ->
        err
        ^ String.concat "|"
            (List.map
               (fun (apid, sh) ->
                 apid_string apid ^ "@" ^ shape_skeleton `Labels sh ^ "@"
                 ^ Pstring.to_string sh.apstr)
               (PM.bindings c.procs))
    | Clan ->
        let shapes =
          List.map
            (fun (_, sh) -> shape_skeleton `Text sh ^ "@" ^ clan_pstr sh)
            (PM.bindings c.procs)
        in
        err ^ String.concat "|" (List.sort String.compare shapes)

  (* Join of two configurations with the same key.  Under Control the
     process maps have identical skeletons: environments (including the
     ones saved in stack frames) join pointwise.  Under Clan the incoming
     state's store/multi join into the representative.  Under Exact the
     states are identical. *)
  let join_item i1 i2 =
    match (i1, i2) with
    | AIstmt s, AIstmt _ -> AIstmt s
    | AIpop e1, AIpop e2 -> AIpop (env_join e1 e2)
    | AIret r1, AIret r2 ->
        AIret { r1 with saved_env = env_join r1.saved_env r2.saved_env }
    | AIjoin j, AIjoin _ -> AIjoin j
    | _ -> invalid_arg "Machine.join_item: skeleton mismatch"

  let join_shape s1 s2 =
    {
      env = env_join s1.env s2.env;
      stack = List.map2 join_item s1.stack s2.stack;
      apstr = s1.apstr;
    }

  let join_config ~folding (old_ : config) (new_ : config) : config =
    match folding with
    | Exact -> old_
    | Clan ->
        {
          old_ with
          store = store_join old_.store new_.store;
          multi = Aloc.Set.union old_.multi new_.multi;
        }
    | Control ->
        {
          procs =
            PM.merge
              (fun _ a b ->
                match (a, b) with
                | Some s1, Some s2 -> Some (join_shape s1 s2)
                | Some s, None | None, Some s -> Some s
                | None, None -> None)
              old_.procs new_.procs;
          store = store_join old_.store new_.store;
          multi = Aloc.Set.union old_.multi new_.multi;
          err = old_.err || new_.err;
        }

  let widen_config (old_ : config) (new_ : config) : config =
    { new_ with store = store_widen old_.store new_.store }

  let config_leq (a : config) (b : config) =
    store_leq a.store b.store
    && Aloc.Set.subset a.multi b.multi
    && PM.for_all
         (fun apid sh ->
           match PM.find_opt apid b.procs with
           | None -> true (* clan folding: shapes matched by key, not apid *)
           | Some sh' ->
               env_equal sh.env sh'.env
               || SM.for_all
                    (fun x s -> Aloc.Set.subset s (env_find x sh'.env))
                    sh.env)
         a.procs

  (* --- exploration --- *)

  type stats = {
    abstract_configs : int;
    revisits : int; (* joins into an existing key *)
    widenings : int;
    max_frontier : int; (* peak size of the worklist *)
    finals : int;
    errors : int;
  }

  type result = {
    stats : stats;
    status : Budget.status;
    log : Alog.t;
    final_stores : V.t AM.t list;
  }

  let pp_stats ppf s =
    Format.fprintf ppf
      "abstract configurations=%d revisits=%d widenings=%d finals=%d errors=%d"
      s.abstract_configs s.revisits s.widenings s.finals s.errors

  (* Worklist exploration with key folding.  [widen_after] visits of the
     same key, joins become widenings, which bounds chains through the
     store lattice.  [max_iterations] is the fixpoint fuel: a cap on
     worklist pops, the last line of defence against slowly converging
     widening chains.  Exhausting any limit stops the run cleanly; the
     table accumulated so far is still a valid under-approximation of
     the abstract graph and the log a valid (partial) instrumentation. *)
  let explore ?(folding = Control) ?(widen_after = 3)
      ?(max_configs = 100_000) ?budget ?max_iterations ?probe ctx : result =
    let budget =
      match budget with
      | Some b -> b
      | None -> Budget.create ~max_configs ()
    in
    let keys = Key_pool.create 256 in
    let table : (config * int) Key_tbl.t = Key_tbl.create 256 in
    let queue = Queue.create () in
    let revisits = ref 0 and widenings = ref 0 and max_frontier = ref 0 in
    let finals = ref [] and errors = ref 0 in
    let iterations = ref 0 in
    let stop = ref None in
    let c0 = init ctx in
    let k0 = Key_pool.intern keys (key_of ~folding c0) in
    Key_tbl.replace table k0 (c0, 0);
    Queue.add k0 queue;
    while !stop = None && not (Queue.is_empty queue) do
      (match max_iterations with
      | Some fuel when !iterations >= fuel -> stop := Some (Budget.Fuel fuel)
      | _ -> (
          match
            Budget.check budget ~configs:(Key_tbl.length table)
              ~transitions:!iterations
          with
          | Some r -> stop := Some r
          | None -> ()));
      if !stop = None then begin
        (match probe with
        | None -> ()
        | Some p ->
            Obs_probe.tick p ~configurations:(Key_tbl.length table)
              ~frontier:(Queue.length queue) ~transitions:!iterations);
        if Obs_metrics.enabled () then begin
          Obs_metrics.set g_abs_frontier (Queue.length queue);
          Obs_metrics.set g_abs_visited (Key_tbl.length table)
        end;
        max_frontier := max !max_frontier (Queue.length queue);
        incr iterations;
        let k = Queue.pop queue in
        match Key_tbl.find_opt table k with
        | None -> ()
        | Some (c, _visits) ->
            if c.err then incr errors
            else if PM.is_empty c.procs then finals := c.store :: !finals
            else
              (* stop the expansion as soon as the budget trips *)
              List.iter
                (fun binding ->
                  if !stop = None then
                    List.iter
                      (fun c' ->
                        if !stop = None then
                          let k' = Key_pool.intern keys (key_of ~folding c') in
                          match Key_tbl.find_opt table k' with
                          | None -> (
                              match
                                Budget.config_guard budget
                                  ~configs:(Key_tbl.length table)
                              with
                              | Some r -> stop := Some r
                              | None ->
                                  Key_tbl.replace table k' (c', 0);
                                  Queue.add k' queue)
                          | Some (old_, v') ->
                              incr revisits;
                              Obs_metrics.incr m_fold_hits;
                              let joined = join_config ~folding old_ c' in
                              if not (config_leq joined old_) then begin
                                let next =
                                  if v' >= widen_after then begin
                                    incr widenings;
                                    Obs_metrics.incr m_widenings;
                                    widen_config old_ joined
                                  end
                                  else joined
                                in
                                Key_tbl.replace table k' (next, v' + 1);
                                Queue.add k' queue
                              end)
                      (fire ctx c binding))
                (enabled_shapes ctx c)
      end
    done;
    {
      status = Budget.status_of !stop;
      stats =
        {
          abstract_configs = Key_tbl.length table;
          revisits = !revisits;
          widenings = !widenings;
          max_frontier = !max_frontier;
          finals = List.length !finals;
          errors = !errors;
        };
      log = !(ctx.log);
      final_stores = !finals;
    }
end
