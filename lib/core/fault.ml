(* Deterministic fault injection (see fault.mli).

   A fault plan is a list of actions, each bound to a named injection
   site and an occurrence number.  Sites call [hit] (or [worker_pop])
   on every pass; the plan keeps one monotonically increasing counter
   per site, so "the nth hit of site s" names one exact program point
   of a deterministic run — replaying the same plan on the same input
   reproduces the same fault.

   The plan is process-global (like the telemetry registry it reports
   through): engines deep in the library graph reach it without
   threading a context, and the disabled path costs one atomic load. *)

module Metrics = Cobegin_obs.Metrics
module Journal = Cobegin_obs.Journal

let m_crashes = Metrics.counter "fault.crashes"
let m_delays = Metrics.counter "fault.delays"
let m_ooms = Metrics.counter "fault.ooms"
let m_kills = Metrics.counter "fault.kills"

type action =
  | Crash_at of { site : string; nth : int }
  | Delay_at of { site : string; nth : int; ms : int }
  | Oom_at of { site : string; nth : int }
  | Kill_worker of { domain : int; nth_pop : int }
  | Flaky_at of { site : string; per_mille : int }

type plan = { actions : action list; seed : int }

exception Injected of { site : string; nth : int; kind : string }

let () =
  Printexc.register_printer (function
    | Injected { site; nth; kind } ->
        Some (Printf.sprintf "injected fault: %s@%s:%d" kind site nth)
    | _ -> None)

(* --- the site catalog --- *)

let known_sites =
  [
    "pipeline.static-lint";
    "pipeline.exploration";
    "pipeline.side-effects";
    "pipeline.dependences";
    "pipeline.lifetimes";
    "pipeline.placement";
    "pipeline.ctgc";
    "pipeline.races";
    "pipeline.critical";
    "pipeline.interfere";
    "space.pop";
    "sleep.pop";
    "reach.pop";
    "races.pop";
    "checkpoint.pop";
    "checkpoint.save";
    "interfere.iter";
  ]

(* "parallel.worker<d>" sites are parameterized by the domain index. *)
let worker_site d = "parallel.worker" ^ string_of_int d

let is_worker_site s =
  String.length s > 15
  && String.sub s 0 15 = "parallel.worker"
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub s 15 (String.length s - 15))

let valid_site s = List.mem s known_sites || is_worker_site s

(* --- parsing and printing --- *)

let to_spec { actions; seed } =
  let entry = function
    | Crash_at { site; nth } -> Printf.sprintf "crash@%s:%d" site nth
    | Delay_at { site; nth; ms } ->
        Printf.sprintf "delay@%s:%d=%dms" site nth ms
    | Oom_at { site; nth } -> Printf.sprintf "oom@%s:%d" site nth
    | Kill_worker { domain; nth_pop } ->
        Printf.sprintf "kill@worker%d:%d" domain nth_pop
    | Flaky_at { site; per_mille } ->
        Printf.sprintf "flaky@%s:%d" site per_mille
  in
  let es = List.map entry actions in
  let es = if seed = 0 then es else es @ [ Printf.sprintf "seed=%d" seed ] in
  String.concat "," es

let parse spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let site_of s =
    if valid_site s then s
    else failwith (Printf.sprintf "unknown injection site %S" s)
  in
  let int_of what s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ -> failwith (Printf.sprintf "bad %s %S" what s)
  in
  try
    let seed = ref 0 in
    let actions =
      List.filter_map
        (fun e ->
          match String.index_opt e '@' with
          | None -> (
              match String.split_on_char '=' e with
              | [ "seed"; n ] ->
                  seed := int_of "seed" n;
                  None
              | _ -> failwith (Printf.sprintf "bad chaos entry %S" e))
          | Some i -> (
              let kind = String.sub e 0 i in
              let rest = String.sub e (i + 1) (String.length e - i - 1) in
              let j =
                match String.rindex_opt rest ':' with
                | Some j -> j
                | None -> failwith (Printf.sprintf "missing :N in %S" e)
              in
              let site = String.sub rest 0 j in
              let arg = String.sub rest (j + 1) (String.length rest - j - 1) in
              match kind with
              | "crash" ->
                  Some (Crash_at { site = site_of site; nth = int_of "nth" arg })
              | "oom" ->
                  Some (Oom_at { site = site_of site; nth = int_of "nth" arg })
              | "flaky" ->
                  let p = int_of "probability" arg in
                  if p > 1000 then
                    failwith "flaky probability is per-mille (0..1000)";
                  Some (Flaky_at { site = site_of site; per_mille = p })
              | "delay" -> (
                  match String.split_on_char '=' arg with
                  | [ nth; ms ] ->
                      let ms =
                        if String.length ms > 2 && String.ends_with ~suffix:"ms" ms
                        then String.sub ms 0 (String.length ms - 2)
                        else ms
                      in
                      Some
                        (Delay_at
                           {
                             site = site_of site;
                             nth = int_of "nth" nth;
                             ms = int_of "delay" ms;
                           })
                  | _ -> failwith (Printf.sprintf "bad delay entry %S" e))
              | "kill" ->
                  if
                    String.length site > 6
                    && String.sub site 0 6 = "worker"
                  then
                    Some
                      (Kill_worker
                         {
                           domain =
                             int_of "domain"
                               (String.sub site 6 (String.length site - 6));
                           nth_pop = int_of "nth" arg;
                         })
                  else
                    failwith
                      (Printf.sprintf "kill target must be workerD, got %S" site)
              | _ -> failwith (Printf.sprintf "unknown chaos action %S" kind)))
        entries
    in
    if actions = [] then Error "empty chaos spec"
    else Ok { actions; seed = !seed }
  with Failure msg -> Error msg

(* --- the installed plan --- *)

type state = {
  plan : plan;
  lock : Mutex.t;
  counts : (string, int) Hashtbl.t; (* per-site hit counters *)
  mutable rng : int64; (* splitmix64 state, for Flaky_at *)
}

let active : state option Atomic.t = Atomic.make None

let install plan =
  Atomic.set active
    (Some
       {
         plan;
         lock = Mutex.create ();
         counts = Hashtbl.create 16;
         rng = Int64.of_int (plan.seed lxor 0x5deece66d);
       })

let clear () = Atomic.set active None

let installed () =
  Option.map (fun st -> st.plan) (Atomic.get active)

let env_var = "COBEGIN_CHAOS"

let hits () =
  match Atomic.get active with
  | None -> []
  | Some st ->
      Mutex.protect st.lock (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.counts [])
      |> List.sort compare

(* splitmix64 step; full avalanche, so consecutive draws are
   independent enough for the per-mille test below. *)
let next_rand st =
  st.rng <- Int64.add st.rng 0x9e3779b97f4a7c15L;
  let z = st.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3fffffffL)

let bump st key =
  Mutex.protect st.lock (fun () ->
      let n =
        (match Hashtbl.find_opt st.counts key with Some n -> n | None -> 0) + 1
      in
      Hashtbl.replace st.counts key n;
      n)

(* Every firing fault journals its exact coordinates (at Error) just
   before it acts, so a flight-recorder dump shows which injection
   pulled the trigger even when the exception is later swallowed by a
   supervisor. *)
let journal_fault ~site ~n ~kind =
  if Journal.enabled () then
    Journal.emit ~level:Journal.Error "fault.injected"
      [
        ("site", Journal.Str site);
        ("nth", Journal.Int n);
        ("kind", Journal.Str kind);
      ]

(* Fire any action bound to (site, n).  Raising actions raise out of
   the instrumented engine; the exceptions carry the exact coordinates
   so supervisors report a replayable diagnostic. *)
let act st ~site ~n =
  List.iter
    (fun a ->
      match a with
      | Crash_at c when c.site = site && c.nth = n ->
          Metrics.incr m_crashes;
          journal_fault ~site ~n ~kind:"crash";
          raise (Injected { site; nth = n; kind = "crash" })
      | Oom_at c when c.site = site && c.nth = n ->
          (* simulated: a real allocation failure raises the same
             exception from the runtime *)
          Metrics.incr m_ooms;
          journal_fault ~site ~n ~kind:"oom";
          raise Out_of_memory
      | Delay_at c when c.site = site && c.nth = n ->
          Metrics.incr m_delays;
          journal_fault ~site ~n ~kind:"delay";
          Unix.sleepf (float_of_int c.ms /. 1000.)
      | Flaky_at c when c.site = site ->
          let r = Mutex.protect st.lock (fun () -> next_rand st) in
          if r mod 1000 < c.per_mille then begin
            Metrics.incr m_crashes;
            journal_fault ~site ~n ~kind:"flaky";
            raise (Injected { site; nth = n; kind = "flaky" })
          end
      | _ -> ())
    st.plan.actions

let hit site =
  match Atomic.get active with
  | None -> ()
  | Some st -> act st ~site ~n:(bump st site)

let worker_pop domain =
  match Atomic.get active with
  | None -> ()
  | Some st ->
      let site = worker_site domain in
      let n = bump st site in
      List.iter
        (fun a ->
          match a with
          | Kill_worker k when k.domain = domain && k.nth_pop = n ->
              Metrics.incr m_kills;
              journal_fault ~site ~n ~kind:"kill";
              raise (Injected { site; nth = n; kind = "kill" })
          | _ -> ())
        st.plan.actions;
      act st ~site ~n
