(* Resource governance shared by every exploration engine: counter
   budgets checked on every probe, wall clock and GC watermark sampled
   periodically.  Engines consult a budget instead of raising, so a run
   that exhausts a limit returns its partial result tagged with the
   reason. *)

type reason =
  | Configs of int
  | Transitions of int
  | Deadline of float
  | Heap_words of int
  | Fuel of int
  | Crash of string (* a stage/engine crash the supervisor gave up on *)

type status = Complete | Truncated of reason

let is_complete = function Complete -> true | Truncated _ -> false

let combine a b =
  match a with Complete -> b | Truncated _ -> a

let pp_reason ppf = function
  | Configs n -> Format.fprintf ppf "configuration budget (%d)" n
  | Transitions n -> Format.fprintf ppf "transition budget (%d)" n
  | Deadline s -> Format.fprintf ppf "deadline (%gs)" s
  | Heap_words n -> Format.fprintf ppf "heap watermark (%d words)" n
  | Fuel n -> Format.fprintf ppf "iteration fuel (%d)" n
  | Crash d -> Format.fprintf ppf "crash (%s)" d

let pp_status ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Truncated r -> Format.fprintf ppf "TRUNCATED (%a)" pp_reason r

let reason_to_string r = Format.asprintf "%a" pp_reason r

let status_to_string = function
  | Complete -> "complete"
  | Truncated r -> "truncated: " ^ reason_to_string r

type t = {
  max_configs : int option;
  max_transitions : int option;
  mutable deadline : float option; (* absolute, Unix.gettimeofday scale *)
  timeout_s : float; (* the relative limit, for reporting *)
  max_heap_words : int option;
  check_every : int;
  ticks : int Atomic.t;
  shared : bool; (* consulted concurrently from several domains *)
  trip : reason option Atomic.t; (* shared mode: the one recorded reason *)
}

let create ?max_configs ?max_transitions ?timeout_s ?max_heap_words
    ?(check_every = 256) ?(shared = false) () =
  {
    max_configs;
    max_transitions;
    deadline =
      Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s;
    timeout_s = Option.value timeout_s ~default:0.;
    max_heap_words;
    check_every = max 1 check_every;
    ticks = Atomic.make 0;
    shared;
    trip = Atomic.make None;
  }

let unlimited () = create ()

(* Re-anchor the wall-clock deadline to "now + timeout_s".  The
   deadline is fixed as an absolute instant at [create]; a process that
   creates its budget at startup and only later begins the governed
   work (resuming a checkpoint after loading and re-interning a large
   snapshot) would otherwise start with part — or all — of its timeout
   already spent.  No-op without a configured timeout.  Not
   domain-safe: call before the governed run starts, never while
   another domain may be consulting [check]. *)
let refresh_deadline t =
  match t.deadline with
  | None -> ()
  | Some _ -> t.deadline <- Some (Unix.gettimeofday () +. t.timeout_s)

let is_shared t = t.shared
let tripped t = Atomic.get t.trip

(* Shared mode: latch the first reason observed by any domain.  The CAS
   succeeds exactly once per budget, so every subsequent caller — on any
   domain, from [check] or [config_guard] — reports the single recorded
   reason instead of racing to a different one. *)
let latch t r =
  if Atomic.compare_and_set t.trip None (Some r) then r
  else match Atomic.get t.trip with Some r' -> r' | None -> r

let config_guard t ~configs =
  if t.shared && Atomic.get t.trip <> None then Atomic.get t.trip
  else
    match t.max_configs with
    | Some m when configs >= m ->
        Some (if t.shared then latch t (Configs m) else Configs m)
    | _ -> None

let check t ~configs ~transitions =
  if t.shared && Atomic.get t.trip <> None then Atomic.get t.trip
  else
    let counters =
      match t.max_configs with
      | Some m when configs >= m -> Some (Configs m)
      | _ -> (
          match t.max_transitions with
          | Some m when transitions >= m -> Some (Transitions m)
          | _ -> None)
    in
    let raw =
      match counters with
      | Some _ as r -> r
      | None ->
          (* clock and GC probes on the sampling period; tick 0 is
             sampled so a zero deadline truncates before any work *)
          let sampled =
            Atomic.fetch_and_add t.ticks 1 mod t.check_every = 0
          in
          if not sampled then None
          else
            let timed_out =
              match t.deadline with
              | Some d when Unix.gettimeofday () >= d ->
                  Some (Deadline t.timeout_s)
              | _ -> None
            in
            (match timed_out with
            | Some _ as r -> r
            | None -> (
                match t.max_heap_words with
                | Some m when (Gc.quick_stat ()).Gc.heap_words >= m ->
                    Some (Heap_words m)
                | _ -> None))
    in
    match raw with
    | Some r when t.shared -> Some (latch t r)
    | r -> r

let status_of = function None -> Complete | Some r -> Truncated r

let reason_label = function
  | Configs _ -> "configs"
  | Transitions _ -> "transitions"
  | Deadline _ -> "deadline_s"
  | Heap_words _ -> "heap_words"
  | Fuel _ -> "fuel"
  | Crash _ -> "crash"

type headroom = { h_reason : reason; h_consumed : float; h_limit : float }

(* Introspection for progress probes and users: consumed-vs-limit per
   configured dimension, without reaching into the internals.  The
   counter entries mirror [check] exactly: an entry with
   [h_consumed >= h_limit] is one [check] would fire on (clock and heap
   are re-sampled here, so those entries reflect "now", not the last
   sampled probe).  Reads no mutable state — never perturbs the
   sampling cadence. *)
let snapshot t ~configs ~transitions =
  List.filter_map Fun.id
    [
      Option.map
        (fun m ->
          {
            h_reason = Configs m;
            h_consumed = float_of_int configs;
            h_limit = float_of_int m;
          })
        t.max_configs;
      Option.map
        (fun m ->
          {
            h_reason = Transitions m;
            h_consumed = float_of_int transitions;
            h_limit = float_of_int m;
          })
        t.max_transitions;
      Option.map
        (fun d ->
          {
            h_reason = Deadline t.timeout_s;
            h_consumed =
              max 0. (Unix.gettimeofday () -. (d -. t.timeout_s));
            h_limit = t.timeout_s;
          })
        t.deadline;
      Option.map
        (fun m ->
          {
            h_reason = Heap_words m;
            h_consumed = float_of_int (Gc.quick_stat ()).Gc.heap_words;
            h_limit = float_of_int m;
          })
        t.max_heap_words;
    ]
