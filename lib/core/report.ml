(* The pure report core of the analyzer pipeline.

   Everything a finished analysis is: the engine that ran, the stats,
   the completion status, the supervision ladder, the section-5/7
   analysis products, the verdict-bearing options (races, lints,
   interference) and the run telemetry — as plain data, plus the
   serialization ([to_json]) and the exit-code policy computed from it.

   No printing lives here: the pretty-printers stay in [Pipeline], so
   consumers that only need the data (the CLI's --json mode, the
   planned serve daemon, the tests) depend on nothing Format-shaped.
   The JSON is emitted with the same hand-rolled helpers the telemetry
   sinks use ([Cobegin_obs.Obs_json]) — this subsystem emits JSON but
   never parses it.

   Determinism: every set-valued field is serialized in its canonical
   sorted order (RaceSet / DepSet elements, StringSet elements, sorted
   metrics snapshots), so two identical runs render byte-identical
   reports — CI diffs them directly. *)

open Cobegin_lang
open Cobegin_trans
open Cobegin_semantics
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps
module Obs_json = Cobegin_obs.Obs_json

(* Bumped whenever the report schema changes shape; consumers (the
   manifest key, the daemon's cache) key on it. *)
let format_version = 1

type engine =
  | Concrete_full (* ordinary state-space generation *)
  | Concrete_stubborn (* with persistent/stubborn-set reduction *)
  | Abstract of Analyzer.domain * Machine.folding

(* Stable machine-readable spellings, mirroring the CLI's --domain /
   --folding vocabulary (ASCII, unlike the pretty-printers). *)
let domain_name = function
  | Analyzer.Intervals -> "intervals"
  | Analyzer.Constants -> "constants"
  | Analyzer.Signs -> "signs"
  | Analyzer.Parities -> "parity"
  | Analyzer.Interval_parity -> "interval-parity"

let folding_name = function
  | Machine.Exact -> "exact"
  | Machine.Control -> "control"
  | Machine.Clan -> "clan"

let engine_name = function
  | Concrete_full -> "concrete/full"
  | Concrete_stubborn -> "concrete/stubborn"
  | Abstract (d, f) -> "abstract/" ^ domain_name d ^ "/" ^ folding_name f

type exploration_stats = {
  configurations : int;
  transitions : int; (* 0 for abstract engines *)
  max_frontier : int; (* peak worklist size *)
  finals : int;
  deadlocks : int; (* 0 for abstract engines *)
  errors : int;
}

type stage_failure = {
  stage : string;
  diagnostic : string;
  backtrace : string option; (* captured trace, when one was recorded *)
  flight : string list;
      (* flight-recorder dump at the failure: the journal ring's events
         as pre-rendered JSON lines, oldest first; empty when the
         journal was disabled *)
}

(* Supervision: what the pipeline did about a failed stage attempt. *)
type recovery_action =
  | Retry
  | Degrade_jobs of { from_jobs : int; to_jobs : int }
  | Give_up

type recovery_rung = {
  r_stage : string;
  r_attempt : int; (* 1-based attempt that failed *)
  r_diagnostic : string;
  r_backtrace : string option;
  r_action : recovery_action;
}

type report = {
  program : Ast.program; (* after transforms *)
  engine_used : engine;
  memory_model : Step.model;
  stats : exploration_stats;
  status : Budget.status;
  budget : Budget.headroom list; (* consumed vs limit at the end *)
  stage_failures : stage_failure list;
  recovery : recovery_rung list;
  degraded : bool;
  log : Event.log;
  side_effects : Side_effect.report list;
  deps : Depend.DepSet.t;
  lifetimes : Lifetime.info list;
  placements : Placement.decision list;
  gc_plan : Ctgc.entry list;
  races : Race.RaceSet.t option;
  critical : Critical.conflicts;
  static : Cobegin_static.Lint.result option;
  interference : Interfere.summary option;
  telemetry : (string * float) list;
}

(* Process exit code for a finished analysis, ordered by severity:
   degraded (5) over crashed stages (3) over budget truncation (2) over
   static findings (4) over success (0).  Usage and input errors exit 1
   before any report exists, so the full precedence is
   1 > 5 > 3 > 2 > 4 > 0. *)
let exit_code ?(stage_failures = []) ?(static_findings = false)
    ?(degraded = false) status =
  if degraded then 5
  else if stage_failures <> [] then 3
  else if not (Budget.is_complete status) then 2
  else if static_findings then 4
  else 0

let static_findings r =
  match r.static with
  | Some l -> l.Cobegin_static.Lint.findings <> []
  | None -> false

let report_exit_code r =
  exit_code ~stage_failures:r.stage_failures
    ~static_findings:(static_findings r) ~degraded:r.degraded r.status

(* The program identity a report (and a run manifest) is addressed by:
   the full-width hash of the marshaled AST — the same construction the
   checkpoint format binds snapshots with. *)
let program_digest (prog : Ast.program) =
  Printf.sprintf "%016x"
    (Cobegin_hash.hash_string (Marshal.to_string prog []))

(* --- JSON emission --- *)

let add_int buf n = Buffer.add_string buf (string_of_int n)

let add_list buf add xs =
  Buffer.add_char buf '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      add buf x)
    xs;
  Buffer.add_char buf ']'

let add_opt buf add = function
  | None -> Buffer.add_string buf "null"
  | Some x -> add buf x

let add_str buf s = Obs_json.escape_into buf s

let add_reason buf = function
  | Budget.Configs n ->
      Printf.bprintf buf "{\"kind\":\"configs\",\"limit\":%d}" n
  | Budget.Transitions n ->
      Printf.bprintf buf "{\"kind\":\"transitions\",\"limit\":%d}" n
  | Budget.Deadline s ->
      Printf.bprintf buf "{\"kind\":\"deadline_s\",\"limit\":%s}"
        (Obs_json.float s)
  | Budget.Heap_words n ->
      Printf.bprintf buf "{\"kind\":\"heap_words\",\"limit\":%d}" n
  | Budget.Fuel n -> Printf.bprintf buf "{\"kind\":\"fuel\",\"limit\":%d}" n
  | Budget.Crash d ->
      Buffer.add_string buf "{\"kind\":\"crash\",\"diagnostic\":";
      add_str buf d;
      Buffer.add_char buf '}'

let add_status buf status =
  Printf.bprintf buf "{\"complete\":%b,\"label\":"
    (Budget.is_complete status);
  add_str buf (Budget.status_to_string status);
  Buffer.add_string buf ",\"reason\":";
  (match status with
  | Budget.Complete -> Buffer.add_string buf "null"
  | Budget.Truncated r -> add_reason buf r);
  Buffer.add_char buf '}'

let add_headroom buf (h : Budget.headroom) =
  Buffer.add_string buf "{\"limit\":";
  add_str buf (Budget.reason_label h.Budget.h_reason);
  Printf.bprintf buf ",\"consumed\":%s,\"max\":%s}"
    (Obs_json.float h.Budget.h_consumed)
    (Obs_json.float h.Budget.h_limit)

let add_stage_failure buf f =
  Buffer.add_string buf "{\"stage\":";
  add_str buf f.stage;
  Buffer.add_string buf ",\"diagnostic\":";
  add_str buf f.diagnostic;
  Buffer.add_string buf ",\"backtrace\":";
  add_opt buf add_str f.backtrace;
  Buffer.add_string buf ",\"flight\":";
  (* the flight lines are pre-rendered JSON objects: embed verbatim *)
  add_list buf (fun buf line -> Buffer.add_string buf line) f.flight;
  Buffer.add_char buf '}'

let add_action buf = function
  | Retry -> Buffer.add_string buf "{\"kind\":\"retry\"}"
  | Degrade_jobs { from_jobs; to_jobs } ->
      Printf.bprintf buf
        "{\"kind\":\"degrade_jobs\",\"from_jobs\":%d,\"to_jobs\":%d}"
        from_jobs to_jobs
  | Give_up -> Buffer.add_string buf "{\"kind\":\"give_up\"}"

let add_rung buf r =
  Buffer.add_string buf "{\"stage\":";
  add_str buf r.r_stage;
  Printf.bprintf buf ",\"attempt\":%d,\"diagnostic\":" r.r_attempt;
  add_str buf r.r_diagnostic;
  Buffer.add_string buf ",\"action\":";
  add_action buf r.r_action;
  Buffer.add_char buf '}'

let add_race buf (r : Race.race) =
  Printf.bprintf buf
    "{\"stmt1\":%d,\"stmt2\":%d,\"site\":%d,\"offset\":%d,\"write_write\":%b}"
    r.Race.stmt1 r.Race.stmt2 r.Race.loc.Value.l_site r.Race.loc.Value.l_off
    r.Race.write_write

let add_static_race buf (r : Cobegin_static.Lockset.race) =
  Printf.bprintf buf
    "{\"stmt1\":%d,\"stmt2\":%d,\"write_write\":%b,\"what\":"
    r.Cobegin_static.Lockset.r_stmt1 r.Cobegin_static.Lockset.r_stmt2
    r.Cobegin_static.Lockset.r_ww;
  add_str buf r.Cobegin_static.Lockset.r_what;
  Buffer.add_char buf '}'

let add_finding buf (f : Cobegin_static.Report.finding) =
  Buffer.add_string buf "{\"rule\":";
  add_str buf f.Cobegin_static.Report.f_rule;
  Buffer.add_string buf ",\"severity\":";
  add_str buf
    (Cobegin_static.Report.severity_to_string
       f.Cobegin_static.Report.f_severity);
  Buffer.add_string buf ",\"label\":";
  add_opt buf add_int f.Cobegin_static.Report.f_label;
  Buffer.add_string buf ",\"other\":";
  add_opt buf add_int f.Cobegin_static.Report.f_other;
  Buffer.add_string buf ",\"message\":";
  add_str buf f.Cobegin_static.Report.f_message;
  Buffer.add_char buf '}'

let add_static buf (l : Cobegin_static.Lint.result) =
  Buffer.add_string buf "{\"findings\":";
  add_list buf add_finding l.Cobegin_static.Lint.findings;
  Printf.bprintf buf ",\"races\":%d,\"cycles\":%d}"
    (List.length l.Cobegin_static.Lint.races)
    (List.length l.Cobegin_static.Lint.cycles)

let add_var_value buf (var, value) =
  Buffer.add_string buf "{\"var\":";
  add_str buf var;
  Buffer.add_string buf ",\"value\":";
  add_str buf value;
  Buffer.add_char buf '}'

let add_interference buf (s : Interfere.summary) =
  Buffer.add_string buf "{\"domain\":";
  add_str buf (domain_name s.Interfere.domain);
  Printf.bprintf buf
    ",\"locksets\":%b,\"rounds\":%d,\"widenings\":%d,\"stmt_visits\":%d,\"status\":"
    s.Interfere.locksets s.Interfere.rounds s.Interfere.widenings
    s.Interfere.stmt_visits;
  add_status buf s.Interfere.status;
  Buffer.add_string buf ",\"shared\":";
  add_list buf add_str s.Interfere.shared;
  Buffer.add_string buf ",\"protected\":";
  add_list buf
    (fun buf (var, lock) ->
      Buffer.add_string buf "{\"var\":";
      add_str buf var;
      Buffer.add_string buf ",\"lock\":";
      add_str buf lock;
      Buffer.add_char buf '}')
    s.Interfere.protected_;
  Buffer.add_string buf ",\"interference\":";
  add_list buf add_var_value s.Interfere.interference;
  Buffer.add_string buf ",\"bindings\":";
  add_list buf add_var_value s.Interfere.bindings;
  let v = s.Interfere.verdicts in
  Buffer.add_string buf ",\"verdicts\":{\"assert_may_fail\":";
  add_list buf add_int v.Interfere.assert_may_fail;
  Buffer.add_string buf ",\"never_proceeds\":";
  add_list buf add_int v.Interfere.never_proceeds;
  Buffer.add_string buf ",\"error_sites\":";
  add_list buf add_int v.Interfere.error_sites;
  Buffer.add_string buf ",\"races\":";
  add_list buf add_static_race v.Interfere.races;
  Buffer.add_string buf "}}"

let add_side_effect buf (se : Side_effect.report) =
  Buffer.add_string buf "{\"proc\":";
  add_str buf se.Side_effect.proc;
  Printf.bprintf buf ",\"reads\":%d,\"writes\":%d,\"pure\":%b}"
    (Side_effect.EffectSet.cardinal se.Side_effect.reads)
    (Side_effect.EffectSet.cardinal se.Side_effect.writes)
    (Side_effect.is_pure se)

let add_lifetime buf (i : Lifetime.info) =
  Printf.bprintf buf "{\"site\":%d,\"heap\":%b,\"shared\":%b}"
    i.Lifetime.site i.Lifetime.heap
    (match i.Lifetime.placement with
    | Lifetime.Shared -> true
    | Lifetime.Local _ -> false)

let add_placement buf (d : Placement.decision) =
  Printf.bprintf buf "{\"site\":%d,\"level\":\"%s\"}" d.Placement.site
    (match d.Placement.level with
    | Placement.Shared_memory -> "shared"
    | Placement.Local_memory -> "local")

let add_gc_entry buf (e : Ctgc.entry) =
  Printf.bprintf buf "{\"site\":%d,\"heap\":%b,\"at\":" e.Ctgc.site
    e.Ctgc.heap;
  (match e.Ctgc.at with
  | Ctgc.Proc_exit p ->
      Buffer.add_string buf "{\"kind\":\"proc_exit\",\"proc\":";
      add_str buf p;
      Buffer.add_char buf '}'
  | Ctgc.Branch_exit (cob, branch) ->
      Printf.bprintf buf
        "{\"kind\":\"branch_exit\",\"cobegin\":%d,\"branch\":%d}" cob branch
  | Ctgc.Program_exit ->
      Buffer.add_string buf "{\"kind\":\"program_exit\"}");
  Buffer.add_char buf '}'

let to_json (r : report) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\"format_version\":%d,\"program_digest\":"
    format_version;
  add_str buf (program_digest r.program);
  Buffer.add_string buf ",\"engine\":";
  add_str buf (engine_name r.engine_used);
  Buffer.add_string buf ",\"memory_model\":";
  add_str buf (Step.model_name r.memory_model);
  Printf.bprintf buf ",\"exit_code\":%d,\"degraded\":%b,\"status\":"
    (report_exit_code r) r.degraded;
  add_status buf r.status;
  Printf.bprintf buf
    ",\"stats\":{\"configurations\":%d,\"transitions\":%d,\"max_frontier\":%d,\"finals\":%d,\"deadlocks\":%d,\"errors\":%d}"
    r.stats.configurations r.stats.transitions r.stats.max_frontier
    r.stats.finals r.stats.deadlocks r.stats.errors;
  Buffer.add_string buf ",\"budget\":";
  add_list buf add_headroom r.budget;
  Buffer.add_string buf ",\"stage_failures\":";
  add_list buf add_stage_failure r.stage_failures;
  Buffer.add_string buf ",\"recovery\":";
  add_list buf add_rung r.recovery;
  Printf.bprintf buf
    ",\"log\":{\"accesses\":%d,\"allocs\":%d,\"precise_pstrings\":%b}"
    (List.length r.log.Event.accesses)
    (List.length r.log.Event.allocs)
    r.log.Event.precise_pstrings;
  Buffer.add_string buf ",\"side_effects\":";
  add_list buf add_side_effect r.side_effects;
  Printf.bprintf buf ",\"deps\":{\"total\":%d,\"parallel\":%d}"
    (Depend.DepSet.cardinal r.deps)
    (Depend.DepSet.cardinal
       (Depend.DepSet.filter (fun d -> d.Depend.parallel) r.deps));
  Buffer.add_string buf ",\"lifetimes\":";
  add_list buf add_lifetime r.lifetimes;
  Buffer.add_string buf ",\"placements\":";
  add_list buf add_placement r.placements;
  Buffer.add_string buf ",\"gc_plan\":";
  add_list buf add_gc_entry r.gc_plan;
  Buffer.add_string buf ",\"critical\":{\"names\":";
  add_list buf add_str (Ast.StringSet.elements r.critical.Critical.names);
  Printf.bprintf buf ",\"memory\":%b}" r.critical.Critical.mem;
  Buffer.add_string buf ",\"races\":";
  add_opt buf
    (fun buf races -> add_list buf add_race (Race.RaceSet.elements races))
    r.races;
  Buffer.add_string buf ",\"static\":";
  add_opt buf add_static r.static;
  Buffer.add_string buf ",\"interference\":";
  add_opt buf add_interference r.interference;
  Buffer.add_string buf ",\"telemetry\":";
  add_list buf
    (fun buf (name, dur) ->
      Buffer.add_string buf "{\"stage\":";
      add_str buf name;
      Printf.bprintf buf ",\"seconds\":%s}" (Obs_json.float dur))
    r.telemetry;
  Buffer.add_char buf '}';
  Buffer.contents buf
