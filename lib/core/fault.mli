(** Deterministic, seedable fault injection for chaos testing.

    Engines and pipeline stages are threaded with {e named injection
    sites}: each call to {!hit} bumps a per-site occurrence counter and
    fires any installed action bound to that (site, occurrence) pair.
    Because the engines are deterministic, "the 3rd hit of
    [space.pop]" names one exact program point of a run — a fault plan
    is a {e replayable} schedule of failures, not a fuzzer.

    Plans are compiled from a compact spec (the [--chaos] flag /
    [COBEGIN_CHAOS] env var):

    {v
      crash@space.pop:3            raise at the 3rd pop of the engine
      oom@pipeline.lifetimes:1     simulate allocation failure
      delay@sleep.pop:2=50ms       sleep 50ms at the 2nd pop
      kill@worker1:5               raise in domain 1 at its 5th pop
      flaky@reach.pop:250,seed=7   crash each hit w.p. 250/1000
    v}

    Entries are comma-separated; [seed=N] seeds the PRNG used by
    [flaky@] (every other action is schedule-independent).  The plan is
    process-global: installing one affects every engine in the process
    until {!clear}.  When no plan is installed a site costs one atomic
    load.

    Site catalog: [pipeline.<stage>] (one per pipeline stage, hit just
    before the stage body), [space.pop], [sleep.pop], [reach.pop],
    [races.pop], [checkpoint.pop], [checkpoint.save] (once per worklist
    pop /
    checkpoint write), [interfere.iter] (once per interference fixpoint
    round), and [parallel.worker<d>] (once per pop of worker
    domain [d]).  Telemetry: injected faults count into the
    [fault.crashes] / [fault.delays] / [fault.ooms] / [fault.kills]
    counters. *)

type action =
  | Crash_at of { site : string; nth : int }
      (** raise {!Injected} at the [nth] hit of [site] *)
  | Delay_at of { site : string; nth : int; ms : int }
      (** sleep [ms] milliseconds at the [nth] hit *)
  | Oom_at of { site : string; nth : int }
      (** raise [Out_of_memory] (simulated allocation failure) *)
  | Kill_worker of { domain : int; nth_pop : int }
      (** raise {!Injected} inside parallel worker [domain] at its
          [nth_pop]-th pop — exercises the termination protocol *)
  | Flaky_at of { site : string; per_mille : int }
      (** crash each hit of [site] with probability [per_mille]/1000,
          drawn from the plan's seeded PRNG *)

type plan = { actions : action list; seed : int }

exception Injected of { site : string; nth : int; kind : string }
(** The structured diagnostic a crash/kill action raises: the exact
    replay coordinates.  A printer is registered, so
    [Printexc.to_string] yields ["injected fault: kind@site:nth"]. *)

val parse : string -> (plan, string) result
(** Compile a [--chaos] spec.  Unknown sites, malformed entries and
    empty specs are errors (so typos don't silently inject nothing). *)

val to_spec : plan -> string
(** Inverse of {!parse} (canonical spelling): the replay string. *)

val known_sites : string list
(** The static site catalog (everything except the parameterized
    [parallel.worker<d>] family). *)

val worker_site : int -> string
(** ["parallel.worker<d>"]. *)

val env_var : string
(** ["COBEGIN_CHAOS"] — consulted by the CLI when [--chaos] is absent. *)

val install : plan -> unit
(** Make [plan] the process-global active plan, resetting all site
    counters and the PRNG. *)

val clear : unit -> unit

val installed : unit -> plan option

val hit : string -> unit
(** Called by an instrumented site on every pass: bump the site's
    occurrence counter and fire any matching action.  No-op (one atomic
    load) when no plan is installed.
    @raise Injected / [Out_of_memory] when a crash/oom action matches *)

val worker_pop : int -> unit
(** Per-domain pop site of the parallel engine: like
    [hit (worker_site d)], and additionally fires [Kill_worker] actions
    bound to domain [d]. *)

val hits : unit -> (string * int) list
(** Occurrence counters of the active plan so far, sorted by site —
    lets tests and diagnostics report how far a run got. *)
