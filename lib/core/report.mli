(** The pure report core of the analyzer pipeline.

    Everything a finished analysis is, as plain data — engine, stats,
    completion status, budget headroom, supervision ladder, analysis
    products, verdicts, telemetry — plus the canonical JSON rendering
    ({!to_json}) and the exit-code policy ({!exit_code}) computed from
    it.  {b No printing lives here}: the pretty-printers stay in
    {!Pipeline}, which re-exports these types so existing code keeps
    addressing them as [Pipeline.report] etc.

    The JSON is deterministic: set-valued fields render in canonical
    sorted order, so two identical runs produce byte-identical reports
    (modulo wall-clock [telemetry], which is empty unless a span
    recorder was attached). *)

open Cobegin_lang
open Cobegin_semantics
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps
open Cobegin_trans

val format_version : int
(** Schema version carried in the JSON ([format_version] field) and
    folded into the run-manifest key. *)

(** Which engine produces the instrumentation log. *)
type engine =
  | Concrete_full  (** ordinary state-space generation *)
  | Concrete_stubborn  (** with persistent/stubborn-set reduction *)
  | Abstract of Analyzer.domain * Machine.folding
      (** abstract interpretation: numeric domain × configuration folding *)

val engine_name : engine -> string
(** Stable machine-readable spelling, e.g. ["concrete/full"],
    ["abstract/intervals/control"] — ASCII, mirroring the CLI
    vocabulary (unlike the pretty-printer). *)

val domain_name : Analyzer.domain -> string
val folding_name : Machine.folding -> string

type exploration_stats = {
  configurations : int;
  transitions : int;  (** 0 for abstract engines *)
  max_frontier : int;  (** peak worklist size during the engine run *)
  finals : int;
  deadlocks : int;  (** 0 for abstract engines *)
  errors : int;
}

type stage_failure = {
  stage : string;  (** e.g. ["side-effects"], ["races"] *)
  diagnostic : string;  (** printed form of the escaping exception *)
  backtrace : string option;
      (** the raised backtrace, when one was recorded
          ([Printexc.record_backtrace] — the CLI's [--debug] — or a
          parallel worker's own capture); [None] otherwise *)
  flight : string list;
      (** the journal's flight-recorder dump taken when the stage gave
          up: the ring buffer's events as pre-rendered JSON lines,
          oldest first.  Empty when {!Cobegin_obs.Journal} was
          disabled. *)
}

type recovery_action =
  | Retry  (** same options, next attempt *)
  | Degrade_jobs of { from_jobs : int; to_jobs : int }
      (** exploration fell back toward the sequential engine *)
  | Give_up  (** ladder exhausted; the stage's default stands *)

type recovery_rung = {
  r_stage : string;
  r_attempt : int;  (** 1-based attempt that failed *)
  r_diagnostic : string;
  r_backtrace : string option;
  r_action : recovery_action;  (** what the supervisor did next *)
}

type report = {
  program : Ast.program;  (** the program after transforms *)
  engine_used : engine;
  memory_model : Step.model;  (** model the concrete semantics ran under *)
  stats : exploration_stats;
  status : Budget.status;
  budget : Budget.headroom list;
      (** consumed vs limit per configured budget dimension, sampled
          when the pipeline finished *)
  stage_failures : stage_failure list;
  recovery : recovery_rung list;
  degraded : bool;
  log : Event.log;
  side_effects : Side_effect.report list;
  deps : Depend.DepSet.t;
  lifetimes : Lifetime.info list;
  placements : Placement.decision list;
  gc_plan : Ctgc.entry list;
  races : Race.RaceSet.t option;
  critical : Critical.conflicts;
  static : Cobegin_static.Lint.result option;
  interference : Interfere.summary option;
  telemetry : (string * float) list;
}

val exit_code :
  ?stage_failures:stage_failure list ->
  ?static_findings:bool ->
  ?degraded:bool ->
  Budget.status ->
  int
(** Severity order: [5] degraded, else [3] crashed stages, else [2]
    truncation, else [4] static findings, else [0]; the CLI's usage
    errors exit [1] before a report exists (1 > 5 > 3 > 2 > 4 > 0). *)

val static_findings : report -> bool
(** Did the static lint suite (when it ran) find anything? *)

val report_exit_code : report -> int
(** {!exit_code} with every argument read off the report — the code the
    CLI exits with, and the one [to_json] embeds. *)

val program_digest : Ast.program -> string
(** 16-hex-digit digest of the marshaled program — the program
    component of the run-manifest key. *)

val to_json : report -> string
(** The whole report as one JSON object: identity (format version,
    program digest, engine, memory model), verdict (exit code, status,
    degraded), stats, budget headroom, stage failures with their
    flight-recorder dumps, recovery rungs, log/analysis summaries
    (side effects, dependence counts, lifetimes, placements, GC plan,
    critical names), races, static findings, interference verdicts and
    per-stage telemetry. *)
