(** Unified resource governance for every exploration engine.

    State-space generation explodes (paper section 2); production
    analyzers degrade instead of dying.  A {!t} bundles the resource
    limits a run must respect — configuration count, transition count,
    wall-clock deadline, heap watermark — and the engines consult it
    instead of raising: a run that exhausts a limit stops cleanly and
    returns everything computed so far, tagged {!Truncated} with the
    limit that fired.

    Cheap counter limits are tested on every {!check}; the wall clock
    and the GC watermark are sampled every [check_every] calls (and on
    the very first one, so a zero deadline truncates immediately).

    A single [t] may be shared by several engine runs — the deadline is
    absolute, so sharing implements an end-to-end time box across a
    whole pipeline. *)

(** Why a run stopped early. *)
type reason =
  | Configs of int  (** distinct-configuration budget (the limit) *)
  | Transitions of int  (** fired-transition budget (the limit) *)
  | Deadline of float  (** wall-clock limit, in seconds *)
  | Heap_words of int  (** major-heap watermark, in words *)
  | Fuel of int  (** fixpoint iteration fuel (abstract machine) *)
  | Crash of string
      (** a stage or engine crashed and the supervisor exhausted its
          recovery ladder; the string is the final diagnostic.  The
          partial results reported alongside are still everything that
          was really computed — a [Truncated (Crash _)] report is
          degraded, never fabricated. *)

(** Completion status of an engine run.  [Truncated] results are
    partial but valid: every configuration, statistic and log entry
    reported was really computed. *)
type status = Complete | Truncated of reason

val is_complete : status -> bool

val combine : status -> status -> status
(** [combine a b] is [Complete] only when both are; otherwise the first
    truncation reason in argument order. *)

val pp_reason : Format.formatter -> reason -> unit
val pp_status : Format.formatter -> status -> unit

val reason_to_string : reason -> string

val status_to_string : status -> string
(** ["complete"], or ["truncated: <reason>"] — stable strings for
    machine-readable output (bench JSON, scripts). *)

type t
(** A budget: immutable limits plus an internal sampling counter. *)

val create :
  ?max_configs:int ->
  ?max_transitions:int ->
  ?timeout_s:float ->
  ?max_heap_words:int ->
  ?check_every:int ->
  ?shared:bool ->
  unit ->
  t
(** Omitted limits are unlimited.  [timeout_s] is relative to the call;
    the deadline instant is fixed here.  [check_every] (default 256)
    is the sampling period for the clock and GC probes.

    [shared] (default false) makes the budget safe to consult from
    several OCaml domains at once: the sampling counter is atomic and
    the first exhaustion reason any domain observes is latched with a
    compare-and-set, so truncation {e fires once} — every later
    {!check}/{!config_guard} on any domain reports that single recorded
    reason instead of racing to a different one. *)

val unlimited : unit -> t

val refresh_deadline : t -> unit
(** Re-anchor the wall-clock deadline to now + the [timeout_s] the
    budget was created with; no-op when no timeout was configured.  For
    resumption: a budget created at process startup fixes its deadline
    then, so work that begins later (e.g. {!Cobegin_explore.Checkpoint}
    [resume] after loading a large snapshot) would start with part of
    its timeout already consumed.  Not domain-safe — call before the
    governed run starts, never concurrently with {!check}. *)

val is_shared : t -> bool

val tripped : t -> reason option
(** Shared mode: the latched exhaustion reason, once some domain
    tripped a limit; [None] before that (and always in non-shared
    mode, where no latching happens). *)

val config_guard : t -> configs:int -> reason option
(** Enqueue-side guard: [Some (Configs limit)] when [configs] has
    reached the configuration budget — the engine must not admit a new
    configuration.  Counters only; never samples clock or GC. *)

val check : t -> configs:int -> transitions:int -> reason option
(** Scheduling-side probe, called once per worklist pop: tests every
    limit (clock and heap on the sampling period) and returns the first
    exhausted one. *)

val status_of : reason option -> status
(** [None -> Complete], [Some r -> Truncated r]. *)

val reason_label : reason -> string
(** Stable short label for machine-readable output: ["configs"],
    ["transitions"], ["deadline_s"], ["heap_words"], ["fuel"],
    ["crash"]. *)

type headroom = {
  h_reason : reason;  (** the limit kind, carrying its limit value *)
  h_consumed : float;
  h_limit : float;
}

val snapshot : t -> configs:int -> transitions:int -> headroom list
(** One entry per configured limit, consumed vs limit, so progress
    probes and users can report headroom without reaching into the
    internals.  Counter entries mirror {!check}: [h_consumed >= h_limit]
    exactly when [check] (called with the same [configs]/[transitions])
    would return that reason; the clock and heap entries are re-sampled
    at the call.  Never perturbs the sampling cadence of {!check}. *)
