(** The analyzer pipeline — the paper's framework end to end:

    {v
source → parse → check → (coarsen | inline)
       → exploration (full | stubborn) or abstract interpretation
       → instrumentation log
       → side effects, dependences, lifetimes            (section 5)
       → parallelization, placement, compile-time GC     (section 7)
    v}

    This is the one-call API; the individual libraries remain available
    for finer control.

    The report data model — {!engine}, {!exploration_stats},
    {!stage_failure}, {!recovery_rung}, {!report} — and its pure
    consumers ({!exit_code}, [Report.to_json]) live in {!Report}; this
    module re-exports the types (the equations below), so existing code
    keeps addressing them as [Pipeline.report] etc., and keeps every
    pretty-printer.

    Resource governance: one {!Budget.t} — built from the limits in
    {!options} — governs the engine run and the race scan together.
    Exhaustion never raises; the report comes back with
    [status = Truncated _] and partial results.  Each section-5/7
    analysis runs under a per-stage guard: a crashing stage contributes
    its default (empty) result plus a {!stage_failure} diagnostic
    instead of aborting the pipeline.

    Observability: when the process journal ({!Cobegin_obs.Journal}) is
    running, the pipeline emits stage/recovery events, every failed
    attempt dumps the flight-recorder ring to the journal's log, and a
    stage that gives up carries the dump in
    [stage_failure.flight]. *)

open Cobegin_lang
open Cobegin_trans
open Cobegin_semantics
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps

(** Which engine produces the instrumentation log. *)
type engine = Report.engine =
  | Concrete_full  (** ordinary state-space generation *)
  | Concrete_stubborn  (** with persistent/stubborn-set reduction *)
  | Abstract of Analyzer.domain * Machine.folding
      (** abstract interpretation: numeric domain × configuration folding *)

val pp_engine : Format.formatter -> engine -> unit

type options = {
  engine : engine;
  memory_model : Step.model;
      (** memory model of the concrete semantics ({!Step.Sc} default).
          TSO/PSO apply to the concrete engines, the race scan and the
          direct executors; {!analyze} raises [Invalid_argument] when a
          non-SC model is combined with the [Abstract] engine or
          [interfere] — both model the SC interleaving semantics only *)
  coarsen : bool;  (** apply virtual coarsening first (Observation 5) *)
  inline : bool;  (** inline non-recursive calls first *)
  max_configs : int;  (** exploration budget *)
  max_transitions : int option;  (** transition/edge budget *)
  timeout_s : float option;  (** wall-clock deadline for the whole run *)
  max_heap_words : int option;  (** GC major-heap watermark *)
  find_races : bool;  (** run the co-enabledness race scan too *)
  lint : bool;
      (** run the static concurrency lints ({!Cobegin_static.Lint}) as a
          budget-free pre-stage *)
  interfere : bool;
      (** run the thread-modular interference analysis
          ({!Cobegin_absint.Interfere}) as a supervised stage before
          exploration; its fixpoint rounds are governed by the shared
          budget.  The numeric domain follows the [Abstract] engine's
          when one is selected, intervals otherwise. *)
  jobs : int;
      (** exploration domains.  [1] (the default) runs the sequential
          engine; [> 1] runs {!Cobegin_explore.Parallel} for the
          concrete full engine — complete runs produce identical
          counts and terminal multisets, see the engine's docs.  The
          stubborn strategy and the abstract engines stay sequential
          regardless. *)
  retries : int;
      (** extra attempts the supervisor grants a crashed stage (default
          1).  Exploration additionally walks the degradation ladder
          first: a multi-domain crash falls back to [jobs = 1] before
          any same-options retry.  [0] disables retrying. *)
}

val default_options : options
(** Concrete full engine under SC, no transforms, 500k configuration
    budget, no transition/time/heap limits, no race scan, no static
    lints, no interference analysis, one exploration domain, one retry
    per crashed stage. *)

val budget_of_options : options -> Budget.t
(** The budget {!analyze} runs under, fresh each call.  Created in
    shared (multi-domain) mode when [jobs > 1], so truncation latches
    a single reason across the worker domains. *)

val options_fingerprint : options -> string
(** Canonical fingerprint of an option record: every field, in
    declaration order, as stable [key=value] strings joined by [";"] —
    one component of the digest-addressed run-manifest key
    ({!Cobegin_obs.Manifest.key}).  Two records fingerprint equally iff
    they request the same analysis (deliberately including [jobs] and
    [retries]: a degraded ladder changes what ran). *)

val run_key : options -> Ast.program -> string
(** The digest-addressed key the run's result is memoized under — the
    {!Cobegin_obs.Manifest.key} of the post-transform program digest,
    {!options_fingerprint}, memory model and manifest format version,
    identical to the key a [--manifest] record of the same run carries.
    Cheap (transforms are linear), so a result cache derives it before
    deciding whether to analyze at all. *)

type exploration_stats = Report.exploration_stats = {
  configurations : int;
  transitions : int;  (** 0 for abstract engines *)
  max_frontier : int;  (** peak worklist size during the engine run *)
  finals : int;
  deadlocks : int;  (** 0 for abstract engines *)
  errors : int;
}

type stage_failure = Report.stage_failure = {
  stage : string;  (** e.g. ["side-effects"], ["races"] *)
  diagnostic : string;  (** printed form of the escaping exception *)
  backtrace : string option;
      (** the raised backtrace, when one was recorded
          ([Printexc.record_backtrace] — the CLI's [--debug] — or a
          parallel worker's own capture); [None] otherwise *)
  flight : string list;
      (** the journal flight-recorder dump taken at the give-up — the
          ring's events as pre-rendered JSON lines, oldest first; empty
          when the journal was not running *)
}

val pp_stage_failure : Format.formatter -> stage_failure -> unit

(** {2 Supervision}

    Every stage runs under a supervisor: a crashing stage is retried up
    to [retries] times; the exploration stage first walks a degradation
    ladder ([jobs N -> jobs 1 -> give up]).  Each failed attempt is
    recorded as a rung.  A stage that eventually succeeds reports clean
    results plus its rungs; a stage that gives up contributes its
    default result, a {!stage_failure}, and — for the result-bearing
    stages (exploration, races) — a [Truncated (Crash _)] status, so a
    degraded report is never mistaken for a complete one. *)

type recovery_action = Report.recovery_action =
  | Retry  (** same options, next attempt *)
  | Degrade_jobs of { from_jobs : int; to_jobs : int }
      (** exploration fell back toward the sequential engine *)
  | Give_up  (** ladder exhausted; the stage's default stands *)

type recovery_rung = Report.recovery_rung = {
  r_stage : string;
  r_attempt : int;  (** 1-based attempt that failed *)
  r_diagnostic : string;
  r_backtrace : string option;
  r_action : recovery_action;  (** what the supervisor did next *)
}

val pp_recovery_action : Format.formatter -> recovery_action -> unit
val pp_recovery_rung : Format.formatter -> recovery_rung -> unit

type report = Report.report = {
  program : Ast.program;  (** the program after transforms *)
  engine_used : engine;
  memory_model : Step.model;
      (** the model the concrete semantics ran under (always the
          requested one, even for abstract engines — which only accept
          {!Step.Sc}) *)
  stats : exploration_stats;
  status : Budget.status;
      (** [Truncated _] if any budget fired during exploration or the
          race scan; the rest of the report describes the partial run *)
  budget : Budget.headroom list;
      (** consumed vs limit for each configured budget dimension,
          sampled when the pipeline finished *)
  stage_failures : stage_failure list;
      (** analyses that crashed {e and exhausted their ladder}; their
          report fields hold defaults *)
  recovery : recovery_rung list;
      (** every failed stage attempt and what the supervisor did, in
          firing order; empty on an undisturbed run *)
  degraded : bool;
      (** a result-bearing stage gave up: [status] carries
          [Truncated (Crash _)] and the report is an honest partial
          result — the CLI surfaces this as a DEGRADED banner and exit
          code 5 *)
  log : Event.log;  (** unified instrumentation log *)
  side_effects : Side_effect.report list;  (** one per procedure *)
  deps : Depend.DepSet.t;  (** all dependences (parallel + sequential) *)
  lifetimes : Lifetime.info list;  (** one per object *)
  placements : Placement.decision list;  (** shared vs local memory *)
  gc_plan : Ctgc.entry list;  (** static deallocation points *)
  races : Race.RaceSet.t option;  (** when [find_races] was set *)
  critical : Critical.conflicts;  (** critical-reference report *)
  static : Cobegin_static.Lint.result option;
      (** when [lint] was set; the lints run before exploration and are
          not governed by the budget *)
  interference : Interfere.summary option;
      (** when [interfere] was set; [None] also when the stage crashed
          and exhausted its ladder (see [stage_failures]) *)
  telemetry : (string * float) list;
      (** wall seconds per pipeline stage, in completion order; empty
          unless a span recorder was passed to {!analyze} *)
}

val exit_code :
  ?stage_failures:stage_failure list ->
  ?static_findings:bool ->
  ?degraded:bool ->
  Budget.status ->
  int
(** The process exit code the CLI reports for a finished analysis, in
    severity order: [5] degraded (a result-bearing stage exhausted its
    recovery ladder), else [3] when any stage crashed, else [2] on
    budget truncation, else [4] when the static lints found something,
    else [0].  Usage/input errors exit [1] before a report exists, so
    the full precedence is 1 > 5 > 3 > 2 > 4 > 0. *)

val load_source : string -> Ast.program
(** Parse and check a program from source text.  Lexical errors are
    reported as {!Cobegin_lang.Parser.Error} with their position, the
    same way syntax errors are.
    @raise Cobegin_lang.Parser.Error on lexical or syntax errors
    @raise Cobegin_lang.Check.Ill_formed on static errors *)

val load_file : string -> Ast.program

val analyze :
  ?options:options ->
  ?stage_hook:(string -> unit) ->
  ?spans:Cobegin_obs.Span.t ->
  ?probe:Cobegin_obs.Probe.t ->
  Ast.program ->
  report
(** Run the pipeline.  Never raises on budget exhaustion — check
    [report.status] — and never aborts on an analysis-stage crash —
    check [report.stage_failures].  Raises [Invalid_argument] when
    [options.memory_model] is not {!Step.Sc} and the engine is
    [Abstract] or [interfere] is set (SC-only analyses).  [stage_hook] is called with each
    stage's name just before the stage body runs; an exception it
    raises is attributed to that stage (a fault-injection seam used by
    the tests).

    Telemetry: when [spans] is given, every stage runs under a
    wall-clock span named after it, and [report.telemetry] lists the
    per-stage durations of this call (a reusable recorder keeps earlier
    events for trace export but they do not leak into the report).
    When [probe] is given the engines and the race scan tick it once
    per worklist pop, and the pipeline attaches its budget so heartbeat
    samples report headroom. *)

val analyze_source :
  ?options:options ->
  ?stage_hook:(string -> unit) ->
  ?spans:Cobegin_obs.Span.t ->
  ?probe:Cobegin_obs.Probe.t ->
  string ->
  report

val parallelization : report -> Parallelize.report
(** Shasha–Snir conflict/delay/parallelization report for programs whose
    entry contains one cobegin of straight-line segments (Figure 8). *)

val pp_stats : Format.formatter -> exploration_stats -> unit
val pp_report : Format.formatter -> report -> unit
