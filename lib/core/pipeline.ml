(* The analyzer pipeline: the paper's framework end-to-end.

     source
       → parse → check → (virtual coarsening | inlining)        [front end]
       → state-space exploration (full | stubborn)              [section 2]
         and/or abstract exploration (folding, numeric domain)  [sections 3-6]
       → instrumentation log
       → side effects, dependences, lifetimes                   [section 5]
       → parallelization, memory placement, compile-time GC     [section 7]

   This module is the public API most users want; the individual
   libraries stay available for finer control.

   The report itself — the types, the JSON rendering, the exit-code
   policy — lives in [Report], the pure data core; this module
   re-exports those types (so [Pipeline.report] etc. keep working),
   runs the engines, and keeps every pretty-printer.  Consumers that
   only need the data (the CLI's --json mode, a result cache) can
   depend on [Report] alone.

   Resource governance (Budget): one budget — configuration count,
   transition count, wall-clock deadline, heap watermark — governs the
   engine run and the race scan; exhaustion yields a partial report
   tagged [Truncated], never an exception.  Each section-5/7 analysis
   runs under a per-stage guard, so a crashing stage contributes an
   empty result plus a structured diagnostic instead of aborting the
   pipeline.

   Observability (Journal): when the process journal is started, the
   pipeline emits stage start/failure/recovery events, and every
   failed attempt dumps the journal's ring buffer — the flight
   recorder — to the log; a stage that gives up also attaches the dump
   to its [stage_failure] so the report carries the engine's last
   moments. *)

open Cobegin_lang
open Cobegin_trans
open Cobegin_semantics
open Cobegin_explore
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps
module Span = Cobegin_obs.Span
module Metrics = Cobegin_obs.Metrics
module Journal = Cobegin_obs.Journal

(* Telemetry: stage attempts beyond the first (retries and ladder
   rungs).  One branch when telemetry is disabled. *)
let m_retries = Metrics.counter "pipeline.retries"

type engine = Report.engine =
  | Concrete_full (* ordinary state-space generation *)
  | Concrete_stubborn (* with persistent/stubborn-set reduction *)
  | Abstract of Analyzer.domain * Machine.folding

let pp_engine ppf = function
  | Concrete_full -> Format.pp_print_string ppf "concrete/full"
  | Concrete_stubborn -> Format.pp_print_string ppf "concrete/stubborn"
  | Abstract (d, f) ->
      Format.fprintf ppf "abstract/%a/%a" Analyzer.pp_domain d
        Machine.pp_folding f

type options = {
  engine : engine;
  memory_model : Step.model; (* concrete semantics: sc, tso or pso *)
  coarsen : bool; (* apply virtual coarsening first *)
  inline : bool; (* apply procedure inlining first *)
  max_configs : int;
  max_transitions : int option;
  timeout_s : float option; (* wall-clock deadline for the whole run *)
  max_heap_words : int option; (* GC major-heap watermark *)
  find_races : bool; (* co-enabledness race scan (concrete engines) *)
  lint : bool; (* static concurrency lints (budget-free pre-stage) *)
  interfere : bool; (* thread-modular interference analysis *)
  jobs : int; (* exploration domains; 1 = sequential engine *)
  retries : int; (* extra same-options attempts per crashed stage *)
}

let default_options =
  {
    engine = Concrete_full;
    memory_model = Step.Sc;
    coarsen = false;
    inline = false;
    max_configs = 500_000;
    max_transitions = None;
    timeout_s = None;
    max_heap_words = None;
    find_races = false;
    lint = false;
    interfere = false;
    jobs = 1;
    retries = 1;
  }

(* Multi-domain runs get a shared-mode budget: atomic sampling counter
   plus a CAS-latched first reason, so truncation fires once across
   the worker domains. *)
let budget_of_options (o : options) =
  Budget.create ~max_configs:o.max_configs ?max_transitions:o.max_transitions
    ?timeout_s:o.timeout_s ?max_heap_words:o.max_heap_words
    ~shared:(o.jobs > 1) ()

type exploration_stats = Report.exploration_stats = {
  configurations : int;
  transitions : int; (* 0 for abstract engines *)
  max_frontier : int; (* peak worklist size *)
  finals : int;
  deadlocks : int; (* 0 for abstract engines *)
  errors : int;
}

type stage_failure = Report.stage_failure = {
  stage : string;
  diagnostic : string;
  backtrace : string option; (* captured trace, when one was recorded *)
  flight : string list; (* journal ring dump at the give-up, JSON lines *)
}

let pp_stage_failure ppf f =
  Format.fprintf ppf "stage %s failed: %s" f.stage f.diagnostic

(* Supervision: what the pipeline did about a failed stage attempt. *)
type recovery_action = Report.recovery_action =
  | Retry
  | Degrade_jobs of { from_jobs : int; to_jobs : int }
  | Give_up

type recovery_rung = Report.recovery_rung = {
  r_stage : string;
  r_attempt : int; (* 1-based attempt that failed *)
  r_diagnostic : string;
  r_backtrace : string option;
  r_action : recovery_action;
}

let pp_recovery_action ppf = function
  | Retry -> Format.pp_print_string ppf "retried"
  | Degrade_jobs { from_jobs; to_jobs } ->
      Format.fprintf ppf "degraded jobs %d -> %d" from_jobs to_jobs
  | Give_up -> Format.pp_print_string ppf "gave up"

let pp_recovery_rung ppf r =
  Format.fprintf ppf "%s attempt %d failed (%s): %a" r.r_stage r.r_attempt
    r.r_diagnostic pp_recovery_action r.r_action

type report = Report.report = {
  program : Ast.program; (* after transforms *)
  engine_used : engine;
  memory_model : Step.model;
  stats : exploration_stats;
  status : Budget.status; (* completeness of the exploration(s) *)
  budget : Budget.headroom list; (* headroom snapshot at the end *)
  stage_failures : stage_failure list; (* crashed analyses, if any *)
  recovery : recovery_rung list; (* supervision ladder, in firing order *)
  degraded : bool; (* a result-bearing stage exhausted its ladder *)
  log : Event.log;
  side_effects : Side_effect.report list;
  deps : Depend.DepSet.t;
  lifetimes : Lifetime.info list;
  placements : Placement.decision list;
  gc_plan : Ctgc.entry list;
  races : Race.RaceSet.t option;
  critical : Critical.conflicts;
  static : Cobegin_static.Lint.result option; (* when [lint] was set *)
  interference : Interfere.summary option; (* when [interfere] was set *)
  telemetry : (string * float) list;
      (* per-stage wall seconds, in completion order; empty unless a span
         recorder was passed to [analyze] *)
}

(* The canonical options fingerprint: every field, in declaration
   order, as stable key=value strings — one component of the
   digest-addressed run-manifest key ([Cobegin_obs.Manifest.key]).
   Two option records fingerprint equally iff they request the same
   analysis. *)
let options_fingerprint (o : options) =
  let opt f = function None -> "none" | Some v -> f v in
  String.concat ";"
    [
      "engine=" ^ Report.engine_name o.engine;
      "memory_model=" ^ Step.model_name o.memory_model;
      "coarsen=" ^ string_of_bool o.coarsen;
      "inline=" ^ string_of_bool o.inline;
      "max_configs=" ^ string_of_int o.max_configs;
      "max_transitions=" ^ opt string_of_int o.max_transitions;
      "timeout_s=" ^ opt (Printf.sprintf "%g") o.timeout_s;
      "max_heap_words=" ^ opt string_of_int o.max_heap_words;
      "find_races=" ^ string_of_bool o.find_races;
      "lint=" ^ string_of_bool o.lint;
      "interfere=" ^ string_of_bool o.interfere;
      "jobs=" ^ string_of_int o.jobs;
      "retries=" ^ string_of_int o.retries;
    ]

(* The abstract machine and the interference engine model the SC
   interleaving semantics only: their transfer functions know nothing
   of store buffers, so running them under TSO/PSO would silently
   verify against the wrong semantics.  Refused loudly instead. *)
let check_model_support (o : options) =
  if o.memory_model <> Step.Sc then begin
    (match o.engine with
    | Abstract _ ->
        invalid_arg
          (Printf.sprintf
             "the abstract engine models SC only; it cannot run under --memory-model %s"
             (Step.model_name o.memory_model))
    | Concrete_full | Concrete_stubborn -> ());
    if o.interfere then
      invalid_arg
        (Printf.sprintf
           "the interference analysis models SC only; it cannot run under --memory-model %s"
           (Step.model_name o.memory_model))
  end

(* The exit-code policy (1 > 5 > 3 > 2 > 4 > 0) lives in the pure
   report core. *)
let exit_code = Report.exit_code

let load_source src =
  try
    let prog = Parser.parse_string src in
    Check.check_exn prog;
    prog
  with Lexer.Error (msg, pos) ->
    (* surface lexical errors with their position, like syntax errors *)
    raise (Parser.Error ("lexical error: " ^ msg, pos))

let load_file path =
  try
    let prog = Parser.parse_file path in
    Check.check_exn prog;
    prog
  with Lexer.Error (msg, pos) ->
    raise (Parser.Error ("lexical error: " ^ msg, pos))

let transform (opts : options) prog =
  let prog = if opts.inline then Inline.program prog else prog in
  let prog = if opts.coarsen then Coarsen.program prog else prog in
  prog

(* The digest-addressed key a run's result is memoized under — the same
   key the CLI's --manifest records (which digests the post-transform
   program), derivable *before* analysis: transforms are cheap and
   deterministic, so the serve daemon computes the key, looks its cache
   up, and only analyzes on a miss. *)
let run_key (o : options) prog =
  Cobegin_obs.Manifest.key
    ~program_digest:(Report.program_digest (transform o prog))
    ~options_fingerprint:(options_fingerprint o)
    ~memory_model:(Step.model_name o.memory_model)

let empty_log =
  { Event.accesses = []; allocs = []; precise_pstrings = true }

(* Run the chosen engine under [budget], returning stats, the unified
   log, and the completion status.  [spans] reaches the parallel
   engine so each worker domain records its own trace lane. *)
let run_engine ~budget ?probe ?spans (opts : options) prog :
    exploration_stats * Event.log * Budget.status =
  match opts.engine with
  | Concrete_full | Concrete_stubborn ->
      let ctx = Step.make_ctx ~model:opts.memory_model prog in
      let result =
        match opts.engine with
        | Concrete_full ->
            (* jobs > 1 runs the multi-domain engine; jobs <= 1 is the
               sequential engine, byte-for-byte.  The stubborn strategy
               keeps mutable selection state, so it stays sequential
               whatever [jobs] says. *)
            if opts.jobs > 1 then
              Parallel.full ~jobs:opts.jobs ~budget ?probe ?spans ctx
            else Space.full ~budget ?probe ctx
        | _ -> Stubborn.explore ~budget ?probe ctx
      in
      ( {
          configurations = result.Space.stats.Space.configurations;
          transitions = result.Space.stats.Space.transitions;
          max_frontier = result.Space.stats.Space.max_frontier;
          finals = result.Space.stats.Space.finals;
          deadlocks = result.Space.stats.Space.deadlocks;
          errors = result.Space.stats.Space.errors;
        },
        Event.of_concrete result.Space.log,
        result.Space.status )
  | Abstract (domain, folding) ->
      let summary = Analyzer.analyze ~domain ~folding ~budget ?probe prog in
      ( {
          configurations = summary.Analyzer.abstract_configs;
          transitions = 0;
          max_frontier = summary.Analyzer.max_frontier;
          finals = summary.Analyzer.finals;
          deadlocks = 0;
          errors = summary.Analyzer.errors;
        },
        Event.of_abstract summary.Analyzer.log,
        summary.Analyzer.status )

(* [stage_hook] is an instrumentation/fault-injection seam: it is called
   with the stage name inside each guard, so tests can force a stage to
   crash and observe the diagnostic.  [spans] records one wall-clock span
   per stage (nested under whatever span is already open in the
   recorder); [probe] is ticked by the engines and the race scan, with
   the pipeline's budget attached for headroom reporting. *)
let analyze ?(options = default_options) ?(stage_hook = fun _ -> ()) ?spans
    ?probe (prog : Ast.program) : report =
  check_model_support options;
  Check.check_exn prog;
  let prog = transform options prog in
  let budget = budget_of_options options in
  Option.iter (fun p -> Cobegin_obs.Probe.set_budget p budget) probe;
  (* only the spans completed by this call end up in [report.telemetry]:
     a reusable recorder may already hold events from earlier runs *)
  let pre_events =
    match spans with None -> 0 | Some t -> Span.event_count t
  in
  let failures = ref [] in
  let recovery = ref [] in
  (* A failed attempt's backtrace: prefer the one a failed parallel
     worker captured on its own domain; else whatever the runtime
     recorded here (empty unless --debug / record_backtrace). *)
  let backtrace_text cause bt =
    match cause with
    | Parallel.Worker_failed { backtrace; _ } when String.trim backtrace <> ""
      ->
        Some backtrace
    | _ ->
        let s = Printexc.raw_backtrace_to_string bt in
        if String.trim s = "" then None else Some s
  in
  let action_label = function
    | Retry -> "retry"
    | Degrade_jobs { from_jobs; to_jobs } ->
        Printf.sprintf "degrade_jobs %d->%d" from_jobs to_jobs
    | Give_up -> "give_up"
  in
  (* Every failed attempt dumps the flight recorder to the journal's
     log, so the engine's last ring of events survives retries and
     degradation rungs too; the give-up's dump is additionally attached
     to the stage_failure (via [record_failure]), which takes its own
     dump — so skip the log dump here to avoid a duplicate record. *)
  let record_rung ~stage ~attempt ~action cause bt =
    let diagnostic = Printexc.to_string cause in
    if Journal.enabled () then begin
      Journal.emit ~level:Journal.Warn "pipeline.recovery"
        [
          ("stage", Journal.Str stage);
          ("attempt", Journal.Int attempt);
          ("action", Journal.Str (action_label action));
          ("diagnostic", Journal.Str diagnostic);
        ];
      if action <> Give_up then
        ignore
          (Journal.flight_dump
             ~reason:
               (Printf.sprintf "%s attempt %d failed: %s" stage attempt
                  diagnostic)
             ()
            : string list)
    end;
    recovery :=
      {
        r_stage = stage;
        r_attempt = attempt;
        r_diagnostic = diagnostic;
        r_backtrace = backtrace_text cause bt;
        r_action = action;
      }
      :: !recovery
  in
  let record_failure ~stage cause bt =
    let diagnostic = Printexc.to_string cause in
    let flight =
      if Journal.enabled () then begin
        Journal.emit ~level:Journal.Error "pipeline.stage_failed"
          [
            ("stage", Journal.Str stage);
            ("diagnostic", Journal.Str diagnostic);
          ];
        Journal.flight_dump
          ~reason:(Printf.sprintf "stage %s gave up: %s" stage diagnostic)
          ()
      end
      else []
    in
    failures :=
      {
        stage;
        diagnostic;
        backtrace = backtrace_text cause bt;
        flight;
      }
      :: !failures
  in
  let run_body name f =
    stage_hook name;
    Fault.hit ("pipeline." ^ name);
    if Journal.enabled () then
      Journal.emit ~level:Journal.Debug "pipeline.stage"
        [ ("stage", Journal.Str name) ];
    match spans with None -> f () | Some t -> Span.with_span t name f
  in
  (* Supervised stage: up to [1 + retries] attempts; every failed
     attempt is a recovery rung, only the final one (the give-up) is a
     stage failure, so a retried-and-completed stage reports clean
     results plus its ladder. *)
  let stage name ~default f =
    let attempts = 1 + max 0 options.retries in
    let rec go attempt =
      try run_body name f
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        if attempt < attempts then begin
          record_rung ~stage:name ~attempt ~action:Retry e bt;
          Metrics.incr m_retries;
          go (attempt + 1)
        end
        else begin
          record_rung ~stage:name ~attempt ~action:Give_up e bt;
          record_failure ~stage:name e bt;
          default
        end
    in
    go 1
  in
  (* the static lints run before (and independently of) exploration:
     they are polynomial in program size, so no budget governs them *)
  let static =
    if options.lint then
      stage "static-lint" ~default:None (fun () ->
          Some (Cobegin_static.Lint.run prog))
    else None
  in
  (* the interference engine is thread-modular — polynomial, but its
     fixpoint runs under the shared budget (rounds count as
     configurations), so a pipeline deadline boxes it too *)
  let interference =
    if options.interfere then
      let domain =
        match options.engine with
        | Abstract (d, _) -> d
        | Concrete_full | Concrete_stubborn -> Analyzer.Intervals
      in
      stage "interfere" ~default:None (fun () ->
          Some (Interfere.run ~domain ~budget ?probe prog))
    else None
  in
  (* Exploration runs under a degradation ladder instead of the plain
     retry loop: a multi-domain crash first falls back to the
     sequential engine (jobs N -> 1), then retries sequentially, and
     only then gives up — returning empty stats tagged
     [Truncated (Crash _)], never a fabricated [Complete].  One budget
     spans all rungs, so the ladder honors the end-to-end time box. *)
  let empty_stats =
    {
      configurations = 0;
      transitions = 0;
      max_frontier = 0;
      finals = 0;
      deadlocks = 0;
      errors = 0;
    }
  in
  let stats, log, status =
    let ladder =
      (if options.jobs > 1 then [ options; { options with jobs = 1 } ]
       else [ options ])
      @ List.init (max 0 options.retries) (fun _ -> { options with jobs = 1 })
    in
    let rec go attempt = function
      | [] -> assert false
      | o :: rest -> (
          match
            run_body "exploration" (fun () ->
                run_engine ~budget ?probe ?spans o prog)
          with
          | r -> r
          | exception e -> (
              let bt = Printexc.get_raw_backtrace () in
              let action =
                match rest with
                | next :: _ when next.jobs < o.jobs ->
                    Degrade_jobs { from_jobs = o.jobs; to_jobs = next.jobs }
                | _ :: _ -> Retry
                | [] -> Give_up
              in
              record_rung ~stage:"exploration" ~attempt ~action e bt;
              match action with
              | Give_up ->
                  record_failure ~stage:"exploration" e bt;
                  ( empty_stats,
                    empty_log,
                    Budget.Truncated
                      (Budget.Crash
                         ("exploration: " ^ Printexc.to_string e)) )
              | Retry | Degrade_jobs _ ->
                  Metrics.incr m_retries;
                  go (attempt + 1) rest))
    in
    go 1 ladder
  in
  let side_effects =
    stage "side-effects" ~default:[] (fun () ->
        Side_effect.of_program log prog)
  in
  let deps =
    stage "dependences" ~default:Depend.DepSet.empty (fun () ->
        Depend.of_log log)
  in
  let lifetimes =
    stage "lifetimes" ~default:[] (fun () -> Lifetime.of_log log)
  in
  let placements =
    stage "placement" ~default:[] (fun () -> Placement.decide lifetimes)
  in
  let gc_plan =
    stage "ctgc" ~default:[] (fun () -> Ctgc.deallocation_plan lifetimes)
  in
  let races, status =
    if options.find_races then
      match options.engine with
      | Concrete_full | Concrete_stubborn ->
          let r =
            stage "races"
              ~default:
                { Race.races = Race.RaceSet.empty; status = Budget.Complete }
              (fun () ->
                Race.find ~budget ?probe
                  (Step.make_ctx ~model:options.memory_model prog))
          in
          (* a races give-up must not masquerade as a complete scan:
             tag the status with the crash instead of the default *)
          let race_status =
            match
              List.find_opt (fun f -> f.stage = "races") !failures
            with
            | Some f ->
                Budget.Truncated (Budget.Crash ("races: " ^ f.diagnostic))
            | None -> r.Race.status
          in
          (Some r.Race.races, Budget.combine status race_status)
      | Abstract _ -> (None, status)
    else (None, status)
  in
  let critical =
    stage "critical" ~default:Critical.no_conflicts (fun () ->
        Critical.of_program prog)
  in
  let telemetry =
    match spans with
    | None -> []
    | Some t ->
        List.filteri (fun i _ -> i >= pre_events) (Span.durations t)
  in
  let degraded =
    match status with Budget.Truncated (Budget.Crash _) -> true | _ -> false
  in
  if Journal.enabled () then
    Journal.emit ~level:Journal.Info "pipeline.done"
      [
        ("engine", Journal.Str (Report.engine_name options.engine));
        ("configurations", Journal.Int stats.configurations);
        ("transitions", Journal.Int stats.transitions);
        ("complete", Journal.Bool (status = Budget.Complete));
        ("degraded", Journal.Bool degraded);
      ];
  {
    program = prog;
    engine_used = options.engine;
    memory_model = options.memory_model;
    stats;
    status;
    budget =
      Budget.snapshot budget ~configs:stats.configurations
        ~transitions:stats.transitions;
    stage_failures = List.rev !failures;
    recovery = List.rev !recovery;
    degraded;
    log;
    side_effects;
    deps;
    lifetimes;
    placements;
    gc_plan;
    races;
    critical;
    static;
    interference;
    telemetry;
  }

let analyze_source ?options ?stage_hook ?spans ?probe src =
  analyze ?options ?stage_hook ?spans ?probe (load_source src)

(* Parallelization report for segment-shaped programs (Figure 8). *)
let parallelization (r : report) : Parallelize.report =
  Parallelize.analyze r.program r.log

let pp_stats ppf (s : exploration_stats) =
  Format.fprintf ppf
    "configurations=%d transitions=%d max_frontier=%d finals=%d deadlocks=%d \
     errors=%d"
    s.configurations s.transitions s.max_frontier s.finals s.deadlocks
    s.errors

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>engine: %a@ %a@ status: %a%a@ @ critical references: %a@ @ side \
     effects:@ %a@ @ parallel dependences:@ %a@ @ lifetimes:@ %a@ @ \
     placement:@ %a@ @ deallocation plan:@ %a%a%a%a%a@]"
    pp_engine r.engine_used pp_stats r.stats Budget.pp_status r.status
    (fun ppf (fs, rungs) ->
      List.iter (fun f -> Format.fprintf ppf "@ %a" pp_stage_failure f) fs;
      match rungs with
      | [] -> ()
      | rungs ->
          Format.fprintf ppf "@ recovery:";
          List.iter
            (fun rung -> Format.fprintf ppf "@   %a" pp_recovery_rung rung)
            rungs)
    (r.stage_failures, r.recovery)
    Critical.pp r.critical
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Side_effect.pp_report)
    r.side_effects Depend.pp_deps
    (Depend.DepSet.filter (fun d -> d.Depend.parallel) r.deps)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Lifetime.pp_info)
    r.lifetimes Placement.pp r.placements Ctgc.pp r.gc_plan
    (fun ppf -> function
      | None -> ()
      | Some races -> Format.fprintf ppf "@ @ races:@ %a" Race.pp races)
    r.races
    (fun ppf -> function
      | None -> ()
      | Some static ->
          Format.fprintf ppf "@ @ static lints:@ %a" Cobegin_static.Lint.pp
            static)
    r.static
    (fun ppf -> function
      | None -> ()
      | Some s -> Format.fprintf ppf "@ @ %a" Interfere.pp_summary s)
    r.interference
    (fun ppf -> function
      | [] -> ()
      | telemetry ->
          Format.fprintf ppf "@ @ telemetry (stage wall seconds):";
          List.iter
            (fun (name, dur) ->
              Format.fprintf ppf "@   %-14s %.6f" name dur)
            telemetry)
    r.telemetry
