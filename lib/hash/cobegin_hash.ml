(* Full-width structural hashing.  [Hashtbl.hash] stops after ~10
   meaningful nodes; the folds here visit every node, so structurally
   distinct values of any size almost never collide.  The mixer is the
   boost::hash_combine recurrence with a 60-bit slice of 2^64/phi,
   masked to stay non-negative on 64-bit natives. *)

let gold = 0x9e3779b97f4a7c1

let combine h k = (h lxor (k + gold + (h lsl 6) + (h lsr 2))) land max_int

let hash_int k = combine 0x2b1 k
let hash_bool b = if b then 0x5bd1e995 else 0x2e35a7cd

let hash_string s =
  (* djb2 over every byte, then the length so "" and "\000" differ *)
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land max_int) s;
  combine (String.length s) !h

let hash_list hash_elt l =
  List.fold_left (fun h x -> combine h (hash_elt x)) (hash_int (List.length l)) l

let hash_option hash_elt = function
  | None -> 0x4f
  | Some x -> combine 0x536f6d65 (hash_elt x)

let hash_int_array a =
  Array.fold_left combine (hash_int (Array.length a)) a

module Pool (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  (* The lookup is mutex-guarded so pools can be shared across OCaml 5
     domains (the parallel exploration engine interns from every
     worker).  Ids stay sequential — the mutex serializes assignment,
     so the n-th distinct key interned process-wide gets id n-1 — and
     stable: an id, once handed out, never changes or gets reused.
     Uncontended lock/unlock costs a few nanoseconds, noise next to the
     structural hash of the key. *)
  type t = { lock : Mutex.t; tbl : int T.t; mutable next : int }

  let create n = { lock = Mutex.create (); tbl = T.create n; next = 0 }

  let intern p k =
    Mutex.protect p.lock (fun () ->
        match T.find_opt p.tbl k with
        | Some id -> id
        | None ->
            let id = p.next in
            p.next <- id + 1;
            T.add p.tbl k id;
            id)

  let size p = Mutex.protect p.lock (fun () -> p.next)

  (* Consistent (key, id) listing for snapshotting: taken under the
     pool mutex, so concurrent interns either appear fully or not at
     all — ids in the listing are always a prefix 0..n-1. *)
  let entries p =
    Mutex.protect p.lock (fun () ->
        T.fold (fun k id acc -> (k, id) :: acc) p.tbl [])
end

module Phys_memo = struct
  (* Buckets are keyed by [hash] — full-width when the caller supplies
     one — and scanned with [==].  Structurally equal but physically
     distinct keys therefore share a bucket and miss, which is safe.
     Buckets are capped so a pathological key distribution degrades to
     misses, not to linear scans.  The generic [Hashtbl.hash] default
     truncates after ~10 nodes, which collapses deep keys into a
     handful of buckets and then [bucket_cap] evicts live entries:
     callers memoizing deep structures must pass a full-width [hash]. *)
  let bucket_cap = 8

  type ('k, 'v) t = {
    tbl : (int, ('k * 'v) list) Hashtbl.t;
    limit : int;
    hash : 'k -> int;
  }

  let create ?(limit = 1 lsl 17) ?(hash = Hashtbl.hash) n =
    { tbl = Hashtbl.create n; limit; hash }

  let find m k =
    match Hashtbl.find_opt m.tbl (m.hash k) with
    | None -> None
    | Some entries ->
        List.find_map
          (fun (k', v) -> if k == k' then Some v else None)
          entries

  let add m k v =
    if Hashtbl.length m.tbl >= m.limit then Hashtbl.reset m.tbl;
    let h = m.hash k in
    let old =
      match Hashtbl.find_opt m.tbl h with Some l -> l | None -> []
    in
    let old = if List.length old >= bucket_cap then [] else old in
    Hashtbl.replace m.tbl h ((k, v) :: old)
end
