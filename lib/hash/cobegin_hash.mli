(** Full-width structural hashing and hash-consing primitives.

    OCaml's generic [Hashtbl.hash] inspects at most ~10 meaningful nodes
    of its argument, so deep canonical representations (configuration
    reprs, Petri markings, abstract-machine keys) degenerate into
    collision chains on anything bigger than a toy program.  This module
    provides explicit full-width folds — every node of the value
    contributes to the hash — plus the two building blocks of the
    interning layer: sequential-id {!Pool}s keyed by structural equality
    and best-effort physical-identity {!Phys_memo}s. *)

val combine : int -> int -> int
(** [combine h k] mixes [k] into the running hash [h] (boost-style,
    full native-int width, always non-negative). *)

val hash_int : int -> int
(** Mix a single integer through {!combine} (avalanches nearby ints). *)

val hash_bool : bool -> int

val hash_string : string -> int
(** Folds over {e every} byte of the string. *)

val hash_list : ('a -> int) -> 'a list -> int
(** Folds over every element; the length is mixed in, so a prefix never
    hashes like the whole. *)

val hash_option : ('a -> int) -> 'a option -> int

val hash_int_array : int array -> int
(** Full fold over the array — the replacement for
    [Hashtbl.hash (Array.to_list m)] truncated at ~10 elements. *)

(** Hash-consing pool: assigns small sequential ids to structurally
    distinct keys.  Two keys receive the same id iff they are equal per
    [H.equal]; ids are never reused, so id equality is a sound and
    complete proxy for structural equality of the interned values.

    Lookup is mutex-guarded, so a pool may be shared across OCaml 5
    domains: ids stay sequential and stable no matter how many domains
    intern concurrently. *)
module Pool (H : Hashtbl.HashedType) : sig
  type t

  val create : int -> t
  val intern : t -> H.t -> int
  val size : t -> int
  (** Number of distinct keys interned so far (= the next fresh id). *)

  val entries : t -> (H.t * int) list
  (** Every (key, id) pair interned so far, in no particular order,
      read atomically under the pool mutex — the ids always form the
      contiguous range [0..size-1].  For snapshot/restore
      ({!Intern}). *)
end

(** Best-effort memoization keyed by {e physical} identity.  A hit
    requires the exact same heap value ([==]); a miss is always safe —
    the caller falls back to structural interning.  Buckets are capped
    and the table is reset past [limit] entries, so the memo never
    grows without bound.

    NOT domain-safe on its own: callers that share a memo across
    domains must serialize [find]/[add] themselves (see {!Intern},
    which guards each memo with the mutex of the pool behind it). *)
module Phys_memo : sig
  type ('k, 'v) t

  val create : ?limit:int -> ?hash:('k -> int) -> int -> ('k, 'v) t
  (** [hash] selects the bucket a key lands in (entries within a bucket
      are compared by [==]).  It defaults to the generic [Hashtbl.hash],
      which truncates after ~10 nodes — fine for shallow keys, but deep
      keys then collapse into a handful of buckets whose [bucket_cap]
      evicts live entries.  Pass a full-width hash when memoizing deep
      structures; any function constant on physically equal values is
      sound. *)

  val find : ('k, 'v) t -> 'k -> 'v option
  val add : ('k, 'v) t -> 'k -> 'v -> unit
end
