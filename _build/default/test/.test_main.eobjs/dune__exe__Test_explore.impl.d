test/test_explore.ml: Alcotest Cobegin_explore Cobegin_models Cobegin_semantics Cobegin_trans Helpers List Printf Sleep Space Stubborn Trace
