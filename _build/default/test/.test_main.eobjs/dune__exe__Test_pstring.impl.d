test/test_pstring.ml: Helpers List Printf Pstring QCheck2
