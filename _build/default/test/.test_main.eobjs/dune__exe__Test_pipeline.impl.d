test/test_pipeline.ml: Alcotest Cobegin_absint Cobegin_analysis Cobegin_core Cobegin_explore Cobegin_lang Cobegin_models Format Helpers List Pipeline String
