test/test_petri.ml: Alcotest Array Cobegin_models Cobegin_petri Helpers List Net Printf QCheck2 Reach
