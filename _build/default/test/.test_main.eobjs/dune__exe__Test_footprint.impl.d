test/test_footprint.ml: Alcotest Cobegin_explore Cobegin_lang Cobegin_models Cobegin_semantics Config Exec Helpers List Mayaccess Proc Replay Step Store Value
