test/helpers.ml: Alcotest Check Cobegin_explore Cobegin_lang Cobegin_models Cobegin_semantics Parser QCheck2 QCheck_alcotest
