test/test_absint.ml: Alog Analyzer Cobegin_absint Cobegin_domains Cobegin_explore Cobegin_models Cobegin_semantics Helpers List Machine
