test/test_domains.ml: Bool3 Cobegin_domains Const Fixpoint Format Galois Gen Helpers Int Int_parity Interval Lattice List Map_lattice Parity Powerset QCheck2 Sign
