test/test_trans.ml: Alcotest Ast Coarsen Cobegin_explore Cobegin_lang Cobegin_models Cobegin_semantics Cobegin_trans Critical Helpers Inline List
