test/test_analysis.ml: Cobegin_absint Cobegin_analysis Cobegin_explore Cobegin_models Cobegin_semantics Depend Event Helpers Lifetime List Pstring Race Side_effect
