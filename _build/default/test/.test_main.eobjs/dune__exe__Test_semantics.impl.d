test/test_semantics.ml: Alcotest Cobegin_explore Cobegin_models Cobegin_semantics Config Exec Helpers List QCheck2 Step Store String Value
