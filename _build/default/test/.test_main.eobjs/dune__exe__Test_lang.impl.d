test/test_lang.ml: Access Alcotest Ast Check Cobegin_lang Cobegin_models Format Helpers Lexer List Parser Pretty String
