(* Shared helpers for the test suites. *)

open Cobegin_lang

let parse src =
  let prog = Parser.parse_string src in
  Check.check_exn prog;
  prog

let ctx_of src = Cobegin_semantics.Step.make_ctx (parse src)

let explore_full ?max_configs src =
  Cobegin_explore.Space.full ?max_configs (ctx_of src)

let explore_stubborn ?max_configs src =
  Cobegin_explore.Stubborn.explore ?max_configs (ctx_of src)

(* qcheck case registered under alcotest. *)
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Generator of small random ints. *)
let small_int = QCheck2.Gen.int_range (-20) 20

(* Random seed for program generation. *)
let seed_gen = QCheck2.Gen.int_range 1 1_000_000

(* Small random terminating cobegin programs. *)
let random_program ?(cfg = Cobegin_models.Generator.default_cfg) seed =
  Cobegin_models.Generator.program ~cfg ~seed ()

(* Sorted outcome multiset of an exploration: final stores canonically. *)
let final_reprs (r : Cobegin_explore.Space.result) =
  Cobegin_explore.Space.final_store_reprs r

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f
