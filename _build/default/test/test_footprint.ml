(* Next-action footprints and continuation may-access: the inputs of the
   stubborn-set reduction (paper Algorithm 1), tested directly. *)

open Cobegin_semantics
open Cobegin_explore
open Helpers
module LS = Value.LocSet

(* Drive a program with leftmost scheduling for [n] steps, then return
   (ctx, configuration). *)
let after_steps src n =
  let ctx = ctx_of src in
  let rec go c k =
    if k = 0 then c
    else
      match Step.enabled_processes ctx c with
      | [] -> c
      | p :: _ ->
          let c', _ = Step.fire ctx c p in
          go c' (k - 1)
  in
  (ctx, go (Step.init ctx) n)

let loc_names (_c : Config.t) =
  (* map locations to their creation-site labels for readable asserts *)
  fun ls -> List.map (fun l -> l.Value.l_site) (LS.elements ls) |> List.sort compare

let footprint_tests =
  [
    case "assignment footprint: reads RHS vars, writes LHS" (fun () ->
        (* after 2 decls the next action is x = y + 1 *)
        let ctx, c =
          after_steps "proc main() { var y = 1; var x = 0; x = y + 1; }" 2
        in
        let p = List.hd (Step.enabled_processes ctx c) in
        let fp = Step.action_footprint ctx c p in
        (* y holds 1, x holds 0: identify the cells by value *)
        let holding v ls =
          LS.exists (fun l -> Store.find l c.Config.store = Some (Value.Vint v)) ls
        in
        check_int "one read" 1 (LS.cardinal fp.Step.freads);
        check_bool "reads y" true (holding 1 fp.Step.freads);
        check_int "one write" 1 (LS.cardinal fp.Step.fwrites);
        check_bool "writes x" true (holding 0 fp.Step.fwrites));
    case "deref footprint includes the pointer and the cell" (fun () ->
        let ctx, c =
          after_steps "proc main() { var p = malloc(1); *p = 3; }" 2
        in
        let p = List.hd (Step.enabled_processes ctx c) in
        let fp = Step.action_footprint ctx c p in
        (* reads: the pointer variable (a non-heap cell); writes: the
           heap cell itself *)
        check_bool "reads the pointer variable" true
          (LS.exists
             (fun l -> not (Store.is_heap l c.Config.store))
             fp.Step.freads);
        check_bool "writes the heap cell" true
          (LS.exists (fun l -> Store.is_heap l c.Config.store) fp.Step.fwrites));
    case "await footprint is its condition's read set" (fun () ->
        let ctx, c =
          after_steps "proc main() { var f = 0; cobegin { await(f == 1); } { f = 1; } coend; }" 2
        in
        (* both branch processes live; find the awaiting one *)
        let procs = Config.processes c in
        let awaiting =
          List.find
            (fun p ->
              match Proc.next_stmt p with
              | Some { Cobegin_lang.Ast.kind = Cobegin_lang.Ast.Sawait _; _ } ->
                  true
              | _ -> false)
            procs
        in
        let fp = Step.action_footprint ctx c awaiting in
        check_int "reads exactly f" 1 (LS.cardinal fp.Step.freads);
        check_bool "writes nothing" true (LS.is_empty fp.Step.fwrites));
    case "atomic block footprint accumulates the whole run" (fun () ->
        let ctx, c =
          after_steps
            "proc main() { var a = 0; var b = 0; atomic { a = 1; b = a + 1; } }"
            2
        in
        let p = List.hd (Step.enabled_processes ctx c) in
        let fp = Step.action_footprint ctx c p in
        check_int "writes both cells" 2 (LS.cardinal fp.Step.fwrites);
        check_bool "reads a (from the second statement)" true
          (LS.cardinal fp.Step.freads >= 1));
    case "footprint conflict detection" (fun () ->
        let mk r w =
          { Step.freads = LS.of_list r; Step.fwrites = LS.of_list w }
        in
        let l s = { Value.l_pid = []; l_site = s; l_seq = 0; l_off = 0 } in
        check_bool "W/R conflicts" true
          (Step.footprint_conflict (mk [] [ l 1 ]) (mk [ l 1 ] []));
        check_bool "R/R does not" false
          (Step.footprint_conflict (mk [ l 1 ] []) (mk [ l 1 ] []));
        check_bool "disjoint does not" false
          (Step.footprint_conflict (mk [ l 1 ] [ l 2 ]) (mk [ l 3 ] [ l 4 ])));
  ]

let mayaccess_tests =
  [
    case "future accesses include everything left on the stack" (fun () ->
        let src =
          "proc main() { var a = 0; var b = 0; cobegin { a = 1; } { skip; \
           skip; b = a + 2; } coend; }"
        in
        let ctx, c = after_steps src 3 in
        let mctx = Mayaccess.make_ctx ctx.Step.prog in
        (* the second branch's future must read a (site 1) and write b
           (site 2) even though its next action is skip *)
        let branch2 =
          List.find
            (fun p -> p.Proc.pid <> [] && List.exists (fun (_, i) -> i = 1) p.Proc.pid)
            (Config.processes c)
        in
        let fut = Mayaccess.of_process mctx branch2 in
        check_bool "reads something eventually" true
          (not (LS.is_empty fut.Mayaccess.freads));
        check_bool "writes something eventually" true
          (not (LS.is_empty fut.Mayaccess.fwrites));
        (* specifically: the future write set and read set include outer
           variables (a and b), which resolve to existing locations *)
        check_bool "resolves against the store" true
          (LS.for_all
             (fun l -> Store.mem l c.Config.store)
             (LS.union fut.Mayaccess.freads fut.Mayaccess.fwrites)));
    case "callee memory effects flow into the future summary" (fun () ->
        let src =
          "proc w(p) { *p = 7; } proc main() { var h = malloc(1); cobegin { \
           w(h); } { skip; } coend; }"
        in
        (* var h = malloc(1) desugars into two statements, then the
           cobegin spawn: three steps until the branches exist *)
        let ctx, c = after_steps src 3 in
        let mctx = Mayaccess.make_ctx ctx.Step.prog in
        let branch1 =
          List.find (fun p -> p.Proc.pid <> []) (Config.processes c)
        in
        let fut = Mayaccess.of_process mctx branch1 in
        check_bool "may write memory" true fut.Mayaccess.mem_write);
    case "conflict: footprint vs memory token through the store" (fun () ->
        let src =
          "proc w(p) { *p = 7; } proc main() { var h = malloc(1); var x = \
           0; cobegin { w(h); } { x = *h; } coend; }"
        in
        let ctx, c = after_steps src 4 in
        let mctx = Mayaccess.make_ctx ctx.Step.prog in
        let procs = Config.processes c in
        let b1 =
          List.find
            (fun p -> p.Proc.pid <> [] && snd (List.hd p.Proc.pid) = 0)
            procs
        in
        let b2 =
          List.find
            (fun p -> p.Proc.pid <> [] && snd (List.hd p.Proc.pid) = 1)
            procs
        in
        let fp2 = Step.action_footprint ctx c b2 in
        let fut1 = Mayaccess.of_process mctx b1 in
        (* b2 reads the heap cell; b1's future writes memory: conflict *)
        check_bool "mem conflict detected" true
          (Mayaccess.conflicts_footprint c.Config.store fp2 fut1));
  ]

(* Every generated program is well formed and terminates under every
   tested scheduler. *)
let generator_tests =
  [
    qtest ~count:50 "generated programs pass the static checks" seed_gen
      (fun seed ->
        let src = Cobegin_models.Generator.source ~seed () in
        match Cobegin_lang.Parser.parse_string src with
        | p -> Cobegin_lang.Check.ok (Cobegin_lang.Check.check p)
        | exception _ -> false);
    qtest ~count:25 "generated programs terminate without deadlock" seed_gen
      (fun seed ->
        let prog = random_program seed in
        let ctx = Cobegin_semantics.Step.make_ctx prog in
        List.for_all
          (fun s ->
            match (Exec.run_random ~max_steps:50_000 ctx ~seed:s).Exec.outcome with
            | Exec.Terminated _ -> true
            | Exec.Error _ -> true (* generator may divide? no: still fine *)
            | Exec.Deadlock _ | Exec.Out_of_fuel _ -> false)
          [ 1; 2; 3 ]);
    qtest ~count:30 "generation is deterministic in the seed" seed_gen
      (fun seed ->
        Cobegin_models.Generator.source ~seed ()
        = Cobegin_models.Generator.source ~seed ());
  ]

let replay_finish_tests =
  [
    case "replay_then_finish completes a witness prefix" (fun () ->
        let ctx = ctx_of Cobegin_models.Figures.fig2 in
        (* take any 3-step prefix from the leftmost run and finish *)
        let r = Exec.run_leftmost ctx in
        let prefix =
          List.rev r.Exec.trace |> List.filteri (fun i _ -> i < 3)
          |> List.map (fun e -> e.Exec.chosen)
        in
        match Replay.replay_then_finish ctx prefix with
        | Exec.Terminated _ -> ()
        | _ -> Alcotest.fail "prefix should finish cleanly");
  ]

let suite =
  footprint_tests @ mayaccess_tests @ generator_tests @ replay_finish_tests
