(* Procedure-string algebra (paper section 5). *)

open Helpers

let p0 = Pstring.empty
let enter_f p = Pstring.enter_call ~proc:"f" ~site:1 ~inst:0 p
let enter_g p = Pstring.enter_call ~proc:"g" ~site:2 ~inst:0 p
let fork l i p = Pstring.enter_branch ~cob:l ~idx:i ~inst:0 p

(* Random procedure strings as movement sequences (always well nested). *)
let pstring_gen =
  let open QCheck2.Gen in
  let moves =
    list_size (0 -- 12)
      (oneof
         [
           map (fun i -> `Call i) (int_range 0 3);
           map2 (fun l i -> `Fork (l, i)) (int_range 0 2) (int_range 0 2);
           return `Exit;
         ])
  in
  map
    (fun ms ->
      List.fold_left
        (fun p m ->
          match m with
          | `Call i ->
              Pstring.enter_call
                ~proc:(Printf.sprintf "p%d" i)
                ~site:i ~inst:0 p
          | `Fork (l, i) -> Pstring.enter_branch ~cob:l ~idx:i ~inst:0 p
          | `Exit -> if Pstring.depth p = 0 then p else Pstring.exit_frame p)
        Pstring.empty ms)
    moves

let unit_tests =
  [
    case "enter/exit cancel" (fun () ->
        let p = enter_f p0 in
        check_bool "back to empty" true
          (Pstring.equal p0 (Pstring.exit_frame p)));
    case "depth counts open activations" (fun () ->
        check_int "depth" 2 (Pstring.depth (enter_g (enter_f p0))));
    case "common prefix" (fun () ->
        let a = enter_g (enter_f p0) in
        let b = enter_f p0 in
        check_bool "prefix is f" true
          (Pstring.equal (Pstring.common_prefix a b) b));
    case "MHP: different branches of one cobegin" (fun () ->
        let a = fork 7 0 (enter_f p0) in
        let b = fork 7 1 (enter_f p0) in
        check_bool "parallel" true (Pstring.may_happen_in_parallel a b));
    case "MHP: same branch is not parallel with itself" (fun () ->
        let a = fork 7 0 (enter_f p0) in
        check_bool "not parallel" false (Pstring.may_happen_in_parallel a a));
    case "MHP: ancestor not parallel with descendant" (fun () ->
        let parent = enter_f p0 in
        let child = fork 7 0 parent in
        check_bool "ordered" false
          (Pstring.may_happen_in_parallel parent child));
    case "MHP: different cobegin instances are ordered" (fun () ->
        let a = Pstring.enter_branch ~cob:7 ~idx:0 ~inst:0 p0 in
        let b = Pstring.enter_branch ~cob:7 ~idx:1 ~inst:1 p0 in
        check_bool "sequential respawn" false
          (Pstring.may_happen_in_parallel a b));
    case "MHP abstract conflates instances" (fun () ->
        let a = Pstring.enter_branch ~cob:7 ~idx:0 ~inst:0 p0 in
        let b = Pstring.enter_branch ~cob:7 ~idx:1 ~inst:1 p0 in
        check_bool "may (conservatively)" true
          (Pstring.may_happen_in_parallel_abstract a b));
    case "MHP: deeper work inside branches stays parallel" (fun () ->
        let a = enter_g (fork 7 0 p0) in
        let b = enter_f (fork 7 1 p0) in
        check_bool "parallel" true (Pstring.may_happen_in_parallel a b));
    case "activations_of finds nested activations" (fun () ->
        let p = enter_f (enter_g (enter_f p0)) in
        check_int "two f frames" 2
          (List.length (Pstring.activations_of ~proc:"f" p)));
    case "extent owner of local usage" (fun () ->
        let birth = enter_f p0 in
        let owner = Pstring.extent_owner ~birth ~accesses:[ birth; enter_g birth ] in
        check_bool "owned by f" true (Pstring.equal owner birth));
    case "extent owner escapes to caller" (fun () ->
        let birth = enter_f p0 in
        let owner = Pstring.extent_owner ~birth ~accesses:[ p0 ] in
        check_int "program level" 0 (Pstring.depth owner));
    case "k-limit keeps innermost frames" (fun () ->
        let p = enter_f (enter_g (enter_f p0)) in
        let l = Pstring.limit 2 p in
        check_int "length 2" 2 (Pstring.depth l);
        check_bool "suffix" true
          (Pstring.equal l (enter_f (enter_g p0))));
    case "abstract erases instances" (fun () ->
        let p = Pstring.enter_call ~proc:"f" ~site:1 ~inst:42 p0 in
        check_bool "similar to inst 0" true
          (Pstring.similar (Pstring.abstract ~k:8 p) (enter_f p0)));
    case "to_string is stable" (fun () ->
        check_string "rendering" "f@1·cob7.0"
          (Pstring.to_string (fork 7 0 (enter_f p0))));
  ]

let properties =
  [
    qtest "MHP is symmetric"
      QCheck2.Gen.(pair pstring_gen pstring_gen)
      (fun (a, b) ->
        Pstring.may_happen_in_parallel a b
        = Pstring.may_happen_in_parallel b a);
    qtest "MHP is irreflexive" pstring_gen (fun p ->
        not (Pstring.may_happen_in_parallel p p));
    qtest "common_prefix is a prefix of both"
      QCheck2.Gen.(pair pstring_gen pstring_gen)
      (fun (a, b) ->
        let c = Pstring.common_prefix a b in
        Pstring.is_prefix ~prefix:c a && Pstring.is_prefix ~prefix:c b);
    qtest "common_prefix commutes"
      QCheck2.Gen.(pair pstring_gen pstring_gen)
      (fun (a, b) ->
        Pstring.equal (Pstring.common_prefix a b) (Pstring.common_prefix b a));
    qtest "extent owner is a prefix of the birth"
      QCheck2.Gen.(pair pstring_gen (list_size (0 -- 4) pstring_gen))
      (fun (birth, accesses) ->
        Pstring.is_prefix
          ~prefix:(Pstring.extent_owner ~birth ~accesses)
          birth);
    qtest "abstract MHP over-approximates concrete MHP"
      QCheck2.Gen.(pair pstring_gen pstring_gen)
      (fun (a, b) ->
        (not (Pstring.may_happen_in_parallel a b))
        || Pstring.may_happen_in_parallel_abstract
             (Pstring.erase_instances a)
             (Pstring.erase_instances b));
    qtest "limit bounds depth" pstring_gen (fun p ->
        Pstring.depth (Pstring.limit 3 p) <= 3);
    qtest "compare is a total order compatible with equal"
      QCheck2.Gen.(pair pstring_gen pstring_gen)
      (fun (a, b) -> Pstring.compare a b = 0 = Pstring.equal a b);
  ]

let suite = unit_tests @ properties
