lib/core/pipeline.mli: Analyzer Ast Cobegin_absint Cobegin_analysis Cobegin_apps Cobegin_lang Cobegin_trans Critical Ctgc Depend Event Format Lifetime Machine Parallelize Placement Race Side_effect
