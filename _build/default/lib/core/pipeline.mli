(** The analyzer pipeline — the paper's framework end to end:

    {v
source → parse → check → (coarsen | inline)
       → exploration (full | stubborn) or abstract interpretation
       → instrumentation log
       → side effects, dependences, lifetimes            (section 5)
       → parallelization, placement, compile-time GC     (section 7)
    v}

    This is the one-call API; the individual libraries remain available
    for finer control. *)

open Cobegin_lang
open Cobegin_trans
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps

(** Which engine produces the instrumentation log. *)
type engine =
  | Concrete_full  (** ordinary state-space generation *)
  | Concrete_stubborn  (** with persistent/stubborn-set reduction *)
  | Abstract of Analyzer.domain * Machine.folding
      (** abstract interpretation: numeric domain × configuration folding *)

val pp_engine : Format.formatter -> engine -> unit

type options = {
  engine : engine;
  coarsen : bool;  (** apply virtual coarsening first (Observation 5) *)
  inline : bool;  (** inline non-recursive calls first *)
  max_configs : int;  (** exploration budget *)
  find_races : bool;  (** run the co-enabledness race scan too *)
}

val default_options : options
(** Concrete full engine, no transforms, 500k budget, no race scan. *)

type exploration_stats = {
  configurations : int;
  transitions : int;  (** 0 for abstract engines *)
  finals : int;
  deadlocks : int;  (** 0 for abstract engines *)
  errors : int;
}

type report = {
  program : Ast.program;  (** the program after transforms *)
  engine_used : engine;
  stats : exploration_stats;
  log : Event.log;  (** unified instrumentation log *)
  side_effects : Side_effect.report list;  (** one per procedure *)
  deps : Depend.DepSet.t;  (** all dependences (parallel + sequential) *)
  lifetimes : Lifetime.info list;  (** one per object *)
  placements : Placement.decision list;  (** shared vs local memory *)
  gc_plan : Ctgc.entry list;  (** static deallocation points *)
  races : Race.RaceSet.t option;  (** when [find_races] was set *)
  critical : Critical.conflicts;  (** critical-reference report *)
}

val load_source : string -> Ast.program
(** Parse and check a program from source text.
    @raise Cobegin_lang.Parser.Error on syntax errors
    @raise Cobegin_lang.Check.Ill_formed on static errors *)

val load_file : string -> Ast.program

val analyze : ?options:options -> Ast.program -> report
(** Run the pipeline.  May raise {!Cobegin_explore.Space.Budget_exceeded}
    or {!Cobegin_absint.Machine.Budget_exceeded}. *)

val analyze_source : ?options:options -> string -> report

val parallelization : report -> Parallelize.report
(** Shasha–Snir conflict/delay/parallelization report for programs whose
    entry contains one cobegin of straight-line segments (Figure 8). *)

val pp_stats : Format.formatter -> exploration_stats -> unit
val pp_report : Format.formatter -> report -> unit
