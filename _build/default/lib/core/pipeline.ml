(* The analyzer pipeline: the paper's framework end-to-end.

     source
       → parse → check → (virtual coarsening | inlining)        [front end]
       → state-space exploration (full | stubborn)              [section 2]
         and/or abstract exploration (folding, numeric domain)  [sections 3-6]
       → instrumentation log
       → side effects, dependences, lifetimes                   [section 5]
       → parallelization, memory placement, compile-time GC     [section 7]

   This module is the public API most users want; the individual
   libraries stay available for finer control. *)

open Cobegin_lang
open Cobegin_trans
open Cobegin_semantics
open Cobegin_explore
open Cobegin_absint
open Cobegin_analysis
open Cobegin_apps

type engine =
  | Concrete_full (* ordinary state-space generation *)
  | Concrete_stubborn (* with persistent/stubborn-set reduction *)
  | Abstract of Analyzer.domain * Machine.folding

let pp_engine ppf = function
  | Concrete_full -> Format.pp_print_string ppf "concrete/full"
  | Concrete_stubborn -> Format.pp_print_string ppf "concrete/stubborn"
  | Abstract (d, f) ->
      Format.fprintf ppf "abstract/%a/%a" Analyzer.pp_domain d
        Machine.pp_folding f

type options = {
  engine : engine;
  coarsen : bool; (* apply virtual coarsening first *)
  inline : bool; (* apply procedure inlining first *)
  max_configs : int;
  find_races : bool; (* co-enabledness race scan (concrete engines) *)
}

let default_options =
  {
    engine = Concrete_full;
    coarsen = false;
    inline = false;
    max_configs = 500_000;
    find_races = false;
  }

type exploration_stats = {
  configurations : int;
  transitions : int; (* 0 for abstract engines *)
  finals : int;
  deadlocks : int; (* 0 for abstract engines *)
  errors : int;
}

type report = {
  program : Ast.program; (* after transforms *)
  engine_used : engine;
  stats : exploration_stats;
  log : Event.log;
  side_effects : Side_effect.report list;
  deps : Depend.DepSet.t;
  lifetimes : Lifetime.info list;
  placements : Placement.decision list;
  gc_plan : Ctgc.entry list;
  races : Race.RaceSet.t option;
  critical : Critical.conflicts;
}

let load_source src =
  let prog = Parser.parse_string src in
  Check.check_exn prog;
  prog

let load_file path =
  let prog = Parser.parse_file path in
  Check.check_exn prog;
  prog

let transform (opts : options) prog =
  let prog = if opts.inline then Inline.program prog else prog in
  let prog = if opts.coarsen then Coarsen.program prog else prog in
  prog

(* Run the chosen engine, returning stats plus the unified log. *)
let run_engine (opts : options) prog : exploration_stats * Event.log =
  match opts.engine with
  | Concrete_full | Concrete_stubborn ->
      let ctx = Step.make_ctx prog in
      let result =
        match opts.engine with
        | Concrete_full -> Space.full ~max_configs:opts.max_configs ctx
        | _ -> Stubborn.explore ~max_configs:opts.max_configs ctx
      in
      ( {
          configurations = result.Space.stats.Space.configurations;
          transitions = result.Space.stats.Space.transitions;
          finals = result.Space.stats.Space.finals;
          deadlocks = result.Space.stats.Space.deadlocks;
          errors = result.Space.stats.Space.errors;
        },
        Event.of_concrete result.Space.log )
  | Abstract (domain, folding) ->
      let summary =
        Analyzer.analyze ~domain ~folding ~max_configs:opts.max_configs prog
      in
      ( {
          configurations = summary.Analyzer.abstract_configs;
          transitions = 0;
          finals = summary.Analyzer.finals;
          deadlocks = 0;
          errors = summary.Analyzer.errors;
        },
        Event.of_abstract summary.Analyzer.log )

let analyze ?(options = default_options) (prog : Ast.program) : report =
  Check.check_exn prog;
  let prog = transform options prog in
  let stats, log = run_engine options prog in
  let side_effects = Side_effect.of_program log prog in
  let deps = Depend.of_log log in
  let lifetimes = Lifetime.of_log log in
  let placements = Placement.decide lifetimes in
  let gc_plan = Ctgc.deallocation_plan lifetimes in
  let races =
    if options.find_races then
      match options.engine with
      | Concrete_full | Concrete_stubborn ->
          Some (Race.find ~max_configs:options.max_configs (Step.make_ctx prog))
      | Abstract _ -> None
    else None
  in
  {
    program = prog;
    engine_used = options.engine;
    stats;
    log;
    side_effects;
    deps;
    lifetimes;
    placements;
    gc_plan;
    races;
    critical = Critical.of_program prog;
  }

let analyze_source ?options src = analyze ?options (load_source src)

(* Parallelization report for segment-shaped programs (Figure 8). *)
let parallelization (r : report) : Parallelize.report =
  Parallelize.analyze r.program r.log

let pp_stats ppf (s : exploration_stats) =
  Format.fprintf ppf
    "configurations=%d transitions=%d finals=%d deadlocks=%d errors=%d"
    s.configurations s.transitions s.finals s.deadlocks s.errors

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>engine: %a@ %a@ @ critical references: %a@ @ side effects:@ %a@ @ \
     parallel dependences:@ %a@ @ lifetimes:@ %a@ @ placement:@ %a@ @ \
     deallocation plan:@ %a%a@]"
    pp_engine r.engine_used pp_stats r.stats Critical.pp r.critical
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Side_effect.pp_report)
    r.side_effects Depend.pp_deps
    (Depend.DepSet.filter (fun d -> d.Depend.parallel) r.deps)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Lifetime.pp_info)
    r.lifetimes Placement.pp r.placements Ctgc.pp r.gc_plan
    (fun ppf -> function
      | None -> ()
      | Some races -> Format.fprintf ppf "@ @ races:@ %a" Race.pp races)
    r.races
