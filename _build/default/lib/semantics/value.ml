(* Concrete values and locations.

   A process identifier is its fork path: the root process is []; the k-th
   branch of the cobegin at label l spawned by process p is p @ [(l, k)].
   Fork paths are canonical (independent of interleaving), which makes
   configurations comparable across execution orders.

   A location is (creating pid, creation site, per-(pid,site) sequence
   number, cell offset).  Allocation is thereby deterministic: no matter
   the interleaving, the same logical allocation receives the same
   location — essential for folding identical states during exploration. *)

type pid = (int * int) list (* (cobegin label, branch index) path *)

let root_pid : pid = []
let child_pid (p : pid) ~cob ~idx : pid = p @ [ (cob, idx) ]

let compare_pid : pid -> pid -> int =
  List.compare (fun (a, b) (c, d) ->
      let x = Int.compare a c in
      if x <> 0 then x else Int.compare b d)

let pp_pid ppf (p : pid) =
  match p with
  | [] -> Format.pp_print_string ppf "root"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ".")
        (fun ppf (cob, idx) -> Format.fprintf ppf "%d:%d" cob idx)
        ppf p

type loc = {
  l_pid : pid; (* process that created the location *)
  l_site : int; (* statement label of the creating decl/malloc/call *)
  l_seq : int; (* per-(pid, site) sequence number *)
  l_off : int; (* cell offset inside a malloc block *)
}

let compare_loc (a : loc) (b : loc) =
  let c = compare_pid a.l_pid b.l_pid in
  if c <> 0 then c
  else
    let c = Int.compare a.l_site b.l_site in
    if c <> 0 then c
    else
      let c = Int.compare a.l_seq b.l_seq in
      if c <> 0 then c else Int.compare a.l_off b.l_off

let pp_loc ppf (l : loc) =
  Format.fprintf ppf "⟨%a/s%d/%d⟩%s" pp_pid l.l_pid l.l_site l.l_seq
    (if l.l_off = 0 then "" else Printf.sprintf "+%d" l.l_off)

module LocSet = Set.Make (struct
  type t = loc

  let compare = compare_loc
end)

module LocMap = Map.Make (struct
  type t = loc

  let compare = compare_loc
end)

type t =
  | Vint of int
  | Vbool of bool
  | Vloc of loc
  | Vfun of string (* a procedure name used as a first-class value *)

let compare_value (a : t) (b : t) =
  match (a, b) with
  | Vint x, Vint y -> Int.compare x y
  | Vbool x, Vbool y -> Bool.compare x y
  | Vloc x, Vloc y -> compare_loc x y
  | Vfun x, Vfun y -> String.compare x y
  | Vint _, _ -> -1
  | _, Vint _ -> 1
  | Vbool _, _ -> -1
  | _, Vbool _ -> 1
  | Vloc _, _ -> -1
  | _, Vloc _ -> 1

let equal_value a b = compare_value a b = 0

let pp ppf = function
  | Vint n -> Format.pp_print_int ppf n
  | Vbool b -> Format.pp_print_bool ppf b
  | Vloc l -> pp_loc ppf l
  | Vfun f -> Format.fprintf ppf "proc:%s" f

let type_name = function
  | Vint _ -> "int"
  | Vbool _ -> "bool"
  | Vloc _ -> "pointer"
  | Vfun _ -> "procedure"
