(** Concrete values, process identifiers and locations.

    Pids are {e fork paths}: the root process is [[]]; the k-th branch of
    the cobegin labelled l spawned by p is [p @ [(l, k)]] — canonical
    across interleavings.  Locations are (creating pid, creation site,
    per-(pid,site) sequence number, cell offset), making allocation
    deterministic: the same logical allocation always receives the same
    location, so configurations reached by different interleavings
    compare equal and fold during exploration. *)

type pid = (int * int) list

val root_pid : pid
val child_pid : pid -> cob:int -> idx:int -> pid
val compare_pid : pid -> pid -> int
val pp_pid : Format.formatter -> pid -> unit

type loc = {
  l_pid : pid;  (** process that created the location *)
  l_site : int;  (** label of the creating decl/malloc/call statement *)
  l_seq : int;  (** per-(pid, site) sequence number *)
  l_off : int;  (** cell offset inside a malloc block *)
}

val compare_loc : loc -> loc -> int
val pp_loc : Format.formatter -> loc -> unit

module LocSet : Set.S with type elt = loc
module LocMap : Map.S with type key = loc

type t =
  | Vint of int
  | Vbool of bool
  | Vloc of loc  (** pointer *)
  | Vfun of string  (** first-class procedure value *)

val compare_value : t -> t -> int
val equal_value : t -> t -> bool
val pp : Format.formatter -> t -> unit

val type_name : t -> string
(** For error messages: "int", "bool", "pointer", "procedure". *)
