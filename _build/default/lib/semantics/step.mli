(** The small-step interleaving semantics (paper sections 2 and 4).

    One transition is one atomic action of one process: a simple
    statement, a branch test, a call/return movement, a cobegin spawn, a
    join, or a whole [atomic] block.  Expressions are pure and evaluated
    within the action containing them.  Every transition is instrumented
    with the accesses and allocations it performs — the input of the
    section-5 analyses. *)

open Cobegin_lang

type ctx = {
  prog : Ast.program;
  addr_taken : Ast.StringSet.t;  (** names whose address is taken *)
}

val make_ctx : Ast.program -> ctx

(** {1 Instrumentation} *)

type access = {
  a_label : int;  (** statement performing the access; -1 = implicit *)
  a_loc : Value.loc;
  a_kind : [ `Read | `Write ];
  a_pstr : Pstring.t;  (** procedure string at the access *)
  a_pid : Value.pid;
}

type alloc = {
  al_loc : Value.loc;
  al_site : int;
  al_birth : Pstring.t;  (** the object's birthdate *)
  al_heap : bool;
}

type events = { accesses : access list; allocs : alloc list }

val no_events : events
val merge_events : events -> events -> events

(** {1 Evaluation} *)

exception Runtime_error of string

val eval :
  ctx -> Env.t -> Store.t -> Value.LocSet.t ref -> Ast.expr -> Value.t
(** Evaluate an expression, accumulating the locations read.
    @raise Runtime_error on type errors, dangling pointers, division by
    zero, etc. *)

val eval_bool : ctx -> Env.t -> Store.t -> Value.LocSet.t ref -> Ast.expr -> bool

val resolve_lvalue :
  ctx -> Env.t -> Store.t -> Value.LocSet.t ref -> Ast.lvalue -> Value.loc

(** {1 Configurations} *)

val normalize : Config.t -> Config.t
(** Unfold administrative items (blocks, environment pops) and drop
    terminated processes; all configurations handled by [fire] and
    returned by it are normalized. *)

val init : ctx -> Config.t
(** Initial configuration: one root process at the entry procedure. *)

val enabled_proc : ctx -> Config.t -> Proc.t -> bool
(** Disabled: an [await]/[lock] whose condition is false, or a join with
    live children.  Failing evaluations count as enabled — firing them
    yields the error configuration. *)

val enabled_processes : ctx -> Config.t -> Proc.t list

(** {1 Footprints (dry runs)} *)

type footprint = { freads : Value.LocSet.t; fwrites : Value.LocSet.t }

val empty_footprint : footprint

val footprint_conflict : footprint -> footprint -> bool
(** Write/read or write/write overlap. *)

val action_footprint : ctx -> Config.t -> Proc.t -> footprint
(** The locations the process's next action would read and write,
    computed without committing — what the stubborn-set reduction
    compares across processes (Algorithm 1). *)

(** {1 Transitions} *)

val fire : ctx -> Config.t -> Proc.t -> Config.t * events
(** Fire the next action of an enabled process.  Runtime failures yield
    an error configuration rather than raising. *)

val successors : ctx -> Config.t -> (Value.pid * Config.t * events) list
(** Full expansion: one successor per enabled process. *)

val is_deadlock : ctx -> Config.t -> bool
(** Not terminated, no error, nothing enabled. *)
