(** Environments: variable names to locations.  Blocks save and restore
    environments at entry/exit (lexical scoping); cobegin branches
    inherit the spawning environment — which is how concurrent threads
    come to share variables. *)

type t

val empty : t
val find : string -> t -> Value.loc option
val bind : string -> Value.loc -> t -> t
val bindings : t -> (string * Value.loc) list
val equal : t -> t -> bool

val locations : t -> Value.LocSet.t
(** The locations named by the environment's bindings. *)

val pp : Format.formatter -> t -> unit
