(** Schedule replay: execute a program under an explicit schedule, as
    produced by {!Cobegin_explore.Trace} witnesses.  Validates that a
    witness actually reproduces its reported outcome. *)

type step_error =
  | Pid_not_enabled of Value.pid * int
      (** the scheduled process exists but cannot move (position given) *)
  | Pid_not_found of Value.pid * int
      (** no live process has the scheduled pid *)

type result =
  | Replayed of Config.t  (** configuration after the whole schedule *)
  | Stuck of step_error * Config.t  (** the schedule diverged *)

val pp_step_error : Format.formatter -> step_error -> unit

val replay : Step.ctx -> Value.pid list -> result
(** Fire the scheduled processes in order from the initial
    configuration; stops early at an error configuration. *)

val replay_then_finish :
  ?max_steps:int -> Step.ctx -> Value.pid list -> Exec.outcome
(** Replay a prefix, then run to completion under deterministic leftmost
    scheduling. *)
