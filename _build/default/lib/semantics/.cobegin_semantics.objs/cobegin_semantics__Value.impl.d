lib/semantics/value.ml: Bool Format Int List Map Printf Set String
