lib/semantics/env.mli: Format Value
