lib/semantics/store.mli: Format Pstring Value
