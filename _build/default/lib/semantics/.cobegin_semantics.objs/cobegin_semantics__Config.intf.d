lib/semantics/config.mli: Format Map Proc Store Value
