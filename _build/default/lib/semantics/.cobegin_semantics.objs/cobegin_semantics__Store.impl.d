lib/semantics/store.ml: Format List Pstring Value
