lib/semantics/proc.ml: Ast Cobegin_lang Env Format List Pretty Printf Pstring Value
