lib/semantics/exec.mli: Config Proc Step Value
