lib/semantics/step.ml: Ast Cobegin_lang Config Env Format List Proc Pstring Store Value
