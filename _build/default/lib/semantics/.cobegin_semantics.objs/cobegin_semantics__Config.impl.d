lib/semantics/config.ml: Format Hashtbl Int List Map Option Proc Store Value
