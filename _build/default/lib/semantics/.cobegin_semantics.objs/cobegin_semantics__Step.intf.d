lib/semantics/step.mli: Ast Cobegin_lang Config Env Proc Pstring Store Value
