lib/semantics/env.ml: Format Map String Value
