lib/semantics/replay.ml: Config Exec Format Option Step Value
