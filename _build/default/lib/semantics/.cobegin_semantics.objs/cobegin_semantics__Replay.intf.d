lib/semantics/replay.mli: Config Exec Format Step Value
