lib/semantics/exec.ml: Config List Option Proc Random Step Value
