lib/semantics/proc.mli: Ast Cobegin_lang Env Format Pstring Value
