lib/semantics/value.mli: Format Map Set
