(* Schedule replay: execute a program under an explicit schedule (a list
   of pids, as produced by Explore.Trace witnesses).  Used to validate
   that a witness schedule actually reproduces the reported outcome, and
   by tests as an independent check of the exploration engine. *)

type step_error =
  | Pid_not_enabled of Value.pid * int (* position in the schedule *)
  | Pid_not_found of Value.pid * int

type result =
  | Replayed of Config.t (* configuration after the whole schedule *)
  | Stuck of step_error * Config.t

let pp_step_error ppf = function
  | Pid_not_enabled (pid, i) ->
      Format.fprintf ppf "step %d: process %a is not enabled" i Value.pp_pid
        pid
  | Pid_not_found (pid, i) ->
      Format.fprintf ppf "step %d: process %a does not exist" i Value.pp_pid
        pid

let replay ctx (schedule : Value.pid list) : result =
  let rec go c i = function
    | [] -> Replayed c
    | pid :: rest -> (
        if Config.is_error c then Replayed c
        else
          match Config.find_proc pid c with
          | None -> Stuck (Pid_not_found (pid, i), c)
          | Some p ->
              if not (Step.enabled_proc ctx c p) then
                Stuck (Pid_not_enabled (pid, i), c)
              else
                let c', _ = Step.fire ctx c p in
                go c' (i + 1) rest)
  in
  go (Step.init ctx) 0 schedule

(* Replay and then run the rest to completion deterministically (leftmost
   scheduling): the continuation of a witness prefix. *)
let replay_then_finish ?(max_steps = 10_000) ctx schedule : Exec.outcome =
  match replay ctx schedule with
  | Stuck (_, c) -> Exec.Error ("stuck replay", c)
  | Replayed c ->
      let rec go c fuel =
        if Config.is_error c then
          Exec.Error (Option.get c.Config.error, c)
        else if Config.all_terminated c then Exec.Terminated c
        else if fuel = 0 then Exec.Out_of_fuel c
        else
          match Step.enabled_processes ctx c with
          | [] -> Exec.Deadlock c
          | p :: _ ->
              let c', _ = Step.fire ctx c p in
              go c' (fuel - 1)
      in
      go c max_steps
