(* Environments map variable names to locations.  Blocks save and restore
   environments (see Proc.Ipop), giving lexical block scoping; cobegin
   branches inherit the spawning environment, which is how concurrent
   threads come to share variables. *)

module SM = Map.Make (String)

type t = Value.loc SM.t

let empty : t = SM.empty
let find x (e : t) = SM.find_opt x e
let bind x loc (e : t) : t = SM.add x loc e
let bindings (e : t) = SM.bindings e
let equal (a : t) (b : t) = SM.equal (fun l1 l2 -> Value.compare_loc l1 l2 = 0) a b

(* Locations reachable directly from an environment (its frame of named
   variables). *)
let locations (e : t) =
  SM.fold (fun _ l acc -> Value.LocSet.add l acc) e Value.LocSet.empty

let pp ppf (e : t) =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (x, l) -> Format.fprintf ppf "%s↦%a" x Value.pp_loc l))
    (SM.bindings e)
