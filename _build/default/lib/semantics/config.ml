(* Configurations: the global states of the interleaving semantics
   (paper section 2): the set of live processes plus the shared store,
   the allocation counters, and an optional error marker.

   Equality and hashing go through a canonical representation so that the
   exploration engine folds states reached by different interleavings.
   Instrumentation metadata (birthdates, heap-ness) is excluded: it is
   functionally determined by the rest. *)

module PidMap = Map.Make (struct
  type t = Value.pid

  let compare = Value.compare_pid
end)

module CounterMap = Map.Make (struct
  type t = Value.pid * int (* (pid, site) *)

  let compare (p1, s1) (p2, s2) =
    let c = Value.compare_pid p1 p2 in
    if c <> 0 then c else Int.compare s1 s2
  end)

type t = {
  procs : Proc.t PidMap.t;
  store : Store.t;
  counters : int CounterMap.t; (* next sequence number per (pid, site) *)
  error : string option;
}

let make ~procs ~store ~counters ~error = { procs; store; counters; error }

let processes c = List.map snd (PidMap.bindings c.procs)
let find_proc pid c = PidMap.find_opt pid c.procs
let num_procs c = PidMap.cardinal c.procs
let is_error c = Option.is_some c.error

(* Terminal: error, or every process has terminated (the root included).
   A configuration where some process is blocked forever and none can move
   is a *deadlock*, also terminal but distinguished by the explorer. *)
let all_terminated c = PidMap.is_empty c.procs

(* Bump the allocation counter for (pid, site); returns seq and the new
   configuration counters. *)
let next_seq ~pid ~site c =
  let key = (pid, site) in
  let seq = match CounterMap.find_opt key c.counters with Some n -> n | None -> 0 in
  (seq, { c with counters = CounterMap.add key (seq + 1) c.counters })

let update_proc p c = { c with procs = PidMap.add p.Proc.pid p c.procs }
let remove_proc pid c = { c with procs = PidMap.remove pid c.procs }
let add_proc p c = { c with procs = PidMap.add p.Proc.pid p c.procs }
let with_store store c = { c with store }
let with_error msg c = { c with error = Some msg }

(* Canonical representation for hashing and equality. *)
type repr = {
  r_procs : Proc.repr list;
  r_store : (Value.loc * Value.t) list;
  r_counters : ((Value.pid * int) * int) list;
  r_error : string option;
}

let repr c =
  {
    r_procs = List.map (fun (_, p) -> Proc.repr p) (PidMap.bindings c.procs);
    r_store = Store.repr c.store;
    r_counters = CounterMap.bindings c.counters;
    r_error = c.error;
  }

let equal a b = repr a = repr b
let hash c = Hashtbl.hash (repr c)

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@ store: %a%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Proc.pp)
    (processes c) Store.pp c.store
    (fun ppf -> function
      | None -> ()
      | Some e -> Format.fprintf ppf "@ ERROR: %s" e)
    c.error
