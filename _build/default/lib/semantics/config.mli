(** Configurations — the global states of the interleaving semantics
    (paper section 2): live processes, shared store, allocation counters
    and an optional error marker.  Equality and hashing go through a
    canonical representation so that exploration folds states reached by
    different interleavings. *)

module PidMap : Map.S with type key = Value.pid
module CounterMap : Map.S with type key = Value.pid * int

type t = {
  procs : Proc.t PidMap.t;
  store : Store.t;
  counters : int CounterMap.t;  (** next sequence number per (pid, site) *)
  error : string option;  (** a runtime failure: the configuration is terminal *)
}

val make :
  procs:Proc.t PidMap.t ->
  store:Store.t ->
  counters:int CounterMap.t ->
  error:string option ->
  t

val processes : t -> Proc.t list
(** Live processes, in pid order. *)

val find_proc : Value.pid -> t -> Proc.t option
val num_procs : t -> int
val is_error : t -> bool

val all_terminated : t -> bool
(** Every process has run to completion: a final configuration. *)

val next_seq : pid:Value.pid -> site:int -> t -> int * t
(** Allocate the next sequence number for (pid, site). *)

val update_proc : Proc.t -> t -> t
val remove_proc : Value.pid -> t -> t
val add_proc : Proc.t -> t -> t
val with_store : Store.t -> t -> t
val with_error : string -> t -> t

type repr
(** Canonical representation: pure data with structural equality. *)

val repr : t -> repr
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
