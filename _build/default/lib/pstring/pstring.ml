(* Procedure strings (Harrison [Har89], paper section 5).

   The instrumented semantics records the procedural and concurrency
   movements of each process: entering/exiting a procedure and
   entering/exiting a cobegin branch.  Matching enter/exit pairs cancel, so
   a procedure string in reduced form is exactly the stack of currently
   open activations, root first.  Reduced strings are:

     - the *birthdate* of an object (the string at its allocation),
     - the coordinate at which every access is logged,
     - the carrier for the may-happen-in-parallel (MHP) relation.

   Each frame carries a globally unique instance number so two successive
   activations of the same procedure (or two executions of the same cobegin
   in a loop) are distinguished in the concrete semantics.  Abstraction
   ([abstract], [limit]) erases instances and bounds the length, which is
   the folding of birthdates the paper uses in section 6. *)

type frame =
  | Fcall of { proc : string; site : int; inst : int }
      (* activation of [proc], called from statement label [site] *)
  | Fbranch of { cob : int; idx : int; inst : int }
      (* branch [idx] of the cobegin at statement label [cob] *)

type t = frame list (* root-first stack of open activations *)

let empty : t = []
let frames (p : t) = p
let depth = List.length

let frame_equal f1 f2 =
  match (f1, f2) with
  | Fcall a, Fcall b -> a.proc = b.proc && a.site = b.site && a.inst = b.inst
  | Fbranch a, Fbranch b -> a.cob = b.cob && a.idx = b.idx && a.inst = b.inst
  | (Fcall _ | Fbranch _), _ -> false

(* Ignore instance numbers: structural identity of the activation path. *)
let frame_similar f1 f2 =
  match (f1, f2) with
  | Fcall a, Fcall b -> a.proc = b.proc && a.site = b.site
  | Fbranch a, Fbranch b -> a.cob = b.cob && a.idx = b.idx
  | (Fcall _ | Fbranch _), _ -> false

let equal = List.equal frame_equal
let similar = List.equal frame_similar

let compare_frame f1 f2 =
  match (f1, f2) with
  | Fcall a, Fcall b ->
      let c = String.compare a.proc b.proc in
      if c <> 0 then c
      else
        let c = Int.compare a.site b.site in
        if c <> 0 then c else Int.compare a.inst b.inst
  | Fbranch a, Fbranch b ->
      let c = Int.compare a.cob b.cob in
      if c <> 0 then c
      else
        let c = Int.compare a.idx b.idx in
        if c <> 0 then c else Int.compare a.inst b.inst
  | Fcall _, Fbranch _ -> -1
  | Fbranch _, Fcall _ -> 1

let compare = List.compare compare_frame

(* Movements. *)
let enter_call ~proc ~site ~inst p = p @ [ Fcall { proc; site; inst } ]
let enter_branch ~cob ~idx ~inst p = p @ [ Fbranch { cob; idx; inst } ]

(* Exit cancels the innermost open activation. *)
let exit_frame p =
  match List.rev p with
  | [] -> invalid_arg "Pstring.exit_frame: empty procedure string"
  | _ :: rev_rest -> List.rev rev_rest

let innermost p = match List.rev p with [] -> None | f :: _ -> Some f

let is_prefix ~prefix p =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | fa :: a', fb :: b' -> frame_equal fa fb && go a' b'
  in
  go prefix p

(* Longest common prefix of two strings: the deepest shared activation. *)
let common_prefix p1 p2 =
  let rec go acc a b =
    match (a, b) with
    | fa :: a', fb :: b' when frame_equal fa fb -> go (fa :: acc) a' b'
    | _ -> List.rev acc
  in
  go [] p1 p2

(* May-happen-in-parallel: after removing the common prefix, the two
   strings must first diverge at two *branches of the same cobegin
   instance* with different indices.  Any other divergence (different call
   sites, ancestor/descendant, different instances of the same cobegin)
   means the two points are ordered by program order or by fork/join. *)
let may_happen_in_parallel p1 p2 =
  let rec go a b =
    match (a, b) with
    | fa :: a', fb :: b' when frame_equal fa fb -> go a' b'
    | Fbranch x :: _, Fbranch y :: _ ->
        x.cob = y.cob && x.inst = y.inst && x.idx <> y.idx
    | _ -> false
  in
  go p1 p2

(* Same relation on instance-erased (abstract) strings: conservative "may". *)
let may_happen_in_parallel_abstract p1 p2 =
  let rec go a b =
    match (a, b) with
    | fa :: a', fb :: b' when frame_similar fa fb -> go a' b'
    | Fbranch x :: _, Fbranch y :: _ -> x.cob = y.cob && x.idx <> y.idx
    | _ -> false
  in
  go p1 p2

(* Does the string contain an open activation of [proc]?  Used by the
   side-effect analysis: an access belongs to every procedure whose
   activation is open at the access. *)
let has_call ~proc p =
  List.exists (function Fcall f -> f.proc = proc | Fbranch _ -> false) p

(* The open activation frames of [proc] in [p], with the prefix up to and
   including each: one entry per nested activation. *)
let activations_of ~proc p =
  let rec go prefix_rev acc = function
    | [] -> List.rev acc
    | (Fcall f as fr) :: rest when f.proc = proc ->
        go (fr :: prefix_rev) (List.rev (fr :: prefix_rev) :: acc) rest
    | fr :: rest -> go (fr :: prefix_rev) acc rest
  in
  go [] [] p

(* Extent owner (paper section 5.3): the deepest activation that encloses
   the birth of an object and all accesses to it.  Returns the reduced
   string of that activation ([] = the whole program).  The object can be
   deallocated when that activation exits. *)
let extent_owner ~birth ~accesses =
  List.fold_left common_prefix birth accesses

(* Abstraction: erase instance numbers. *)
let erase_instances p =
  List.map
    (function
      | Fcall f -> Fcall { f with inst = 0 }
      | Fbranch f -> Fbranch { f with inst = 0 })
    p

(* k-limiting: keep the last [k] frames (innermost activations).  Composed
   with [erase_instances] this is a finite abstract domain of birthdates. *)
let limit k p =
  let n = List.length p in
  if n <= k then p
  else
    let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
    drop (n - k) p

let abstract ~k p = limit k (erase_instances p)

let pp_frame ppf = function
  | Fcall f ->
      if f.inst = 0 then Format.fprintf ppf "%s@@%d" f.proc f.site
      else Format.fprintf ppf "%s@@%d#%d" f.proc f.site f.inst
  | Fbranch f ->
      if f.inst = 0 then Format.fprintf ppf "cob%d.%d" f.cob f.idx
      else Format.fprintf ppf "cob%d.%d#%d" f.cob f.idx f.inst

let pp ppf p =
  match p with
  | [] -> Format.pp_print_string ppf "ε"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "·")
        pp_frame ppf p

let to_string p = Format.asprintf "%a" pp p
