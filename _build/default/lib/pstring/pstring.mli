(** Procedure strings (Harrison [Har89]; paper section 5).

    The instrumented semantics records each process's procedural and
    concurrency movements — entering/exiting a procedure activation and a
    cobegin branch.  Because matching enter/exit pairs cancel, a string
    in reduced form is exactly the stack of currently open activations,
    root first.  Procedure strings serve as:

    - the {e birthdate} of every object (the string at its allocation),
    - the coordinate at which every access is logged,
    - the carrier of the may-happen-in-parallel relation,
    - the input of the extent (lifetime) computation. *)

(** One open activation.  [inst] is a globally unique instance number
    distinguishing successive activations of the same procedure or
    successive executions of the same cobegin; abstraction erases it. *)
type frame =
  | Fcall of { proc : string; site : int; inst : int }
      (** activation of [proc], called from the statement labelled [site] *)
  | Fbranch of { cob : int; idx : int; inst : int }
      (** branch [idx] of the cobegin at statement label [cob] *)

type t = frame list
(** Reduced procedure string: root-first stack of open activations. *)

val empty : t
(** The string of the root process before any movement. *)

val frames : t -> frame list
(** The open activations, outermost first. *)

val depth : t -> int
(** Number of open activations. *)

val frame_equal : frame -> frame -> bool
(** Frame identity, including instance numbers. *)

val frame_similar : frame -> frame -> bool
(** Structural frame identity, ignoring instance numbers. *)

val equal : t -> t -> bool
val similar : t -> t -> bool
val compare : t -> t -> int

val enter_call : proc:string -> site:int -> inst:int -> t -> t
(** Record entering an activation of [proc] from call site [site]. *)

val enter_branch : cob:int -> idx:int -> inst:int -> t -> t
(** Record entering branch [idx] of the cobegin labelled [cob]. *)

val exit_frame : t -> t
(** Cancel the innermost open activation.
    @raise Invalid_argument on the empty string. *)

val innermost : t -> frame option
(** The innermost open activation, if any. *)

val is_prefix : prefix:t -> t -> bool
(** Is [prefix] an ancestor (or equal) activation path of the string? *)

val common_prefix : t -> t -> t
(** The deepest activation shared by two strings. *)

val may_happen_in_parallel : t -> t -> bool
(** May the two recorded points execute concurrently?  True iff the
    strings first diverge at two branches of the {e same} cobegin
    instance with different indices.  Exact on instance-carrying
    (concrete) strings. *)

val may_happen_in_parallel_abstract : t -> t -> bool
(** The same relation on instance-erased strings: conservative "may". *)

val has_call : proc:string -> t -> bool
(** Does the string contain an open activation of [proc]? *)

val activations_of : proc:string -> t -> t list
(** The prefixes ending at each open activation of [proc], outermost
    first — one per nested activation. *)

val extent_owner : birth:t -> accesses:t list -> t
(** The deepest activation enclosing the birth and every access of an
    object (paper section 5.3): the longest common prefix.  The object
    may be deallocated when that activation exits; [empty] means the
    object lives until program exit. *)

val erase_instances : t -> t
(** Abstraction: drop instance numbers. *)

val limit : int -> t -> t
(** [limit k p] keeps the [k] innermost activations. *)

val abstract : k:int -> t -> t
(** [erase_instances] composed with [limit k]: the finite abstraction of
    birthdates used by the abstract machine (paper section 6). *)

val pp_frame : Format.formatter -> frame -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
