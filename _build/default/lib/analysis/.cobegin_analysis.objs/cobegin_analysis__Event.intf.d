lib/analysis/event.mli: Aloc Alog Cobegin_absint Cobegin_semantics Format Map Pstring Step Value
