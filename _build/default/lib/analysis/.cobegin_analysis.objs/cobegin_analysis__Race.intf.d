lib/analysis/race.mli: Cobegin_semantics Format Set Step Value
