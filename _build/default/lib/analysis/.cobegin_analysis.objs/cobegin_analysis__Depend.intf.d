lib/analysis/depend.mli: Event Format Set
