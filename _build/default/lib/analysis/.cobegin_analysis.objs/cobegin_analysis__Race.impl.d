lib/analysis/race.ml: Ast Cobegin_explore Cobegin_lang Cobegin_semantics Config Format List Proc Queue Set Space Step Value
