lib/analysis/side_effect.mli: Cobegin_lang Event Format Pstring Set
