lib/analysis/lifetime.ml: Event Format List Pstring
