lib/analysis/side_effect.ml: Ast Cobegin_lang Event Format Int List Pstring Set String
