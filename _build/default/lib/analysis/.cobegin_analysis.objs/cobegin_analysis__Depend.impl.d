lib/analysis/depend.ml: Event Format List Set
