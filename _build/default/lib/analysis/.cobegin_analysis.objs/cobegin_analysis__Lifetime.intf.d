lib/analysis/lifetime.mli: Event Format Pstring
