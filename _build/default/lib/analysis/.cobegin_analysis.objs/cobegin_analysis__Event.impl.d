lib/analysis/event.ml: Aloc Alog Cobegin_absint Cobegin_semantics Format List Map Pstring Step Value
