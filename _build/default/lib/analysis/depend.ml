(* Data-dependence analysis (paper section 5.2).

   Two accesses to the same object, at least one a write, induce a
   dependence.  Accesses whose procedure strings may happen in parallel
   give *parallel* dependences (these are what constrain reordering and
   further parallelization of cobegin branches); accesses within one
   thread in program order give *sequential* dependences.  Parallel
   write/read pairs cannot be oriented at compile time, so they are
   classified by their access kinds only. *)

type conflict_kind = Write_write | Write_read

let pp_conflict_kind ppf = function
  | Write_write -> Format.pp_print_string ppf "output (W-W)"
  | Write_read -> Format.pp_print_string ppf "flow/anti (W-R)"

type dep = {
  label1 : int; (* statement labels, label1 <= label2 *)
  label2 : int;
  obj : Event.obj;
  kind : conflict_kind;
  parallel : bool; (* may the two accesses happen in parallel? *)
}

let compare_dep a b = compare (a.label1, a.label2, a.kind, a.parallel, a.obj)
    (b.label1, b.label2, b.kind, b.parallel, b.obj)

module DepSet = Set.Make (struct
  type t = dep

  let compare = compare_dep
end)

(* All dependences of a log.  Quadratic in accesses per object, which is
   fine at the program sizes state-space exploration handles anyway. *)
let of_log (log : Event.log) : DepSet.t =
  let by_obj = Event.accesses_by_obj log in
  Event.ObjMap.fold
    (fun obj accs acc ->
      let rec pairs acc = function
        | [] -> acc
        | (a1 : Event.access) :: rest ->
            let acc =
              List.fold_left
                (fun acc (a2 : Event.access) ->
                  if a1.Event.kind = Event.Read && a2.Event.kind = Event.Read
                  then acc
                  else if a1.Event.label = a2.Event.label then acc
                  else
                    let kind =
                      if a1.Event.kind = Event.Write && a2.Event.kind = Event.Write
                      then Write_write
                      else Write_read
                    in
                    let parallel =
                      Event.may_happen_in_parallel log a1.Event.pstr
                        a2.Event.pstr
                    in
                    let label1 = min a1.Event.label a2.Event.label in
                    let label2 = max a1.Event.label a2.Event.label in
                    DepSet.add { label1; label2; obj; kind; parallel } acc)
                acc rest
            in
            pairs acc rest
      in
      pairs acc accs)
    by_obj DepSet.empty

(* Only the dependences between concurrent threads. *)
let parallel_deps log = DepSet.filter (fun d -> d.parallel) (of_log log)

(* Do statements [l1] and [l2] conflict (in parallel)? *)
let conflicting deps l1 l2 =
  let a, b = (min l1 l2, max l1 l2) in
  DepSet.exists (fun d -> d.label1 = a && d.label2 = b && d.parallel) deps

let pp_dep ppf d =
  Format.fprintf ppf "s%d %s s%d on %a [%a]" d.label1
    (if d.parallel then "∥" else "→")
    d.label2 Event.pp_obj d.obj pp_conflict_kind d.kind

let pp_deps ppf deps =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_dep)
    (DepSet.elements deps)
