(** The unified instrumentation view: each analysis (side effects,
    dependences, lifetimes) runs unchanged over

    - the concrete log of state-space exploration
      ({!Cobegin_semantics.Step.events}), and
    - the abstract log of the abstract machine
      ({!Cobegin_absint.Alog.t}).

    Concrete procedure strings carry activation instances (exact);
    abstract ones do not (conservative). *)

open Cobegin_semantics
open Cobegin_absint

type obj = Concrete of Value.loc | Abstract of Aloc.t

val compare_obj : obj -> obj -> int
val equal_obj : obj -> obj -> bool
val pp_obj : Format.formatter -> obj -> unit

type kind = Read | Write

val pp_kind : Format.formatter -> kind -> unit

type access = { label : int; obj : obj; kind : kind; pstr : Pstring.t }
type alloc = { a_obj : obj; site : int; birth : Pstring.t; heap : bool }

type log = {
  accesses : access list;
  allocs : alloc list;
  precise_pstrings : bool;  (** concrete logs carry instances *)
}

module ObjMap : Map.S with type key = obj

val of_concrete : Step.events -> log
val of_abstract : Alog.t -> log

val may_happen_in_parallel : log -> Pstring.t -> Pstring.t -> bool
(** Dispatches on the log's precision. *)

val births : log -> Pstring.t list ObjMap.t
(** Possible birthdates per object (several under abstract folding). *)

val accesses_by_obj : log -> access list ObjMap.t
val pp_access : Format.formatter -> access -> unit
