(** Side-effect analysis (paper section 5.1): a side effect of procedure
    [f] is a reference, made during an activation of [f], to an object
    born outside that activation.  Works uniformly over concrete and
    abstract instrumentation logs ({!Event.log}); concrete logs carry
    activation instances and are exact, abstract logs are conservative
    for objects possibly born in an earlier activation (the paper's
    folding of birthdates). *)

type effect_ = {
  obj : Event.obj;  (** the referenced object *)
  kind : Event.kind;
  at_label : int;  (** statement performing the reference *)
}

val compare_effect : effect_ -> effect_ -> int

module EffectSet : Set.S with type elt = effect_

type report = {
  proc : string;
  reads : EffectSet.t;  (** side-effect reads *)
  writes : EffectSet.t;  (** side-effect writes *)
}

val born_inside : precise:bool -> prefix:Pstring.t -> Pstring.t -> bool
(** Is the birthdate inside the activation designated by [prefix]?
    [precise] selects instance-exact or structural comparison. *)

val of_proc : Event.log -> proc:string -> report
val of_program : Event.log -> Cobegin_lang.Ast.program -> report list

val is_pure : report -> bool
(** No side effects at all: the procedure only touches objects born in
    its own activations. *)

val pp_report : Format.formatter -> report -> unit
