(** Data-dependence analysis (paper section 5.2): two accesses to the
    same object, at least one a write.  Pairs whose procedure strings may
    happen in parallel are {e parallel} dependences — the constraints on
    reordering and further parallelization; same-thread pairs are
    sequential. *)

type conflict_kind =
  | Write_write  (** output dependence *)
  | Write_read  (** flow/anti — unordered for parallel accesses *)

val pp_conflict_kind : Format.formatter -> conflict_kind -> unit

type dep = {
  label1 : int;  (** statement labels, [label1 <= label2] *)
  label2 : int;
  obj : Event.obj;
  kind : conflict_kind;
  parallel : bool;  (** may the two accesses happen in parallel? *)
}

val compare_dep : dep -> dep -> int

module DepSet : Set.S with type elt = dep

val of_log : Event.log -> DepSet.t
(** All dependences of a log. *)

val parallel_deps : Event.log -> DepSet.t
(** Only the dependences between concurrent threads. *)

val conflicting : DepSet.t -> int -> int -> bool
(** Do the two statements carry a parallel dependence? *)

val pp_dep : Format.formatter -> dep -> unit
val pp_deps : Format.formatter -> DepSet.t -> unit
