(** Object-lifetime analysis (paper section 5.3).  The {e owner} of an
    object is the deepest activation enclosing its birth and every
    reference: the longest common prefix of its birthdate and all access
    strings.  The object can be reclaimed when the owner exits, and it
    must be placed in memory visible to every thread touching it. *)

type placement =
  | Local of Pstring.t  (** all accesses within one thread/activation *)
  | Shared  (** touched by concurrent threads *)

type info = {
  obj : Event.obj;
  site : int;  (** allocation site (statement label) *)
  heap : bool;
  births : Pstring.t list;  (** possible birthdates (several under folding) *)
  owner : Pstring.t;  (** deallocation frame; [empty] = program exit *)
  placement : placement;
  accessing_strings : Pstring.t list;
}

val compute_owner : births:Pstring.t list -> accesses:Pstring.t list -> Pstring.t

val of_log : Event.log -> info list
(** One entry per allocated object. *)

val deallocatable_at_exit_of : info list -> proc:string -> info list
(** The deallocation list of [proc]: objects dying when an activation of
    [proc] exits (Harrison's compile-time reclamation). *)

val program_lifetime : info list -> info list
(** Objects that live until the end of the whole program. *)

val pp_placement : Format.formatter -> placement -> unit
val pp_info : Format.formatter -> info -> unit
