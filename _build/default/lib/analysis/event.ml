(* A unified view of instrumentation logs, so each analysis (side effects,
   dependences, lifetimes) runs unchanged over

     - the concrete log produced by state-space exploration
       (Cobegin_semantics.Step.events), and
     - the abstract log produced by the abstract machine
       (Cobegin_absint.Alog.t).

   Objects are either concrete locations or abstract locations; procedure
   strings of concrete events carry activation instances (precise), those
   of abstract events do not (conservative). *)

open Cobegin_semantics
open Cobegin_absint

type obj = Concrete of Value.loc | Abstract of Aloc.t

let compare_obj a b =
  match (a, b) with
  | Concrete x, Concrete y -> Value.compare_loc x y
  | Abstract x, Abstract y -> Aloc.compare x y
  | Concrete _, Abstract _ -> -1
  | Abstract _, Concrete _ -> 1

let equal_obj a b = compare_obj a b = 0

let pp_obj ppf = function
  | Concrete l -> Value.pp_loc ppf l
  | Abstract l -> Aloc.pp ppf l

type kind = Read | Write

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"

type access = { label : int; obj : obj; kind : kind; pstr : Pstring.t }

type alloc = { a_obj : obj; site : int; birth : Pstring.t; heap : bool }

type log = {
  accesses : access list;
  allocs : alloc list;
  precise_pstrings : bool; (* concrete logs carry activation instances *)
}

module ObjMap = Map.Make (struct
  type t = obj

  let compare = compare_obj
end)

let of_concrete (evs : Step.events) : log =
  let accesses =
    List.map
      (fun (a : Step.access) ->
        {
          label = a.Step.a_label;
          obj = Concrete a.Step.a_loc;
          kind = (match a.Step.a_kind with `Read -> Read | `Write -> Write);
          pstr = a.Step.a_pstr;
        })
      evs.Step.accesses
  in
  let allocs =
    List.map
      (fun (al : Step.alloc) ->
        {
          a_obj = Concrete al.Step.al_loc;
          site = al.Step.al_site;
          birth = al.Step.al_birth;
          heap = al.Step.al_heap;
        })
      evs.Step.allocs
  in
  {
    accesses = List.sort_uniq compare accesses;
    allocs = List.sort_uniq compare allocs;
    precise_pstrings = true;
  }

let of_abstract (alog : Alog.t) : log =
  let accesses =
    List.map
      (fun (a : Alog.access) ->
        {
          label = a.Alog.label;
          obj = Abstract a.Alog.aloc;
          kind = (match a.Alog.kind with Alog.Read -> Read | Alog.Write -> Write);
          pstr = a.Alog.apstr;
        })
      (Alog.accesses alog)
  in
  let allocs =
    List.map
      (fun (al : Alog.alloc) ->
        {
          a_obj = Abstract al.Alog.al_aloc;
          site = al.Alog.al_site;
          birth = al.Alog.al_birth;
          heap = Aloc.is_heap al.Alog.al_aloc;
        })
      (Alog.allocs alog)
  in
  { accesses; allocs; precise_pstrings = false }

(* May the two recorded events happen in parallel?  Dispatches on the
   precision of the procedure strings. *)
let may_happen_in_parallel (log : log) p1 p2 =
  if log.precise_pstrings then Pstring.may_happen_in_parallel p1 p2
  else Pstring.may_happen_in_parallel_abstract p1 p2

(* Birthdates per object (several possible under folding). *)
let births (log : log) : Pstring.t list ObjMap.t =
  List.fold_left
    (fun m al ->
      let old = match ObjMap.find_opt al.a_obj m with Some l -> l | None -> [] in
      ObjMap.add al.a_obj (al.birth :: old) m)
    ObjMap.empty log.allocs

(* Accesses grouped per object. *)
let accesses_by_obj (log : log) : access list ObjMap.t =
  List.fold_left
    (fun m a ->
      let old = match ObjMap.find_opt a.obj m with Some l -> l | None -> [] in
      ObjMap.add a.obj (a :: old) m)
    ObjMap.empty log.accesses

let pp_access ppf a =
  Format.fprintf ppf "%a(%a)@@s%d in %a" pp_kind a.kind pp_obj a.obj a.label
    Pstring.pp a.pstr
