(* Side-effect analysis (paper section 5.1).

     "We say function f makes a reference to an object if the evaluation
      of f reads or writes the object."  A side effect of f is a
      reference to an object whose extent is not contained in the current
      activation of f — i.e. the object was born outside that activation.

   Implementation: every logged access carries its procedure string; an
   access belongs to activation A of f when A's frame appears in the
   string.  The access is a side effect of f w.r.t. A unless the object's
   birthdate extends A (born inside).  On concrete logs activation
   instances make the test exact; on abstract logs the test is structural
   and errs on the "may" side for objects possibly born in an earlier
   activation of f (the folding of birthdates, section 6). *)

open Cobegin_lang

type effect_ = { obj : Event.obj; kind : Event.kind; at_label : int }

let compare_effect (a : effect_) (b : effect_) =
  let c = Event.compare_obj a.obj b.obj in
  if c <> 0 then c
  else
    let c = compare a.kind b.kind in
    if c <> 0 then c else Int.compare a.at_label b.at_label

module EffectSet = Set.Make (struct
  type t = effect_

  let compare = compare_effect
end)

type report = {
  proc : string;
  reads : EffectSet.t; (* side-effect reads *)
  writes : EffectSet.t; (* side-effect writes *)
}

(* Is [birth] inside activation [prefix] (the string up to and including
   the f-frame)?  Precise logs compare frames with instances; abstract
   logs structurally. *)
let born_inside ~precise ~prefix birth =
  if precise then Pstring.is_prefix ~prefix birth
  else
    let rec go a b =
      match (a, b) with
      | [], _ -> true
      | _, [] -> false
      | fa :: a', fb :: b' -> Pstring.frame_similar fa fb && go a' b'
    in
    go (Pstring.frames prefix) (Pstring.frames birth)

(* Side effects of procedure [proc] over a log. *)
let of_proc (log : Event.log) ~proc : report =
  let births = Event.births log in
  let is_side_effect (a : Event.access) =
    (* every open activation of [proc] in the access's string *)
    let activations = Pstring.activations_of ~proc a.Event.pstr in
    activations <> []
    && List.exists
         (fun prefix ->
           match Event.ObjMap.find_opt a.Event.obj births with
           | None -> true (* unknown birth: assume outside *)
           | Some bs ->
               List.exists
                 (fun birth ->
                   not
                     (born_inside ~precise:log.Event.precise_pstrings ~prefix
                        birth))
                 bs)
         activations
  in
  let reads, writes =
    List.fold_left
      (fun (r, w) (a : Event.access) ->
        if is_side_effect a then
          let e = { obj = a.Event.obj; kind = a.Event.kind; at_label = a.Event.label } in
          match a.Event.kind with
          | Event.Read -> (EffectSet.add e r, w)
          | Event.Write -> (r, EffectSet.add e w)
        else (r, w))
      (EffectSet.empty, EffectSet.empty)
      log.Event.accesses
  in
  { proc; reads; writes }

let of_program (log : Event.log) (prog : Ast.program) : report list =
  List.map (fun p -> of_proc log ~proc:p.Ast.pname) prog.Ast.procs

(* A procedure is pure (side-effect free) when it only touches objects
   born within its own activations. *)
let is_pure r = EffectSet.is_empty r.reads && EffectSet.is_empty r.writes

let pp_report ppf r =
  let objs s =
    EffectSet.elements s
    |> List.map (fun e -> Format.asprintf "%a" Event.pp_obj e.obj)
    |> List.sort_uniq String.compare
  in
  Format.fprintf ppf "@[<v 2>%s:%s@ reads:  {%s}@ writes: {%s}@]" r.proc
    (if is_pure r then " pure" else "")
    (String.concat ", " (objs r.reads))
    (String.concat ", " (objs r.writes))
