(* Object-lifetime analysis (paper section 5.3).

   For every object, the *owner* activation is the deepest activation
   enclosing both the object's birth and every reference to it: the
   longest common prefix of its birthdate and all access strings.  The
   object can be deallocated when the owner activation exits (Harrison's
   deallocation lists, used by the compile-time-GC application), and it
   needs to live in memory visible to every thread that touches it (the
   memory-placement application). *)

type placement =
  | Local of Pstring.t (* all accesses inside one thread/activation *)
  | Shared (* touched by concurrent threads *)

type info = {
  obj : Event.obj;
  site : int; (* allocation site *)
  heap : bool;
  births : Pstring.t list;
  owner : Pstring.t; (* common prefix: deallocation frame *)
  placement : placement;
  accessing_strings : Pstring.t list;
}

(* Deepest common activation of all uses. *)
let compute_owner ~births ~accesses =
  match births @ accesses with
  | [] -> Pstring.empty
  | first :: rest -> List.fold_left Pstring.common_prefix first rest

let of_log (log : Event.log) : info list =
  let births = Event.births log in
  let by_obj = Event.accesses_by_obj log in
  let allocs_by_obj =
    List.fold_left
      (fun m (al : Event.alloc) -> Event.ObjMap.add al.Event.a_obj al m)
      Event.ObjMap.empty log.Event.allocs
  in
  Event.ObjMap.fold
    (fun obj (al : Event.alloc) acc ->
      let bs =
        match Event.ObjMap.find_opt obj births with Some l -> l | None -> []
      in
      let accs =
        match Event.ObjMap.find_opt obj by_obj with Some l -> l | None -> []
      in
      let strings = List.map (fun (a : Event.access) -> a.Event.pstr) accs in
      let owner = compute_owner ~births:bs ~accesses:strings in
      let placement =
        let parallel_pair =
          let rec exists_pair = function
            | [] -> false
            | p :: rest ->
                List.exists (fun q -> Event.may_happen_in_parallel log p q) rest
                || exists_pair rest
          in
          exists_pair strings
        in
        if parallel_pair then Shared
        else
          match strings with
          | [] -> Local owner
          | _ -> Local owner
      in
      {
        obj;
        site = al.Event.site;
        heap = al.Event.heap;
        births = bs;
        owner;
        placement;
        accessing_strings = strings;
      }
      :: acc)
    allocs_by_obj []

(* The deallocation list of an activation: objects whose owner's innermost
   frame is an activation of [proc] — they die when that activation exits
   (paper: "associate each function exit with a deallocation list"). *)
let deallocatable_at_exit_of infos ~proc =
  List.filter
    (fun i ->
      match Pstring.innermost i.owner with
      | Some (Pstring.Fcall { proc = p; _ }) -> p = proc
      | _ -> false)
    infos

(* Objects that die only at the end of the whole program. *)
let program_lifetime infos =
  List.filter (fun i -> Pstring.depth i.owner = 0) infos

let pp_placement ppf = function
  | Shared -> Format.pp_print_string ppf "shared (visible to several threads)"
  | Local p ->
      if Pstring.depth p = 0 then Format.pp_print_string ppf "local to main"
      else Format.fprintf ppf "local to %a" Pstring.pp p

let pp_info ppf i =
  Format.fprintf ppf "%a (site %d%s): owner=%a, %a" Event.pp_obj i.obj i.site
    (if i.heap then ", heap" else "")
    Pstring.pp i.owner pp_placement i.placement
