(** May-access summaries of whole process continuations, the soundness
    ingredient of the stubborn-set reduction: Algorithm 1 compares each
    process's next-action read/write sets against everything the other
    processes may ever do.

    Summaries resolve variable names against the environment in force at
    each continuation frame (environments are stored in the frames, so
    resolution is exact per frame); unresolvable names denote locations
    that do not exist yet and cannot conflict.  Pointer accesses are
    covered by a memory token concretizing to every heap cell and every
    address-taken variable. *)

open Cobegin_semantics

type t = {
  freads : Value.LocSet.t;  (** locations possibly read, ever *)
  fwrites : Value.LocSet.t;  (** locations possibly written, ever *)
  mem_read : bool;  (** may read through a pointer *)
  mem_write : bool;  (** may write through a pointer, or free *)
}

val empty : t

type ctx
(** Per-program context: transitive procedure effect summaries. *)

val make_ctx : Cobegin_lang.Ast.program -> ctx

val of_process : ctx -> Proc.t -> t
(** Everything the process may access during the rest of its life. *)

val conflicts_footprint : Store.t -> Step.footprint -> t -> bool
(** Does a concrete next-action footprint conflict with a future
    summary?  The store supplies the memory-coverage test. *)

val pp : Format.formatter -> t -> unit
