lib/explore/sleep.ml: Cobegin_semantics Config List Mayaccess Option Proc Queue Set Space Step Stubborn Value
