lib/explore/trace.ml: Cobegin_semantics Config Format List Proc Queue Space Step Value
