lib/explore/trace.mli: Cobegin_semantics Config Format Step Store Value
