lib/explore/sleep.mli: Cobegin_semantics Space Step
