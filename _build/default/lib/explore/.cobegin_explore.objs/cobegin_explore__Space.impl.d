lib/explore/space.ml: Cobegin_semantics Config Format Hashtbl List Queue Step Store
