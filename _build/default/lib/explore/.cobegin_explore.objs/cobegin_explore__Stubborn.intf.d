lib/explore/stubborn.mli: Cobegin_semantics Config Mayaccess Proc Space Step
