lib/explore/mayaccess.ml: Access Ast Cobegin_lang Cobegin_semantics Env Format List Proc Step Store Value
