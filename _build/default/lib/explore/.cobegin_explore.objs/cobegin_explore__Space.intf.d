lib/explore/space.mli: Cobegin_semantics Config Format Proc Step Value
