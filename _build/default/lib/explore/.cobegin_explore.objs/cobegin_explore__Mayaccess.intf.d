lib/explore/mayaccess.mli: Cobegin_lang Cobegin_semantics Format Proc Step Store Value
