lib/explore/stubborn.ml: Array Cobegin_semantics Config Hashtbl Int List Mayaccess Option Proc Queue Space Step Value
