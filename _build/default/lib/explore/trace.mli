(** Witness traces: BFS for a configuration satisfying a predicate,
    returning the schedule (sequence of pids) that reaches it.  Replay a
    witness with {!Cobegin_semantics.Replay}. *)

open Cobegin_semantics

type witness = {
  schedule : Value.pid list;  (** pids fired, in order, from the start *)
  target : Config.t;  (** the configuration reached *)
  explored : int;  (** configurations visited by the search *)
}

val search :
  ?max_configs:int -> Step.ctx -> pred:(Config.t -> bool) -> witness option
(** Shortest schedule (in steps) to a configuration satisfying [pred];
    [None] if none exists within the budget. *)

val error_witness : ?max_configs:int -> Step.ctx -> witness option
(** A schedule reaching an error configuration. *)

val final_witness :
  ?max_configs:int -> Step.ctx -> pred:(Store.t -> bool) -> witness option
(** A schedule to a final configuration whose store satisfies [pred]. *)

val pp_witness : Format.formatter -> witness -> unit
