(* May-access of a process's whole continuation.

   Algorithm 1 of the paper compares the read/write sets of each process's
   next actions against the other processes; for soundness of the
   reduction the comparison must cover everything the other process may
   ever do, so we take the syntactic summary of every item left on its
   stack, resolved against the environment in force at that point
   (environments are stored in the [Ipop]/[Iret] frames, so the resolution
   is exact per frame).  Names that do not resolve denote locations that
   do not exist yet — fresh, hence conflict-free.  Pointer accesses are
   covered by the memory token, which concretizes to every heap cell and
   every address-taken variable. *)

open Cobegin_lang
open Cobegin_semantics
module LS = Value.LocSet
module SS = Ast.StringSet

type t = {
  freads : LS.t;
  fwrites : LS.t;
  mem_read : bool;
  mem_write : bool;
}

let empty =
  { freads = LS.empty; fwrites = LS.empty; mem_read = false; mem_write = false }

(* Program-level context: procedure effect summaries. *)
type ctx = {
  effects : string -> Access.proc_effects option;
  any : Access.proc_effects;
}

let make_ctx (prog : Ast.program) : ctx =
  let effects = Access.proc_effects_of_program prog in
  let any =
    List.fold_left
      (fun acc p -> Access.union_effects acc (effects p.Ast.pname))
      Access.no_effects prog.Ast.procs
  in
  let effects_opt f = if Ast.has_proc prog f then Some (effects f) else None in
  { effects = effects_opt; any }

let resolve env names =
  SS.fold
    (fun x acc ->
      match Env.find x env with Some l -> LS.add l acc | None -> acc)
    names LS.empty

(* Future accesses of process [p]: fold over its stack, tracking the
   environment in force for each item. *)
let of_process ctx (p : Proc.t) : t =
  let add_summary env (sum : Access.summary) acc =
    {
      freads = LS.union acc.freads (resolve env sum.Access.rvars);
      fwrites = LS.union acc.fwrites (resolve env sum.Access.wvars);
      mem_read = acc.mem_read || sum.Access.mem_read;
      mem_write = acc.mem_write || sum.Access.mem_write;
    }
  in
  let rec go env acc = function
    | [] -> acc
    | Proc.Istmt s :: rest ->
        let sum = Access.stmt_summary ~effects:ctx.effects ~any:ctx.any s in
        go env (add_summary env sum acc) rest
    | Proc.Ipop e :: rest -> go e acc rest
    | Proc.Iret { dest; saved_env; _ } :: rest ->
        let acc =
          match dest with
          | None -> acc
          | Some lv ->
              add_summary saved_env (Access.writes_of_lvalue lv) acc
        in
        go saved_env acc rest
    | Proc.Ijoin _ :: rest ->
        (* children are separate processes and carry their own summaries *)
        go env acc rest
  in
  go p.Proc.env empty p.Proc.stack

(* Does a concrete next-action footprint conflict with a future summary?
   [store] supplies the memory-coverage test for the token. *)
let conflicts_footprint store (fp : Step.footprint) (fut : t) : bool =
  let mem_covered ls = LS.exists (fun l -> Store.is_mem_covered l store) ls in
  (not (LS.is_empty (LS.inter fp.Step.fwrites (LS.union fut.freads fut.fwrites))))
  || (not (LS.is_empty (LS.inter fp.Step.freads fut.fwrites)))
  || ((fut.mem_read || fut.mem_write) && mem_covered fp.Step.fwrites)
  || (fut.mem_write && mem_covered fp.Step.freads)

let pp ppf a =
  Format.fprintf ppf "reads=%d locs%s writes=%d locs%s" (LS.cardinal a.freads)
    (if a.mem_read then "+mem" else "")
    (LS.cardinal a.fwrites)
    (if a.mem_write then "+mem" else "")
