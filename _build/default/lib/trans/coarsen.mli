(** Virtual coarsening (paper Observation 5): "atomic actions of a
    thread can be combined if they contain at most one critical
    reference."  Rewrites every block, greedily grouping maximal runs of
    simple statements whose total critical-reference count is at most
    one into a single [atomic] block — executed in one transition by the
    interleaving semantics.  Coarsening preserves the reachable final
    stores (a qcheck property of the suite). *)

open Cobegin_lang

val is_simple : Ast.stmt -> bool
(** May the statement participate in a coarsened run? *)

val coarsen_stmt : Critical.conflicts -> Ast.stmt -> Ast.stmt

val program : Ast.program -> Ast.program
(** Coarsen a whole program; the conflict report is computed once from
    the input. *)

val program_with_report : Ast.program -> Ast.program * Critical.conflicts
