(** Critical references (paper Definition 4): reads of variables another
    thread may write, and writes to variables another thread may read or
    write.  Approximated syntactically: for every cobegin and every pair
    of branches, the free names accessed by both with a write on at
    least one side conflict; heap accesses conflict through a single
    memory token; calls contribute their transitive memory effects. *)

open Cobegin_lang

type conflicts = {
  names : Ast.StringSet.t;  (** names with a cross-thread conflict *)
  mem : bool;  (** pointer/heap accesses conflict across threads *)
}

val no_conflicts : conflicts

val free_summary :
  effects:(string -> Access.proc_effects option) ->
  any:Access.proc_effects ->
  Ast.stmt ->
  Access.summary
(** Like {!Access.stmt_summary} but names bound inside the statement are
    excluded (block scoping): the accesses visible from outside. *)

val summary_conflicts : Access.summary -> Access.summary -> conflicts
val union_conflicts : conflicts -> conflicts -> conflicts

val of_program : Ast.program -> conflicts
(** All cross-branch conflicts of the program. *)

val expr_critical : conflicts -> Ast.expr -> int
(** Number of critical references in an expression. *)

val stmt_critical : conflicts -> Ast.stmt -> int
(** Critical references of one {e simple} statement (skip, declaration,
    assignment, assert — the kinds virtual coarsening groups).
    @raise Invalid_argument on other statement kinds. *)

val pp : Format.formatter -> conflicts -> unit
