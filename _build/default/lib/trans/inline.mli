(** Procedure inlining.  The paper notes (footnote 4) that its analyses
    behave "like taking in-line procedure expansion first and then
    analyzing the results as a whole" — this transform makes that
    literal.  A call is expanded when the callee is statically known,
    non-recursive, and returns only in tail position; locals and
    parameters are freshened against capture. *)

open Cobegin_lang

val recursive : Ast.program -> string -> bool
(** Is the procedure (transitively) recursive? *)

val expand :
  Ast.program -> Ast.lvalue option -> string -> Ast.expr list ->
  Ast.stmt list option
(** Expansion of one call site; [None] when not inlinable. *)

val program : ?depth:int -> Ast.program -> Ast.program
(** Inline up to [depth] rounds (default 3) and relabel the result so
    statement labels stay unique. *)
