lib/trans/inline.ml: Ast Cobegin_lang List Option Printf StringSet
