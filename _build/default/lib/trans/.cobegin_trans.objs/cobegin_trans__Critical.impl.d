lib/trans/critical.ml: Access Ast Cobegin_lang Format List Option String
