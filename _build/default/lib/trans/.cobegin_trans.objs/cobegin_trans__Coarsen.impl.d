lib/trans/coarsen.ml: Ast Cobegin_lang Critical List
