lib/trans/inline.mli: Ast Cobegin_lang
