lib/trans/critical.mli: Access Ast Cobegin_lang Format
