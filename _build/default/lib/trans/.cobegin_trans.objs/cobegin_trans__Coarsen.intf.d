lib/trans/coarsen.mli: Ast Cobegin_lang Critical
