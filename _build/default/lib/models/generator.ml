(* Random terminating cobegin programs, for property-based testing:
     - a pool of shared integer variables declared up front,
     - branch bodies of assignments, atomics, if-statements, paired
       lock/unlock regions and bounded counting loops,
     - optional helper procedures (pure arithmetic) called by value.
   All loops are bounded counters, so every generated program terminates
   on every interleaving; deadlocks cannot arise because lock regions are
   well nested and acquired in a fixed order. *)

open Cobegin_lang

type rng = { mutable state : int }

let make_rng seed = { state = (if seed = 0 then 1 else seed) }

(* xorshift: deterministic, dependency-free *)
let next rng =
  let x = rng.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  rng.state <- x land max_int;
  rng.state

let int rng n = if n <= 0 then 0 else next rng mod n

let pick rng l = List.nth l (int rng (List.length l))

type cfg = {
  num_shared : int; (* shared variables s0..s_{k-1} *)
  num_branches : int;
  stmts_per_branch : int;
  with_locks : bool;
  with_loops : bool;
  with_procs : bool;
}

let default_cfg =
  {
    num_shared = 3;
    num_branches = 2;
    stmts_per_branch = 4;
    with_locks = true;
    with_loops = true;
    with_procs = true;
  }

let shared_var cfg rng = Printf.sprintf "s%d" (int rng cfg.num_shared)

let rec expr cfg rng depth : string =
  if depth = 0 then
    match int rng 3 with
    | 0 -> string_of_int (int rng 5)
    | 1 -> shared_var cfg rng
    | _ -> string_of_int (int rng 3)
  else
    match int rng 4 with
    | 0 -> Printf.sprintf "%s + %s" (expr cfg rng (depth - 1)) (expr cfg rng (depth - 1))
    | 1 -> Printf.sprintf "%s * %s" (expr cfg rng (depth - 1)) (expr cfg rng (depth - 1))
    | 2 -> Printf.sprintf "%s - %s" (expr cfg rng (depth - 1)) (expr cfg rng (depth - 1))
    | _ -> expr cfg rng 0

let cond cfg rng =
  let op = pick rng [ "<"; "<="; "=="; "!=" ] in
  Printf.sprintf "%s %s %d" (shared_var cfg rng) op (int rng 5)

let rec stmt cfg rng ~depth ~local_ix : string list =
  match int rng (10 + if depth > 0 then 0 else -2) with
  | 0 | 1 | 2 | 3 ->
      [ Printf.sprintf "%s = %s;" (shared_var cfg rng) (expr cfg rng 1) ]
  | 4 ->
      let v = Printf.sprintf "t%d" !local_ix in
      incr local_ix;
      [
        Printf.sprintf "var %s = %s;" v (expr cfg rng 1);
        Printf.sprintf "%s = %s + 1;" (shared_var cfg rng) v;
      ]
  | 5 when depth > 0 ->
      let body =
        List.concat_map
          (fun _ -> stmt cfg rng ~depth:(depth - 1) ~local_ix)
          [ (); () ]
      in
      [
        Printf.sprintf "if (%s) {\n%s\n} else {\n%s\n}" (cond cfg rng)
          (String.concat "\n" body)
          (String.concat "\n"
             (stmt cfg rng ~depth:(depth - 1) ~local_ix));
      ]
  | 6 when cfg.with_loops && depth > 0 ->
      let v = Printf.sprintf "t%d" !local_ix in
      incr local_ix;
      let body =
        String.concat "\n" (stmt cfg rng ~depth:(depth - 1) ~local_ix)
      in
      [
        Printf.sprintf
          "var %s = 0;\nwhile (%s < %d) {\n%s = %s + 1;\n%s\n}" v v
          (1 + int rng 3) v v body;
      ]
  | 7 when cfg.with_locks ->
      [
        "lock(mtx);";
        Printf.sprintf "%s = %s + 1;" (shared_var cfg rng) (shared_var cfg rng);
        "unlock(mtx);";
      ]
  | 8 when cfg.with_procs ->
      [ Printf.sprintf "%s = inc(%s);" (shared_var cfg rng) (expr cfg rng 0) ]
  | _ ->
      [
        Printf.sprintf "atomic { %s = %s; %s = %s; }" (shared_var cfg rng)
          (expr cfg rng 0) (shared_var cfg rng) (expr cfg rng 0);
      ]

let branch cfg rng : string =
  let local_ix = ref 0 in
  let stmts =
    List.concat
      (List.init cfg.stmts_per_branch (fun _ ->
           stmt cfg rng ~depth:1 ~local_ix))
  in
  "{\n" ^ String.concat "\n" stmts ^ "\n}"

let source ?(cfg = default_cfg) ~seed () : string =
  let rng = make_rng seed in
  let decls =
    List.init cfg.num_shared (fun i -> Printf.sprintf "  var s%d = 0;" i)
    |> String.concat "\n"
  in
  let branches =
    List.init cfg.num_branches (fun _ -> "    " ^ branch cfg rng)
    |> String.concat "\n"
  in
  let helper =
    if cfg.with_procs then "proc inc(p) { return p + 1; }\n" else ""
  in
  Printf.sprintf "%sproc main() {\n%s\n  var mtx = 0;\n  cobegin\n%s\n  coend;\n}\n"
    helper decls branches

let program ?cfg ~seed () : Ast.program =
  let src = source ?cfg ~seed () in
  let prog = Parser.parse_string src in
  Check.check_exn prog;
  prog
