(** Random terminating cobegin programs for property-based testing:
    shared integer variables, branch bodies of assignments, atomics,
    conditionals, paired lock regions and bounded counting loops, plus an
    arithmetic helper procedure.  Every generated program terminates on
    every interleaving and cannot deadlock. *)

open Cobegin_lang

type cfg = {
  num_shared : int;  (** shared variables s0 .. s_(k-1) *)
  num_branches : int;
  stmts_per_branch : int;
  with_locks : bool;
  with_loops : bool;
  with_procs : bool;
}

val default_cfg : cfg

val source : ?cfg:cfg -> seed:int -> unit -> string
(** Deterministic in [seed] (xorshift). *)

val program : ?cfg:cfg -> seed:int -> unit -> Ast.program
(** Parsed and checked. *)
