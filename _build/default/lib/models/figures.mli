(** The paper's worked examples as source texts (they double as parser
    fixtures), plus parameterized workloads.  [parse] checks as well. *)

val parse : string -> Cobegin_lang.Ast.program

val fig2 : string
(** Figure 2 / Example 1 ([SS88]): the sequential-consistency outcome
    set — (x,y) takes three of four values, never (0,0). *)

val fig3 : string
(** Figure 3 / §6.1: racing writes whose result-configurations differ
    only in the store — the "dangling links" folding merges. *)

val fig5 : string
(** Figure 5 / §2.2: local prefixes with one shared access each — the
    locality stubborn sets exploit. *)

val example8 : string
(** Example 8: pointers and malloc inside cobegin; b1 shared, b2 local. *)

val fig8 : string
(** Figure 8 / Example 15: the [SS88] fragment with calls; only (s1,s4)
    and (s2,s3) depend. *)

val busywait : string
(** The introduction's busy-waiting fragment a sequential compiler would
    break. *)

val mutex : string
(** Lock-protected counter: race-free, assert always holds. *)

val mutex_racy : string
(** The same counter without locks: lost updates reachable. *)

val clan_workload : int -> string
(** k identical branches calling one worker (McDowell's clan setting). *)

val forktree : int -> string
(** Fork-join tree of depth n via recursion: 2^n leaves atomically bump
    a shared heap counter. *)

val producer_consumer : int -> string
(** One-cell buffer with flag synchronization, n items. *)

val firstclass : string
(** Indirect calls through a procedure-valued variable. *)

val all_named : (string * string) list
(** Name → source, for CLIs and test sweeps. *)
