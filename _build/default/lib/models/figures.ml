(* The paper's worked examples, as programs of our language.  Each value
   is the source text (kept textual so the examples double as parser
   fixtures); [parse] produces the checked program. *)

open Cobegin_lang

let parse src =
  let prog = Parser.parse_string src in
  Check.check_exn prog;
  prog

(* Figure 2 / Example 1 (from [SS88]): two program segments sharing a and
   b.  Under sequential consistency the final (x, y) can be (1,0), (1,1),
   (0,1) — but never (0,0): at least one thread sees the other's write. *)
let fig2 =
  {|
proc main() {
  var a = 0;
  var b = 0;
  var x = 0;
  var y = 0;
  cobegin
    { a = 1; x = b; }
    { b = 1; y = a; }
  coend;
}
|}

(* Figure 3 / section 6.1: the branches race on one variable, so the
   concrete result-configurations differ only in the store — the
   "dangling links" that configuration abstraction folds into one
   abstract configuration. *)
let fig3 =
  {|
proc main() {
  var u = 0;
  cobegin
    { u = 1; }
    { u = 2; }
  coend;
  var v = u;
}
|}

(* Figure 5 / section 2.2: local computation prefixes with a single
   shared access each — the locality that stubborn sets exploit. *)
let fig5 =
  {|
proc main() {
  var s = 0;
  cobegin
    { var a1 = 1; var a2 = a1 + 1; var a3 = a2 * 2; s = s + a3; }
    { var b1 = 2; var b2 = b1 + 3; var b3 = b2 * 2; s = s + b3; }
  coend;
}
|}

(* Example 8: pointers and dynamic allocation inside cobegin (C-style:
   x, y are pointers to integers).  The paper's analysis finds the
   dependences through the heap and decides b1 (the cell *y) must be
   visible to both threads while b2 (the cell *x) can be local. *)
let example8 =
  {|
proc main() {
  var x = 0;
  var y = 0;
  cobegin
    {
      y = malloc(1);
      *y = 10;
    }
    {
      x = malloc(1);
      await(y != 0);
      *x = *y;
    }
  coend;
}
|}

(* Figure 8 / Example 15: the [SS88] fragment with assignments replaced
   by procedure calls; only (s1,s4) and (s2,s3) carry dependences. *)
let fig8 =
  {|
proc f1(p) { *p = 1; }
proc f2(p) { var t = *p; t = t + 1; }
proc f3(p) { *p = 2; }
proc f4(p) { var t = *p; t = t * 2; }
proc main() {
  var a = malloc(1);
  var b = malloc(1);
  cobegin
    { f1(a); f2(b); }
    { f3(b); f4(a); }
  coend;
}
|}

(* The busy-waiting fragment of the paper's introduction: hoisting the
   load of [flag] out of the loop (a legal sequential optimization) would
   break it; the analysis must see the cross-thread flow dependence. *)
let busywait =
  {|
proc main() {
  var flag = 0;
  var data = 0;
  var seen = 0;
  cobegin
    { data = 42; flag = 1; }
    { await(flag == 1); seen = data; }
  coend;
  assert(seen == 42);
}
|}

(* Mutual exclusion with test-and-set locks: the shared counter is
   race-free; dropping the locks (below) makes the race detector fire. *)
let mutex =
  {|
proc main() {
  var l = 0;
  var count = 0;
  cobegin
    { lock(l); count = count + 1; unlock(l); }
    { lock(l); count = count + 1; unlock(l); }
  coend;
  assert(count == 2);
}
|}

let mutex_racy =
  {|
proc main() {
  var count = 0;
  cobegin
    { var t = count; count = t + 1; }
    { var t = count; count = t + 1; }
  coend;
}
|}

(* k identical branches calling the same worker: McDowell's clan
   workload (section 6.2). *)
let clan_workload k =
  let branches =
    List.init k (fun _ -> "{ work(1); }") |> String.concat " "
  in
  Printf.sprintf
    {|
proc work(p) {
  var t = p + 1;
  t = t * 2;
}
proc main() {
  cobegin %s coend;
}
|}
    branches

(* Fork-join tree via recursion: "several instances of concurrent
   activities of a given cobegin may be created due to procedure calls or
   loops" (paper section 6.2).  Depth n spawns 2^n leaf updates of the
   shared counter under a lock. *)
let forktree depth =
  Printf.sprintf
    {|
proc tree(n, c) {
  if (n <= 0) {
    atomic { *c = *c + 1; }
  } else {
    cobegin
      { tree(n - 1, c); }
      { tree(n - 1, c); }
    coend;
  }
}
proc main() {
  var count = malloc(1);
  tree(%d, count);
  var total = *count;
  assert(total == %d);
}
|}
    depth (1 lsl depth)

(* A producer/consumer chain through a one-cell buffer with flag
   synchronization. *)
let producer_consumer n =
  Printf.sprintf
    {|
proc main() {
  var buf = 0;
  var full = 0;
  var got = 0;
  var i = 0;
  var j = 0;
  cobegin
    {
      while (i < %d) {
        await(full == 0);
        i = i + 1;
        buf = i;
        full = 1;
      }
    }
    {
      while (j < %d) {
        await(full == 1);
        got = buf;
        full = 0;
        j = j + 1;
      }
    }
  coend;
  assert(got == %d);
}
|}
    n n n

(* First-class functions: an indirect call through a variable. *)
let firstclass =
  {|
proc double(p) { return p * 2; }
proc triple(p) { return p * 3; }
proc main() {
  var f = double;
  var r = 0;
  var which = 1;
  if (which == 1) { f = triple; }
  r = (f)(7);
  assert(r == 21);
}
|}

let all_named =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig5", fig5);
    ("example8", example8);
    ("fig8", fig8);
    ("busywait", busywait);
    ("mutex", mutex);
    ("mutex_racy", mutex_racy);
    ("firstclass", firstclass);
  ]
