(** Classic shared-variable synchronization protocols — the programs the
    paper's introduction says a compiler must analyze rather than break:
    their correctness depends on the order of shared accesses under
    sequential consistency. *)

val peterson : string
(** Peterson's mutual exclusion; the in-critical-section assert never
    fails. *)

val peterson_broken : string
(** The same algorithm with thread 0's flag/turn writes reordered — the
    "harmless" compiler transformation; exploration finds the mutual
    exclusion violation. *)

val barrier : int -> string
(** Sense-reversing two-thread barrier, crossed n times. *)

val readers_writers : string
(** Lock-protected reader registration with a retrying writer; the
    reader never observes a torn pair. *)

val all_named : (string * string) list
