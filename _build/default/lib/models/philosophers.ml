(* Dining philosophers, in both substrates:

     - as a place/transition net (the [Val88] formulation behind the
       paper's "state space reduced from exponential to quadratic in n"
       claim): think_i --takeL_i--> hasleft_i --takeR_i--> eat_i
       --put_i--> think_i, forks as shared places;

     - as a program of our language, with forks as test-and-set locks
       (deadlocks and all), for the program-level engines. *)

open Cobegin_petri

let net n : Net.t =
  if n < 2 then invalid_arg "Philosophers.net: need at least 2";
  let b = Net.Builder.create () in
  let think = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "think%d" i) 1) in
  let hasl = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "hasL%d" i) 0) in
  let eat = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "eat%d" i) 0) in
  let fork = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "fork%d" i) 1) in
  for i = 0 to n - 1 do
    let right = (i + 1) mod n in
    ignore
      (Net.Builder.add_transition b
         (Printf.sprintf "takeL%d" i)
         ~pre:[ (think.(i), 1); (fork.(i), 1) ]
         ~post:[ (hasl.(i), 1) ]);
    ignore
      (Net.Builder.add_transition b
         (Printf.sprintf "takeR%d" i)
         ~pre:[ (hasl.(i), 1); (fork.(right), 1) ]
         ~post:[ (eat.(i), 1) ]);
    ignore
      (Net.Builder.add_transition b
         (Printf.sprintf "put%d" i)
         ~pre:[ (eat.(i), 1) ]
         ~post:[ (think.(i), 1); (fork.(i), 1); (fork.(right), 1) ])
  done;
  Net.Builder.build b

(* Variant that cannot deadlock: the last philosopher picks the right
   fork first (asymmetric ordering). *)
let net_ordered n : Net.t =
  if n < 2 then invalid_arg "Philosophers.net_ordered: need at least 2";
  let b = Net.Builder.create () in
  let think = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "think%d" i) 1) in
  let has1 = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "has1_%d" i) 0) in
  let eat = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "eat%d" i) 0) in
  let fork = Array.init n (fun i -> Net.Builder.add_place b (Printf.sprintf "fork%d" i) 1) in
  for i = 0 to n - 1 do
    let right = (i + 1) mod n in
    let first, second = if i = n - 1 then (right, i) else (i, right) in
    ignore
      (Net.Builder.add_transition b
         (Printf.sprintf "take1_%d" i)
         ~pre:[ (think.(i), 1); (fork.(first), 1) ]
         ~post:[ (has1.(i), 1) ]);
    ignore
      (Net.Builder.add_transition b
         (Printf.sprintf "take2_%d" i)
         ~pre:[ (has1.(i), 1); (fork.(second), 1) ]
         ~post:[ (eat.(i), 1) ]);
    ignore
      (Net.Builder.add_transition b
         (Printf.sprintf "put%d" i)
         ~pre:[ (eat.(i), 1) ]
         ~post:[ (think.(i), 1); (fork.(i), 1); (fork.(right), 1) ])
  done;
  Net.Builder.build b

(* The same system as a program: forks are locks shared by adjacent
   branches; [rounds] meals per philosopher. *)
let program ?(rounds = 1) n : string =
  if n < 2 then invalid_arg "Philosophers.program: need at least 2";
  let decls =
    List.init n (fun i -> Printf.sprintf "  var fork%d = 0;" i)
    |> String.concat "\n"
  in
  let branch i =
    let right = (i + 1) mod n in
    Printf.sprintf
      "    { var r = 0; while (r < %d) { lock(fork%d); lock(fork%d); r = r + \
       1; unlock(fork%d); unlock(fork%d); } }"
      rounds i right right i
  in
  let branches = List.init n branch |> String.concat "\n" in
  Printf.sprintf "proc main() {\n%s\n  cobegin\n%s\n  coend;\n}\n" decls
    branches
