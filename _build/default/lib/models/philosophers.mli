(** Dining philosophers in both substrates:

    - as a place/transition net (the [Val88] formulation behind the
      paper's exponential-to-quadratic claim): think --takeL--> hasLeft
      --takeR--> eat --put--> think, forks as shared places;
    - as a cobegin program with forks as test-and-set locks, for the
      program-level engines. *)

val net : int -> Cobegin_petri.Net.t
(** Two-step fork pickup; has the circular-wait deadlock.
    @raise Invalid_argument below 2 philosophers. *)

val net_ordered : int -> Cobegin_petri.Net.t
(** Asymmetric fork ordering (the last philosopher picks right first):
    deadlock-free. *)

val program : ?rounds:int -> int -> string
(** Source text of the lock-based program; [rounds] meals each. *)
