lib/models/figures.ml: Check Cobegin_lang List Parser Printf String
