lib/models/figures.mli: Cobegin_lang
