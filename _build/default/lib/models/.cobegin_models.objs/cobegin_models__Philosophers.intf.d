lib/models/philosophers.mli: Cobegin_petri
