lib/models/protocols.mli:
