lib/models/generator.ml: Ast Check Cobegin_lang List Parser Printf String
