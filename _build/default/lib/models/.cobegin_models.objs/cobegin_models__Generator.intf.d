lib/models/generator.mli: Ast Cobegin_lang
