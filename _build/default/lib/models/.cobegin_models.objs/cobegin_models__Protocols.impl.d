lib/models/protocols.ml: Printf
