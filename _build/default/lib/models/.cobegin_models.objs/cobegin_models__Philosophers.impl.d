lib/models/philosophers.ml: Array Cobegin_petri List Net Printf String
