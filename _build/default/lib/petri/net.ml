(* Place/transition nets with weighted arcs.  This is the substrate on
   which stubborn-set theory was developed ([Val88, Val89, Val90]); the
   paper's state-space-reduction claims (e.g. dining philosophers:
   exponential -> quadratic) are formulated on such nets. *)

type place = int

type transition = {
  tid : int;
  tname : string;
  pre : (place * int) list; (* input places with arc weights *)
  post : (place * int) list; (* output places with arc weights *)
}

type t = {
  nplaces : int;
  place_names : string array;
  transitions : transition array;
  initial : int array; (* initial marking *)
}

type marking = int array

(* Builder: accumulate places and transitions, then freeze. *)
module Builder = struct
  type state = {
    mutable places : (string * int) list; (* name, initial tokens; reversed *)
    mutable nplaces : int;
    mutable trans : transition list; (* reversed *)
    mutable ntrans : int;
  }

  let create () = { places = []; nplaces = 0; trans = []; ntrans = 0 }

  let add_place b name tokens =
    let id = b.nplaces in
    b.places <- (name, tokens) :: b.places;
    b.nplaces <- id + 1;
    id

  let add_transition b name ~pre ~post =
    let check (p, w) =
      if p < 0 || p >= b.nplaces then invalid_arg "Builder.add_transition: bad place";
      if w <= 0 then invalid_arg "Builder.add_transition: bad weight"
    in
    List.iter check pre;
    List.iter check post;
    let tid = b.ntrans in
    b.trans <- { tid; tname = name; pre; post } :: b.trans;
    b.ntrans <- tid + 1;
    tid

  let build b =
    let places = List.rev b.places in
    {
      nplaces = b.nplaces;
      place_names = Array.of_list (List.map fst places);
      transitions = Array.of_list (List.rev b.trans);
      initial = Array.of_list (List.map snd places);
    }
end

let initial_marking net = Array.copy net.initial
let num_transitions net = Array.length net.transitions
let transition net tid = net.transitions.(tid)

let enabled (m : marking) (t : transition) =
  List.for_all (fun (p, w) -> m.(p) >= w) t.pre

let enabled_transitions net (m : marking) =
  Array.to_list net.transitions |> List.filter (enabled m)

(* Fire an enabled transition, producing a fresh marking. *)
let fire (m : marking) (t : transition) : marking =
  let m' = Array.copy m in
  List.iter
    (fun (p, w) ->
      m'.(p) <- m'.(p) - w;
      if m'.(p) < 0 then invalid_arg "Net.fire: transition not enabled")
    t.pre;
  List.iter (fun (p, w) -> m'.(p) <- m'.(p) + w) t.post;
  m'

let is_deadlock net (m : marking) =
  Array.for_all (fun t -> not (enabled m t)) net.transitions

(* Structural indices used by the stubborn-set closure. *)
type indices = {
  consumers : int list array; (* place -> transitions with the place in pre *)
  producers : int list array; (* place -> transitions with the place in post *)
}

let build_indices net =
  let consumers = Array.make net.nplaces [] in
  let producers = Array.make net.nplaces [] in
  Array.iter
    (fun t ->
      List.iter (fun (p, _) -> consumers.(p) <- t.tid :: consumers.(p)) t.pre;
      List.iter (fun (p, _) -> producers.(p) <- t.tid :: producers.(p)) t.post)
    net.transitions;
  { consumers; producers }

let pp_marking net ppf (m : marking) =
  let nonzero = ref [] in
  Array.iteri
    (fun p n -> if n > 0 then nonzero := (p, n) :: !nonzero)
    m;
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (p, n) ->
         if n = 1 then Format.pp_print_string ppf net.place_names.(p)
         else Format.fprintf ppf "%s×%d" net.place_names.(p) n))
    (List.rev !nonzero)
