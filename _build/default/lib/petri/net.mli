(** Place/transition nets with weighted arcs — the substrate on which
    stubborn-set theory was developed ([Val88]-[Val90]); the paper's
    dining-philosophers scaling claim is formulated on such nets. *)

type place = int

type transition = {
  tid : int;
  tname : string;
  pre : (place * int) list;  (** input places with arc weights *)
  post : (place * int) list;  (** output places with arc weights *)
}

type t = {
  nplaces : int;
  place_names : string array;
  transitions : transition array;
  initial : int array;
}

type marking = int array

(** Imperative builder; freeze with {!Builder.build}. *)
module Builder : sig
  type state

  val create : unit -> state

  val add_place : state -> string -> int -> place
  (** [add_place b name tokens] returns the new place's id. *)

  val add_transition :
    state -> string -> pre:(place * int) list -> post:(place * int) list -> int
  (** @raise Invalid_argument on undefined places or non-positive
      weights. *)

  val build : state -> t
end

val initial_marking : t -> marking
val num_transitions : t -> int
val transition : t -> int -> transition
val enabled : marking -> transition -> bool
val enabled_transitions : t -> marking -> transition list

val fire : marking -> transition -> marking
(** @raise Invalid_argument when the transition is not enabled. *)

val is_deadlock : t -> marking -> bool

(** Structural indices used by the stubborn-set closure. *)
type indices = {
  consumers : int list array;  (** place -> transitions consuming from it *)
  producers : int list array;  (** place -> transitions producing into it *)
}

val build_indices : t -> indices
val pp_marking : t -> Format.formatter -> marking -> unit
