lib/petri/net.mli: Format
