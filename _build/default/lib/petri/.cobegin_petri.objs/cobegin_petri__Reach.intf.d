lib/petri/reach.mli: Format Net
