lib/petri/reach.ml: Array Format Hashtbl List Net Queue
