lib/petri/net.ml: Array Format List
