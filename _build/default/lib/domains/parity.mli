(** The parity domain [{⊥, Even, Odd, ⊤}]: a second finite-height
    {!Lattice.NUMERIC} instance, also the right factor of the reduced
    product {!Int_parity}. *)

type t = Bot | Even | Odd | Top

val bottom : t
val top : t
val is_bottom : t -> bool
val is_top : t -> bool
val of_int : int -> t
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Integer division does not preserve parity: non-bottom operands give
    top. *)

val neg : t -> t
val contains : t -> int -> bool
val cmp_eq : t -> t -> bool option
val cmp_lt : t -> t -> bool option
val cmp_le : t -> t -> bool option
val assume_eq : t -> t -> t
val assume_ne : t -> t -> t
val assume_lt : t -> t -> t
val assume_le : t -> t -> t
val assume_gt : t -> t -> t
val assume_ge : t -> t -> t
val pp : Format.formatter -> t -> unit
