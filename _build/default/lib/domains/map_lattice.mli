(** Pointwise map lattice: keys to lattice values, absent keys meaning
    bottom — the shape of abstract stores and environments.  The map is
    kept normalized (bottom images are never stored). *)

module Make (K : Lattice.ORDERED) (L : Lattice.LATTICE) : sig
  type t

  val bottom : t
  val is_bottom : t -> bool

  val set : K.t -> L.t -> t -> t
  (** Binding to bottom removes the key. *)

  val find : K.t -> t -> L.t
  (** Absent keys are bottom. *)

  val mem : K.t -> t -> bool
  val remove : K.t -> t -> t
  val bindings : t -> (K.t * L.t) list
  val fold : (K.t -> L.t -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (K.t -> L.t -> unit) -> t -> unit
  val cardinal : t -> int
  val keys : t -> K.t list
  val update : K.t -> (L.t -> L.t) -> t -> t
  val leq : t -> t -> bool
  val merge_with : (L.t -> L.t -> L.t) -> t -> t -> t
  val join : t -> t -> t
  val equal : t -> t -> bool

  val widen_with : (L.t -> L.t -> L.t) -> t -> t -> t
  (** Pointwise widening with the element widening. *)

  val pp : Format.formatter -> t -> unit
end
