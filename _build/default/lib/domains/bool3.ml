(* Three-valued booleans: the flat lattice over {true,false}, used for
   abstract branch conditions.  [MaybeTrue]/[MaybeFalse] queries drive
   which successors an abstract branch generates. *)

type t = Bot | True | False | Either

let bottom = Bot
let top = Either
let of_bool b = if b then True else False
let is_bottom = function Bot -> true | True | False | Either -> false
let is_top = function Either -> true | True | False | Bot -> false

let equal (a : t) (b : t) = a = b

let leq a b =
  match (a, b) with
  | Bot, _ | _, Either -> true
  | True, True | False, False -> true
  | (True | False | Either), _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Either, _ | _, Either -> Either
  | True, True -> True
  | False, False -> False
  | True, False | False, True -> Either

let meet a b =
  match (a, b) with
  | Either, x | x, Either -> x
  | Bot, _ | _, Bot -> Bot
  | True, True -> True
  | False, False -> False
  | True, False | False, True -> Bot

let widen = join

(* May the value be true (resp. false)?  Bottom may be neither. *)
let may_be_true = function True | Either -> true | False | Bot -> false
let may_be_false = function False | Either -> true | True | Bot -> false

let not_ = function
  | Bot -> Bot
  | True -> False
  | False -> True
  | Either -> Either

let and_ a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | False, _ | _, False -> False
  | True, True -> True
  | (True | Either), (True | Either) -> Either

let or_ a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | True, _ | _, True -> True
  | False, False -> False
  | (False | Either), (False | Either) -> Either

let of_option = function None -> Either | Some b -> of_bool b

let pp ppf v =
  Format.pp_print_string ppf
    (match v with
    | Bot -> "⊥"
    | True -> "tt"
    | False -> "ff"
    | Either -> "tt/ff")
