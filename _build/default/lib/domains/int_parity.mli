(** Reduced product of intervals and parity: a further {!Lattice.NUMERIC}
    instance demonstrating that each domain choice yields a different
    analysis for free (paper section 3).  The reduction tightens finite
    interval bounds inward to the parity (e.g. [1,4] ∧ even = [2,4]) and
    kills contradictory values. *)

type t = private { itv : Interval.t; par : Parity.t }
(** Always kept reduced; build with {!make} / {!of_int} / operators. *)

val reduce : t -> t
val make : Interval.t -> Parity.t -> t
val bottom : t
val top : t
val is_bottom : t -> bool
val is_top : t -> bool
val of_int : int -> t
val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val contains : t -> int -> bool
val cmp_eq : t -> t -> bool option
val cmp_lt : t -> t -> bool option
val cmp_le : t -> t -> bool option
val assume_eq : t -> t -> t
val assume_ne : t -> t -> t
val assume_lt : t -> t -> t
val assume_le : t -> t -> t
val assume_gt : t -> t -> t
val assume_ge : t -> t -> t
val pp : Format.formatter -> t -> unit
